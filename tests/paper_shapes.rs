//! Shape assertions mirroring the paper's headline claims, at test scale.

use lion::prelude::*;

fn sim(nodes: usize) -> SimConfig {
    SimConfig {
        nodes,
        partitions_per_node: 4,
        keys_per_partition: 2048,
        value_size: 32,
        clients_per_node: 6,
        batch_size: 64,
        ..Default::default()
    }
}

fn ycsb(nodes: u32, cross: f64, skew: f64, seed: u64) -> Box<YcsbWorkload> {
    Box::new(YcsbWorkload::new(
        YcsbConfig::for_cluster(nodes, 4, 2048)
            .with_mix(cross, skew)
            .with_seed(seed),
    ))
}

fn engine(nodes: usize, cross: f64, skew: f64, seed: u64) -> Engine {
    let cfg = EngineConfig {
        sim: sim(nodes),
        plan_interval_us: 500_000,
        ..Default::default()
    };
    Engine::new(cfg, ycsb(nodes as u32, cross, skew, seed))
}

/// The paper's core claim: on localizable cross-partition workloads Lion
/// substantially outperforms 2PC (paper: up to 2.7x overall).
#[test]
fn lion_beats_2pc_on_cross_partition_workloads() {
    let horizon = 5 * SECOND;
    let lion_tps = {
        let mut eng = engine(4, 1.0, 0.0, 5);
        eng.run(&mut Lion::standard(), horizon).throughput_tps
    };
    let twopc_tps = {
        let mut eng = engine(4, 1.0, 0.0, 5);
        eng.run(&mut lion::baselines::two_pc(), horizon)
            .throughput_tps
    };
    assert!(
        lion_tps > twopc_tps * 1.2,
        "Lion {lion_tps:.0} vs 2PC {twopc_tps:.0}"
    );
}

/// 2PC throughput must fall monotonically-ish as the cross ratio grows
/// (Fig. 6's 2PC curve).
#[test]
fn twopc_degrades_with_cross_ratio() {
    let tput = |cross: f64| {
        let mut eng = engine(2, cross, 0.0, 6);
        eng.run(&mut lion::baselines::two_pc(), SECOND)
            .throughput_tps
    };
    let t0 = tput(0.0);
    let t1 = tput(1.0);
    assert!(t0 > t1 * 1.4, "0% {t0:.0} vs 100% {t1:.0}");
}

/// Lion converts nearly everything to single-node execution after
/// adaptation (the §III conversion cases).
#[test]
fn lion_converts_to_single_node() {
    let mut eng = engine(4, 1.0, 0.0, 8);
    let r = eng.run(&mut Lion::standard(), 5 * SECOND);
    let single = r.class_fractions[0] + r.class_fractions[1];
    assert!(single > 0.7, "converted fraction {single:.2}");
    assert!(r.remasters > 0);
    assert_eq!(r.migrations, 0, "Lion never migrates data");
}

/// Star's super node caps batch throughput once the cross ratio is high.
#[test]
fn star_super_node_saturates() {
    let tput = |cross: f64, seed| {
        let cfg = EngineConfig {
            sim: sim(4),
            ..Default::default()
        };
        let mut eng = Engine::new(cfg, ycsb(4, cross, 0.0, seed));
        eng.run(&mut Star::new(), 2 * SECOND).throughput_tps
    };
    let low = tput(0.0, 9);
    let high = tput(1.0, 10);
    assert!(low > high * 1.4, "low {low:.0} vs high {high:.0}");
}

/// The single-threaded lock manager bounds Calvin's throughput regardless
/// of cluster size (Fig. 11b's deterministic ceiling).
#[test]
fn calvin_is_lock_manager_bound() {
    let tput = |nodes: usize| {
        let cfg = EngineConfig {
            sim: sim(nodes),
            ..Default::default()
        };
        let mut eng = Engine::new(cfg, ycsb(nodes as u32, 0.5, 0.0, 11));
        eng.run(&mut Calvin::new(), 2 * SECOND).throughput_tps
    };
    let t4 = tput(4);
    let t8 = tput(8);
    assert!(
        t8 < t4 * 1.3,
        "doubling nodes must not scale Calvin: 4 nodes {t4:.0} vs 8 nodes {t8:.0}"
    );
}

/// Leap's blocking migrations make it far slower than 2PC when several
/// origin nodes tug the same partitions (the ping-pong problem, §II-B.1).
#[test]
fn leap_ping_pong_hurts() {
    let horizon = 2 * SECOND;
    let leap_tps = {
        let mut eng = engine(4, 1.0, 0.0, 12);
        eng.run(&mut lion::baselines::leap(), horizon)
            .throughput_tps
    };
    let twopc_tps = {
        let mut eng = engine(4, 1.0, 0.0, 12);
        eng.run(&mut lion::baselines::two_pc(), horizon)
            .throughput_tps
    };
    assert!(
        leap_tps < twopc_tps,
        "Leap {leap_tps:.0} vs 2PC {twopc_tps:.0}"
    );
}
