//! Epoch group commit end-to-end: the no-acked-commit-lost invariant.
//!
//! The contract under test (ISSUE 4 acceptance):
//!
//! * **ack-at-commit mode** (`epoch_commit_us = 0`) acks the instant the
//!   protocol commits, while replication rides the 10 ms epoch flush — so a
//!   crash catches acked commits whose log entries exist only on the dead
//!   primary. The `acked_then_lost` audit counts them: the subsystem closes
//!   a *real* hole, not a hypothetical one.
//! * **epoch group commit** holds every ack behind its epoch's replication:
//!   the same crash scripts must show `acked_then_lost == 0` across
//!   Lion/2PC/Star/Calvin, for arbitrary seeds and crash times. Parked
//!   transactions of a voided epoch retry instead.
//! * acks released to one client never go backwards (per-client seq
//!   monotonicity), crash or no crash.

use lion::baselines::two_pc;
use lion::common::{FastMap, NodeId, SimConfig, SECOND};
use lion::core::Lion;
use lion::engine::{DurabilityConfig, Engine, EngineConfig, Protocol, RunReport};
use lion::faults::FaultPlan;
use lion::workloads::{YcsbConfig, YcsbWorkload};
use proptest::prelude::*;

fn sim(seed: u64) -> SimConfig {
    SimConfig {
        nodes: 3,
        partitions_per_node: 4,
        keys_per_partition: 1_000,
        value_size: 32,
        clients_per_node: 8,
        batch_size: 64,
        seed,
        ..Default::default()
    }
}

fn workload(seed: u64) -> Box<YcsbWorkload> {
    Box::new(YcsbWorkload::new(
        YcsbConfig::for_cluster(3, 4, 1_000)
            .with_mix(0.5, 0.3)
            .with_seed(seed),
    ))
}

fn build_proto(which: usize) -> Box<dyn Protocol> {
    match which {
        0 => Box::new(Lion::standard()),
        1 => Box::new(two_pc()),
        2 => Box::new(lion::baselines::Star::new()),
        _ => Box::new(lion::baselines::Calvin::new()),
    }
}

fn proto_name(which: usize) -> &'static str {
    ["Lion", "2PC", "Star", "Calvin"][which]
}

struct Run {
    report: RunReport,
    ack_log: Vec<lion::engine::AckRecord>,
}

fn run_crash_scenario(which: usize, seed: u64, crash_at: u64, durability: DurabilityConfig) -> Run {
    let cfg = EngineConfig {
        sim: sim(seed),
        plan_interval_us: 200_000,
        faults: FaultPlan::single_failure(crash_at, NodeId(1), crash_at + SECOND / 8),
        durability,
        ..EngineConfig::default()
    };
    let mut eng = Engine::new(cfg, workload(seed ^ 0x5EED));
    let mut proto = build_proto(which);
    let report = eng.run(proto.as_mut(), SECOND / 2);
    Run {
        report,
        ack_log: eng.epoch_manager().ack_log.clone(),
    }
}

/// The deterministic contrast pair the acceptance criteria name: the same
/// crash script run in both durability modes, per protocol. Ack-at-commit
/// leaks acked writes (the hole is real); epoch commit closes it.
#[test]
fn ack_at_commit_loses_what_epoch_commit_keeps() {
    for which in 0..4 {
        // 3 ms past the 120 ms replication flush: the epoch buffer holds
        // freshly acked commits when N1 dies.
        let legacy = run_crash_scenario(which, 7, 123_000, DurabilityConfig::ack_at_commit());
        assert!(
            legacy.report.acked_then_lost > 0,
            "{}: ack-at-commit must show the durability hole",
            proto_name(which)
        );
        let epoch = run_crash_scenario(which, 7, 123_000, DurabilityConfig::epoch(4_000));
        assert_eq!(
            epoch.report.acked_then_lost,
            0,
            "{}: epoch commit must close the hole",
            proto_name(which)
        );
        assert!(
            epoch.report.epochs_aborted > 0,
            "{}: the crash voids the open epoch",
            proto_name(which)
        );
        assert!(
            epoch.report.acked > 0,
            "{}: acks flow before and after the crash",
            proto_name(which)
        );
        assert!(
            epoch.report.mean_ack_latency_us >= epoch.report.mean_latency_us,
            "{}: acks can only trail commits",
            proto_name(which)
        );
    }
}

/// Closed-loop protocols: the ack stream a single client observes never
/// reorders, crash or no crash (the epoch fence forbids a promoted primary
/// from releasing a pre-crash epoch late).
fn assert_client_monotonic(run: &Run, label: &str) {
    let mut last: FastMap<u32, (u64, u64)> = FastMap::default();
    for a in &run.ack_log {
        if let Some(&(seq, at)) = last.get(&a.client.0) {
            assert!(
                a.seq > seq && a.at >= at,
                "{label}: client {} saw ack seq {} at t={} after seq {seq} at t={at}",
                a.client.0,
                a.seq,
                a.at
            );
        }
        last.insert(a.client.0, (a.seq, a.at));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Arbitrary seeds, crash times, epoch lengths, protocols: no acked
    /// commit is ever lost under epoch group commit, and (closed-loop
    /// protocols) per-client acks stay monotonic.
    #[test]
    fn no_acked_commit_is_ever_lost(
        seed in 0u64..1_000_000,
        crash_at in 60_000u64..220_000,
        epoch_us in 1_000u64..12_000,
        which in 0usize..4,
    ) {
        let durability = DurabilityConfig {
            epoch_commit_us: epoch_us,
            record_acks: true,
            ..DurabilityConfig::default()
        };
        let run = run_crash_scenario(which, seed, crash_at, durability);
        prop_assert_eq!(
            run.report.acked_then_lost, 0,
            "{}: acked commit lost (seed {}, crash {}, epoch {})",
            proto_name(which), seed, crash_at, epoch_us
        );
        prop_assert!(run.report.commits > 0);
        // Batch distributors hand one synthetic client several in-flight
        // transactions per batch, so seq monotonicity per client is only a
        // closed-loop guarantee.
        if which < 2 {
            assert_client_monotonic(&run, proto_name(which));
        }
    }
}
