//! Property tests on the OCC storage layer: randomized interleavings of
//! lock/validate/install/abort must preserve version monotonicity and lock
//! hygiene, and replication must converge to the primary state.

use lion::common::{PartitionId, TxnId};
use lion::storage::{ReplicaStore, Table};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Step {
    Read { key: u64, txn: u64 },
    WriteCommit { key: u64, txn: u64 },
    WriteAbort { key: u64, txn: u64 },
}

fn arb_step(keys: u64) -> impl Strategy<Value = Step> {
    (0..keys, 1u64..50, 0u8..3).prop_map(|(key, txn, kind)| match kind {
        0 => Step::Read { key, txn },
        1 => Step::WriteCommit { key, txn },
        _ => Step::WriteAbort { key, txn },
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Versions never decrease; aborted writes leave no locks behind;
    /// committed writes bump versions exactly once.
    #[test]
    fn occ_versions_monotonic(steps in proptest::collection::vec(arb_step(8), 1..200)) {
        let mut table = Table::populated(8, 16);
        let mut versions = [1u64; 8];
        for step in steps {
            match step {
                Step::Read { key, txn } => {
                    if let lion::storage::OpOutcome::Ok { version } =
                        table.occ_read(key, TxnId(txn))
                    {
                        prop_assert!(version >= versions[key as usize]);
                    }
                }
                Step::WriteCommit { key, txn } => {
                    if table.occ_lock(key, TxnId(txn)).is_ok() {
                        let v = table.occ_install(key, TxnId(txn), Table::synth_value(key, txn, 16));
                        prop_assert_eq!(v, versions[key as usize] + 1);
                        versions[key as usize] = v;
                    }
                }
                Step::WriteAbort { key, txn } => {
                    if table.occ_lock(key, TxnId(txn)).is_ok() {
                        table.occ_unlock(key, TxnId(txn));
                        let after = table.occ_read(key, TxnId(9999));
                        prop_assert!(after.is_ok(), "abort must release the lock");
                    }
                }
            }
        }
    }

    /// Shipping the log in arbitrary chunk sizes always converges the
    /// secondary to the primary's exact state.
    #[test]
    fn replication_converges(
        writes in proptest::collection::vec((0u64..16, 1u64..40), 1..100),
        chunk in 1usize..10,
    ) {
        let part = PartitionId(0);
        let mut primary = ReplicaStore::new_primary(part, 16, 16);
        let mut secondary = ReplicaStore::new_secondary(part, 16, 16);
        for (key, txn) in &writes {
            if primary.table.occ_lock(*key, TxnId(*txn)).is_ok() {
                let value = Table::synth_value(*key, *txn, 16);
                let v = primary.table.occ_install(*key, TxnId(*txn), value.clone());
                primary.log.append(part, *key, v, value);
            }
        }
        let entries = primary.log.take_pending();
        for batch in entries.chunks(chunk) {
            secondary.apply_entries(batch);
        }
        prop_assert_eq!(secondary.lag_behind(primary.log.head_lsn()), 0);
        for key in 0..16u64 {
            let p = primary.table.get(key).unwrap();
            let s = secondary.table.get(key).unwrap();
            prop_assert_eq!(p.version, s.version);
            prop_assert_eq!(&p.value, &s.value);
        }
    }
}
