//! Honest split-brain end-to-end: both partition sides stay live, and the
//! quorum fence makes that honesty safe.
//!
//! The contract under test (ISSUE 7 acceptance):
//!
//! * **quorum fencing** (`split_brain` fault plans + epoch group commit):
//!   minority-side coordinators keep committing through the cut, but their
//!   epochs never seal — every fenced ack parks until heal, where the
//!   reconciliation pass aborts the divergent epochs and retries their
//!   clients. `acked_then_lost == 0` across seeds × partition timing × heal
//!   timing × protocols: no minority ack is ever silently dropped.
//! * **optimistic minority acks** (`split_brain` + ack-at-commit) release
//!   acks the replication stream can never certify; the heal audit counts
//!   them as lost. The hole the fence closes is real, not hypothetical.
//! * the window the minority side stays live is the availability win: the
//!   split-brain arm's unavailability can only be at or below the legacy
//!   crash approximation's, which kills the isolated side outright.

use lion::baselines::two_pc;
use lion::common::{FastMap, NodeId, SimConfig, SECOND};
use lion::core::Lion;
use lion::engine::{DurabilityConfig, Engine, EngineConfig, Protocol, RunReport};
use lion::faults::FaultPlan;
use lion::workloads::{YcsbConfig, YcsbWorkload};
use proptest::prelude::*;

const HORIZON: u64 = 3 * SECOND / 5;

/// 4 nodes at replication factor 3: a `{N2, N3}` cut splits the cluster
/// 2-v-2, but every data partition still has a strict replica majority on
/// exactly one side — both sides host quorum partitions *and* fenced ones,
/// so minority commits flow on each side of the cut.
fn sim(seed: u64) -> SimConfig {
    SimConfig {
        nodes: 4,
        partitions_per_node: 4,
        keys_per_partition: 1_000,
        value_size: 32,
        clients_per_node: 8,
        batch_size: 64,
        replication_factor: 3,
        max_replicas: 4,
        seed,
        ..Default::default()
    }
}

fn workload(seed: u64) -> Box<YcsbWorkload> {
    Box::new(YcsbWorkload::new(
        YcsbConfig::for_cluster(4, 4, 1_000)
            .with_mix(0.5, 0.3)
            .with_seed(seed),
    ))
}

fn build_proto(which: usize) -> Box<dyn Protocol> {
    match which {
        0 => Box::new(Lion::standard()),
        1 => Box::new(two_pc()),
        2 => Box::new(lion::baselines::Star::new()),
        _ => Box::new(lion::baselines::Calvin::new()),
    }
}

fn proto_name(which: usize) -> &'static str {
    ["Lion", "2PC", "Star", "Calvin"][which]
}

fn split_plan(cut_at: u64, heal_at: u64) -> FaultPlan {
    FaultPlan::new()
        .partition_at(cut_at, vec![NodeId(2), NodeId(3)])
        .heal_at(heal_at)
        .with_split_brain()
}

struct Run {
    report: RunReport,
    fenced_after: usize,
    ack_log: Vec<lion::engine::AckRecord>,
}

fn run_split(which: usize, seed: u64, faults: FaultPlan, durability: DurabilityConfig) -> Run {
    let cfg = EngineConfig {
        sim: sim(seed),
        plan_interval_us: 200_000,
        faults,
        durability,
        ..EngineConfig::default()
    };
    let mut eng = Engine::new(cfg, workload(seed ^ 0x5EED));
    let mut proto = build_proto(which);
    let report = eng.run(proto.as_mut(), HORIZON);
    Run {
        report,
        fenced_after: eng.epoch_manager().fenced_count(),
        ack_log: eng.epoch_manager().ack_log.clone(),
    }
}

/// The deterministic headline scenario, per protocol: a mid-run 2-v-2 cut
/// with quorum fencing. The minority side visibly commits through the
/// window (fenced acks park instead of sealing), the heal aborts the
/// divergent epochs and retries their clients, and nothing acked is lost.
#[test]
fn minority_side_stays_live_and_fenced() {
    for which in 0..4 {
        let name = proto_name(which);
        let run = run_split(
            which,
            11,
            split_plan(SECOND / 5, 2 * SECOND / 5),
            DurabilityConfig::epoch(5_000).with_retry_round_trip(),
        );
        let r = &run.report;
        assert_eq!(r.partitions_begun, 1, "{name}: the cut opened");
        assert_eq!(r.partitions_healed, 1, "{name}: the cut healed");
        assert!(
            r.minority_commits > 0,
            "{name}: minority side must keep committing through the cut"
        );
        assert!(
            r.fenced_acks > 0,
            "{name}: minority commits in epoch mode park as fenced acks"
        );
        assert!(
            r.divergent_epochs_aborted > 0,
            "{name}: heal must abort the divergent minority epochs"
        );
        assert!(
            r.epoch_retried_acks >= r.fenced_acks,
            "{name}: every fenced ack is retried at heal ({} retried < {} fenced)",
            r.epoch_retried_acks,
            r.fenced_acks
        );
        assert_eq!(
            r.acked_then_lost, 0,
            "{name}: quorum fencing must lose no acked commit"
        );
        assert_eq!(
            run.fenced_after, 0,
            "{name}: no ack may stay parked past the heal"
        );
        assert!(r.commits > 1_000, "{name}: commits {}", r.commits);

        // The availability claim: the legacy crash approximation kills the
        // isolated side for the whole window; honest split-brain keeps it
        // serving, so its unavailability can only be at or below legacy's.
        let legacy = run_split(
            which,
            11,
            FaultPlan::new()
                .partition_at(SECOND / 5, vec![NodeId(2), NodeId(3)])
                .heal_at(2 * SECOND / 5),
            DurabilityConfig::epoch(5_000).with_retry_round_trip(),
        );
        assert!(
            r.unavailability_us <= legacy.report.unavailability_us,
            "{name}: split-brain unavailability {}us exceeds the crash \
             approximation's {}us",
            r.unavailability_us,
            legacy.report.unavailability_us
        );
        assert_eq!(
            legacy.report.minority_commits, 0,
            "{name}: the legacy path has no live minority to commit"
        );
    }
}

/// The contrast arm: same cut, but acks release at commit time. The
/// minority side's optimistic acks were never replicable across the cut,
/// and the heal audit must surface them as lost — the fence closes a real
/// hole.
#[test]
fn optimistic_minority_acks_leak_at_heal() {
    for which in 0..4 {
        let name = proto_name(which);
        let run = run_split(
            which,
            11,
            split_plan(SECOND / 5, 2 * SECOND / 5),
            DurabilityConfig::ack_at_commit(),
        );
        assert!(
            run.report.minority_commits > 0,
            "{name}: minority side committed through the cut"
        );
        assert!(
            run.report.acked_then_lost > 0,
            "{name}: optimistic minority acks must show up as lost at heal"
        );
    }
}

/// Closed-loop protocols: the ack stream one client observes never
/// reorders, cut or no cut (heal-time retries re-enter the epoch pipeline
/// behind the surviving timeline, never ahead of it).
fn assert_client_monotonic(run: &Run, label: &str) {
    let mut last: FastMap<u32, (u64, u64)> = FastMap::default();
    for a in &run.ack_log {
        if let Some(&(seq, at)) = last.get(&a.client.0) {
            assert!(
                a.seq > seq && a.at >= at,
                "{label}: client {} saw ack seq {} at t={} after seq {seq} at t={at}",
                a.client.0,
                a.seq,
                a.at
            );
        }
        last.insert(a.client.0, (a.seq, a.at));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The headline invariant, across seeds × partition timing × heal
    /// timing × protocols: under quorum fencing, `acked_then_lost == 0`
    /// through partition + heal — every minority optimistic ack is either
    /// durably re-committed or explicitly retried, never silently dropped —
    /// and no ack stays parked once the cut heals.
    #[test]
    fn no_minority_ack_is_ever_lost(
        seed in 0u64..1_000_000,
        cut_at in 60_000u64..200_000,
        heal_gap in 60_000u64..220_000,
        epoch_us in 2_000u64..10_000,
        which in 0usize..4,
    ) {
        let heal_at = cut_at + heal_gap;
        let durability = DurabilityConfig {
            record_acks: true,
            ..DurabilityConfig::epoch(epoch_us).with_retry_round_trip()
        };
        let run = run_split(which, seed, split_plan(cut_at, heal_at), durability);
        prop_assert_eq!(
            run.report.acked_then_lost, 0,
            "{}: acked commit lost (seed {}, cut {}, heal {})",
            proto_name(which), seed, cut_at, heal_at
        );
        prop_assert_eq!(
            run.fenced_after, 0,
            "{}: acks left parked after heal (seed {}, cut {}, heal {})",
            proto_name(which), seed, cut_at, heal_at
        );
        prop_assert_eq!(run.report.partitions_healed, 1);
        prop_assert!(run.report.commits > 0);
        // Batch distributors hand one synthetic client several in-flight
        // transactions per batch, so seq monotonicity per client is only a
        // closed-loop guarantee.
        if which < 2 {
            assert_client_monotonic(&run, proto_name(which));
        }
    }

    /// Split-brain runs are a pure function of their seed: the new
    /// park/fence/heal machinery introduces no iteration-order or
    /// allocator-address nondeterminism.
    #[test]
    fn split_brain_runs_are_deterministic(
        seed in 0u64..1_000_000,
        cut_at in 60_000u64..200_000,
        which in 0usize..4,
    ) {
        let one = |_| {
            let run = run_split(
                which,
                seed,
                split_plan(cut_at, cut_at + 150_000),
                DurabilityConfig::epoch(5_000).with_retry_round_trip(),
            );
            run.report.digest()
        };
        prop_assert_eq!(one(0), one(1));
    }
}
