//! Calendar-queue FEL vs the binary-heap reference model.
//!
//! The engine's determinism contract requires the future-event list to pop
//! in strict `(timestamp, sequence-number)` order — the heap's tie-break.
//! These properties drive [`CalendarQueue`] and [`HeapQueue`] through
//! identical, arbitrarily interleaved schedule/pop/cancel/peek sequences
//! and assert the two drain in exactly the same order, across bucket-wheel
//! wraps, overflow-rung promotion, and deterministic resizes.

use lion::sim::{CalendarQueue, EventHandle, HeapQueue};
use proptest::prelude::*;

/// One scripted operation, decoded from `(kind, magnitude, pick)`.
///
/// kinds 0..=2 schedule with increasing horizons — 2 lands far beyond the
/// default wheel horizon (the overflow rung); 3 pops; 4 cancels one of the
/// previously issued handles; 5 peeks.
fn apply(
    ops: &[(u8, u64, usize)],
    cal: &mut CalendarQueue<u64>,
    heap: &mut HeapQueue<u64>,
) -> Result<(), proptest::TestCaseError> {
    let mut handles: Vec<EventHandle> = Vec::new();
    let mut tag = 0u64;
    for &(kind, mag, pick) in ops {
        match kind {
            3 => prop_assert_eq!(cal.pop(), heap.pop()),
            4 => {
                if !handles.is_empty() {
                    // Both queues assign sequence numbers in lock-step, so
                    // one handle addresses the same event in both.
                    let h = handles[pick % handles.len()];
                    prop_assert_eq!(cal.cancel(h), heap.cancel(h));
                }
            }
            5 => prop_assert_eq!(cal.peek_time(), heap.peek_time()),
            _ => {
                let delay = match kind {
                    0 => mag % 200,                     // short horizon: net/cpu delays
                    1 => mag % 20_000,                  // mid horizon: epoch timers
                    _ => 1_000_000 + mag % 100_000_000, // far: overflow rung
                };
                let hc = cal.schedule(delay, tag);
                let hh = heap.schedule(delay, tag);
                prop_assert_eq!(hc, hh, "handles must stay in lock-step");
                handles.push(hc);
                tag += 1;
            }
        }
        prop_assert_eq!(cal.len(), heap.len());
        prop_assert_eq!(cal.now(), heap.now());
    }
    // Drain what's left: identical order to the very end.
    loop {
        let (a, b) = (cal.pop(), heap.pop());
        prop_assert_eq!(a, b);
        if a.is_none() {
            return Ok(());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Arbitrary interleavings over the full op vocabulary drain in
    /// identical order from both implementations.
    #[test]
    fn calendar_matches_heap_reference(
        ops in proptest::collection::vec((0u8..6, 0u64..u64::MAX / 2, 0usize..1024), 1..400),
    ) {
        let mut cal = CalendarQueue::new();
        let mut heap = HeapQueue::new();
        apply(&ops, &mut cal, &mut heap)?;
    }

    /// Schedule-heavy near-horizon load forces the wheel to grow (and, with
    /// the clustered timestamps, usually the width to refine) mid-sequence;
    /// order must hold across every rebuild. Growth is *asserted*, not
    /// assumed: only wheel-resident events count toward the grow trigger,
    /// so every schedule here is near-horizon (kind 0) and pops are rare
    /// enough that the live population is guaranteed past the doubling
    /// threshold (>= 600 schedules, 1 pop per 10 ⇒ peak >= 540 > 2×256).
    #[test]
    fn resizes_preserve_drain_order(
        ops in proptest::collection::vec((0u64..u64::MAX / 2, 0usize..1024), 600..900),
    ) {
        let mut cal = CalendarQueue::new();
        let mut heap = HeapQueue::new();
        let buckets_before = cal.buckets();
        let mut script: Vec<(u8, u64, usize)> = Vec::new();
        for (i, &(mag, pick)) in ops.iter().enumerate() {
            script.push((0, mag, pick)); // near-horizon schedule
            if i % 10 == 9 {
                script.push((3, 0, 0)); // pop: exercise draining mid-growth
            }
        }
        apply(&script, &mut cal, &mut heap)?;
        prop_assert!(
            cal.buckets() > buckets_before,
            "the wheel must actually have grown (had {} buckets, still {})",
            buckets_before,
            cal.buckets()
        );
    }
}

/// Overflow-rung edge case: an event scheduled far beyond the wheel horizon
/// must survive arbitrarily many revolutions of near-term traffic and still
/// fire in exact order — including against a same-timestamp rival scheduled
/// later (insertion order breaks the tie).
#[test]
fn overflow_rung_event_far_beyond_horizon() {
    let mut cal = CalendarQueue::new();
    let mut heap = HeapQueue::new();
    let horizon = cal.bucket_width() * cal.buckets() as u64;
    let far = horizon * 1000 + 3;
    cal.schedule_at(far, 0u64);
    heap.schedule_at(far, 0u64);
    assert_eq!(cal.overflow_len(), 1, "must park on the overflow rung");
    // Hundreds of wheel revolutions of near-term churn.
    for i in 0..5_000u64 {
        cal.schedule(1 + i % 97, i + 1);
        heap.schedule(1 + i % 97, i + 1);
        assert_eq!(cal.pop(), heap.pop());
    }
    // A same-instant rival scheduled later must lose the tie.
    cal.schedule_at(far, u64::MAX);
    heap.schedule_at(far, u64::MAX);
    let mut drained = Vec::new();
    while let Some(ev) = cal.pop() {
        assert_eq!(heap.pop(), Some(ev));
        drained.push(ev);
    }
    assert_eq!(heap.pop(), None);
    let n = drained.len();
    assert_eq!(
        drained[n - 2],
        (far, 0),
        "overflow event keeps its seniority"
    );
    assert_eq!(drained[n - 1], (far, u64::MAX));
}
