//! Same-seed determinism regression: the whole simulation must be a pure
//! function of its configuration.
//!
//! Each scenario is run twice in-process (two independent `Engine`s) and the
//! [`RunReport::digest`]s must match — no per-process hasher seeds, no
//! iteration-order dependence, no allocator-address leakage. On top of that,
//! every digest is pinned to a **golden value captured before the hot-path
//! overhaul** (FxHash maps, generation-tagged txn slab, zero-copy write
//! sets), proving those swaps changed performance, not behavior.
//!
//! If a deliberate behavior change ever invalidates a golden, re-capture it
//! with `LION_PRINT_DIGESTS=1 cargo test --test determinism_digest -- --nocapture`.

use lion::baselines::two_pc;
use lion::common::{NodeId, PlacementPolicy, SimConfig, ZoneId, SECOND};
use lion::core::Lion;
use lion::engine::{Engine, EngineConfig, Protocol, RunReport};
use lion::faults::FaultPlan;
use lion::workloads::{YcsbConfig, YcsbWorkload};
use proptest::prelude::*;

fn sim() -> SimConfig {
    SimConfig {
        nodes: 3,
        partitions_per_node: 4,
        keys_per_partition: 1_000,
        value_size: 32,
        clients_per_node: 8,
        batch_size: 64,
        ..Default::default()
    }
}

fn workload(seed: u64) -> Box<YcsbWorkload> {
    Box::new(YcsbWorkload::new(
        YcsbConfig::for_cluster(3, 4, 1_000)
            .with_mix(0.6, 0.5)
            .with_seed(seed),
    ))
}

fn run(mut proto: Box<dyn Protocol>, faults: FaultPlan, horizon: u64) -> RunReport {
    let cfg = EngineConfig {
        sim: sim(),
        plan_interval_us: 300_000,
        faults,
        ..EngineConfig::default()
    };
    let mut eng = Engine::new(cfg, workload(42));
    eng.run(proto.as_mut(), horizon)
}

struct Scenario {
    name: &'static str,
    build: fn() -> Box<dyn Protocol>,
    faults: fn() -> FaultPlan,
    horizon: u64,
    golden: u64,
}

/// Golden digests captured at commit `bca1f3b` (pre-overhaul seed state).
const SCENARIOS: &[Scenario] = &[
    Scenario {
        name: "2pc-ycsb",
        build: || Box::new(two_pc()),
        faults: FaultPlan::none,
        horizon: SECOND,
        golden: 0x69715e0abe656466,
    },
    Scenario {
        name: "lion-standard-ycsb",
        build: || Box::new(Lion::standard()),
        faults: FaultPlan::none,
        horizon: SECOND,
        golden: 0x3c64e2e890e344a3,
    },
    Scenario {
        name: "lion-batch-ycsb",
        build: || Box::new(Lion::full()),
        faults: FaultPlan::none,
        horizon: SECOND,
        golden: 0x89fe08ff509c4f7c,
    },
    Scenario {
        name: "lion-crash-recover",
        build: || Box::new(Lion::standard()),
        faults: || FaultPlan::single_failure(SECOND / 4, NodeId(1), SECOND / 2),
        horizon: SECOND,
        golden: 0x846910caf3ea2f5b,
    },
];

#[test]
fn same_seed_runs_are_bit_identical_and_match_goldens() {
    let mut drift = Vec::new();
    for s in SCENARIOS {
        let a = run((s.build)(), (s.faults)(), s.horizon);
        let b = run((s.build)(), (s.faults)(), s.horizon);
        assert!(a.commits > 0, "{}: no commits", s.name);
        assert_eq!(
            a.digest(),
            b.digest(),
            "{}: two same-seed runs diverged",
            s.name
        );
        if std::env::var_os("LION_PRINT_DIGESTS").is_some() {
            eprintln!("{}: 0x{:016x}", s.name, a.digest());
        }
        if a.digest() != s.golden {
            drift.push(format!(
                "{}: digest 0x{:016x} departed from the pre-overhaul golden 0x{:016x}",
                s.name,
                a.digest(),
                s.golden
            ));
        }
    }
    assert!(
        drift.is_empty(),
        "the run's behavior changed:\n{}",
        drift.join("\n")
    );
}

/// The zone-crash scenario gets its own pinned digest (captured at this
/// PR, which introduced failure domains): a 4-node / 2-rack cluster under
/// rack-safe placement loses rack Z1 wholesale mid-run and heals later.
/// Cross-zone latency is non-zero so zone identity shows on the wire.
const ZONE_GOLDEN: u64 = 0x9537fd89d4544c40;

fn zone_sim() -> SimConfig {
    let mut s = SimConfig {
        nodes: 4,
        partitions_per_node: 3,
        keys_per_partition: 1_000,
        value_size: 32,
        clients_per_node: 8,
        batch_size: 64,
        zones: 2,
        placement: PlacementPolicy::RackSafe { min_zones: 2 },
        ..Default::default()
    };
    s.net.cross_zone_extra_us = 60;
    s
}

fn run_zone_scenario() -> RunReport {
    let cfg = EngineConfig {
        sim: zone_sim(),
        plan_interval_us: 300_000,
        faults: FaultPlan::zone_failure(SECOND / 4, ZoneId(1), SECOND / 2),
        ..EngineConfig::default()
    };
    let mut eng = Engine::new(
        cfg,
        Box::new(YcsbWorkload::new(
            YcsbConfig::for_cluster(4, 3, 1_000)
                .with_mix(0.6, 0.5)
                .with_seed(42),
        )),
    );
    let mut proto = Lion::standard();
    eng.run(&mut proto, SECOND)
}

#[test]
fn zone_crash_scenario_is_reproducible_and_pinned() {
    let a = run_zone_scenario();
    let b = run_zone_scenario();
    assert!(a.commits > 0, "zone scenario committed nothing");
    assert_eq!(a.zone_crashes, 1);
    assert_eq!(a.stalled_partitions, 0, "rack-safe leaves no stalls");
    assert_eq!(
        a.digest(),
        b.digest(),
        "zone scenario diverged under one seed"
    );
    if std::env::var_os("LION_PRINT_DIGESTS").is_some() {
        eprintln!("lion-zone-crash: 0x{:016x}", a.digest());
    }
    assert_eq!(
        a.digest(),
        ZONE_GOLDEN,
        "zone-crash digest 0x{:016x} departed from the pinned golden",
        a.digest()
    );
}

/// The epoch-group-commit crash scenario gets its own pinned digest
/// (captured at this PR, which introduced the durability subsystem): Lion
/// under a 4 ms commit epoch with a crash + recovery mid-run. Client pacing
/// changes under epoch acks (closed-loop clients wait for durability), so
/// this digest is distinct from — and pins behavior alongside — the
/// ack-at-commit goldens above, which the subsystem must leave untouched.
const EPOCH_GOLDEN: u64 = 0x1644712f1fb2376a;

fn run_epoch_scenario() -> RunReport {
    let cfg = EngineConfig {
        sim: sim(),
        plan_interval_us: 300_000,
        faults: FaultPlan::single_failure(SECOND / 4, NodeId(1), SECOND / 2),
        durability: lion::engine::DurabilityConfig::epoch(4_000),
        ..EngineConfig::default()
    };
    let mut eng = Engine::new(cfg, workload(42));
    let mut proto = Lion::standard();
    eng.run(&mut proto, SECOND)
}

#[test]
fn epoch_commit_crash_scenario_is_reproducible_and_pinned() {
    let a = run_epoch_scenario();
    let b = run_epoch_scenario();
    assert!(a.commits > 0, "epoch scenario committed nothing");
    assert_eq!(a.crashes, 1);
    assert_eq!(a.acked_then_lost, 0, "no acked commit may be lost");
    assert!(a.epochs_sealed > 0);
    assert_eq!(
        a.digest(),
        b.digest(),
        "epoch scenario diverged under one seed"
    );
    if std::env::var_os("LION_PRINT_DIGESTS").is_some() {
        eprintln!("lion-epoch-crash: 0x{:016x}", a.digest());
    }
    assert_eq!(
        a.digest(),
        EPOCH_GOLDEN,
        "epoch-commit crash digest 0x{:016x} departed from the pinned golden",
        a.digest()
    );
}

/// The honest split-brain scenario gets its own pinned digest (captured at
/// this PR, which introduced quorum fencing): a 4-node cluster at
/// replication factor 3 under epoch group commit takes a 2-v-2 cut mid-run
/// with both sides kept live, and the heal applies the shadow promotions,
/// aborts the divergent minority epochs, and retries their clients. The
/// park/fence/heal machinery must be a pure function of the seed, and the
/// six goldens above — which never opt into `split_brain` — must not move.
const SPLIT_BRAIN_GOLDEN: u64 = 0xce14a2f81c5d4bbc;

fn run_split_brain_scenario() -> RunReport {
    let cfg = EngineConfig {
        sim: SimConfig {
            nodes: 4,
            replication_factor: 3,
            max_replicas: 4,
            ..sim()
        },
        plan_interval_us: 300_000,
        faults: FaultPlan::new()
            .partition_at(SECOND / 4, vec![NodeId(2), NodeId(3)])
            .heal_at(SECOND / 2)
            .with_split_brain(),
        durability: lion::engine::DurabilityConfig::epoch(5_000).with_retry_round_trip(),
        ..EngineConfig::default()
    };
    let mut eng = Engine::new(
        cfg,
        Box::new(YcsbWorkload::new(
            YcsbConfig::for_cluster(4, 4, 1_000)
                .with_mix(0.6, 0.5)
                .with_seed(42),
        )),
    );
    let mut proto = Lion::standard();
    eng.run(&mut proto, SECOND)
}

#[test]
fn split_brain_scenario_is_reproducible_and_pinned() {
    let a = run_split_brain_scenario();
    let b = run_split_brain_scenario();
    assert!(a.commits > 0, "split-brain scenario committed nothing");
    assert_eq!(a.partitions_begun, 1);
    assert_eq!(a.partitions_healed, 1);
    assert!(a.minority_commits > 0, "minority side must stay live");
    assert_eq!(a.acked_then_lost, 0, "no acked commit may be lost");
    assert_eq!(
        a.digest(),
        b.digest(),
        "split-brain scenario diverged under one seed"
    );
    if std::env::var_os("LION_PRINT_DIGESTS").is_some() {
        eprintln!("lion-split-brain: 0x{:016x}", a.digest());
    }
    assert_eq!(
        a.digest(),
        SPLIT_BRAIN_GOLDEN,
        "split-brain digest 0x{:016x} departed from the pinned golden",
        a.digest()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Determinism holds for *arbitrary* seeds, not just the pinned ones:
    /// two engines fed the same (engine seed, workload seed, fault toggle)
    /// produce byte-identical report digests. The fault-plan arm drives the
    /// crash → abort-in-flight → failover → recovery machinery, which is
    /// where slab-slot reuse and stale-wake drops would first leak
    /// nondeterminism.
    #[test]
    fn any_seed_is_reproducible(engine_seed in 0u64..1_000_000, wl_seed in 0u64..1_000_000, fault_arm in 0u8..2) {
        let faulty = fault_arm == 1;
        let one = |_| {
            let mut sim = sim();
            sim.seed = engine_seed;
            let faults = if faulty {
                FaultPlan::single_failure(SECOND / 16, NodeId(1), SECOND / 8)
            } else {
                FaultPlan::none()
            };
            let cfg = EngineConfig {
                sim,
                plan_interval_us: 100_000,
                faults,
                ..EngineConfig::default()
            };
            let mut eng = Engine::new(cfg, workload(wl_seed));
            let mut proto = Lion::standard();
            eng.run(&mut proto, SECOND / 4).digest()
        };
        prop_assert_eq!(one(0), one(1));
    }
}
