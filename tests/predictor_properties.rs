//! Property tests on the prediction pipeline: classification totals are
//! conserved and forecasts stay finite for arbitrary arrival patterns.

use lion::common::{PartitionId, TxnRecord};
use lion::predictor::{classify_templates, Lstm, TemplateRegistry};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// However arrivals are distributed, the sum over class series equals
    /// the number of arrivals inside the classification window, and every
    /// active template lands in exactly one class.
    #[test]
    fn classification_conserves_mass(
        arrivals in proptest::collection::vec((0u64..20, 0u32..6), 1..300),
        beta in 0.01f64..1.0,
    ) {
        let sec = 1_000_000u64;
        let mut reg = TemplateRegistry::new(sec);
        let mut in_window = 0.0;
        for (t, family) in &arrivals {
            reg.observe(&TxnRecord {
                at: t * sec,
                parts: vec![PartitionId(*family), PartitionId(family + 10)],
            });
            if *t < 20 {
                in_window += 1.0;
            }
        }
        let classes = classify_templates(&reg, 20, beta, 20 * sec);
        let total: f64 = classes.iter().map(|c| c.series.iter().sum::<f64>()).sum();
        prop_assert!((total - in_window).abs() < 1e-9, "{total} vs {in_window}");
        let mut members = std::collections::HashSet::new();
        for c in &classes {
            for m in &c.members {
                prop_assert!(members.insert(*m), "template in two classes");
            }
        }
    }

    /// LSTM forecasts on arbitrary (normalized) series are always finite.
    #[test]
    fn lstm_forecasts_are_finite(
        series in proptest::collection::vec(0.0f64..1.0, 12..40),
        seed in 0u64..1000,
    ) {
        let mut net = Lstm::new(6, 2, seed);
        net.fit(&series, 8, 3, 0.01);
        for v in net.forecast(&series, 8, 4) {
            prop_assert!(v.is_finite());
        }
    }
}
