//! End-to-end failure-domain scenarios: a whole rack dies on one
//! virtual-clock tick, and the two placement policies split exactly as the
//! design predicts — LocalityFirst leaves rack-local partitions with zero
//! live replicas (they stall for the whole outage), RackSafe keeps every
//! partition promotable (zero stalls, every orphan fails over).

use lion::common::{PlacementPolicy, ZoneId};
use lion::prelude::*;

const CRASH_AT: Time = 2 * SECOND;
const HEAL_AT: Time = 4 * SECOND;
const HORIZON: Time = 6 * SECOND;
const DEAD_ZONE: ZoneId = ZoneId(1); // rack {N2, N3}

/// 4 nodes in 2 contiguous racks: Z0 = {N0, N1}, Z1 = {N2, N3}, with a
/// cross-rack latency surcharge so zone identity is visible on the wire.
fn sim(placement: PlacementPolicy) -> SimConfig {
    let mut s = SimConfig {
        nodes: 4,
        partitions_per_node: 4,
        keys_per_partition: 2_048,
        value_size: 32,
        clients_per_node: 8,
        zones: 2,
        placement,
        ..Default::default()
    };
    s.net.cross_zone_extra_us = 60;
    s
}

fn run_zone_loss(placement: PlacementPolicy) -> (Engine, RunReport) {
    let cfg = EngineConfig {
        sim: sim(placement),
        plan_interval_us: 500_000,
        faults: FaultPlan::zone_failure(CRASH_AT, DEAD_ZONE, HEAL_AT),
        ..Default::default()
    };
    let workload = Box::new(YcsbWorkload::new(
        YcsbConfig::for_cluster(4, 4, 2_048)
            .with_mix(0.5, 0.0)
            .with_seed(42),
    ));
    let mut eng = Engine::new(cfg, workload);
    let mut lion = Lion::standard();
    let report = eng.run(&mut lion, HORIZON);
    (eng, report)
}

/// The figf2 acceptance condition, rack-safe side: a single-zone crash
/// leaves every partition with a live replica — zero stalled partitions,
/// every orphaned primary promoted onto the surviving rack.
#[test]
fn rack_safe_zone_loss_leaves_every_partition_promotable() {
    let (eng, report) = run_zone_loss(PlacementPolicy::RackSafe { min_zones: 2 });
    assert_eq!(report.zone_crashes, 1);
    assert_eq!(report.crashes, 2, "both rack members died");
    assert_eq!(
        report.stalled_partitions, 0,
        "rack-safe placement must leave no partition without a live replica"
    );
    assert!(
        report.failovers >= 8,
        "every partition primaried in the dead rack promotes (got {})",
        report.failovers
    );
    // Every promotion landed on the surviving rack, with full log
    // continuity (no committed write lost).
    for f in &eng.metrics.failover_log {
        assert_eq!(eng.cluster.zone(f.to), ZoneId(0), "{}", f.part);
        assert_eq!(f.promoted_head, f.dead_head, "{}", f.part);
    }
    // Every unavailability window closed by promotion, not by the heal:
    // recovery is bounded by detection + hand-off + lag, far below the
    // 2-second outage.
    for w in &eng.metrics.unavailability {
        let until = w.until.expect("window closed");
        assert!(
            until < HEAL_AT,
            "{} waited for the heal instead of failing over",
            w.part
        );
    }
    assert!(report.commits > 1_000, "commits {}", report.commits);
    eng.cluster.check_invariants().unwrap();
}

/// …and the locality-first side: the same outage demonstrably stalls the
/// partitions whose replicas were rack-local, until the rack returns.
#[test]
fn locality_first_zone_loss_stalls_rack_local_partitions() {
    let (eng, report) = run_zone_loss(PlacementPolicy::LocalityFirst);
    assert_eq!(report.zone_crashes, 1);
    assert!(
        report.stalled_partitions > 0,
        "locality-first placement must leave rack-local partitions stranded"
    );
    // Stalled partitions could only resume once the rack healed: at least
    // one unavailability window spans (essentially) the whole outage.
    let outage = (HEAL_AT - CRASH_AT) as u128;
    let longest = eng
        .metrics
        .unavailability
        .iter()
        .map(|w| (w.until.unwrap_or(HORIZON).saturating_sub(w.from)) as u128)
        .max()
        .expect("windows recorded");
    assert!(
        longest >= outage,
        "no stall spanned the outage (longest {longest}us vs {outage}us)"
    );
    assert!(report.commits > 500, "survivors keep committing");
    eng.cluster.check_invariants().unwrap();
}

/// The correlated crash is atomic on the virtual clock: every member of the
/// rack dies at the same instant — including a failover target selected
/// moments earlier, whose promotion is re-planned (PR 1's cascade path).
#[test]
fn zone_crash_is_atomic_on_one_tick() {
    let (eng, report) = run_zone_loss(PlacementPolicy::RackSafe { min_zones: 2 });
    assert!(!eng.metrics.failover_log.is_empty());
    for f in &eng.metrics.failover_log {
        assert_eq!(
            f.crashed_at, CRASH_AT,
            "{}: crash must be simultaneous for the whole rack",
            f.part
        );
    }
    // Both members were down together (they both rejoined after the heal).
    assert_eq!(report.crashes, 2);
    assert_eq!(eng.metrics.node_recoveries, 2);
    assert!(eng.cluster.is_up(NodeId(2)) && eng.cluster.is_up(NodeId(3)));
}

/// Same seed ⇒ same correlated-failure timeline, both policies.
#[test]
fn zone_loss_runs_are_deterministic() {
    for policy in [
        PlacementPolicy::LocalityFirst,
        PlacementPolicy::RackSafe { min_zones: 2 },
    ] {
        let (_, a) = run_zone_loss(policy);
        let (_, b) = run_zone_loss(policy);
        assert_eq!(a.digest(), b.digest(), "{policy:?} diverged under one seed");
    }
}

/// Zone-aware network partition: cutting off a rack behaves like crashing
/// it (the survivors treat its members as failed) until the heal.
#[test]
fn zone_partition_isolates_and_heals_like_a_rack_loss() {
    let cfg = EngineConfig {
        sim: sim(PlacementPolicy::RackSafe { min_zones: 2 }),
        plan_interval_us: 500_000,
        faults: FaultPlan::new()
            .partition_zones_at(CRASH_AT, vec![DEAD_ZONE])
            .heal_at(HEAL_AT),
        ..Default::default()
    };
    let workload = Box::new(YcsbWorkload::new(
        YcsbConfig::for_cluster(4, 4, 2_048)
            .with_mix(0.5, 0.0)
            .with_seed(43),
    ));
    let mut eng = Engine::new(cfg, workload);
    let mut lion = Lion::standard();
    let report = eng.run(&mut lion, HORIZON);
    assert_eq!(report.crashes, 2, "both rack members isolated");
    assert_eq!(report.stalled_partitions, 0);
    assert!(report.failovers > 0);
    assert!(eng.cluster.is_up(NodeId(2)) && eng.cluster.is_up(NodeId(3)));
    assert!(report.commits > 1_000);
    eng.cluster.check_invariants().unwrap();
}
