//! End-to-end integration: every protocol runs on a real (simulated)
//! cluster, commits work, and leaves the replicated storage consistent.

use lion::prelude::*;

fn small_sim(nodes: usize) -> SimConfig {
    SimConfig {
        nodes,
        partitions_per_node: 4,
        keys_per_partition: 1024,
        value_size: 32,
        clients_per_node: 4,
        batch_size: 64,
        ..Default::default()
    }
}

fn ycsb(nodes: u32, cross: f64, skew: f64, seed: u64) -> Box<YcsbWorkload> {
    Box::new(YcsbWorkload::new(
        YcsbConfig::for_cluster(nodes, 4, 1024)
            .with_mix(cross, skew)
            .with_seed(seed),
    ))
}

/// After a run plus one final epoch flush, every secondary must hold exactly
/// the primary's state (no lost or phantom replicated writes).
fn assert_replicas_in_sync(eng: &mut Engine) {
    eng.cluster.epoch_flush_all();
    for p in 0..eng.cluster.n_partitions() {
        let part = lion::common::PartitionId(p as u32);
        let primary = eng.cluster.placement.primary_of(part);
        let head = eng
            .cluster
            .store(primary, part)
            .expect("primary store")
            .log
            .head_lsn();
        for &s in eng.cluster.placement.secondaries_of(part) {
            let store = eng.cluster.store(s, part).expect("secondary store");
            assert_eq!(store.lag_behind(head), 0, "{part} secondary on {s} lags");
        }
    }
}

fn run_end_to_end(proto: &mut dyn Protocol, cross: f64, skew: f64) -> RunReport {
    let mut eng = Engine::new(small_sim(4), ycsb(4, cross, skew, 99));
    let report = eng.run(proto, SECOND);
    assert!(
        report.commits > 50,
        "{} committed only {}",
        report.protocol,
        report.commits
    );
    eng.cluster
        .check_invariants()
        .unwrap_or_else(|e| panic!("{}: {e}", report.protocol));
    assert_replicas_in_sync(&mut eng);
    report
}

#[test]
fn two_pc_end_to_end() {
    run_end_to_end(&mut lion::baselines::two_pc(), 0.5, 0.0);
}

#[test]
fn leap_end_to_end() {
    let r = run_end_to_end(&mut lion::baselines::leap(), 0.3, 0.0);
    assert!(r.migrations > 0);
}

#[test]
fn clay_end_to_end() {
    run_end_to_end(&mut lion::baselines::clay(), 0.5, 0.7);
}

#[test]
fn lion_standard_end_to_end() {
    let r = run_end_to_end(&mut Lion::standard(), 0.8, 0.0);
    assert!(r.class_fractions[2] < 1.0);
}

#[test]
fn lion_batch_end_to_end() {
    run_end_to_end(&mut Lion::full(), 0.8, 0.0);
}

#[test]
fn star_end_to_end() {
    run_end_to_end(&mut Star::new(), 0.5, 0.0);
}

#[test]
fn calvin_end_to_end() {
    let r = run_end_to_end(&mut Calvin::new(), 0.5, 0.0);
    assert_eq!(r.aborts, 0, "deterministic locking never aborts");
}

#[test]
fn hermes_end_to_end() {
    run_end_to_end(&mut Hermes::new(), 0.5, 0.0);
}

#[test]
fn aria_end_to_end() {
    run_end_to_end(&mut Aria::new(), 0.5, 0.0);
}

#[test]
fn lotus_end_to_end() {
    run_end_to_end(&mut Lotus::new(), 0.5, 0.0);
}

#[test]
fn tpcc_runs_on_lion_and_2pc() {
    for lion_run in [true, false] {
        let wl = Box::new(TpccWorkload::new(
            TpccConfig::for_cluster(4, 4).with_mix(0.5, 0.5),
        ));
        let mut eng = Engine::new(small_sim(4), wl);
        let r = if lion_run {
            eng.run(&mut Lion::standard(), SECOND)
        } else {
            eng.run(&mut lion::baselines::two_pc(), SECOND)
        };
        assert!(r.commits > 20, "tpcc commits {}", r.commits);
        eng.cluster.check_invariants().unwrap();
        assert_replicas_in_sync(&mut eng);
    }
}

#[test]
fn runs_are_deterministic_for_a_seed() {
    let run = || {
        let mut eng = Engine::new(small_sim(2), ycsb(2, 0.5, 0.3, 7));
        let r = eng.run(&mut Lion::standard(), SECOND / 2);
        (r.commits, r.aborts, r.latency_p)
    };
    assert_eq!(run(), run(), "same seed must reproduce bit-for-bit");
}
