//! Property test for `FreqTracker`'s cached window maximum.
//!
//! PR 2 replaced the per-query rescan of the previous window with a cached
//! `previous_max`, because `normalized()` runs on every routed transaction
//! and the rescan made routing O(partitions²) per transaction. The cache is
//! only sound if it stays consistent with a naive recompute across every
//! record / window-slide interleaving — which is exactly what this checks.

use lion::cluster::FreqTracker;
use lion::common::{NodeId, PartitionId};
use proptest::prelude::*;

/// One tracker operation, drawn by proptest.
#[derive(Debug, Clone, Copy)]
enum FreqOp {
    /// `record_access(part, node)` at the given virtual time.
    Record { part: u32, node: u16, at: u64 },
    /// `roll_window()` — the planner tick that slides the window.
    Roll,
}

/// Naive model: the counts of the last complete window, recomputed from
/// scratch. `normalized` is defined directly off `max(previous)`.
#[derive(Debug, Clone)]
struct NaiveModel {
    window: Vec<u64>,
    previous: Vec<u64>,
}

impl NaiveModel {
    fn new(n: usize) -> Self {
        NaiveModel {
            window: vec![0; n],
            previous: vec![0; n],
        }
    }
    fn record(&mut self, part: usize) {
        self.window[part] += 1;
    }
    fn roll(&mut self) {
        self.previous = std::mem::take(&mut self.window);
        self.window = vec![0; self.previous.len()];
    }
    fn normalized(&self, part: usize) -> f64 {
        let max = self.previous.iter().copied().max().unwrap_or(0);
        if max == 0 {
            0.0
        } else {
            self.previous[part] as f64 / max as f64
        }
    }
}

fn op_strategy(n_parts: u32, n_nodes: u16) -> impl Strategy<Value = FreqOp> {
    // Records dominate rolls ~4:1, roughly like routed transactions dominate
    // planner ticks; the exact ratio only shapes coverage, not correctness.
    (0u8..5, 0..n_parts, 0..n_nodes, 0u64..100_000).prop_map(|(kind, part, node, at)| {
        if kind == 0 {
            FreqOp::Roll
        } else {
            FreqOp::Record { part, node, at }
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// After every operation of an arbitrary record/roll sequence, the
    /// tracker's `count` and `normalized` agree with the naive recompute —
    /// i.e. the cached `previous_max` can never go stale.
    #[test]
    fn cached_window_max_matches_naive_recompute(
        ops in proptest::collection::vec(op_strategy(6, 3), 1..120),
    ) {
        const N_PARTS: usize = 6;
        let mut tracker = FreqTracker::new(N_PARTS);
        let mut model = NaiveModel::new(N_PARTS);
        for op in &ops {
            match *op {
                FreqOp::Record { part, node, at } => {
                    tracker.record_access(PartitionId(part), NodeId(node), at);
                    model.record(part as usize);
                }
                FreqOp::Roll => {
                    tracker.roll_window();
                    model.roll();
                }
            }
            for p in 0..N_PARTS {
                let part = PartitionId(p as u32);
                prop_assert_eq!(
                    tracker.count(part),
                    model.previous[p],
                    "count diverged at op {:?}", op
                );
                let got = tracker.normalized(part);
                let want = model.normalized(p);
                prop_assert!(
                    (got - want).abs() < 1e-12,
                    "normalized({}) = {} but naive recompute says {} after {:?}",
                    part, got, want, op
                );
            }
        }
    }

    /// Rolling twice with no records in between always zeroes the window:
    /// the cached max must drop back to 0 with it (a stale-cache smoking
    /// gun if it does not).
    #[test]
    fn double_roll_resets_normalized(
        hits in proptest::collection::vec(0u32..4, 0..40),
    ) {
        let mut tracker = FreqTracker::new(4);
        for &p in &hits {
            tracker.record_access(PartitionId(p), NodeId(0), 1);
        }
        tracker.roll_window();
        tracker.roll_window();
        for p in 0..4u32 {
            prop_assert_eq!(tracker.count(PartitionId(p)), 0);
            prop_assert_eq!(tracker.normalized(PartitionId(p)), 0.0);
        }
    }
}
