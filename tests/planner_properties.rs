//! Property-based tests on the planning pipeline: arbitrary workloads and
//! placements must never violate placement invariants, and plans must be
//! idempotent once applied.

use lion::common::{PartitionId, Placement};
use lion::planner::{generate_clumps, rearrange, schism_plan, HeatGraph, PlannerConfig};
use proptest::prelude::*;

fn arb_txn(n_parts: u32) -> impl Strategy<Value = Vec<PartitionId>> {
    proptest::collection::vec(0..n_parts, 1..4).prop_map(|mut v| {
        v.sort_unstable();
        v.dedup();
        v.into_iter().map(PartitionId).collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Applying any generated plan to the placement keeps every structural
    /// invariant: one primary per partition, no duplicate replicas.
    #[test]
    fn rearrangement_preserves_placement_invariants(
        txns in proptest::collection::vec(arb_txn(12), 1..200),
        nodes in 2usize..5,
        alpha in 1.0f64..8.0,
    ) {
        let mut placement = Placement::round_robin(12, nodes, 2);
        let mut graph = HeatGraph::new(12);
        for t in &txns {
            graph.add_txn(t, 1.0, &placement, 4.0);
        }
        let cfg = PlannerConfig { alpha, ..Default::default() };
        let clumps = generate_clumps(&graph, alpha, cfg.max_clump_size);
        let freq = graph.normalized_weights();
        let plan = rearrange(clumps, &placement, &freq, &cfg, true);
        plan.apply_to(&mut placement);
        prop_assert!(placement.validate().is_ok());
    }

    /// A plan recomputed right after being applied must be (nearly) empty:
    /// the algorithm is stable at its own fixpoint.
    #[test]
    fn rearrangement_reaches_a_fixpoint(
        txns in proptest::collection::vec(arb_txn(8), 50..150),
    ) {
        let mut placement = Placement::round_robin(8, 4, 2);
        let cfg = PlannerConfig::default();
        let build = |placement: &Placement| {
            let mut graph = HeatGraph::new(8);
            for t in &txns {
                graph.add_txn(t, 1.0, placement, cfg.cross_edge_boost);
            }
            let clumps = generate_clumps(&graph, cfg.alpha, cfg.max_clump_size);
            let freq = graph.normalized_weights();
            rearrange(clumps, placement, &freq, &cfg, true)
        };
        let plan1 = build(&placement);
        plan1.apply_to(&mut placement);
        let plan2 = build(&placement);
        plan2.apply_to(&mut placement);
        let plan3 = build(&placement);
        prop_assert!(
            plan3.entries.len() <= plan2.entries.len().max(1),
            "plan sizes must not grow: {} then {}",
            plan2.entries.len(),
            plan3.entries.len()
        );
        prop_assert!(placement.validate().is_ok());
    }

    /// Schism plans only migrate and also preserve invariants.
    #[test]
    fn schism_preserves_invariants(
        txns in proptest::collection::vec(arb_txn(12), 1..150),
    ) {
        let mut placement = Placement::round_robin(12, 3, 2);
        let mut graph = HeatGraph::new(12);
        for t in &txns {
            graph.add_txn(t, 1.0, &placement, 1.0);
        }
        let plan = schism_plan(&graph, &placement, 0.3);
        for e in &plan.entries {
            prop_assert_eq!(e.action, lion::planner::PlanAction::Migrate);
        }
        plan.apply_to(&mut placement);
        prop_assert!(placement.validate().is_ok());
    }

    /// Clumps partition the accessed vertex set: disjoint and covering.
    #[test]
    fn clumps_are_disjoint_and_cover(
        txns in proptest::collection::vec(arb_txn(16), 1..100),
        alpha in 0.5f64..10.0,
        cap in 2usize..20,
    ) {
        let placement = Placement::round_robin(16, 4, 2);
        let mut graph = HeatGraph::new(16);
        for t in &txns {
            graph.add_txn(t, 1.0, &placement, 2.0);
        }
        let clumps = generate_clumps(&graph, alpha, cap);
        let mut seen = std::collections::HashSet::new();
        for c in &clumps {
            prop_assert!(c.parts.len() <= cap);
            for p in &c.parts {
                prop_assert!(seen.insert(*p), "partition {p} in two clumps");
            }
        }
        let accessed: std::collections::HashSet<PartitionId> =
            txns.iter().flatten().copied().collect();
        prop_assert_eq!(seen, accessed);
    }
}
