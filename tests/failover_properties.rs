//! Property tests for the failover building blocks: the replication log's
//! dense-prefix frontier and the promotion-target selection.

use lion::common::{NodeId, PartitionId, TxnId};
use lion::faults::{select_promotion_target, PromotionCandidate};
use lion::storage::{ReplicaStore, Table};
use proptest::prelude::*;

fn cand(node: u16, applied: u64, gap: bool) -> PromotionCandidate {
    PromotionCandidate {
        node: NodeId(node),
        applied_lsn: applied,
        has_gap: gap,
    }
}

/// Reference implementation of the selection rule: among gap-free
/// candidates, the highest applied LSN, ties to the lowest node id.
fn spec_select(cands: &[PromotionCandidate]) -> Option<NodeId> {
    cands
        .iter()
        .filter(|c| !c.has_gap)
        .map(|c| (c.applied_lsn, std::cmp::Reverse(c.node)))
        .max()
        .map(|(_, std::cmp::Reverse(node))| node)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Selection is a pure function of the candidate *set*: it matches the
    /// reference rule and is invariant under permutation (deterministic
    /// under seed — no iteration-order or tie-break ambiguity).
    #[test]
    fn selection_is_deterministic_and_order_independent(
        raw in proptest::collection::vec((0u16..8, 0u64..50, 0u8..4), 0..12),
    ) {
        let cands: Vec<PromotionCandidate> =
            raw.iter().map(|&(n, a, g)| cand(n, a, g == 0)).collect();
        let picked = select_promotion_target(&cands);
        prop_assert_eq!(picked, spec_select(&cands));
        let mut reversed = cands.clone();
        reversed.reverse();
        prop_assert_eq!(select_promotion_target(&reversed), picked);
        let mut rotated = cands.clone();
        if !rotated.is_empty() {
            rotated.rotate_left(1);
        }
        prop_assert_eq!(select_promotion_target(&rotated), picked);
    }

    /// Promotion never elects a replica whose applied-epoch prefix has a
    /// gap, no matter how fresh it claims to be.
    #[test]
    fn gapped_replicas_are_never_promoted(
        raw in proptest::collection::vec((0u16..8, 0u64..1000, 0u8..2), 1..12),
    ) {
        // Each node holds at most one replica of a partition: dedupe ids.
        let mut seen = std::collections::BTreeSet::new();
        let cands: Vec<PromotionCandidate> = raw
            .iter()
            .filter(|(n, _, _)| seen.insert(*n))
            .map(|&(n, a, g)| cand(n, a, g == 0))
            .collect();
        if let Some(node) = select_promotion_target(&cands) {
            let winner = cands.iter().find(|c| c.node == node).expect("winner in set");
            prop_assert!(!winner.has_gap, "elected a gapped replica {:?}", winner);
        } else {
            prop_assert!(cands.iter().all(|c| c.has_gap), "refused despite gap-free options");
        }
    }

    /// The replica frontier is exactly the longest dense prefix of the
    /// delivered LSNs, regardless of delivery order or duplication, and
    /// `has_gap` flags precisely the out-of-prefix leftovers. Delivering
    /// everything always converges to the primary's state.
    #[test]
    fn applied_lsn_is_the_longest_dense_prefix(
        order in proptest::collection::vec((0usize..20, 0u8..2), 1..60),
    ) {
        let part = PartitionId(0);
        let n_entries = 20u64;
        let mut primary = ReplicaStore::new_primary(part, n_entries + 1, 8);
        let mut log = Vec::new();
        for k in 0..n_entries {
            let txn = TxnId(k);
            primary.table.occ_lock(k, txn);
            let v = primary.table.occ_install(k, txn, Table::synth_value(k, 1, 8));
            primary.log.append(part, k, v, Table::synth_value(k, 1, 8));
            log = primary.log.pending().to_vec();
        }

        let mut secondary = ReplicaStore::new_secondary(part, n_entries + 1, 8);
        let mut delivered = std::collections::BTreeSet::new();
        for &(idx, dup) in &order {
            let e = &log[idx % log.len()];
            secondary.apply_entries(std::slice::from_ref(e));
            if dup == 1 {
                secondary.apply_entries(std::slice::from_ref(e)); // duplicate delivery
            }
            delivered.insert(e.lsn);

            let mut prefix = 0u64;
            while delivered.contains(&(prefix + 1)) {
                prefix += 1;
            }
            prop_assert_eq!(secondary.applied_lsn, prefix,
                "frontier must be the longest dense prefix of {:?}", delivered);
            prop_assert_eq!(secondary.has_gap(), delivered.iter().any(|&l| l > prefix),
                "gap flag wrong for {:?}", delivered);
        }

        // Deliver the rest: the secondary converges to the primary.
        secondary.apply_entries(&log);
        prop_assert_eq!(secondary.applied_lsn, primary.log.head_lsn());
        prop_assert!(!secondary.has_gap());
        for k in 0..n_entries {
            prop_assert_eq!(
                &secondary.table.get(k).unwrap().value,
                &primary.table.get(k).unwrap().value
            );
        }
    }
}
