//! Property tests for the observability pipeline (PR 6).
//!
//! Three things have to hold for the streaming-metrics design to be sound:
//!
//! 1. `Histogram::merge` must be equivalent to recording every sample into
//!    one histogram — the per-node/per-zone rollups in `DimensionedSink`
//!    are built by merging, and a merge that drifted from the ground truth
//!    would silently corrupt the dimensional percentiles.
//! 2. `RingSeries` decimation must conserve total mass, keep deterministic
//!    power-of-two bucket boundaries, and agree bucket-for-bucket with the
//!    unbounded `TimeSeries` oracle folded to the same width.
//! 3. Sink memory must be constant in run horizon: a run long enough to
//!    overflow the 1024-bucket goodput budget ends with a decimated series
//!    whose footprint is bounded and whose mass still equals `commits`.

use lion::common::{SimConfig, Time, SECOND};
use lion::engine::{Engine, EngineConfig, ObsMode, RunReport};
use lion::prelude::Lion;
use lion::sim::{Histogram, RingSeries, TimeSeries, RING_DEFAULT_BUCKETS};
use lion::workloads::{YcsbConfig, YcsbWorkload};
use proptest::prelude::*;

// ---------------------------------------------------------------------
// 1. Histogram::merge ≡ record-everything-into-one
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn histogram_merge_equals_single_histogram(
        // Several shards of samples spanning the interesting bucket regimes:
        // exact small values, linear sub-buckets, and geometric tails.
        shards in proptest::collection::vec(
            proptest::collection::vec(0u64..1u64 << 34, 0..40),
            1..6,
        ),
        q in 0.0f64..=1.0,
    ) {
        let mut merged = Histogram::new();
        let mut single = Histogram::new();
        for shard in &shards {
            let mut h = Histogram::new();
            for &v in shard {
                h.record(v);
                single.record(v);
            }
            merged.merge(&h);
        }
        prop_assert_eq!(merged.count(), single.count());
        prop_assert_eq!(merged.max(), single.max());
        prop_assert_eq!(merged.min(), single.min());
        prop_assert_eq!(merged.mean().to_bits(), single.mean().to_bits());
        // Same counts in the same buckets ⇒ identical percentile answers,
        // at every quantile, not just the headline ones.
        prop_assert_eq!(merged.quantile(q), single.quantile(q));
        for q in [0.1, 0.5, 0.95, 0.99] {
            prop_assert_eq!(merged.quantile(q), single.quantile(q));
        }
    }
}

// ---------------------------------------------------------------------
// 2. RingSeries decimation vs the TimeSeries oracle
// ---------------------------------------------------------------------

/// Folds the oracle's buckets down to `width` (a multiple of its own).
fn fold_oracle(oracle: &TimeSeries, width: Time) -> Vec<f64> {
    let fold = (width / oracle.bucket_us()) as usize;
    oracle
        .buckets()
        .chunks(fold)
        .map(|c| c.iter().sum())
        .collect()
}

proptest! {
    #[test]
    fn ring_decimation_conserves_mass_and_matches_oracle(
        adds in proptest::collection::vec((0u64..200_000, 1u64..100), 1..200),
        capacity in 2usize..32,
    ) {
        let mut ring = RingSeries::with_capacity(1_000, capacity);
        let mut oracle = TimeSeries::new(1_000);
        let mut mass = 0u64;
        for &(at, v) in &adds {
            ring.add(at, v as f64);
            oracle.add(at, v as f64);
            mass += v;
        }

        // Deterministic power-of-two boundaries: the width only ever
        // doubles, and the store never exceeds its budget.
        let factor = ring.bucket_us() / 1_000;
        prop_assert!(factor.is_power_of_two());
        prop_assert!(ring.buckets().len() <= capacity);

        // Mass conserved exactly (integral accumulators < 2^53).
        prop_assert_eq!(ring.total() as u64, mass);
        prop_assert_eq!(oracle.total() as u64, mass);

        // Bucket-for-bucket agreement with the oracle folded to the
        // decimated width (trailing all-zero oracle buckets excepted —
        // the ring never materializes buckets past its last add).
        let folded = fold_oracle(&oracle, ring.bucket_us());
        for (i, &want) in folded.iter().enumerate() {
            let got = ring.buckets().get(i).copied().unwrap_or(0.0);
            prop_assert_eq!(got, want, "bucket {} diverged", i);
        }
    }

    #[test]
    fn ring_is_deterministic_across_replays(
        adds in proptest::collection::vec((0u64..500_000, 1u64..50), 1..100),
    ) {
        // Same add sequence twice ⇒ bit-identical buckets. This is the
        // property the pinned digest goldens lean on.
        let run = |adds: &[(u64, u64)]| {
            let mut s = RingSeries::with_capacity(1_000, 8);
            for &(at, v) in adds {
                s.add(at, v as f64);
            }
            (s.bucket_us(), s.buckets().to_vec())
        };
        let (w1, b1) = run(&adds);
        let (w2, b2) = run(&adds);
        prop_assert_eq!(w1, w2);
        let bits = |b: &[f64]| b.iter().map(|v| v.to_bits()).collect::<Vec<_>>();
        prop_assert_eq!(bits(&b1), bits(&b2));
    }
}

// ---------------------------------------------------------------------
// 3. End-to-end: bounded memory, Null/Full equivalence, floor sanity
// ---------------------------------------------------------------------

fn tiny_run(horizon: Time, obs_mode: ObsMode) -> RunReport {
    let sim = SimConfig {
        nodes: 2,
        partitions_per_node: 2,
        keys_per_partition: 256,
        clients_per_node: 2,
        ..Default::default()
    };
    let cfg = EngineConfig {
        sim,
        obs_mode,
        ..Default::default()
    };
    let wl = Box::new(YcsbWorkload::new(
        YcsbConfig::for_cluster(2, 2, 256)
            .with_mix(0.2, 0.0)
            .with_seed(7),
    ));
    let mut eng = Engine::new(cfg, wl);
    let mut proto = Lion::standard();
    eng.run(&mut proto, horizon)
}

#[test]
fn long_horizon_run_keeps_series_memory_bounded() {
    // 120 virtual seconds at the 100 ms goodput resolution is 1200 raw
    // buckets — past the 1024-bucket budget, so the goodput series MUST
    // decimate. The digest-pinned figure horizons never reach this point.
    let horizon = 120 * SECOND;
    let report = tiny_run(horizon, ObsMode::Full);
    assert!(report.commits > 0);
    assert!(
        report.goodput_series.len() <= RING_DEFAULT_BUCKETS,
        "goodput series grew past its budget: {} buckets",
        report.goodput_series.len()
    );
    // Decimation happened (width doubled at least once)...
    assert!(
        report.goodput_bucket_us > 100_000,
        "expected decimation at this horizon, width still {} us",
        report.goodput_bucket_us
    );
    // ...and conserved every commit. The report stores per-second rates,
    // so scale back to raw counts by the (decimated) bucket width.
    let rate_sum: f64 = report.goodput_series.iter().sum();
    let mass = rate_sum * report.goodput_bucket_us as f64 / 1_000_000.0;
    assert_eq!(mass.round() as u64, report.commits);
}

#[test]
fn null_and_full_modes_replay_the_same_simulation() {
    let full = tiny_run(2 * SECOND, ObsMode::Full);
    let null = tiny_run(2 * SECOND, ObsMode::Null);
    // The sink must be a pure observer: disabling it cannot change what
    // the simulation does, only what gets recorded.
    assert_eq!(full.events, null.events);
    assert!(full.commits > 0);
    assert_eq!(null.commits, 0, "NullSink must record nothing");
}

#[test]
fn latency_floor_bounds_measured_p50() {
    let report = tiny_run(2 * SECOND, ObsMode::Full);
    assert!(report.latency_floor_us > 0);
    // No committed distributed transaction can beat one cross-node round
    // trip; p50 over all commits sits at or above the floor multiple 1x
    // only if every commit were single-node and instantaneous — in
    // practice the multiple is >= 1 whenever cross-node work exists.
    assert!(
        report.p50_floor_x > 0.0,
        "floor multiple should be populated on a committing run"
    );
    let json = report.to_json();
    let parsed = lion::obs::json::parse(&json).expect("export parses");
    assert_eq!(
        parsed.get("latency_floor_us").unwrap().as_num(),
        Some(report.latency_floor_us as f64)
    );
    assert!(parsed.get("zone_rollups").unwrap().as_arr().is_some());
}
