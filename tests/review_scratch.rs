//! Review scratch: does heal actually re-add dropped stale secondaries?

use lion::common::{NodeId, PartitionId, SimConfig, SECOND};
use lion::core::Lion;
use lion::engine::{DurabilityConfig, Engine, EngineConfig};
use lion::faults::FaultPlan;
use lion::workloads::{YcsbConfig, YcsbWorkload};

#[test]
fn heal_restores_replication_factor() {
    let sim = SimConfig {
        nodes: 4,
        partitions_per_node: 4,
        keys_per_partition: 1_000,
        value_size: 32,
        clients_per_node: 8,
        batch_size: 64,
        replication_factor: 3,
        max_replicas: 4,
        seed: 7,
        ..Default::default()
    };
    let workload = Box::new(YcsbWorkload::new(
        YcsbConfig::for_cluster(4, 4, 1_000)
            .with_mix(0.5, 0.3)
            .with_seed(7),
    ));
    let faults = FaultPlan::new()
        .partition_at(SECOND / 10, vec![NodeId(2), NodeId(3)])
        .heal_at(SECOND / 4)
        .with_split_brain();
    let cfg = EngineConfig {
        sim,
        durability: DurabilityConfig::epoch(1_000),
        faults,
        ..Default::default()
    };
    let mut eng = Engine::new(cfg, workload);
    let mut proto = Lion::standard();
    // Run well past the heal so background copies have time to finish.
    let _report = eng.run(&mut proto, 3 * SECOND / 5);
    let n_parts = eng.cluster.n_partitions();
    for p in 0..n_parts {
        let part = PartitionId(p as u32);
        let holders = eng.cluster.placement.replica_nodes(part);
        assert_eq!(
            holders.len(),
            3,
            "{part}: replication factor not restored after heal (holders: {holders:?})"
        );
    }
}
