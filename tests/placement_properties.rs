//! Property tests on the replica placement map: arbitrary sequences of
//! adaptor-style mutations keep the structural invariants, and remastering
//! never changes a partition's replica set.

use lion::common::{NodeId, PartitionId, Placement};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Mutation {
    Remaster { part: u32, node: u16 },
    AddSecondary { part: u32, node: u16 },
    RemoveSecondary { part: u32, node: u16 },
    MigratePrimary { part: u32, node: u16 },
}

fn arb_mutation(parts: u32, nodes: u16) -> impl Strategy<Value = Mutation> {
    (0..parts, 0..nodes, 0u8..4).prop_map(|(part, node, kind)| match kind {
        0 => Mutation::Remaster { part, node },
        1 => Mutation::AddSecondary { part, node },
        2 => Mutation::RemoveSecondary { part, node },
        _ => Mutation::MigratePrimary { part, node },
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Any mutation sequence (successful or rejected) keeps: exactly one
    /// primary per partition, no node holding two replicas of one
    /// partition, all node ids in range.
    #[test]
    fn mutations_preserve_invariants(
        muts in proptest::collection::vec(arb_mutation(8, 4), 0..100),
    ) {
        let mut pl = Placement::round_robin(8, 4, 2);
        for m in muts {
            match m {
                Mutation::Remaster { part, node } => {
                    let _ = pl.remaster(PartitionId(part), NodeId(node));
                }
                Mutation::AddSecondary { part, node } => {
                    let _ = pl.add_secondary(PartitionId(part), NodeId(node));
                }
                Mutation::RemoveSecondary { part, node } => {
                    let _ = pl.remove_secondary(PartitionId(part), NodeId(node));
                }
                Mutation::MigratePrimary { part, node } => {
                    let _ = pl.migrate_primary(PartitionId(part), NodeId(node));
                }
            }
            prop_assert!(pl.validate().is_ok());
            for p in 0..8u32 {
                prop_assert!(pl.replica_count(PartitionId(p)) >= 1);
            }
        }
    }

    /// Remastering is a pure role swap: the set of nodes holding replicas
    /// is identical before and after.
    #[test]
    fn remaster_never_moves_data(
        part in 0u32..8,
        target in 0u16..4,
        extra in proptest::collection::vec((0u32..8, 0u16..4), 0..10),
    ) {
        let mut pl = Placement::round_robin(8, 4, 2);
        for (p, n) in extra {
            let _ = pl.add_secondary(PartitionId(p), NodeId(n));
        }
        let before: std::collections::BTreeSet<NodeId> =
            pl.replica_nodes(PartitionId(part)).into_iter().collect();
        let res = pl.remaster(PartitionId(part), NodeId(target));
        let after: std::collections::BTreeSet<NodeId> =
            pl.replica_nodes(PartitionId(part)).into_iter().collect();
        prop_assert_eq!(&before, &after);
        if res.is_ok() && before.contains(&NodeId(target)) {
            prop_assert_eq!(pl.primary_of(PartitionId(part)), NodeId(target));
        }
    }
}
