//! End-to-end failover: crash a primary-holding node mid-run under YCSB and
//! check the three promises of the fault subsystem — a secondary is
//! promoted, no committed (logged) write is lost, and goodput recovers.

use lion::prelude::*;

const CRASH_AT: Time = 2 * SECOND;
const HORIZON: Time = 6 * SECOND;
const VICTIM: NodeId = NodeId(1);

fn sim() -> SimConfig {
    SimConfig {
        nodes: 4,
        partitions_per_node: 4,
        keys_per_partition: 2_048,
        value_size: 32,
        clients_per_node: 8,
        ..Default::default()
    }
}

fn run_once() -> (Engine, RunReport) {
    let cfg = EngineConfig {
        sim: sim(),
        plan_interval_us: 500_000,
        faults: FaultPlan::new().crash_at(CRASH_AT, VICTIM),
        ..Default::default()
    };
    let workload = Box::new(YcsbWorkload::new(
        YcsbConfig::for_cluster(4, 4, 2_048)
            .with_mix(0.5, 0.0)
            .with_seed(42),
    ));
    let mut eng = Engine::new(cfg, workload);
    let mut lion = Lion::standard();
    let report = eng.run(&mut lion, HORIZON);
    (eng, report)
}

#[test]
fn crash_promotes_secondaries_and_loses_nothing() {
    let (eng, report) = run_once();

    // The crash happened and every orphaned partition was failed over.
    assert_eq!(report.crashes, 1);
    assert!(
        report.failovers >= sim().partitions_per_node as u64,
        "every partition primaried on the victim fails over (got {})",
        report.failovers
    );
    assert_eq!(
        eng.cluster.placement.primaries_on(VICTIM),
        0,
        "no primary may remain on the dead node"
    );
    assert!(!eng.cluster.is_up(VICTIM));
    eng.cluster.check_invariants().unwrap();

    // Promotion chose live secondaries and adopted the full log: the
    // replication-log replay check — the promoted head equals the dead
    // primary's durability frontier, so no committed write is lost.
    for f in &eng.metrics.failover_log {
        assert_eq!(f.from, VICTIM);
        assert_ne!(f.to, VICTIM);
        assert!(eng.cluster.is_up(f.to));
        assert_eq!(
            f.promoted_head, f.dead_head,
            "{}: promoted head {} != dead head {} (lost writes)",
            f.part, f.promoted_head, f.dead_head
        );
        // The new primary's log continues from that frontier.
        let store = eng.cluster.store(f.to, f.part).expect("promoted store");
        assert!(store.log.head_lsn() >= f.dead_head);
        // The engine recorded a closed unavailability window for it.
        let w = eng
            .metrics
            .unavailability
            .iter()
            .find(|w| w.part == f.part)
            .expect("unavailability window recorded");
        assert_eq!(w.from, f.crashed_at);
        assert_eq!(w.until, Some(f.completed_at));
    }

    // Commits kept flowing after the crash.
    assert!(report.commits > 1_000, "commits {}", report.commits);
    assert!(
        report.fault_aborts > 0,
        "in-flight work on the victim aborted"
    );

    // Throughput recovers to >= 80% of the pre-crash level within the run.
    let pre: f64 = report.throughput_series[..2].iter().sum::<f64>() / 2.0;
    let post = *report.throughput_series[3..]
        .iter()
        .max_by(|a, b| a.partial_cmp(b).unwrap())
        .unwrap();
    assert!(
        post >= 0.8 * pre,
        "post-failover peak {post:.0} tps below 80% of pre-crash {pre:.0} tps"
    );
    let ramp = report
        .recovery_ramp_us(CRASH_AT, CRASH_AT, 0.8)
        .expect("goodput must return to 80% of the pre-crash baseline");
    assert!(
        ramp < HORIZON - CRASH_AT,
        "recovery ramp {ramp}us must land inside the run"
    );
}

#[test]
fn same_seed_reproduces_identical_recovery_timeline() {
    let (eng_a, ra) = run_once();
    let (eng_b, rb) = run_once();
    assert_eq!(ra.commits, rb.commits);
    assert_eq!(ra.failovers, rb.failovers);
    assert_eq!(ra.unavailability_us, rb.unavailability_us);
    assert_eq!(
        eng_a.metrics.failover_log.len(),
        eng_b.metrics.failover_log.len()
    );
    for (a, b) in eng_a
        .metrics
        .failover_log
        .iter()
        .zip(&eng_b.metrics.failover_log)
    {
        assert_eq!(a, b, "failover timelines must be identical under one seed");
    }
}

#[test]
fn stalled_partition_resumes_after_recovery() {
    // Replication factor 1: no secondaries, so a crash stalls the victim's
    // partitions until the node comes back ("protocols without a live
    // replica stall until Recover").
    let mut s = sim();
    s.replication_factor = 1;
    s.partitions_per_node = 2;
    let cfg = EngineConfig {
        sim: s,
        plan_interval_us: 500_000,
        faults: FaultPlan::single_failure(SECOND, VICTIM, 2 * SECOND),
        ..Default::default()
    };
    let workload = Box::new(YcsbWorkload::new(
        YcsbConfig::for_cluster(4, 2, 2_048)
            .with_mix(0.0, 0.0)
            .with_seed(43),
    ));
    let mut eng = Engine::new(cfg, workload);
    let report = eng.run(&mut lion::baselines::two_pc(), 4 * SECOND);

    assert_eq!(report.crashes, 1);
    assert_eq!(
        report.failovers, 0,
        "nothing to promote at replication factor 1"
    );
    assert_eq!(
        report.unavailability_windows, 2,
        "both victim partitions stalled"
    );
    // The windows close shortly after the recovery, not at the horizon.
    assert!(
        report.unavailability_us < 2 * (SECOND + 100_000) as u128,
        "stall must end at recovery (unavail {}us)",
        report.unavailability_us
    );
    assert!(eng.cluster.is_up(VICTIM));
    assert_eq!(
        eng.cluster.placement.primaries_on(VICTIM),
        2,
        "primaries restored in place"
    );
    // Work on the stalled partitions resumed: commits in the final second
    // are comparable to the first.
    let first = report.throughput_series.first().copied().unwrap_or(0.0);
    let last = report.throughput_series.last().copied().unwrap_or(0.0);
    assert!(
        last > 0.5 * first,
        "throughput after recovery ({last:.0}) too far below start ({first:.0})"
    );
    eng.cluster.check_invariants().unwrap();
}

/// Split-brain sim: 4 nodes at replication factor 3, so a `{N2, N3}` cut
/// leaves every data partition a strict replica majority on one side.
fn sb_sim() -> SimConfig {
    SimConfig {
        replication_factor: 3,
        max_replicas: 4,
        ..sim()
    }
}

fn run_split_brain(faults: FaultPlan, horizon: Time) -> (Engine, RunReport) {
    let cfg = EngineConfig {
        sim: sb_sim(),
        plan_interval_us: 500_000,
        faults,
        durability: DurabilityConfig::epoch(5_000).with_retry_round_trip(),
        ..Default::default()
    };
    let workload = Box::new(YcsbWorkload::new(
        YcsbConfig::for_cluster(4, 4, 2_048)
            .with_mix(0.5, 0.0)
            .with_seed(45),
    ));
    let mut eng = Engine::new(cfg, workload);
    let mut lion = Lion::standard();
    let report = eng.run(&mut lion, horizon);
    (eng, report)
}

/// A node dies *inside* an open split-brain window — once on each side of
/// the cut. 10 nodes at rf 3 with `{N5..N9}` isolated: N2's partitions are
/// replicated wholly on the rest side and N7's wholly on the isolated side,
/// so either crash leaves every partition a live quorum side (any other
/// victim would be rejected by `NoQuorumSide` validation). Each side must
/// fail the victim's partitions over within itself, and the heal must still
/// reconcile cleanly with two nodes down.
#[test]
fn crash_during_split_window_on_each_side() {
    let cfg = EngineConfig {
        sim: SimConfig {
            nodes: 10,
            partitions_per_node: 2,
            keys_per_partition: 1_000,
            value_size: 32,
            clients_per_node: 4,
            replication_factor: 3,
            max_replicas: 4,
            ..Default::default()
        },
        plan_interval_us: 500_000,
        faults: FaultPlan::new()
            .partition_at(SECOND, (5..10).map(NodeId).collect())
            .crash_at(SECOND + 300_000, NodeId(2))
            .crash_at(SECOND + 500_000, NodeId(7))
            .heal_at(2 * SECOND)
            .with_split_brain(),
        durability: DurabilityConfig::epoch(5_000).with_retry_round_trip(),
        ..Default::default()
    };
    let workload = Box::new(YcsbWorkload::new(
        YcsbConfig::for_cluster(10, 2, 1_000)
            .with_mix(0.5, 0.0)
            .with_seed(46),
    ));
    let mut eng = Engine::new(cfg, workload);
    let mut lion = Lion::standard();
    let report = eng.run(&mut lion, 3 * SECOND);

    assert_eq!(report.crashes, 2);
    assert_eq!(report.partitions_begun, 1);
    assert_eq!(report.partitions_healed, 1);
    assert!(
        report.failovers > 0,
        "each side promotes its crashed node's partitions within itself"
    );
    assert!(!eng.cluster.is_up(NodeId(2)));
    assert!(!eng.cluster.is_up(NodeId(7)));
    assert_eq!(
        eng.cluster.placement.primaries_on(NodeId(2))
            + eng.cluster.placement.primaries_on(NodeId(7)),
        0,
        "no primary may remain on a dead node after the heal"
    );
    assert_eq!(
        report.acked_then_lost, 0,
        "quorum fencing holds through mid-window crashes"
    );
    assert_eq!(
        eng.epoch_manager().fenced_count(),
        0,
        "no fenced ack survives the heal"
    );
    assert!(report.commits > 1_000, "commits {}", report.commits);
    eng.cluster.check_invariants().unwrap();
}

/// The heal lands 20 ms after the cut — inside the 53 ms failure-detect +
/// hand-off delay — so the quorum side's `SplitPromote` events are still in
/// flight when the window closes. The staleness guard must drop them (the
/// pre-cut primaries simply resume) and every unavailability window the cut
/// opened must be closed by the heal, not leak to the horizon.
#[test]
fn heal_races_inflight_split_promotion() {
    let plan = FaultPlan::new()
        .partition_at(SECOND, vec![NodeId(2), NodeId(3)])
        .heal_at(SECOND + 20_000)
        .with_split_brain();
    let (eng, report) = run_split_brain(plan, 3 * SECOND);

    assert_eq!(report.partitions_begun, 1);
    assert_eq!(report.partitions_healed, 1);
    assert_eq!(report.acked_then_lost, 0);
    assert_eq!(eng.epoch_manager().fenced_count(), 0);
    for w in &eng.metrics.unavailability {
        assert!(
            w.until.is_some(),
            "{}: unavailability window left open past the heal",
            w.part
        );
    }
    assert!(report.commits > 1_000, "commits {}", report.commits);
    eng.cluster.check_invariants().unwrap();
}

/// Back-to-back windows: the first cut heals 20 ms in (its promotions still
/// queued), a second cut of the same nodes opens 20 ms later, and the
/// first window's stale `SplitPromote` events fire *inside* the second
/// window — the per-window sequence number must drop them while the second
/// window's own promotions land. The final heal reconciles everything.
#[test]
fn back_to_back_partition_heal_partition() {
    let cut = vec![NodeId(2), NodeId(3)];
    let plan = FaultPlan::new()
        .partition_at(SECOND, cut.clone())
        .heal_at(SECOND + 20_000)
        .partition_at(SECOND + 40_000, cut)
        .heal_at(2 * SECOND)
        .with_split_brain();
    let (eng, report) = run_split_brain(plan, 3 * SECOND);

    assert_eq!(report.partitions_begun, 2);
    assert_eq!(report.partitions_healed, 2);
    assert_eq!(report.acked_then_lost, 0);
    assert_eq!(eng.epoch_manager().fenced_count(), 0);
    assert!(
        report.minority_commits > 0,
        "the second (full-length) window commits on the minority side"
    );
    for w in &eng.metrics.unavailability {
        assert!(
            w.until.is_some(),
            "{}: unavailability window left open past the final heal",
            w.part
        );
    }
    assert!(report.commits > 1_000, "commits {}", report.commits);
    eng.cluster.check_invariants().unwrap();
}

#[test]
fn network_partition_heals_like_recovery() {
    let cfg = EngineConfig {
        sim: sim(),
        plan_interval_us: 500_000,
        faults: FaultPlan::new()
            .partition_at(SECOND, vec![NodeId(3)])
            .heal_at(3 * SECOND),
        ..Default::default()
    };
    let workload = Box::new(YcsbWorkload::new(
        YcsbConfig::for_cluster(4, 4, 2_048)
            .with_mix(0.5, 0.0)
            .with_seed(44),
    ));
    let mut eng = Engine::new(cfg, workload);
    let mut lion = Lion::standard();
    let report = eng.run(&mut lion, 5 * SECOND);

    assert_eq!(
        report.crashes, 1,
        "isolation counts as a crash to the majority side"
    );
    assert!(report.failovers > 0, "isolated node's primaries fail over");
    assert!(eng.cluster.is_up(NodeId(3)), "heal brings the node back");
    assert!(report.commits > 1_000);
    eng.cluster.check_invariants().unwrap();
}
