//! # lion-predictor
//!
//! The workload prediction pipeline of §IV-C, built from scratch:
//!
//! * [`template`] — *template identification*: transactions accessing the
//!   same partition set share a template whose arrival-rate history
//!   (Eq. 5) is tracked per sampling interval;
//! * [`classify`] — *workload classification*: templates whose arrival-rate
//!   curves move together (cosine distance < β) merge into workload classes;
//! * [`lstm`] / [`matrix`] — a small LSTM (2 layers × 20 hidden units by
//!   default, matching §VI-A) trained on CPU with BPTT + Adam; gradient
//!   checked against numerical differentiation;
//! * [`predictor`] — *time-series prediction*: per-class forecasts, the
//!   workload-variation metric `wv(t, h)` (Eq. 6) that triggers
//!   pre-replication when it exceeds γ, and weighted reservoir sampling of
//!   the templates injected into the planner's heat graph.

pub mod arrival;
pub mod classify;
pub mod lstm;
pub mod matrix;
pub mod predictor;
pub mod template;

pub use arrival::ArrivalHistory;
pub use classify::{classify_templates, WorkloadClass};
pub use lstm::Lstm;
pub use matrix::Mat;
pub use predictor::{PredictionOutcome, PredictorConfig, WorkloadPredictor};
pub use template::{TemplateId, TemplateRegistry};
