//! Template identification (§IV-C.1).
//!
//! "Transactions accessing the same partitions receive the same label,
//! forming identical templates. Once these templates are identified, we
//! track the arrival rate history of each template instead of individual
//! queries." — the registry interns partition sets and buckets arrivals.

use crate::arrival::ArrivalHistory;
use lion_common::{FastMap, PartitionId, Time, TxnRecord};

/// Dense template identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TemplateId(pub u32);

impl TemplateId {
    /// Dense index for `Vec` addressing.
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// One identified template: a partition set and its arrival history.
#[derive(Debug, Clone)]
pub struct Template {
    /// Sorted partition set defining the template.
    pub parts: Vec<PartitionId>,
    /// Arrival-rate history (Eq. 5).
    pub history: ArrivalHistory,
}

/// Interns partition-set templates and maintains their arrival histories.
#[derive(Debug, Clone)]
pub struct TemplateRegistry {
    bucket_us: Time,
    by_parts: FastMap<Vec<PartitionId>, TemplateId>,
    templates: Vec<Template>,
}

impl TemplateRegistry {
    /// Creates a registry sampling at `bucket_us` intervals.
    pub fn new(bucket_us: Time) -> Self {
        TemplateRegistry {
            bucket_us,
            by_parts: FastMap::default(),
            templates: Vec::new(),
        }
    }

    /// Number of identified templates.
    pub fn len(&self) -> usize {
        self.templates.len()
    }

    /// True when no template has been observed.
    pub fn is_empty(&self) -> bool {
        self.templates.is_empty()
    }

    /// Records one routed transaction, interning its template.
    pub fn observe(&mut self, rec: &TxnRecord) -> TemplateId {
        let id = match self.by_parts.get(&rec.parts) {
            Some(&id) => id,
            None => {
                let id = TemplateId(self.templates.len() as u32);
                self.by_parts.insert(rec.parts.clone(), id);
                self.templates.push(Template {
                    parts: rec.parts.clone(),
                    history: ArrivalHistory::new(self.bucket_us),
                });
                id
            }
        };
        self.templates[id.idx()].history.record(rec.at);
        id
    }

    /// Records a whole batch.
    pub fn observe_all(&mut self, records: &[TxnRecord]) {
        for r in records {
            self.observe(r);
        }
    }

    /// Pads every template's history up to `now` so idle templates decay to
    /// zero rate rather than holding their last value.
    pub fn close_until(&mut self, now: Time) {
        for t in &mut self.templates {
            t.history.close_until(now);
        }
    }

    /// Template accessor.
    pub fn template(&self, id: TemplateId) -> &Template {
        &self.templates[id.idx()]
    }

    /// All template ids.
    pub fn ids(&self) -> impl Iterator<Item = TemplateId> {
        (0..self.templates.len() as u32).map(TemplateId)
    }

    /// Drops templates with fewer than `min_total` lifetime arrivals,
    /// compacting ids (memory hygiene for long runs; the paper notes
    /// per-query tracking "can be costly").
    pub fn prune(&mut self, min_total: f64) {
        let keep: Vec<Template> = self
            .templates
            .drain(..)
            .filter(|t| t.history.total() >= min_total)
            .collect();
        self.by_parts.clear();
        for (i, t) in keep.iter().enumerate() {
            self.by_parts.insert(t.parts.clone(), TemplateId(i as u32));
        }
        self.templates = keep;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(at: Time, parts: &[u32]) -> TxnRecord {
        TxnRecord {
            at,
            parts: parts.iter().map(|&p| PartitionId(p)).collect(),
        }
    }

    #[test]
    fn same_partition_set_same_template() {
        let mut reg = TemplateRegistry::new(1_000_000);
        let a = reg.observe(&rec(0, &[1, 2]));
        let b = reg.observe(&rec(500, &[1, 2]));
        let c = reg.observe(&rec(800, &[3]));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.template(a).history.total(), 2.0);
    }

    #[test]
    fn histories_bucket_by_time() {
        let mut reg = TemplateRegistry::new(1_000_000);
        reg.observe(&rec(0, &[1]));
        reg.observe(&rec(2_000_000, &[1]));
        let t = reg.template(TemplateId(0));
        assert_eq!(t.history.series(), &[1.0, 0.0, 1.0]);
    }

    #[test]
    fn close_until_pads_all_templates() {
        let mut reg = TemplateRegistry::new(1_000_000);
        reg.observe(&rec(0, &[1]));
        reg.observe(&rec(0, &[2]));
        reg.close_until(2_500_000);
        for id in reg.ids().collect::<Vec<_>>() {
            assert_eq!(reg.template(id).history.series().len(), 3);
        }
    }

    #[test]
    fn prune_drops_rare_templates_and_reindexes() {
        let mut reg = TemplateRegistry::new(1_000_000);
        for _ in 0..10 {
            reg.observe(&rec(0, &[1]));
        }
        reg.observe(&rec(0, &[2])); // rare
        reg.prune(2.0);
        assert_eq!(reg.len(), 1);
        // surviving template keeps its data under a fresh dense id
        let id = reg.observe(&rec(100, &[1]));
        assert_eq!(id, TemplateId(0));
        assert_eq!(reg.template(id).history.total(), 11.0);
    }

    #[test]
    fn observe_all_batches() {
        let mut reg = TemplateRegistry::new(1_000_000);
        reg.observe_all(&[rec(0, &[1]), rec(1, &[1]), rec(2, &[2, 3])]);
        assert_eq!(reg.len(), 2);
    }
}
