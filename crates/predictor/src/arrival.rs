//! Arrival-rate history (Eq. 5).
//!
//! `ar(t, i) = Σ_{n=t}^{t+i} f(n)`: the access-frequency curve of a query
//! template, sampled in fixed intervals. This is the input signal for both
//! workload classification (cosine similarity) and LSTM forecasting.

use lion_common::Time;

/// A bucketed arrival-rate counter.
#[derive(Debug, Clone)]
pub struct ArrivalHistory {
    bucket_us: Time,
    counts: Vec<f64>,
}

impl ArrivalHistory {
    /// Creates a history with `bucket_us`-wide sampling intervals.
    pub fn new(bucket_us: Time) -> Self {
        assert!(bucket_us > 0);
        ArrivalHistory {
            bucket_us,
            counts: Vec::new(),
        }
    }

    /// Sampling interval.
    pub fn bucket_us(&self) -> Time {
        self.bucket_us
    }

    /// Records one arrival at time `at`.
    pub fn record(&mut self, at: Time) {
        let idx = (at / self.bucket_us) as usize;
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0.0);
        }
        self.counts[idx] += 1.0;
    }

    /// Extends the history to cover time `now` with trailing zeros, so idle
    /// templates read as zero-rate rather than stale.
    pub fn close_until(&mut self, now: Time) {
        let idx = (now / self.bucket_us) as usize;
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0.0);
        }
    }

    /// All buckets.
    pub fn series(&self) -> &[f64] {
        &self.counts
    }

    /// The last `n` buckets, zero-padded on the left when shorter.
    pub fn tail(&self, n: usize) -> Vec<f64> {
        let mut out = vec![0.0; n.saturating_sub(self.counts.len())];
        let start = self.counts.len().saturating_sub(n);
        out.extend_from_slice(&self.counts[start..]);
        out
    }

    /// The `n` *complete* buckets before `now`: buckets `[end-n, end)` where
    /// `end` is the bucket containing `now` (excluded, since it is still
    /// filling). Missing buckets read as zero. This is the view every
    /// classification/forecast round uses, so a half-filled current bucket
    /// never masquerades as a rate drop.
    pub fn window_before(&self, now: Time, n: usize) -> Vec<f64> {
        let end = (now / self.bucket_us) as usize;
        let start = end.saturating_sub(n);
        let mut out = vec![0.0; n - (end - start)];
        out.extend((start..end).map(|b| self.counts.get(b).copied().unwrap_or(0.0)));
        out
    }

    /// Arrival rate of the most recent complete bucket before `now`.
    pub fn current_rate(&self, now: Time) -> f64 {
        let idx = (now / self.bucket_us) as usize;
        if idx == 0 {
            return self.counts.first().copied().unwrap_or(0.0);
        }
        self.counts.get(idx - 1).copied().unwrap_or(0.0)
    }

    /// Total arrivals recorded.
    pub fn total(&self) -> f64 {
        self.counts.iter().sum()
    }
}

/// Cosine distance `1 - cos(a, b)` between two rate vectors; 0 for parallel
/// curves (templates that "increase and decrease simultaneously", §IV-C.1),
/// 1 for orthogonal ones. Zero vectors are maximally distant from non-zero
/// vectors and identical to each other.
pub fn cosine_distance(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len().max(b.len());
    let mut dot = 0.0;
    let mut na = 0.0;
    let mut nb = 0.0;
    for i in 0..n {
        let x = a.get(i).copied().unwrap_or(0.0);
        let y = b.get(i).copied().unwrap_or(0.0);
        dot += x * y;
        na += x * x;
        nb += y * y;
    }
    if na == 0.0 && nb == 0.0 {
        return 0.0;
    }
    if na == 0.0 || nb == 0.0 {
        return 1.0;
    }
    (1.0 - dot / (na.sqrt() * nb.sqrt())).clamp(0.0, 2.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_accumulate() {
        let mut h = ArrivalHistory::new(1_000_000);
        h.record(0);
        h.record(10);
        h.record(1_500_000);
        assert_eq!(h.series(), &[2.0, 1.0]);
        assert_eq!(h.total(), 3.0);
    }

    #[test]
    fn close_until_pads_zeros() {
        let mut h = ArrivalHistory::new(1_000_000);
        h.record(0);
        h.close_until(3_500_000);
        assert_eq!(h.series(), &[1.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn tail_pads_left() {
        let mut h = ArrivalHistory::new(1_000_000);
        h.record(0);
        h.record(1_000_000);
        assert_eq!(h.tail(4), vec![0.0, 0.0, 1.0, 1.0]);
        assert_eq!(h.tail(1), vec![1.0]);
    }

    #[test]
    fn current_rate_reads_previous_bucket() {
        let mut h = ArrivalHistory::new(1_000_000);
        for _ in 0..5 {
            h.record(500_000);
        }
        assert_eq!(h.current_rate(1_200_000), 5.0);
        assert_eq!(h.current_rate(500_000), 5.0, "first bucket reads itself");
        assert_eq!(h.current_rate(9_000_000), 0.0);
    }

    #[test]
    fn cosine_distance_behaviour() {
        assert!(
            cosine_distance(&[1.0, 2.0], &[2.0, 4.0]) < 1e-12,
            "parallel"
        );
        assert!(
            (cosine_distance(&[1.0, 0.0], &[0.0, 1.0]) - 1.0).abs() < 1e-12,
            "orthogonal"
        );
        assert_eq!(
            cosine_distance(&[0.0], &[0.0]),
            0.0,
            "both idle: same class"
        );
        assert_eq!(
            cosine_distance(&[1.0], &[0.0]),
            1.0,
            "idle vs active: distant"
        );
        // different lengths are zero-padded
        assert!(cosine_distance(&[1.0, 1.0], &[1.0, 1.0, 0.0]) < 1e-12);
    }
}
