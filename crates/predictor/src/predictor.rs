//! The end-to-end workload predictor (§IV-C): template tracking →
//! classification → per-class LSTM forecasts → the `wv(t, h)` trigger
//! (Eq. 6) → weighted sampling of the templates injected into the planner's
//! heat graph.

use crate::classify::{classify_templates, WorkloadClass};
use crate::lstm::Lstm;
use crate::template::TemplateRegistry;
use lion_common::{FastMap, PartitionId, Time, TxnRecord};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// Prediction tuning knobs (§VI-A defaults).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PredictorConfig {
    /// Arrival-rate sampling interval `i` of Eq. 5.
    pub sample_interval_us: Time,
    /// History window fed to the model ("preceding ten-period historical
    /// data logs").
    pub window: usize,
    /// Prediction horizon `h` of Eq. 6, in sampling intervals.
    pub horizon: usize,
    /// Cosine-distance merge threshold β.
    pub beta: f64,
    /// Pre-replication trigger threshold γ on the normalized `wv`.
    pub gamma: f64,
    /// Number of predicted transactions `K` injected into the heat graph.
    pub k_predicted: usize,
    /// LSTM hidden units (paper: 20).
    pub hidden: usize,
    /// LSTM layers (paper: 2).
    pub layers: usize,
    /// Adam learning rate.
    pub lr: f64,
    /// Training epochs per (re)fit.
    pub train_epochs: usize,
    /// Retrain when the model's normalized MSE exceeds this threshold
    /// (the accuracy-maintenance rule of §IV-C.1).
    pub retrain_mse: f64,
    /// Only the hottest classes get a model (bounds planner CPU).
    pub max_model_classes: usize,
    /// RNG seed for sampling and model init.
    pub seed: u64,
}

impl Default for PredictorConfig {
    fn default() -> Self {
        PredictorConfig {
            sample_interval_us: 1_000_000,
            window: 10,
            horizon: 3,
            beta: 0.3,
            gamma: 0.2,
            k_predicted: 64,
            hidden: 20,
            layers: 2,
            lr: 0.01,
            train_epochs: 30,
            retrain_mse: 0.08,
            max_model_classes: 8,
            seed: 0xFACE,
        }
    }
}

/// Result of one prediction round.
#[derive(Debug, Clone)]
pub struct PredictionOutcome {
    /// The workload-variation metric `wv(t, h)` (Eq. 6), normalized to the
    /// hottest class rate so γ is scale-free.
    pub wv: f64,
    /// Whether `wv > γ`: pre-replication should run.
    pub triggered: bool,
    /// Sampled future transactions: (partition set, graph weight). Weights
    /// sum to ≈ `k_predicted` so prediction pressure is bounded.
    pub predicted: Vec<(Vec<PartitionId>, f64)>,
    /// Number of workload classes identified this round.
    pub n_classes: usize,
}

impl PredictionOutcome {
    /// An inert outcome (predictor disabled or no data).
    pub fn inactive() -> Self {
        PredictionOutcome {
            wv: 0.0,
            triggered: false,
            predicted: Vec::new(),
            n_classes: 0,
        }
    }
}

/// Per-class model cache entry.
struct ClassModel {
    net: Lstm,
    /// Normalization scale (max of the training series).
    scale: f64,
}

/// The workload predictor.
pub struct WorkloadPredictor {
    cfg: PredictorConfig,
    registry: TemplateRegistry,
    models: FastMap<u64, ClassModel>,
    rng: SmallRng,
    /// Diagnostics: total (re)train invocations.
    pub trainings: u64,
}

impl WorkloadPredictor {
    /// Creates a predictor.
    pub fn new(cfg: PredictorConfig) -> Self {
        WorkloadPredictor {
            registry: TemplateRegistry::new(cfg.sample_interval_us),
            models: FastMap::default(),
            rng: SmallRng::seed_from_u64(cfg.seed),
            cfg,
            trainings: 0,
        }
    }

    /// Configuration accessor.
    pub fn config(&self) -> &PredictorConfig {
        &self.cfg
    }

    /// Template registry accessor (diagnostics).
    pub fn registry(&self) -> &TemplateRegistry {
        &self.registry
    }

    /// Feeds a batch of routed-transaction records.
    pub fn observe(&mut self, records: &[TxnRecord]) {
        self.registry.observe_all(records);
    }

    /// Runs one prediction round at virtual time `now`.
    pub fn predict(&mut self, now: Time) -> PredictionOutcome {
        let train_len = self.cfg.window * 4;
        let mut classes = classify_templates(&self.registry, train_len, self.cfg.beta, now);
        if classes.is_empty() {
            return PredictionOutcome::inactive();
        }
        // Hottest classes first; model only the top few.
        classes.sort_by(|a, b| {
            b.window_total()
                .partial_cmp(&a.window_total())
                .expect("finite")
        });
        let modeled = classes.len().min(self.cfg.max_model_classes);

        let mut current = Vec::with_capacity(modeled);
        let mut future = Vec::with_capacity(modeled);
        for class in classes.iter().take(modeled) {
            let series = &class.series;
            let scale = series.iter().cloned().fold(0.0f64, f64::max).max(1.0);
            let norm: Vec<f64> = series.iter().map(|v| v / scale).collect();
            let key = class_key(&self.registry, class);

            let entry = self.models.entry(key);
            let model = match entry {
                std::collections::hash_map::Entry::Occupied(o) => {
                    let m = o.into_mut();
                    m.scale = scale;
                    // Accuracy maintenance: retrain when the model drifted.
                    if m.net.mse(&norm, self.cfg.window) > self.cfg.retrain_mse {
                        m.net
                            .fit(&norm, self.cfg.window, self.cfg.train_epochs, self.cfg.lr);
                        self.trainings += 1;
                    }
                    m
                }
                std::collections::hash_map::Entry::Vacant(v) => {
                    let mut net = Lstm::new(self.cfg.hidden, self.cfg.layers, self.cfg.seed ^ key);
                    net.fit(&norm, self.cfg.window, self.cfg.train_epochs, self.cfg.lr);
                    self.trainings += 1;
                    v.insert(ClassModel { net, scale })
                }
            };

            let fc = model.net.forecast(&norm, self.cfg.window, self.cfg.horizon);
            let predicted_rate = (fc.last().copied().unwrap_or(0.0) * scale).max(0.0);
            current.push(class.current_rate());
            future.push(predicted_rate);
        }

        // Eq. 6, normalized by the hottest observed/predicted rate so γ is a
        // relative threshold.
        let n = current.len() as f64;
        let peak = current
            .iter()
            .chain(future.iter())
            .cloned()
            .fold(0.0f64, f64::max)
            .max(1e-9);
        let wv = (current
            .iter()
            .zip(&future)
            .map(|(c, f)| {
                let d = (f - c) / peak;
                d * d
            })
            .sum::<f64>()
            / n)
            .sqrt();
        let triggered = wv > self.cfg.gamma;

        let predicted = if triggered {
            self.sample_templates(&classes[..modeled], &current, &future)
        } else {
            Vec::new()
        };
        PredictionOutcome {
            wv,
            triggered,
            predicted,
            n_classes: classes.len(),
        }
    }

    /// Samples templates from *rising* classes, weighted by predicted rate ×
    /// member frequency (the reservoir-sampling step of §IV-C.1), and
    /// attaches graph weights that sum to ≈ `k_predicted`.
    fn sample_templates(
        &mut self,
        classes: &[WorkloadClass],
        current: &[f64],
        future: &[f64],
    ) -> Vec<(Vec<PartitionId>, f64)> {
        let mut candidates: Vec<(usize, usize, f64)> = Vec::new(); // (class, member, weight)
        for (ci, class) in classes.iter().enumerate() {
            if future[ci] <= current[ci] {
                continue; // only pre-replicate for workloads about to rise
            }
            let member_total: f64 = class.member_weights.iter().sum::<f64>().max(1e-9);
            for (mi, &mw) in class.member_weights.iter().enumerate() {
                let w = future[ci] * (mw / member_total);
                if w > 0.0 {
                    candidates.push((ci, mi, w));
                }
            }
        }
        if candidates.is_empty() {
            return Vec::new();
        }
        // A-Res weighted reservoir: keep the k with the largest u^(1/w) keys.
        let k = self.cfg.k_predicted.min(candidates.len()).max(1);
        let mut keyed: Vec<(f64, usize)> = candidates
            .iter()
            .enumerate()
            .map(|(i, &(_, _, w))| {
                let u: f64 = self.rng.gen_range(1e-12..1.0);
                (u.powf(1.0 / w), i)
            })
            .collect();
        keyed.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite"));
        keyed.truncate(k);

        let selected_total: f64 = keyed
            .iter()
            .map(|&(_, i)| candidates[i].2)
            .sum::<f64>()
            .max(1e-9);
        let budget = self.cfg.k_predicted as f64;
        keyed
            .into_iter()
            .map(|(_, i)| {
                let (ci, mi, w) = candidates[i];
                let template = self.registry.template(classes[ci].members[mi]);
                (template.parts.clone(), budget * w / selected_total)
            })
            .collect()
    }
}

/// Stable identity of a class across rounds: hash of member partition sets.
fn class_key(registry: &TemplateRegistry, class: &WorkloadClass) -> u64 {
    let mut sets: Vec<&[PartitionId]> = class
        .members
        .iter()
        .map(|&id| registry.template(id).parts.as_slice())
        .collect();
    sets.sort();
    let mut h = DefaultHasher::new();
    for s in sets {
        s.hash(&mut h);
        0xFFu8.hash(&mut h);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    const SEC: Time = 1_000_000;

    fn cfg() -> PredictorConfig {
        PredictorConfig {
            window: 6,
            horizon: 2,
            hidden: 8,
            train_epochs: 40,
            k_predicted: 16,
            ..Default::default()
        }
    }

    fn rec(at: Time, parts: &[u32]) -> TxnRecord {
        TxnRecord {
            at,
            parts: parts.iter().map(|&p| PartitionId(p)).collect(),
        }
    }

    /// Feed a workload that oscillates between two template families with a
    /// fixed period; at the boundary the predictor should trigger and sample
    /// the family about to become hot.
    #[test]
    fn periodic_shift_triggers_pre_replication() {
        let mut pred = WorkloadPredictor::new(cfg());
        let period = 8u64; // seconds per phase
        let mut records = Vec::new();
        for sec in 0..48u64 {
            let phase = (sec / period) % 2;
            let parts: &[u32] = if phase == 0 { &[1, 2] } else { &[3, 4] };
            for k in 0..20 {
                records.push(rec(sec * SEC + k * 1000, parts));
            }
        }
        pred.observe(&records);
        // We are at t=48s: phase-0 ({1,2}) just ended 0 seconds ago; history
        // shows the alternation. Predict near a boundary.
        let out = pred.predict(48 * SEC);
        assert!(
            out.n_classes >= 2,
            "expected both families, got {}",
            out.n_classes
        );
        assert!(out.wv > 0.0);
        if out.triggered {
            assert!(!out.predicted.is_empty());
            let total_w: f64 = out.predicted.iter().map(|(_, w)| w).sum();
            assert!(total_w <= pred.cfg.k_predicted as f64 + 1e-6);
        }
    }

    #[test]
    fn steady_workload_does_not_trigger() {
        let mut pred = WorkloadPredictor::new(cfg());
        let mut records = Vec::new();
        for sec in 0..30u64 {
            for k in 0..10 {
                records.push(rec(sec * SEC + k * 1000, &[1, 2]));
            }
        }
        pred.observe(&records);
        let out = pred.predict(30 * SEC);
        assert_eq!(out.n_classes, 1);
        assert!(
            !out.triggered,
            "steady workload must not trigger pre-replication (wv={})",
            out.wv
        );
        assert!(out.predicted.is_empty());
    }

    #[test]
    fn empty_history_is_inactive() {
        let mut pred = WorkloadPredictor::new(cfg());
        let out = pred.predict(10 * SEC);
        assert_eq!(out.n_classes, 0);
        assert!(!out.triggered);
    }

    #[test]
    fn models_are_cached_between_rounds() {
        let mut pred = WorkloadPredictor::new(cfg());
        let mut records = Vec::new();
        for sec in 0..24u64 {
            for k in 0..10 {
                records.push(rec(sec * SEC + k * 1000, &[5]));
            }
        }
        pred.observe(&records);
        pred.predict(24 * SEC);
        let after_first = pred.trainings;
        assert!(after_first >= 1);
        // Same stable workload: cached model should still be accurate.
        pred.predict(24 * SEC);
        assert_eq!(pred.trainings, after_first, "no retraining when accurate");
    }

    #[test]
    fn sampled_templates_come_from_rising_classes() {
        let mut pred = WorkloadPredictor::new(PredictorConfig {
            gamma: 0.05, // easy trigger
            ..cfg()
        });
        let mut records = Vec::new();
        // template A: steadily fading; template B: steadily ramping.
        for sec in 0..24u64 {
            let a_rate = 24 - sec;
            let b_rate = sec;
            for k in 0..a_rate {
                records.push(rec(sec * SEC + k, &[1]));
            }
            for k in 0..b_rate {
                records.push(rec(sec * SEC + 500_000 + k, &[2]));
            }
        }
        pred.observe(&records);
        let out = pred.predict(24 * SEC);
        if out.triggered && !out.predicted.is_empty() {
            for (parts, _) in &out.predicted {
                assert_eq!(parts, &vec![PartitionId(2)], "only the rising template");
            }
        }
    }
}
