//! Minimal dense-matrix support for the LSTM.
//!
//! The model is tiny (≤ 20 hidden units), so naive row-major loops are both
//! clear and fast enough; no external linear-algebra crate is needed.

// Explicit index loops mirror the BPTT equations; iterator rewrites would
// obscure the row/column structure the gradient checks are written against.
#![allow(clippy::needless_range_loop)]

/// A row-major dense `f64` matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Mat {
    /// Row count.
    pub rows: usize,
    /// Column count.
    pub cols: usize,
    /// Row-major storage, `rows * cols` entries.
    pub data: Vec<f64>,
}

impl Mat {
    /// All-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Mat {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds a matrix from a function of (row, col).
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Mat { rows, cols, data }
    }

    /// Element accessor.
    #[inline]
    pub fn at(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Mutable element accessor.
    #[inline]
    pub fn at_mut(&mut self, r: usize, c: usize) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }

    /// `out += self · x` (matrix–vector product).
    pub fn matvec_add(&self, x: &[f64], out: &mut [f64]) {
        debug_assert_eq!(x.len(), self.cols);
        debug_assert_eq!(out.len(), self.rows);
        for r in 0..self.rows {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            let mut acc = 0.0;
            for (a, b) in row.iter().zip(x) {
                acc += a * b;
            }
            out[r] += acc;
        }
    }

    /// `out += selfᵀ · y` (transposed matrix–vector product, for backprop).
    pub fn matvec_t_add(&self, y: &[f64], out: &mut [f64]) {
        debug_assert_eq!(y.len(), self.rows);
        debug_assert_eq!(out.len(), self.cols);
        for r in 0..self.rows {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            let yr = y[r];
            for (o, a) in out.iter_mut().zip(row) {
                *o += yr * a;
            }
        }
    }

    /// `self += a ⊗ b` (outer-product accumulation, for gradients).
    pub fn outer_add(&mut self, a: &[f64], b: &[f64]) {
        debug_assert_eq!(a.len(), self.rows);
        debug_assert_eq!(b.len(), self.cols);
        for r in 0..self.rows {
            let ar = a[r];
            let row = &mut self.data[r * self.cols..(r + 1) * self.cols];
            for (el, bv) in row.iter_mut().zip(b) {
                *el += ar * bv;
            }
        }
    }

    /// Sets every element to zero (gradient reset between samples).
    pub fn clear(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matvec_matches_manual() {
        // [[1,2],[3,4],[5,6]] · [10, 100] = [210, 430, 650]
        let m = Mat::from_fn(3, 2, |r, c| (r * 2 + c + 1) as f64);
        let mut out = vec![0.0; 3];
        m.matvec_add(&[10.0, 100.0], &mut out);
        assert_eq!(out, vec![210.0, 430.0, 650.0]);
        // accumulation semantics
        m.matvec_add(&[10.0, 100.0], &mut out);
        assert_eq!(out, vec![420.0, 860.0, 1300.0]);
    }

    #[test]
    fn transpose_matvec_matches_manual() {
        let m = Mat::from_fn(3, 2, |r, c| (r * 2 + c + 1) as f64);
        let mut out = vec![0.0; 2];
        m.matvec_t_add(&[1.0, 1.0, 1.0], &mut out);
        assert_eq!(out, vec![1.0 + 3.0 + 5.0, 2.0 + 4.0 + 6.0]);
    }

    #[test]
    fn outer_add_accumulates() {
        let mut m = Mat::zeros(2, 3);
        m.outer_add(&[1.0, 2.0], &[10.0, 20.0, 30.0]);
        assert_eq!(m.at(0, 0), 10.0);
        assert_eq!(m.at(1, 2), 60.0);
        m.outer_add(&[1.0, 2.0], &[10.0, 20.0, 30.0]);
        assert_eq!(m.at(1, 2), 120.0);
        m.clear();
        assert_eq!(m.data, vec![0.0; 6]);
    }

    #[test]
    fn at_mut_writes_through() {
        let mut m = Mat::zeros(2, 2);
        *m.at_mut(1, 0) = 7.0;
        assert_eq!(m.at(1, 0), 7.0);
    }
}
