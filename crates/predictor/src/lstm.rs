//! A from-scratch LSTM for arrival-rate forecasting (§IV-C.1).
//!
//! The paper uses "a lightweight LSTM encoder with 2 layers and 20 hidden
//! units ... trained on the preceding ten-period historical data" on CPU.
//! This module implements exactly that: a stacked LSTM with a linear head,
//! trained sequence-to-one with backpropagation through time and Adam.
//! Gradients are verified against numerical differentiation in the tests.

// Explicit index loops mirror the BPTT equations (see `matrix.rs`).
#![allow(clippy::needless_range_loop)]

use crate::matrix::Mat;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

#[inline]
fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

/// Adam state for one parameter tensor.
#[derive(Debug, Clone)]
struct AdamTensor {
    m: Vec<f64>,
    v: Vec<f64>,
}

impl AdamTensor {
    fn new(n: usize) -> Self {
        AdamTensor {
            m: vec![0.0; n],
            v: vec![0.0; n],
        }
    }

    fn step(&mut self, params: &mut [f64], grads: &[f64], lr: f64, t: u64) {
        const B1: f64 = 0.9;
        const B2: f64 = 0.999;
        const EPS: f64 = 1e-8;
        let bc1 = 1.0 - B1.powi(t as i32);
        let bc2 = 1.0 - B2.powi(t as i32);
        for ((p, g), (m, v)) in params
            .iter_mut()
            .zip(grads)
            .zip(self.m.iter_mut().zip(self.v.iter_mut()))
        {
            *m = B1 * *m + (1.0 - B1) * g;
            *v = B2 * *v + (1.0 - B2) * g * g;
            let mh = *m / bc1;
            let vh = *v / bc2;
            *p -= lr * mh / (vh.sqrt() + EPS);
        }
    }
}

/// One LSTM layer: gates stacked as `[i, f, g, o]` rows.
#[derive(Debug, Clone)]
struct LstmLayer {
    input: usize,
    hidden: usize,
    wx: Mat,     // (4H, I)
    wh: Mat,     // (4H, H)
    b: Vec<f64>, // 4H
}

/// Per-timestep forward cache for BPTT.
#[derive(Debug, Clone)]
struct StepCache {
    x: Vec<f64>,
    h_prev: Vec<f64>,
    c_prev: Vec<f64>,
    i: Vec<f64>,
    f: Vec<f64>,
    g: Vec<f64>,
    o: Vec<f64>,
    tc: Vec<f64>, // tanh(c)
    h: Vec<f64>,
    c: Vec<f64>,
}

/// Gradients for one layer.
#[derive(Debug, Clone)]
struct LayerGrads {
    wx: Mat,
    wh: Mat,
    b: Vec<f64>,
}

/// Full-network gradients (exposed for the gradient-check tests).
#[derive(Debug, Clone)]
pub struct Grads {
    layers: Vec<LayerGrads>,
    head_w: Vec<f64>,
    head_b: f64,
}

impl LstmLayer {
    fn new(input: usize, hidden: usize, rng: &mut SmallRng) -> Self {
        let scale = 1.0 / (hidden as f64).sqrt();
        let mut init = |_r: usize, _c: usize| rng.gen_range(-scale..scale);
        let wx = Mat::from_fn(4 * hidden, input, &mut init);
        let wh = Mat::from_fn(4 * hidden, hidden, &mut init);
        let mut b = vec![0.0; 4 * hidden];
        // Forget-gate bias starts at 1.0: standard trick for gradient flow.
        for bf in b.iter_mut().take(2 * hidden).skip(hidden) {
            *bf = 1.0;
        }
        LstmLayer {
            input,
            hidden,
            wx,
            wh,
            b,
        }
    }

    fn step(&self, x: &[f64], h_prev: &[f64], c_prev: &[f64]) -> StepCache {
        let h = self.hidden;
        let mut z = self.b.clone();
        self.wx.matvec_add(x, &mut z);
        self.wh.matvec_add(h_prev, &mut z);
        let mut i = vec![0.0; h];
        let mut f = vec![0.0; h];
        let mut g = vec![0.0; h];
        let mut o = vec![0.0; h];
        for k in 0..h {
            i[k] = sigmoid(z[k]);
            f[k] = sigmoid(z[h + k]);
            g[k] = z[2 * h + k].tanh();
            o[k] = sigmoid(z[3 * h + k]);
        }
        let mut c = vec![0.0; h];
        let mut tc = vec![0.0; h];
        let mut hv = vec![0.0; h];
        for k in 0..h {
            c[k] = f[k] * c_prev[k] + i[k] * g[k];
            tc[k] = c[k].tanh();
            hv[k] = o[k] * tc[k];
        }
        StepCache {
            x: x.to_vec(),
            h_prev: h_prev.to_vec(),
            c_prev: c_prev.to_vec(),
            i,
            f,
            g,
            o,
            tc,
            h: hv,
            c,
        }
    }

    /// BPTT over the cached steps; `d_out[t]` is ∂loss/∂h_t from above.
    /// Returns gradients and ∂loss/∂x_t for the layer below.
    fn bptt(&self, steps: &[StepCache], d_out: &[Vec<f64>]) -> (LayerGrads, Vec<Vec<f64>>) {
        let h = self.hidden;
        let t_len = steps.len();
        let mut grads = LayerGrads {
            wx: Mat::zeros(4 * h, self.input),
            wh: Mat::zeros(4 * h, h),
            b: vec![0.0; 4 * h],
        };
        let mut dx_all = vec![vec![0.0; self.input]; t_len];
        let mut dh_next = vec![0.0; h];
        let mut dc_next = vec![0.0; h];
        let mut dz = vec![0.0; 4 * h];

        for t in (0..t_len).rev() {
            let s = &steps[t];
            for k in 0..h {
                let dh = d_out[t][k] + dh_next[k];
                let do_ = dh * s.tc[k];
                let dc = dh * s.o[k] * (1.0 - s.tc[k] * s.tc[k]) + dc_next[k];
                let di = dc * s.g[k];
                let df = dc * s.c_prev[k];
                let dg = dc * s.i[k];
                dc_next[k] = dc * s.f[k];
                dz[k] = di * s.i[k] * (1.0 - s.i[k]);
                dz[h + k] = df * s.f[k] * (1.0 - s.f[k]);
                dz[2 * h + k] = dg * (1.0 - s.g[k] * s.g[k]);
                dz[3 * h + k] = do_ * s.o[k] * (1.0 - s.o[k]);
            }
            grads.wx.outer_add(&dz, &s.x);
            grads.wh.outer_add(&dz, &s.h_prev);
            for (bg, d) in grads.b.iter_mut().zip(&dz) {
                *bg += d;
            }
            self.wx.matvec_t_add(&dz, &mut dx_all[t]);
            dh_next.iter_mut().for_each(|v| *v = 0.0);
            self.wh.matvec_t_add(&dz, &mut dh_next);
        }
        (grads, dx_all)
    }
}

/// A stacked LSTM with a scalar linear head: seq of scalars → next scalar.
#[derive(Debug, Clone)]
pub struct Lstm {
    layers: Vec<LstmLayer>,
    head_w: Vec<f64>,
    head_b: f64,
    adam: Vec<(AdamTensor, AdamTensor, AdamTensor)>,
    adam_head: AdamTensor,
    step_count: u64,
    rng: SmallRng,
}

/// Full forward cache.
pub struct Cache {
    per_layer: Vec<Vec<StepCache>>,
    final_h: Vec<f64>,
    pred: f64,
}

impl Lstm {
    /// Builds a network with `layers` stacked LSTM layers of `hidden` units
    /// each over scalar inputs, deterministically initialised from `seed`.
    pub fn new(hidden: usize, layers: usize, seed: u64) -> Self {
        assert!(layers >= 1 && hidden >= 1);
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut ls = Vec::with_capacity(layers);
        for l in 0..layers {
            let input = if l == 0 { 1 } else { hidden };
            ls.push(LstmLayer::new(input, hidden, &mut rng));
        }
        let scale = 1.0 / (hidden as f64).sqrt();
        let head_w: Vec<f64> = (0..hidden).map(|_| rng.gen_range(-scale..scale)).collect();
        let adam = ls
            .iter()
            .map(|l| {
                (
                    AdamTensor::new(l.wx.data.len()),
                    AdamTensor::new(l.wh.data.len()),
                    AdamTensor::new(l.b.len()),
                )
            })
            .collect();
        let adam_head = AdamTensor::new(hidden + 1);
        Lstm {
            layers: ls,
            head_w,
            head_b: 0.0,
            adam,
            adam_head,
            step_count: 0,
            rng,
        }
    }

    /// Hidden width.
    pub fn hidden(&self) -> usize {
        self.layers[0].hidden
    }

    /// Forward pass over a scalar sequence; prediction is the head output at
    /// the last step.
    pub fn forward(&self, seq: &[f64]) -> Cache {
        assert!(!seq.is_empty(), "need at least one input step");
        let h = self.hidden();
        let mut per_layer: Vec<Vec<StepCache>> = Vec::with_capacity(self.layers.len());
        let mut inputs: Vec<Vec<f64>> = seq.iter().map(|&v| vec![v]).collect();
        for layer in &self.layers {
            let mut steps = Vec::with_capacity(inputs.len());
            let mut hs = vec![0.0; h];
            let mut cs = vec![0.0; h];
            for x in &inputs {
                let s = layer.step(x, &hs, &cs);
                hs = s.h.clone();
                cs = s.c.clone();
                steps.push(s);
            }
            inputs = steps.iter().map(|s| s.h.clone()).collect();
            per_layer.push(steps);
        }
        let final_h = per_layer
            .last()
            .expect("≥1 layer")
            .last()
            .expect("≥1 step")
            .h
            .clone();
        let pred = self.head_b
            + final_h
                .iter()
                .zip(&self.head_w)
                .map(|(a, b)| a * b)
                .sum::<f64>();
        Cache {
            per_layer,
            final_h,
            pred,
        }
    }

    /// Prediction only.
    pub fn predict(&self, seq: &[f64]) -> f64 {
        self.forward(seq).pred
    }

    /// Iterative multi-step forecast: feeds each prediction back as input.
    pub fn forecast(&self, history: &[f64], window: usize, horizon: usize) -> Vec<f64> {
        let mut buf: Vec<f64> = history.to_vec();
        let mut out = Vec::with_capacity(horizon);
        for _ in 0..horizon {
            let start = buf.len().saturating_sub(window);
            let p = self.predict(&buf[start..]);
            out.push(p);
            buf.push(p);
        }
        out
    }

    /// Backward pass: `d_pred` = ∂loss/∂prediction.
    pub fn backward(&self, cache: &Cache, d_pred: f64) -> Grads {
        let t_len = cache.per_layer[0].len();
        let h = self.hidden();
        let head_w_grads: Vec<f64> = cache.final_h.iter().map(|&v| v * d_pred).collect();

        // Gradient flowing into the top layer's outputs.
        let mut d_out: Vec<Vec<f64>> = vec![vec![0.0; h]; t_len];
        for k in 0..h {
            d_out[t_len - 1][k] = self.head_w[k] * d_pred;
        }

        let mut layer_grads: Vec<Option<LayerGrads>> =
            (0..self.layers.len()).map(|_| None).collect();
        for (l, layer) in self.layers.iter().enumerate().rev() {
            let (grads, dx) = layer.bptt(&cache.per_layer[l], &d_out);
            layer_grads[l] = Some(grads);
            d_out = dx; // ∂loss/∂(layer input) == ∂loss/∂(lower layer h)
        }
        Grads {
            layers: layer_grads
                .into_iter()
                .map(|g| g.expect("filled"))
                .collect(),
            head_w: head_w_grads,
            head_b: d_pred,
        }
    }

    /// One SGD step on a single (sequence, target) pair with gradient
    /// clipping and Adam. Returns the squared error before the update.
    pub fn train_step(&mut self, seq: &[f64], target: f64, lr: f64) -> f64 {
        let cache = self.forward(seq);
        let err = cache.pred - target;
        let mut grads = self.backward(&cache, err);
        clip_grads(&mut grads, 5.0);
        self.step_count += 1;
        let t = self.step_count;
        for (l, layer) in self.layers.iter_mut().enumerate() {
            let g = &grads.layers[l];
            let (awx, awh, ab) = &mut self.adam[l];
            awx.step(&mut layer.wx.data, &g.wx.data, lr, t);
            awh.step(&mut layer.wh.data, &g.wh.data, lr, t);
            ab.step(&mut layer.b, &g.b, lr, t);
        }
        let mut head_params: Vec<f64> = self.head_w.clone();
        head_params.push(self.head_b);
        let mut head_grads = grads.head_w.clone();
        head_grads.push(grads.head_b);
        self.adam_head.step(&mut head_params, &head_grads, lr, t);
        self.head_b = head_params.pop().expect("pushed above");
        self.head_w = head_params;
        err * err
    }

    /// Trains on sliding windows over `series` for `epochs` passes and
    /// returns the mean squared error of the final epoch.
    pub fn fit(&mut self, series: &[f64], window: usize, epochs: usize, lr: f64) -> f64 {
        if series.len() <= window {
            return f64::INFINITY;
        }
        let n_pairs = series.len() - window;
        let mut order: Vec<usize> = (0..n_pairs).collect();
        let mut last_mse = f64::INFINITY;
        for _ in 0..epochs {
            // Fisher–Yates shuffle with the model's own RNG (deterministic).
            for i in (1..order.len()).rev() {
                let j = self.rng.gen_range(0..=i);
                order.swap(i, j);
            }
            let mut sum = 0.0;
            for &i in &order {
                sum += self.train_step(&series[i..i + window], series[i + window], lr);
            }
            last_mse = sum / n_pairs as f64;
        }
        last_mse
    }

    /// Evaluation MSE on sliding windows, without training.
    pub fn mse(&self, series: &[f64], window: usize) -> f64 {
        if series.len() <= window {
            return f64::INFINITY;
        }
        let n = series.len() - window;
        let mut sum = 0.0;
        for i in 0..n {
            let err = self.predict(&series[i..i + window]) - series[i + window];
            sum += err * err;
        }
        sum / n as f64
    }

    // --- Flat parameter access (gradient checks, persistence) -------------

    /// Total number of parameters.
    pub fn param_count(&self) -> usize {
        let mut n = 0;
        for l in &self.layers {
            n += l.wx.data.len() + l.wh.data.len() + l.b.len();
        }
        n + self.head_w.len() + 1
    }

    /// Reads parameter `idx` in the canonical flat order.
    pub fn param(&self, idx: usize) -> f64 {
        let mut i = idx;
        for l in &self.layers {
            for block in [&l.wx.data, &l.wh.data, &l.b] {
                if i < block.len() {
                    return block[i];
                }
                i -= block.len();
            }
        }
        if i < self.head_w.len() {
            return self.head_w[i];
        }
        self.head_b
    }

    /// Writes parameter `idx` in the canonical flat order.
    pub fn set_param(&mut self, idx: usize, v: f64) {
        let mut i = idx;
        for l in &mut self.layers {
            for block in [&mut l.wx.data, &mut l.wh.data, &mut l.b] {
                if i < block.len() {
                    block[i] = v;
                    return;
                }
                i -= block.len();
            }
        }
        if i < self.head_w.len() {
            self.head_w[i] = v;
            return;
        }
        self.head_b = v;
    }
}

impl Grads {
    /// Reads gradient `idx` in the same flat order as [`Lstm::param`].
    pub fn at(&self, idx: usize) -> f64 {
        let mut i = idx;
        for l in &self.layers {
            for block in [&l.wx.data, &l.wh.data, &l.b] {
                if i < block.len() {
                    return block[i];
                }
                i -= block.len();
            }
        }
        if i < self.head_w.len() {
            return self.head_w[i];
        }
        self.head_b
    }
}

fn clip_grads(grads: &mut Grads, max_norm: f64) {
    let mut sq = grads.head_b * grads.head_b;
    for g in &grads.head_w {
        sq += g * g;
    }
    for l in &grads.layers {
        for block in [&l.wx.data, &l.wh.data, &l.b] {
            for g in block.iter() {
                sq += g * g;
            }
        }
    }
    let norm = sq.sqrt();
    if norm <= max_norm || norm == 0.0 {
        return;
    }
    let scale = max_norm / norm;
    grads.head_b *= scale;
    grads.head_w.iter_mut().for_each(|g| *g *= scale);
    for l in &mut grads.layers {
        for block in [&mut l.wx.data, &mut l.wh.data, &mut l.b] {
            block.iter_mut().for_each(|g| *g *= scale);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// BPTT gradients must match central finite differences.
    #[test]
    fn gradient_check_against_numerical() {
        let mut net = Lstm::new(4, 2, 42);
        let seq = [0.3, -0.1, 0.7, 0.2, -0.5];
        let target = 0.4;
        let loss = |net: &Lstm| {
            let p = net.predict(&seq);
            0.5 * (p - target) * (p - target)
        };
        let cache = net.forward(&seq);
        let grads = net.backward(&cache, cache.pred - target);

        let n = net.param_count();
        // Sample a spread of parameters across all tensors.
        let eps = 1e-6;
        let mut checked = 0;
        for idx in (0..n).step_by((n / 60).max(1)) {
            let orig = net.param(idx);
            net.set_param(idx, orig + eps);
            let lp = loss(&net);
            net.set_param(idx, orig - eps);
            let lm = loss(&net);
            net.set_param(idx, orig);
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = grads.at(idx);
            let denom = numeric.abs().max(analytic.abs()).max(1e-8);
            let rel = (numeric - analytic).abs() / denom;
            assert!(
                rel < 1e-4 || (numeric - analytic).abs() < 1e-9,
                "param {idx}: numeric {numeric:.9} vs analytic {analytic:.9} (rel {rel:.2e})"
            );
            checked += 1;
        }
        assert!(checked >= 40, "checked {checked} params");
    }

    /// The network learns a noiseless sine wave far better than predicting
    /// the series mean.
    #[test]
    fn learns_sine_wave() {
        let series: Vec<f64> = (0..100).map(|i| (i as f64 * 0.3).sin()).collect();
        let mut net = Lstm::new(10, 2, 7);
        let final_mse = net.fit(&series, 10, 60, 0.01);
        let mean = series.iter().sum::<f64>() / series.len() as f64;
        let var = series.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / series.len() as f64;
        assert!(
            final_mse < var * 0.1,
            "MSE {final_mse:.4} should beat 10% of variance {var:.4}"
        );
    }

    /// Forecasting a step change: after training on a series that jumps, the
    /// model's rollout should stay near the new level.
    #[test]
    fn forecast_tracks_level() {
        let mut series = vec![0.1f64; 40];
        series.extend(vec![0.9f64; 40]);
        let mut net = Lstm::new(8, 2, 3);
        net.fit(&series, 8, 80, 0.01);
        let fc = net.forecast(&series, 8, 3);
        for (i, v) in fc.iter().enumerate() {
            assert!(
                (v - 0.9).abs() < 0.25,
                "step {i}: forecast {v:.3} far from 0.9"
            );
        }
    }

    #[test]
    fn deterministic_from_seed() {
        let a = Lstm::new(6, 2, 11).predict(&[0.5, 0.2, 0.8]);
        let b = Lstm::new(6, 2, 11).predict(&[0.5, 0.2, 0.8]);
        assert_eq!(a, b);
        let c = Lstm::new(6, 2, 12).predict(&[0.5, 0.2, 0.8]);
        assert_ne!(a, c);
    }

    #[test]
    fn param_roundtrip() {
        let mut net = Lstm::new(3, 2, 1);
        let n = net.param_count();
        assert_eq!(
            n,
            // layer0: wx 12*1, wh 12*3, b 12; layer1: wx 12*3, wh 12*3, b 12
            (12 + 36 + 12) + (36 + 36 + 12) + 3 + 1
        );
        net.set_param(0, 123.0);
        net.set_param(n - 1, -7.0);
        assert_eq!(net.param(0), 123.0);
        assert_eq!(net.param(n - 1), -7.0);
    }

    #[test]
    fn fit_on_short_series_is_inf() {
        let mut net = Lstm::new(3, 1, 1);
        assert!(net.fit(&[1.0, 2.0], 10, 5, 0.01).is_infinite());
        assert!(net.mse(&[1.0], 10).is_infinite());
    }
}
