//! Workload classification (§IV-C.1).
//!
//! "Two templates are deemed similar if their arrival rates increase and
//! decrease simultaneously, a similarity evaluated by computing the cosine
//! distance between their ar values. Templates with a calculated distance
//! below a predefined threshold β are merged into the same workload class."
//!
//! Classification is greedy and deterministic: templates are visited in id
//! order and join the first class whose *centroid* is within β, otherwise
//! they found a new class.

use crate::arrival::cosine_distance;
use crate::template::{TemplateId, TemplateRegistry};
use lion_common::Time;

/// A merged workload class: member templates plus the aggregated rate curve
/// predictions operate on.
#[derive(Debug, Clone)]
pub struct WorkloadClass {
    /// Member templates.
    pub members: Vec<TemplateId>,
    /// Sum of member arrival-rate tails (the class's `ar` curve).
    pub series: Vec<f64>,
    /// Per-member lifetime arrival totals (sampling weights, §IV-C.1
    /// reservoir sampling).
    pub member_weights: Vec<f64>,
}

impl WorkloadClass {
    /// Total arrivals across members in the classified window.
    pub fn window_total(&self) -> f64 {
        self.series.iter().sum()
    }

    /// Rate in the most recent bucket of the classified window.
    pub fn current_rate(&self) -> f64 {
        self.series.last().copied().unwrap_or(0.0)
    }
}

/// Groups templates into workload classes over the last `window` buckets.
///
/// `beta` is the cosine-distance merge threshold. Centroids are the running
/// mean of member curves, so a class's shape stays representative as it
/// grows.
pub fn classify_templates(
    registry: &TemplateRegistry,
    window: usize,
    beta: f64,
    now: Time,
) -> Vec<WorkloadClass> {
    let mut classes: Vec<WorkloadClass> = Vec::new();
    let mut centroids: Vec<Vec<f64>> = Vec::new();

    for id in registry.ids() {
        let t = registry.template(id);
        let tail = t.history.window_before(now, window);
        if tail.iter().all(|&v| v == 0.0) {
            continue; // idle template: nothing to classify this round
        }
        let mut joined = false;
        for (ci, centroid) in centroids.iter_mut().enumerate() {
            if cosine_distance(centroid, &tail) < beta {
                let class = &mut classes[ci];
                let k = class.members.len() as f64;
                for (c, v) in centroid.iter_mut().zip(&tail) {
                    *c = (*c * k + v) / (k + 1.0);
                }
                for (s, v) in class.series.iter_mut().zip(&tail) {
                    *s += v;
                }
                class.members.push(id);
                class.member_weights.push(t.history.total());
                joined = true;
                break;
            }
        }
        if !joined {
            centroids.push(tail.clone());
            classes.push(WorkloadClass {
                members: vec![id],
                series: tail,
                member_weights: vec![t.history.total()],
            });
        }
    }
    classes
}

#[cfg(test)]
mod tests {
    use super::*;
    use lion_common::{PartitionId, TxnRecord};

    fn feed(reg: &mut TemplateRegistry, parts: &[u32], times: &[u64]) {
        for &at in times {
            reg.observe(&TxnRecord {
                at,
                parts: parts.iter().map(|&p| PartitionId(p)).collect(),
            });
        }
    }

    /// Reproduces the Fig. 5b consolidation: templates active before t1 form
    /// W1; templates that ramp up after t1 form W2.
    #[test]
    fn fig5_two_workload_classes() {
        let sec = 1_000_000u64;
        let mut reg = TemplateRegistry::new(sec);
        // W1 members: active during seconds 0..4, idle after.
        for parts in [&[1u32, 2][..], &[3], &[4], &[5]] {
            feed(&mut reg, parts, &[0, sec, 2 * sec, 3 * sec]);
        }
        // W2 members: active during seconds 4..8.
        for parts in [&[3u32, 4][..], &[5, 6]] {
            feed(&mut reg, parts, &[4 * sec, 5 * sec, 6 * sec, 7 * sec]);
        }
        let classes = classify_templates(&reg, 8, 0.3, 8 * sec);
        assert_eq!(
            classes.len(),
            2,
            "expected W1 and W2, got {}",
            classes.len()
        );
        let sizes: Vec<usize> = classes.iter().map(|c| c.members.len()).collect();
        assert!(sizes.contains(&4) && sizes.contains(&2), "sizes {sizes:?}");
    }

    #[test]
    fn identical_curves_always_merge() {
        let sec = 1_000_000u64;
        let mut reg = TemplateRegistry::new(sec);
        feed(&mut reg, &[1], &[0, sec, 2 * sec]);
        feed(&mut reg, &[2], &[0, sec, 2 * sec]);
        let classes = classify_templates(&reg, 3, 0.05, 3 * sec);
        assert_eq!(classes.len(), 1);
        assert_eq!(classes[0].members.len(), 2);
        assert_eq!(
            classes[0].series,
            vec![2.0, 2.0, 2.0],
            "series sums members"
        );
    }

    #[test]
    fn idle_templates_are_skipped() {
        let sec = 1_000_000u64;
        let mut reg = TemplateRegistry::new(sec);
        feed(&mut reg, &[1], &[0]);
        feed(&mut reg, &[2], &[0]);
        // window covers only recent (idle) buckets
        let classes = classify_templates(&reg, 5, 0.3, 20 * sec);
        assert!(classes.is_empty());
    }

    #[test]
    fn beta_zero_separates_everything() {
        let sec = 1_000_000u64;
        let mut reg = TemplateRegistry::new(sec);
        feed(&mut reg, &[1], &[0, sec]);
        feed(&mut reg, &[2], &[0, 2 * sec]);
        let classes = classify_templates(&reg, 3, 1e-12, 3 * sec);
        assert_eq!(classes.len(), 2);
    }

    #[test]
    fn class_stats() {
        let sec = 1_000_000u64;
        let mut reg = TemplateRegistry::new(sec);
        feed(&mut reg, &[1], &[0, sec, sec, 2 * sec]);
        let classes = classify_templates(&reg, 3, 0.3, 3 * sec);
        assert_eq!(classes.len(), 1);
        assert_eq!(classes[0].window_total(), 4.0);
        assert_eq!(classes[0].current_rate(), 1.0);
        assert_eq!(classes[0].member_weights, vec![4.0]);
    }
}
