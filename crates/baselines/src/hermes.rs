//! Hermes (§VI-A.2): deterministic execution with prescient data migration.
//!
//! "It migrates the partition in demand before the lock manager starts to
//! get the locks. It utilizes a prescient transaction routing algorithm to
//! mitigate the 'ping-pong' effect while achieving load balance." Batches
//! are reordered so transactions over the same partitions run back-to-back
//! and reuse each other's migrations (§II-B.1); the cost is severe jitter
//! when the workload shifts and migration storms block whole partition
//! ranges (Fig. 10).

use crate::calvin::{charge_replication, execute_deterministic, RowLocks};
use crate::tags::{fresh, tag, untag};
use lion_common::{NodeId, Phase, TxnId};
use lion_engine::{Engine, Protocol};
use lion_sim::MultiServer;

const K_DONE: u8 = 1;

/// The Hermes baseline.
pub struct Hermes {
    lock_mgr: MultiServer,
    locks: RowLocks,
    /// Diagnostics: migrations requested by the prescient router.
    pub migrations_requested: u64,
}

impl Default for Hermes {
    fn default() -> Self {
        Self::new()
    }
}

impl Hermes {
    /// Builds Hermes.
    pub fn new() -> Self {
        Hermes {
            lock_mgr: MultiServer::new(1),
            locks: RowLocks::default(),
            migrations_requested: 0,
        }
    }

    /// The designated executor: the node already hosting the most primaries
    /// of the transaction (prescient routing keeps identical templates on
    /// the same executor so migrations amortize).
    fn executor_of(eng: &Engine, txn: TxnId) -> NodeId {
        let parts = &eng.txn(txn).parts;
        let mut counts = vec![0usize; eng.cluster.n_nodes()];
        for &p in parts {
            counts[eng.cluster.placement.primary_of(p).idx()] += 1;
        }
        let best = counts
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
            .map(|(n, _)| n)
            .unwrap_or(0);
        NodeId(best as u16)
    }
}

impl Protocol for Hermes {
    fn name(&self) -> &'static str {
        "Hermes"
    }

    fn batch_mode(&self) -> bool {
        true
    }

    fn on_submit(&mut self, _: &mut Engine, _: TxnId) {}

    fn on_batch(&mut self, eng: &mut Engine, batch: &[TxnId]) {
        let now = eng.now();
        self.locks = RowLocks::default();

        // Prescient reordering: group identical partition sets together so
        // consecutive transactions reuse the same migrations.
        let mut ordered: Vec<TxnId> = batch.to_vec();
        ordered.sort_by(|a, b| {
            eng.txn(*a)
                .parts
                .cmp(&eng.txn(*b).parts)
                .then(a.0.cmp(&b.0))
        });

        for t in ordered {
            eng.load_declared_sets(t);
            let executor = Self::executor_of(eng, t);

            // Demand migration: pull every non-local partition to the
            // executor before locking; waiting on an in-flight migration to
            // the same place reuses it. A migration whose source primary
            // sits across a rack boundary traverses the aggregation layer
            // on its way in — figf2-comparable pricing, zero on single-zone
            // clusters.
            let mut migration_ready = now;
            for pi in 0..eng.txn(t).parts.len() {
                let part = eng.txn(t).parts[pi];
                let source = eng.cluster.placement.primary_of(part);
                if source == executor {
                    continue;
                }
                let cross = if eng.cluster.zone(source) != eng.cluster.zone(executor) {
                    eng.cluster.cfg.net.cross_zone_extra_us
                } else {
                    0
                };
                match eng.migrate_async(part, executor) {
                    Ok(d) => {
                        self.migrations_requested += 1;
                        migration_ready = migration_ready.max(now + d + cross + 1);
                    }
                    Err(_) => {
                        // A transfer is already in flight: wait for it (plus
                        // the same cross-rack hop the initiator paid — a
                        // waiter's pull is no cheaper than the pull it
                        // reuses). If it lands elsewhere the remote-read
                        // path of the deterministic executor still
                        // completes the txn.
                        migration_ready =
                            migration_ready.max(eng.cluster.available_at(part) + cross + 1);
                    }
                }
            }
            if migration_ready > now {
                eng.charge_phase(t, Phase::Other, migration_ready - now);
            }

            // Single-threaded lock manager, deterministic order.
            let service = eng.config().sim.cpu.lock_mgr_us * eng.txn(t).req.ops.len() as u64;
            let grant = self.lock_mgr.acquire(migration_ready, service);
            eng.charge_phase(t, Phase::Scheduling, grant.end - migration_ready);
            let start = self.locks.admit(&eng.txn(t).req.ops, grant.end);
            eng.charge_phase(t, Phase::Scheduling, start - grant.end);

            let (done, _) = execute_deterministic(eng, t, start);
            self.locks.release(&eng.txn(t).req.ops, done);
            charge_replication(eng, t, done);
            let commit_cpu = eng.config().sim.cpu.install_us;
            eng.charge_phase(t, Phase::Commit, commit_cpu);
            let attempt = eng.txn(t).attempts;
            eng.wake_at(done + commit_cpu, t, tag(K_DONE, attempt, 0));
        }
    }

    fn on_wake(&mut self, eng: &mut Engine, txn: TxnId, tagv: u32) {
        let (kind, attempt, _) = untag(tagv);
        debug_assert_eq!(kind, K_DONE);
        if !fresh(attempt, eng.txn(txn).attempts) {
            return;
        }
        eng.install_unchecked(txn);
        eng.commit(txn);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lion_common::{SimConfig, SECOND};
    use lion_workloads::{YcsbConfig, YcsbWorkload};

    fn cfg() -> SimConfig {
        SimConfig {
            nodes: 4,
            partitions_per_node: 4,
            keys_per_partition: 256,
            value_size: 32,
            batch_size: 64,
            ..Default::default()
        }
    }

    #[test]
    fn hermes_migrates_to_localize_cross_txns() {
        let wl = Box::new(YcsbWorkload::new(
            YcsbConfig::for_cluster(4, 4, 256)
                .with_mix(1.0, 0.0)
                .with_seed(21),
        ));
        let mut eng = Engine::new(cfg(), wl);
        let mut proto = Hermes::new();
        let r = eng.run(&mut proto, 3 * SECOND);
        assert!(r.commits > 200, "commits {}", r.commits);
        assert!(proto.migrations_requested > 0, "demand migration must fire");
        assert!(r.migrations > 0);
        eng.cluster.check_invariants().unwrap();
        // After migrations localize the stable co-access pairs, later txns
        // run single-node: the distributed fraction must fall well below 1.
        assert!(
            r.class_fractions[2] < 0.9,
            "prescient migration should localize some txns: {:?}",
            r.class_fractions
        );
    }

    #[test]
    fn hermes_commits_everything_deterministically() {
        let wl = Box::new(YcsbWorkload::new(
            YcsbConfig::for_cluster(4, 4, 256)
                .with_mix(0.2, 0.5)
                .with_seed(22),
        ));
        let mut eng = Engine::new(cfg(), wl);
        let r = eng.run(&mut Hermes::new(), 2 * SECOND);
        assert!(r.commits > 300);
        assert_eq!(r.aborts, 0, "deterministic execution never aborts");
    }
}
