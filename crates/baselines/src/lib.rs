//! # lion-baselines
//!
//! All eight comparison systems of §VI-A.2, re-implemented on the same
//! engine and primitives as Lion (the paper's "apples-to-apples, same
//! framework" methodology):
//!
//! **Standard execution** (closed-loop):
//! * [`TwoPc`] — classic OCC + two-phase commit; never adapts placement;
//! * [`Leap`] — aggressive on-demand migration: every remote partition is
//!   pulled to the executing node before the operation runs;
//! * [`Clay`] — 2PC execution plus a periodic load monitor that migrates
//!   hot partition clumps off overloaded nodes.
//!
//! **Batch execution**:
//! * [`Star`] — full-replica "super node" + two-phase switching;
//! * [`Calvin`] — deterministic ordering via a single-threaded lock manager;
//! * [`Hermes`] — deterministic execution + prescient reordering + demand
//!   migration;
//! * [`Aria`] — optimistic parallel execution + write/read reservations;
//! * [`Lotus`] — epoch-based execution with row claims and asynchronous
//!   commit.

pub mod aria;
pub mod calvin;
pub mod clay;
pub mod hermes;
pub mod lotus;
pub mod standard;
pub mod star;
pub mod tags;

pub use aria::Aria;
pub use calvin::Calvin;
pub use clay::{clay, Clay, ClayPolicy};
pub use hermes::Hermes;
pub use lotus::Lotus;
pub use standard::{leap, two_pc, Leap, RemoteAction, Standard, StandardPolicy, TwoPc};
pub use star::Star;
