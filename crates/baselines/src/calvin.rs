//! Calvin (§VI-A.2): deterministic transaction processing.
//!
//! "It executes the same transaction batch on each replica to avoid 2PC. It
//! requires the declaration of the read/write set before transaction
//! execution. It uses a lock manager to obtain locks for each transaction in
//! the fixed order and the transaction will not be executed until all locks
//! are acquired." The experiments "deploy a single-threaded lock manager for
//! all deterministic methods" — that single thread is exactly the
//! scalability ceiling Fig. 11b shows.

use crate::tags::{fresh, tag, untag};
use lion_common::{FastMap, NodeId, OpKind, Phase, Time, TxnId};
use lion_engine::{ByteClass, Engine, MetricEvent, Protocol, TxnClass};
use lion_sim::MultiServer;

const K_DONE: u8 = 1;

/// Row-lock release times for one batch.
#[derive(Default)]
pub(crate) struct RowLocks {
    write_rel: FastMap<(u32, u64), Time>,
    read_rel: FastMap<(u32, u64), Time>,
}

impl RowLocks {
    /// Earliest start satisfying deterministic lock order for the ops.
    pub(crate) fn admit(&self, ops: &[lion_common::Op], after: Time) -> Time {
        let mut start = after;
        for op in ops {
            let k = (op.partition.0, op.key);
            match op.kind {
                OpKind::Write => {
                    start = start
                        .max(self.write_rel.get(&k).copied().unwrap_or(0))
                        .max(self.read_rel.get(&k).copied().unwrap_or(0));
                }
                OpKind::Read => {
                    start = start.max(self.write_rel.get(&k).copied().unwrap_or(0));
                }
            }
        }
        start
    }

    /// Releases the ops' locks at `done`.
    pub(crate) fn release(&mut self, ops: &[lion_common::Op], done: Time) {
        for op in ops {
            let k = (op.partition.0, op.key);
            match op.kind {
                OpKind::Write => {
                    self.write_rel.insert(k, done);
                    self.read_rel.insert(k, done);
                }
                OpKind::Read => {
                    let e = self.read_rel.entry(k).or_insert(0);
                    *e = (*e).max(done);
                }
            }
        }
    }
}

/// Per-node execution of one transaction: CPU grants at each participant
/// plus a remote-read exchange when more than one node is involved.
/// Returns `(completion, participants)`.
pub(crate) fn execute_deterministic(eng: &mut Engine, txn: TxnId, start: Time) -> (Time, usize) {
    let mut by_node: FastMap<NodeId, (usize, usize)> = FastMap::default();
    for op in &eng.txn(txn).req.ops {
        let n = eng.cluster.placement.primary_of(op.partition);
        let e = by_node.entry(n).or_insert((0, 0));
        match op.kind {
            OpKind::Read => e.0 += 1,
            OpKind::Write => e.1 += 1,
        }
    }
    let n_nodes = by_node.len();
    let mut done = start;
    let mut read_bytes = 0u32;
    let mut participants: Vec<NodeId> = Vec::with_capacity(n_nodes);
    for (node, (r, w)) in by_node {
        let cost = eng.op_cpu(r, w);
        let (_, end) = eng.cpu_grant(node, start, cost);
        done = done.max(end);
        read_bytes += r as u32 * eng.config().sim.value_size;
        participants.push(node);
    }
    if n_nodes > 1 {
        // Distributed: participants forward remote reads to each other
        // ("the necessity of remote reads ... consuming over 90% of the
        // execution time", §VI-G). The slowest pairwise exchange gates the
        // barrier — cross-zone participant pairs pay the rack surcharge.
        let surcharge = zone_surcharge(eng, &participants);
        let rtt = eng.cluster.net_delay(read_bytes) + eng.cluster.net_delay(16) + surcharge;
        eng.emit(MetricEvent::Bytes {
            at: start,
            class: ByteClass::Message,
            bytes: read_bytes as u64 + 32,
            node: None,
            zone: None,
        });
        done += rtt;
        eng.txn_mut(txn).class = TxnClass::Distributed;
    }
    eng.charge_phase(txn, Phase::Execution, done - start);
    (done, n_nodes)
}

/// Round-trip surcharge for one coordination round whose participants span
/// a rack boundary: the exchange traverses the aggregation layer both ways.
/// Zero on single-zone clusters and zone-local participant sets, so the
/// flat pricing of the paper's figures is untouched.
pub(crate) fn zone_surcharge(eng: &Engine, participants: &[NodeId]) -> Time {
    let crosses_zones = participants.split_first().is_some_and(|(first, rest)| {
        rest.iter()
            .any(|&n| eng.cluster.zone(n) != eng.cluster.zone(*first))
    });
    if crosses_zones {
        2 * eng.cluster.cfg.net.cross_zone_extra_us
    } else {
        0
    }
}

/// Round-trip of a batch-wide switching/commit barrier: the batch
/// coordinator (the lowest-id live node) must exchange a message with every
/// live node, and the farthest — possibly cross-zone — round trip gates the
/// batch. Equals `2 × net_delay(bytes)` on single-zone clusters, which is
/// exactly the flat barrier the batch protocols priced before failure
/// domains existed.
pub(crate) fn batch_barrier_rtt(eng: &Engine, bytes: u32) -> Time {
    let Some(coord) = eng.cluster.live_nodes().next() else {
        return 2 * eng.cluster.net_delay(bytes);
    };
    eng.cluster
        .live_nodes()
        .map(|n| {
            eng.cluster.net_delay_between(coord, n, bytes)
                + eng.cluster.net_delay_between(n, coord, bytes)
        })
        .max()
        .unwrap_or(0)
}

/// Charges the asynchronous replication of a transaction's writes to its
/// partitions' secondaries (bytes + replication phase time).
pub(crate) fn charge_replication(eng: &mut Engine, txn: TxnId, at: Time) {
    let mut bytes = 0u64;
    let n_writes = eng.txn(txn).write_set.len() as u64;
    for w in &eng.txn(txn).write_set {
        let n_secs = eng.cluster.placement.secondaries_of(w.part).len() as u64;
        bytes += n_secs * (eng.config().sim.value_size as u64 + 32);
    }
    if bytes > 0 {
        eng.emit(MetricEvent::Bytes {
            at,
            class: ByteClass::Replication,
            bytes,
            node: None,
            zone: None,
        });
        let apply = eng.config().sim.cpu.install_us * n_writes;
        eng.charge_phase(txn, Phase::Replication, apply);
    }
}

/// The Calvin baseline.
pub struct Calvin {
    lock_mgr: MultiServer,
    locks: RowLocks,
}

impl Default for Calvin {
    fn default() -> Self {
        Self::new()
    }
}

impl Calvin {
    /// Builds Calvin with its single-threaded lock manager.
    pub fn new() -> Self {
        Calvin {
            lock_mgr: MultiServer::new(1),
            locks: RowLocks::default(),
        }
    }
}

impl Protocol for Calvin {
    fn name(&self) -> &'static str {
        "Calvin"
    }

    fn batch_mode(&self) -> bool {
        true
    }

    fn on_submit(&mut self, _: &mut Engine, _: TxnId) {}

    fn on_batch(&mut self, eng: &mut Engine, batch: &[TxnId]) {
        let now = eng.now();
        // Previous batch fully completed: all release times are in the past.
        self.locks = RowLocks::default();
        for &t in batch {
            // Honest split-brain: the sequencing layer cannot replicate a
            // batch entry across the cut — transactions needing far-side
            // partitions park until heal.
            if !eng.txn_reachable(t) {
                eng.park_until_heal(t);
                continue;
            }
            eng.load_declared_sets(t);
            // Single-threaded lock manager grants locks in fixed order.
            let service = eng.config().sim.cpu.lock_mgr_us * eng.txn(t).req.ops.len() as u64;
            let grant = self.lock_mgr.acquire(now, service);
            eng.charge_phase(t, Phase::Scheduling, grant.end - now);
            // Deterministic lock availability.
            let start = self.locks.admit(&eng.txn(t).req.ops, grant.end);
            eng.charge_phase(t, Phase::Scheduling, start - grant.end);
            let (done, _) = execute_deterministic(eng, t, start);
            self.locks.release(&eng.txn(t).req.ops, done);
            charge_replication(eng, t, done);
            let commit_cpu = eng.config().sim.cpu.install_us;
            eng.charge_phase(t, Phase::Commit, commit_cpu);
            let attempt = eng.txn(t).attempts;
            eng.wake_at(done + commit_cpu, t, tag(K_DONE, attempt, 0));
        }
    }

    fn on_wake(&mut self, eng: &mut Engine, txn: TxnId, tagv: u32) {
        let (kind, attempt, _) = untag(tagv);
        debug_assert_eq!(kind, K_DONE);
        if !fresh(attempt, eng.txn(txn).attempts) {
            return;
        }
        eng.install_unchecked(txn);
        eng.commit(txn);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lion_common::{Op, PartitionId, SimConfig, TxnRequest, SECOND};
    use lion_workloads::{YcsbConfig, YcsbWorkload};

    fn cfg() -> SimConfig {
        SimConfig {
            nodes: 4,
            partitions_per_node: 4,
            keys_per_partition: 256,
            value_size: 32,
            batch_size: 64,
            ..Default::default()
        }
    }

    #[test]
    fn calvin_commits_whole_batches_without_aborts() {
        let wl = Box::new(YcsbWorkload::new(
            YcsbConfig::for_cluster(4, 4, 256)
                .with_mix(0.5, 0.0)
                .with_seed(7),
        ));
        let mut eng = Engine::new(cfg(), wl);
        let r = eng.run(&mut Calvin::new(), 2 * SECOND);
        assert!(r.commits > 500, "commits {}", r.commits);
        assert_eq!(r.aborts, 0, "deterministic locking never aborts");
        eng.cluster.check_invariants().unwrap();
    }

    #[test]
    fn conflicting_writes_serialize_in_batch_order() {
        let mut locks = RowLocks::default();
        let ops = vec![Op::write(PartitionId(0), 7)];
        assert_eq!(locks.admit(&ops, 100), 100);
        locks.release(&ops, 500);
        assert_eq!(locks.admit(&ops, 100), 500, "writer waits for writer");
        let read = vec![Op::read(PartitionId(0), 7)];
        assert_eq!(locks.admit(&read, 0), 500, "reader waits for writer");
        locks.release(&read, 600);
        assert_eq!(locks.admit(&ops, 0), 600, "writer waits for reader");
    }

    #[test]
    fn distributed_txns_pay_remote_reads() {
        let single = TxnRequest::new(vec![
            Op::read(PartitionId(0), 1),
            Op::write(PartitionId(0), 2),
        ]);
        let cross = TxnRequest::new(vec![
            Op::read(PartitionId(0), 1),
            Op::write(PartitionId(1), 2),
        ]);
        let mk = move |req: TxnRequest| {
            let mut toggle = false;
            let wl = Box::new(move |_now| {
                toggle = !toggle;
                req.clone()
            });
            let mut eng = Engine::new(cfg(), wl);
            let r = eng.run(&mut Calvin::new(), SECOND);
            r.latency_p[1]
        };
        let p50_single = mk(single);
        let p50_cross = mk(cross);
        assert!(
            p50_cross > p50_single + 50,
            "cross p50 {p50_cross} should exceed single p50 {p50_single} by the read RTT"
        );
    }
}
