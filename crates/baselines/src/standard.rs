//! The shared standard-execution machine: route → execute partition groups →
//! local commit or 2PC (the flow of Fig. 1), parameterized by a
//! [`StandardPolicy`] that decides routing and what to do about remote
//! partitions. [`TwoPc`], [`crate::Leap`]-via-policy and [`crate::Clay`] are
//! thin policies over this machine.

use crate::tags::{fresh, tag, untag};
use lion_common::{NodeId, PartitionId, Phase, TxnId};
use lion_engine::{Engine, FaultNotice, OpFail, Protocol, TickKind, TxnClass};

/// What to do with a partition group whose primary is not at the executor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RemoteAction {
    /// Execute remotely and commit with 2PC (the classic path).
    TwoPc,
    /// Migrate the partition to the executor first (Leap's aggressive
    /// strategy), then execute locally.
    Migrate,
}

/// Routing + remote-partition policy of a standard-execution protocol.
pub trait StandardPolicy {
    /// Legend name.
    fn name(&self) -> &'static str;
    /// Chooses the executor/coordinator node.
    fn route(&mut self, eng: &Engine, txn: TxnId) -> NodeId;
    /// Decides the remote-partition mechanism.
    fn remote_action(&mut self, eng: &mut Engine, txn: TxnId, part: PartitionId) -> RemoteAction;
    /// Periodic hook (Clay's load monitor).
    fn on_tick(&mut self, _eng: &mut Engine, _kind: TickKind) {}
    /// Topology-change hook (crash / recovery / failover completion).
    fn on_fault(&mut self, _eng: &mut Engine, _notice: &FaultNotice) {}
}

/// Continuation kinds.
const K_ROUTED: u8 = 1;
/// Local group CPU done (idx 0) or remote group response (idx 1).
const K_GROUP: u8 = 2;
/// Slept on a blocked partition; retry the current group.
const K_BLOCKED: u8 = 3;
/// Prepare branch response (idx = participant index, 0xFFFF = coordinator).
const K_PREP: u8 = 4;
/// Prepare-log replication finished at a participant branch.
const K_PREP_REPL: u8 = 5;
/// Local single-node commit CPU done.
const K_LOC_COMMIT: u8 = 6;
/// Distributed commit install CPU done.
const K_COMMIT: u8 = 7;

const COORD_IDX: u16 = 0xFFFF;

/// The standard-execution protocol frame.
pub struct Standard<P: StandardPolicy> {
    policy: P,
}

impl<P: StandardPolicy> Standard<P> {
    /// Wraps a policy.
    pub fn new(policy: P) -> Self {
        Standard { policy }
    }

    /// Access to the policy (tests).
    pub fn policy(&self) -> &P {
        &self.policy
    }

    fn t(&self, eng: &Engine, txn: TxnId, kind: u8, idx: u16) -> u32 {
        tag(kind, eng.txn(txn).attempts, idx)
    }

    /// Advances to the current partition group (ctx.step) or the commit
    /// phase when all groups are done.
    fn process_group(&mut self, eng: &mut Engine, txn: TxnId) {
        // Honest split-brain: a transaction whose home side is cut off from
        // some partition it needs parks until reachability returns instead
        // of spinning retries against the cut.
        if !eng.txn_reachable(txn) {
            return eng.park_until_heal(txn);
        }
        let gi = eng.txn(txn).step as usize;
        if gi >= eng.txn(txn).n_groups() {
            return self.begin_commit(eng, txn);
        }
        let part = eng.txn(txn).group_part(gi);
        let now = eng.now();

        // A partition mid-remaster/migration blocks operations (§III).
        let avail = eng.cluster.available_at(part);
        if avail > now {
            let t = self.t(eng, txn, K_BLOCKED, 0);
            eng.sleep(avail - now + 1, Phase::Other, txn, t);
            return;
        }

        let home = eng.txn(txn).home;
        let primary = eng.cluster.placement.primary_of(part);
        if primary == home {
            // Local group: execute now, then occupy a worker for the cost.
            // Index walk over the precomputed group — no per-wake clone.
            for i in 0..eng.txn(txn).group_ops(gi).len() {
                let op = eng.txn(txn).group_ops(gi)[i];
                match eng.exec_op_at(home, txn, op) {
                    Ok(()) => {}
                    Err(OpFail::Locked) => return eng.abort_retry(txn),
                    Err(_) => {
                        // Placement/blocking raced: retry the group shortly.
                        let t = self.t(eng, txn, K_BLOCKED, 0);
                        return eng.sleep(10, Phase::Other, txn, t);
                    }
                }
            }
            let (reads, writes) = eng.txn(txn).group_reads_writes(gi);
            let mut cost = eng.op_cpu(reads, writes);
            if gi == 0 {
                cost += eng.config().sim.cpu.txn_overhead_us;
            }
            let t = self.t(eng, txn, K_GROUP, 0);
            eng.cpu(home, Phase::Execution, cost, txn, t);
        } else {
            match self.policy.remote_action(eng, txn, part) {
                RemoteAction::TwoPc => {
                    eng.txn_mut(txn).class = TxnClass::Distributed;
                    if !eng.txn(txn).participants.contains(&primary) {
                        eng.txn_mut(txn).participants.push(primary);
                    }
                    let (reads, writes) = eng.txn(txn).group_reads_writes(gi);
                    let req = 24 * (reads + writes) as u32;
                    let resp = 16 + (reads as u32) * eng.config().sim.value_size;
                    let cpu = eng.op_cpu(reads, writes) + eng.config().sim.cpu.msg_handle_us;
                    let t = self.t(eng, txn, K_GROUP, 1);
                    let home = eng.txn(txn).home;
                    eng.remote_round(home, primary, req, resp, cpu, Phase::Execution, txn, t);
                }
                RemoteAction::Migrate => {
                    // Leap: pull the partition home, blocking until the move
                    // lands, then retry the group locally.
                    eng.txn_mut(txn).class = TxnClass::Distributed;
                    let wait = match eng.migrate_async(part, home) {
                        Ok(d) => d + 1,
                        // Another migration in flight: wait it out and
                        // re-examine (ping-pong emerges here).
                        Err(_) => eng.cluster.available_at(part).saturating_sub(now).max(100) + 1,
                    };
                    let t = self.t(eng, txn, K_BLOCKED, 0);
                    eng.sleep(wait, Phase::Other, txn, t);
                }
            }
        }
    }

    fn finish_group(&mut self, eng: &mut Engine, txn: TxnId, remote: bool) {
        if remote {
            // The response returned: execute the ops against the (current)
            // remote primary. Placement may have moved — retry if so.
            let gi = eng.txn(txn).step as usize;
            let part = eng.txn(txn).group_part(gi);
            let primary = eng.cluster.placement.primary_of(part);
            for i in 0..eng.txn(txn).group_ops(gi).len() {
                let op = eng.txn(txn).group_ops(gi)[i];
                match eng.exec_op_at(primary, txn, op) {
                    Ok(()) => {}
                    Err(OpFail::Locked) => return eng.abort_retry(txn),
                    Err(_) => {
                        let t = self.t(eng, txn, K_BLOCKED, 0);
                        return eng.sleep(10, Phase::Other, txn, t);
                    }
                }
            }
        }
        eng.txn_mut(txn).step += 1;
        self.process_group(eng, txn);
    }

    fn begin_commit(&mut self, eng: &mut Engine, txn: TxnId) {
        let home = eng.txn(txn).home;
        let c = eng.config().sim.cpu;
        if eng.txn(txn).participants.is_empty() {
            // Single-node: validate + install in one commit slice; the
            // prepare phase is skipped (§III case 1).
            let t = self.t(eng, txn, K_LOC_COMMIT, 0);
            eng.cpu(home, Phase::Commit, c.validate_us + c.install_us, txn, t);
        } else {
            // 2PC prepare: coordinator + every participant votes, each
            // replicating its prepare log to its secondaries (§II-A).
            let n = eng.txn(txn).participants.len() as u32 + 1;
            eng.join_begin(txn, n);
            let t = self.t(eng, txn, K_PREP, COORD_IDX);
            eng.cpu(home, Phase::Commit, c.validate_us, txn, t);
            let participants = eng.txn(txn).participants.clone();
            for (i, p) in participants.into_iter().enumerate() {
                let t = self.t(eng, txn, K_PREP, i as u16);
                eng.remote_round(home, p, 48, 16, c.validate_us, Phase::Commit, txn, t);
            }
        }
    }

    fn prepare_branch(&mut self, eng: &mut Engine, txn: TxnId, idx: u16) {
        let node = if idx == COORD_IDX {
            eng.txn(txn).home
        } else {
            eng.txn(txn).participants[idx as usize]
        };
        if eng.validate_at(node, txn) {
            // Vote yes: persist the prepare record on the secondaries.
            let t = self.t(eng, txn, K_PREP_REPL, idx);
            eng.replicate_prepare(node, txn, t);
        } else {
            self.branch_done(eng, txn, false);
        }
    }

    fn branch_done(&mut self, eng: &mut Engine, txn: TxnId, ok: bool) {
        match eng.join_arrive(txn, ok) {
            None => {}
            Some(true) => self.commit_phase(eng, txn),
            Some(false) => {
                // Abort: one-way aborts to participants; locks release in
                // abort_retry.
                let n = eng.txn(txn).participants.len() as u32;
                for _ in 0..n {
                    eng.net_fire_and_forget(16);
                }
                eng.abort_retry(txn);
            }
        }
    }

    fn commit_phase(&mut self, eng: &mut Engine, txn: TxnId) {
        // Commit decisions travel one-way; installs apply at the decision
        // (participant acks are not awaited, matching the ≥5-message flow).
        let home = eng.txn(txn).home;
        let participants = eng.txn(txn).participants.clone();
        for p in participants {
            eng.net_fire_and_forget(32);
            eng.install_at(p, txn);
        }
        eng.install_at(home, txn);
        let c = eng.config().sim.cpu;
        let t = self.t(eng, txn, K_COMMIT, 0);
        eng.cpu(home, Phase::Commit, c.install_us, txn, t);
    }
}

impl<P: StandardPolicy> Protocol for Standard<P> {
    fn name(&self) -> &'static str {
        self.policy.name()
    }

    fn on_submit(&mut self, eng: &mut Engine, txn: TxnId) {
        let home = self.policy.route(eng, txn);
        eng.txn_mut(txn).home = home;
        eng.txn_mut(txn).step = 0;
        let bytes = 32 + 8 * eng.txn(txn).req.ops.len() as u32;
        let t = self.t(eng, txn, K_ROUTED, 0);
        eng.net(bytes, Phase::Scheduling, txn, t);
    }

    fn on_wake(&mut self, eng: &mut Engine, txn: TxnId, tagv: u32) {
        let (kind, attempt, idx) = untag(tagv);
        if !fresh(attempt, eng.txn(txn).attempts) {
            return; // wake from an aborted attempt
        }
        match kind {
            K_ROUTED => self.process_group(eng, txn),
            K_GROUP => self.finish_group(eng, txn, idx == 1),
            K_BLOCKED => self.process_group(eng, txn),
            K_PREP => self.prepare_branch(eng, txn, idx),
            K_PREP_REPL => self.branch_done(eng, txn, true),
            K_LOC_COMMIT => {
                let home = eng.txn(txn).home;
                if eng.validate_at(home, txn) {
                    eng.install_at(home, txn);
                    eng.commit(txn);
                } else {
                    eng.abort_retry(txn);
                }
            }
            K_COMMIT => eng.commit(txn),
            _ => unreachable!("unknown continuation kind {kind}"),
        }
    }

    fn on_tick(&mut self, eng: &mut Engine, kind: TickKind) {
        self.policy.on_tick(eng, kind);
    }

    fn on_fault(&mut self, eng: &mut Engine, notice: &FaultNotice) {
        self.policy.on_fault(eng, notice);
    }
}

// ---------------------------------------------------------------------
// 2PC: the non-adaptive classic (§VI-A.2 "2PC")
// ---------------------------------------------------------------------

/// Routing policy of the classic 2PC baseline: coordinate at the node
/// hosting the most primaries of the transaction; never adapt placement to
/// the *workload* — but it is failover-aware: after a crashed node restarts,
/// a one-shot primary rebalance remasters its former partitions back.
/// Without it the promoted primaries stay piled on the survivors forever
/// and 2PC never regains its pre-crash throughput (the Fig. F1 asymmetry
/// the ROADMAP called unfair to the baseline).
#[derive(Default)]
pub struct TwoPcPolicy {
    /// Recovered nodes still owed their one-shot rebalance. A node leaves
    /// the list once the rebalance ran (or it crashed again).
    rebalance_pending: Vec<NodeId>,
    /// One-shot rebalances that actually moved at least one primary
    /// (diagnostics / tests; dropped and no-op resolutions don't count).
    pub rebalances: u64,
}

impl TwoPcPolicy {
    /// One-shot rebalance for `node`: once its rejoin snapshot copies have
    /// landed, remaster partitions with a secondary on `node` back onto it —
    /// most-loaded donors first, each donating only its surplus over the
    /// fair share. Returns `None` while the copies are still in flight,
    /// otherwise `Some(primaries moved)`.
    fn try_rebalance(eng: &mut Engine, node: NodeId) -> Option<usize> {
        if !eng.cluster.is_up(node) {
            return Some(0); // crashed again before the rebalance: drop it
        }
        let n_parts = eng.cluster.n_partitions();
        let copies_inbound = (0..n_parts).any(|p| eng.cluster.parts[p].copying_to.contains(&node));
        if copies_inbound {
            return None; // not rejoined yet: check again next monitor tick
        }
        let candidates: Vec<PartitionId> = (0..n_parts as u32)
            .map(PartitionId)
            .filter(|&p| eng.cluster.placement.has_secondary(p, node))
            .collect();
        let live = eng.cluster.live_count().max(1);
        let fair_share = n_parts / live;
        if candidates.is_empty() {
            // No secondaries to promote: either the node's primaries were
            // restored in place (nothing to rebalance) or there is nothing
            // it can take over — done either way.
            return Some(0);
        }
        let mut deficit = fair_share.saturating_sub(eng.cluster.placement.primaries_on(node));
        let mut moved = 0usize;
        // Donate from the most-overloaded survivors first; partition-id
        // order within a donor keeps the move set deterministic. The
        // remasters are asynchronous (the placement flips after the
        // hand-off), so surplus is tracked locally instead of re-reading
        // the stale placement inside the loop — a donor gives away only
        // what it holds beyond the fair share.
        let mut donors: Vec<(usize, NodeId)> = eng
            .cluster
            .live_nodes()
            .filter(|&n| n != node)
            .map(|n| (eng.cluster.placement.primaries_on(n), n))
            .collect();
        donors.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        for (load, donor) in donors {
            if deficit == 0 {
                break;
            }
            let mut surplus = load.saturating_sub(fair_share);
            for part in &candidates {
                if deficit == 0 || surplus == 0 {
                    break;
                }
                if eng.cluster.placement.primary_of(*part) == donor
                    && eng.remaster_async(*part, node).is_ok()
                {
                    deficit -= 1;
                    surplus -= 1;
                    moved += 1;
                }
            }
        }
        Some(moved)
    }
}

impl StandardPolicy for TwoPcPolicy {
    fn name(&self) -> &'static str {
        "2PC"
    }

    fn route(&mut self, eng: &Engine, txn: TxnId) -> NodeId {
        most_primaries(eng, txn)
    }

    fn remote_action(&mut self, _: &mut Engine, _: TxnId, _: PartitionId) -> RemoteAction {
        RemoteAction::TwoPc
    }

    fn on_fault(&mut self, _eng: &mut Engine, notice: &FaultNotice) {
        match notice {
            FaultNotice::NodeUp(node) => {
                if !self.rebalance_pending.contains(node) {
                    self.rebalance_pending.push(*node);
                }
            }
            FaultNotice::NodeDown(node) => {
                self.rebalance_pending.retain(|n| n != node);
            }
            FaultNotice::FailoverComplete { .. } => {}
        }
    }

    fn on_tick(&mut self, eng: &mut Engine, kind: TickKind) {
        if kind != TickKind::Monitor || self.rebalance_pending.is_empty() {
            return;
        }
        let pending = std::mem::take(&mut self.rebalance_pending);
        for node in pending {
            match Self::try_rebalance(eng, node) {
                Some(moved) if moved > 0 => self.rebalances += 1,
                Some(_) => {} // dropped or nothing to move: resolved silently
                None => self.rebalance_pending.push(node), // copies in flight
            }
        }
    }
}

/// Picks the node hosting the most primaries of `txn`'s partitions
/// (deterministic: lowest id wins ties).
pub fn most_primaries(eng: &Engine, txn: TxnId) -> NodeId {
    let parts = &eng.txn(txn).parts;
    let mut counts = vec![0usize; eng.cluster.n_nodes()];
    for &p in parts {
        counts[eng.cluster.placement.primary_of(p).idx()] += 1;
    }
    let best = counts
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
        .map(|(n, _)| n)
        .unwrap_or(0);
    NodeId(best as u16)
}

/// The classic OCC + 2PC baseline.
pub type TwoPc = Standard<TwoPcPolicy>;

/// Builds the 2PC baseline.
pub fn two_pc() -> TwoPc {
    Standard::new(TwoPcPolicy::default())
}

// ---------------------------------------------------------------------
// Leap: aggressive on-demand migration (§VI-A.2 "Leap")
// ---------------------------------------------------------------------

/// Leap's policy: execute at the client's origin node and migrate every
/// remote partition to it before the operation runs; commits locally,
/// skipping the prepare phase, once everything is local.
pub struct LeapPolicy;

impl StandardPolicy for LeapPolicy {
    fn name(&self) -> &'static str {
        "Leap"
    }

    fn route(&mut self, eng: &Engine, txn: TxnId) -> NodeId {
        eng.origin_node(eng.txn(txn).client)
    }

    fn remote_action(&mut self, _: &mut Engine, _: TxnId, _: PartitionId) -> RemoteAction {
        RemoteAction::Migrate
    }
}

/// The Leap baseline.
pub type Leap = Standard<LeapPolicy>;

/// Builds the Leap baseline.
pub fn leap() -> Leap {
    Standard::new(LeapPolicy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lion_common::{SimConfig, SECOND};
    use lion_engine::Engine;
    use lion_workloads::{YcsbConfig, YcsbWorkload};

    fn small_cfg(nodes: usize) -> SimConfig {
        SimConfig {
            nodes,
            partitions_per_node: 4,
            keys_per_partition: 256,
            value_size: 32,
            clients_per_node: 4,
            ..Default::default()
        }
    }

    fn ycsb(nodes: u32, cross: f64, skew: f64, seed: u64) -> Box<YcsbWorkload> {
        Box::new(YcsbWorkload::new(
            YcsbConfig::for_cluster(nodes, 4, 256)
                .with_mix(cross, skew)
                .with_seed(seed),
        ))
    }

    #[test]
    fn two_pc_commits_single_partition_load() {
        let mut eng = Engine::new(small_cfg(2), ycsb(2, 0.0, 0.0, 1));
        let r = eng.run(&mut two_pc(), SECOND);
        assert!(r.commits > 500, "commits {}", r.commits);
        assert!(
            r.class_fractions[0] > 0.99,
            "all single-node: {:?}",
            r.class_fractions
        );
        eng.cluster.check_invariants().unwrap();
    }

    #[test]
    fn two_pc_cross_partition_txns_use_2pc() {
        let mut eng = Engine::new(small_cfg(2), ycsb(2, 1.0, 0.0, 2));
        let r = eng.run(&mut two_pc(), SECOND);
        assert!(r.commits > 100, "commits {}", r.commits);
        assert!(
            r.class_fractions[2] > 0.9,
            "cross txns stay distributed under 2PC: {:?}",
            r.class_fractions
        );
        // distributed transactions must be slower than single-partition ones
        assert!(
            r.latency_p[1] > 200,
            "p50 {}us should reflect 2PC rounds",
            r.latency_p[1]
        );
        eng.cluster.check_invariants().unwrap();
    }

    #[test]
    fn two_pc_throughput_drops_with_cross_ratio() {
        let tput = |cross: f64| {
            let mut eng = Engine::new(small_cfg(2), ycsb(2, cross, 0.0, 3));
            eng.run(&mut two_pc(), SECOND).throughput_tps
        };
        let t0 = tput(0.0);
        let t100 = tput(1.0);
        assert!(
            t0 > t100 * 1.5,
            "single-node throughput {t0:.0} should far exceed 100% cross {t100:.0}"
        );
    }

    #[test]
    fn leap_migrates_everything_home() {
        let mut eng = Engine::new(small_cfg(2), ycsb(2, 1.0, 0.0, 4));
        let r = eng.run(&mut leap(), SECOND);
        assert!(r.commits > 50, "commits {}", r.commits);
        assert!(r.migrations > 0, "Leap must migrate");
        eng.cluster.check_invariants().unwrap();
    }

    /// ROADMAP satellite: after a crash + recovery, the one-shot rebalance
    /// must hand the recovered node its fair share of primaries back —
    /// without it 2PC routes everything at the survivors forever.
    #[test]
    fn two_pc_rebalances_primaries_after_recovery() {
        use lion_common::{NodeId, SECOND};
        let victim = NodeId(1);
        let sim = small_cfg(4); // 16 partitions, fair share 4
        let mut cfg = lion_engine::EngineConfig::from(sim);
        cfg.faults = lion_engine::FaultPlan::single_failure(SECOND, victim, 2 * SECOND);
        let mut eng = Engine::new(cfg, ycsb(4, 0.5, 0.0, 9));
        let mut proto = two_pc();
        let r = eng.run(&mut proto, 6 * SECOND);
        assert_eq!(r.crashes, 1);
        assert!(r.failovers > 0, "victim's primaries promoted away");
        assert_eq!(
            proto.policy().rebalances,
            1,
            "exactly one one-shot rebalance"
        );
        assert!(
            r.remasters > 0,
            "the rebalance works by remastering, not migration"
        );
        let share = eng.cluster.placement.primaries_on(victim);
        assert_eq!(
            share, 4,
            "recovered node must regain its fair share of primaries"
        );
        assert!(r.commits > 1_000);
        eng.cluster.check_invariants().unwrap();
    }

    #[test]
    fn two_pc_write_conflicts_abort() {
        // Everyone writes the same two keys across two partitions: prepare
        // locks and version checks must produce aborts.
        let wl = Box::new(move |_now| {
            lion_common::TxnRequest::new(vec![
                lion_common::Op::read(lion_common::PartitionId(0), 0),
                lion_common::Op::write(lion_common::PartitionId(1), 0),
                lion_common::Op::write(lion_common::PartitionId(0), 0),
            ])
        });
        let mut cfg = small_cfg(2);
        cfg.clients_per_node = 8;
        let mut eng = Engine::new(cfg, wl);
        let r = eng.run(&mut two_pc(), SECOND / 2);
        assert!(r.commits > 0);
        assert!(r.aborts > 0, "contention must cause aborts");
        eng.cluster.check_invariants().unwrap();
    }
}
