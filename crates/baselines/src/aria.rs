//! Aria (§VI-A.2): deterministic batches without pre-declared dependencies
//! at the scheduler.
//!
//! "It introduces an optimistic write reservation technique to execute the
//! transactions without coordination ... To reduce the abort ratio, it
//! designs a reordering mechanism that costs an additional 20% latency"
//! (§VI-G). The whole batch executes in parallel; reservations are then
//! checked in deterministic order: WAW conflicts abort, and RAW conflicts
//! abort unless reordering can flip them (no accompanying WAR). Aborted
//! transactions carry over to the next batch.

use crate::calvin::{batch_barrier_rtt, charge_replication, zone_surcharge};
use crate::tags::{fresh, tag, untag};
use lion_common::{FastMap, NodeId, OpKind, Phase, Time, TxnId};
use lion_engine::{Engine, Protocol, TxnClass};

const K_COMMIT: u8 = 1;
const K_ABORT: u8 = 2;

/// The Aria baseline.
#[derive(Default)]
pub struct Aria {
    /// Diagnostics: reservation conflicts per kind (waw, raw+war).
    pub waw_aborts: u64,
    /// RAW+WAR conflicts that reordering could not resolve.
    pub raw_aborts: u64,
}

impl Aria {
    /// Builds Aria.
    pub fn new() -> Self {
        Aria::default()
    }
}

impl Protocol for Aria {
    fn name(&self) -> &'static str {
        "Aria"
    }

    fn batch_mode(&self) -> bool {
        true
    }

    fn on_submit(&mut self, _: &mut Engine, _: TxnId) {}

    fn on_batch(&mut self, eng: &mut Engine, batch: &[TxnId]) {
        let now = eng.now();
        // ---- Execution phase: everything runs in parallel ---------------
        let mut completion: Vec<Time> = Vec::with_capacity(batch.len());
        let mut res_w: FastMap<(u32, u64), usize> = FastMap::default();
        let mut res_r: FastMap<(u32, u64), usize> = FastMap::default();
        for (i, &t) in batch.iter().enumerate() {
            eng.load_declared_sets(t);
            let mut by_node: FastMap<NodeId, (usize, usize)> = FastMap::default();
            for op in &eng.txn(t).req.ops {
                let n = eng.cluster.placement.primary_of(op.partition);
                let e = by_node.entry(n).or_insert((0, 0));
                match op.kind {
                    OpKind::Read => e.0 += 1,
                    OpKind::Write => e.1 += 1,
                }
            }
            let n_nodes = by_node.len();
            let nodes: Vec<NodeId> = by_node.keys().copied().collect();
            let mut done = now;
            for (node, (r, w)) in by_node {
                let (_, end) = eng.cpu_grant(node, now, eng.op_cpu(r, w));
                done = done.max(end);
            }
            if n_nodes > 1 {
                // Distributed: remote reads + the costly distributed commit
                // round (latency and participant CPU) that erodes Aria at
                // high cross ratios (§VI-D.1). Participant sets spanning a
                // rack pay the cross-zone surcharge per round, like the
                // other figf2 protocols.
                let rtt = eng.cluster.net_delay(64)
                    + eng.cluster.net_delay(16)
                    + zone_surcharge(eng, &nodes);
                done += 2 * rtt;
                let commit_cpu = eng.config().sim.cpu.validate_us
                    + eng.config().sim.cpu.install_us
                    + 2 * eng.config().sim.cpu.msg_handle_us;
                for node in nodes {
                    let (_, end) = eng.cpu_grant(node, done, commit_cpu);
                    done = done.max(end);
                }
                eng.txn_mut(t).class = TxnClass::Distributed;
            }
            eng.charge_phase(t, Phase::Execution, done - now);
            completion.push(done);
            // Reservations in deterministic (batch) order: first wins.
            for op in &eng.txn(t).req.ops {
                let k = (op.partition.0, op.key);
                match op.kind {
                    OpKind::Write => {
                        res_w.entry(k).or_insert(i);
                    }
                    OpKind::Read => {
                        res_r.entry(k).or_insert(i);
                    }
                }
            }
        }

        // ---- Barrier + commit phase in deterministic order --------------
        let exec_end = completion.iter().copied().max().unwrap_or(now);
        // The reservation-check barrier reaches every live node; the
        // farthest (possibly cross-rack) round trip gates it.
        let barrier_rtt = batch_barrier_rtt(eng, 16);
        // The reordering pass costs "an additional 20% latency".
        let reorder = (exec_end - now) / 5;
        let barrier = exec_end + barrier_rtt + reorder;

        for (i, &t) in batch.iter().enumerate() {
            let mut waw = false;
            let mut raw = false;
            let mut war = false;
            for op in &eng.txn(t).req.ops {
                let k = (op.partition.0, op.key);
                match op.kind {
                    OpKind::Write => {
                        if res_w.get(&k).is_some_and(|&j| j < i) {
                            waw = true;
                        }
                        if res_r.get(&k).is_some_and(|&j| j < i) {
                            war = true;
                        }
                    }
                    OpKind::Read => {
                        if res_w.get(&k).is_some_and(|&j| j < i) {
                            raw = true;
                        }
                    }
                }
            }
            // Aria's commit rule with deterministic reordering: abort on
            // WAW; abort on RAW only when a WAR also exists.
            let abort = waw || (raw && war);
            eng.charge_phase(t, Phase::Commit, barrier.saturating_sub(completion[i]));
            let attempt = eng.txn(t).attempts;
            if abort {
                if waw {
                    self.waw_aborts += 1;
                } else {
                    self.raw_aborts += 1;
                }
                eng.wake_at(barrier, t, tag(K_ABORT, attempt, 0));
            } else {
                charge_replication(eng, t, barrier);
                let install = eng.config().sim.cpu.install_us;
                eng.wake_at(barrier + install, t, tag(K_COMMIT, attempt, 0));
            }
        }
    }

    fn on_wake(&mut self, eng: &mut Engine, txn: TxnId, tagv: u32) {
        let (kind, attempt, _) = untag(tagv);
        if !fresh(attempt, eng.txn(txn).attempts) {
            return;
        }
        match kind {
            K_COMMIT => {
                eng.install_unchecked(txn);
                eng.commit(txn);
            }
            K_ABORT => eng.abort_defer(txn),
            _ => unreachable!(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lion_common::{Op, PartitionId, SimConfig, TxnRequest, SECOND};
    use lion_workloads::{YcsbConfig, YcsbWorkload};

    fn cfg() -> SimConfig {
        SimConfig {
            nodes: 4,
            partitions_per_node: 4,
            // enough rows that same-batch birthday collisions are rare, as
            // at the paper's 24M-row scale
            keys_per_partition: 4096,
            value_size: 32,
            batch_size: 64,
            ..Default::default()
        }
    }

    #[test]
    fn aria_commits_conflict_free_batches() {
        let wl = Box::new(YcsbWorkload::new(
            YcsbConfig::for_cluster(4, 4, 4096)
                .with_mix(0.2, 0.0)
                .with_seed(31),
        ));
        let mut eng = Engine::new(cfg(), wl);
        let r = eng.run(&mut Aria::new(), SECOND);
        assert!(r.commits > 500, "commits {}", r.commits);
        assert!(
            r.abort_rate < 0.1,
            "uniform workload: few conflicts, got {}",
            r.abort_rate
        );
    }

    #[test]
    fn cross_zone_surcharge_prices_barrier_and_commit_rounds() {
        // Same seed, same workload: the only difference is the rack
        // surcharge. p50 latency must rise by at least one barrier hop —
        // the flat pricing the ROADMAP flagged would keep them identical.
        let p50 = |extra: u64| {
            let mut c = cfg();
            c.zones = 2;
            c.net.cross_zone_extra_us = extra;
            let wl = Box::new(YcsbWorkload::new(
                YcsbConfig::for_cluster(4, 4, 4096)
                    .with_mix(1.0, 0.0)
                    .with_seed(33),
            ));
            let mut eng = Engine::new(c, wl);
            eng.run(&mut Aria::new(), SECOND).latency_p[1]
        };
        let flat = p50(0);
        let zoned = p50(500);
        assert!(
            zoned >= flat + 500,
            "cross-zone batches must pay the surcharge: flat {flat} vs zoned {zoned}"
        );
    }

    #[test]
    fn waw_conflicts_defer_to_next_batch() {
        // Every transaction writes the same key: only the first of each
        // batch commits, the rest defer.
        let wl = Box::new(move |_now| TxnRequest::new(vec![Op::write(PartitionId(0), 0)]));
        let mut c = cfg();
        c.batch_size = 16;
        let mut eng = Engine::new(c, wl);
        let mut proto = Aria::new();
        let r = eng.run(&mut proto, SECOND / 2);
        assert!(r.commits > 0);
        assert!(proto.waw_aborts > 0, "WAW conflicts expected");
        assert!(
            r.abort_rate > 0.5,
            "heavy contention: abort rate {}",
            r.abort_rate
        );
        // deferred transactions eventually commit (carry-over works)
        assert!(r.commits >= 10);
    }

    #[test]
    fn reordering_saves_pure_raw_conflicts() {
        // T(2k): read key 0, write key 1. T(2k+1): write key 0. The readers
        // have RAW on key 0 against... actually writer comes *after* the
        // reader in batch order half the time; reordering commits pure-RAW
        // cases, so the abort rate stays far below the WAW-hammer case.
        let mut i = 0u64;
        let wl = Box::new(move |_now| {
            i += 1;
            if i.is_multiple_of(2) {
                TxnRequest::new(vec![
                    Op::read(PartitionId(0), 0),
                    Op::write(PartitionId(0), 1 + (i / 2) % 50),
                ])
            } else {
                TxnRequest::new(vec![Op::write(PartitionId(0), 0)])
            }
        });
        let mut c = cfg();
        c.batch_size = 16;
        let mut eng = Engine::new(c, wl);
        let mut proto = Aria::new();
        let r = eng.run(&mut proto, SECOND / 2);
        assert!(r.commits > 0);
        // the writers WAW-conflict with each other; readers mostly survive
        assert!(proto.waw_aborts > 0);
        assert!(
            proto.raw_aborts < proto.waw_aborts,
            "reordering resolves pure RAW: raw={} waw={}",
            proto.raw_aborts,
            proto.waw_aborts
        );
    }
}
