//! Continuation-tag packing shared by the protocol state machines.
//!
//! A wake tag carries `(kind, attempt, index)`. The attempt byte guards
//! against stale wakes: when a transaction aborts and retries, wakes from
//! the aborted attempt still drain from the event queue and must be ignored.

/// Packs a continuation tag.
#[inline]
pub fn tag(kind: u8, attempt: u32, idx: u16) -> u32 {
    ((kind as u32) << 24) | ((attempt & 0xFF) << 16) | idx as u32
}

/// Unpacks `(kind, attempt_byte, idx)`.
#[inline]
pub fn untag(t: u32) -> (u8, u32, u16) {
    ((t >> 24) as u8, (t >> 16) & 0xFF, (t & 0xFFFF) as u16)
}

/// True when the tag's attempt byte matches the context's current attempt.
#[inline]
pub fn fresh(tag_attempt: u32, ctx_attempts: u32) -> bool {
    tag_attempt == (ctx_attempts & 0xFF)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        for (k, a, i) in [(1u8, 1u32, 0u16), (7, 255, 65535), (3, 256, 42)] {
            let t = tag(k, a, i);
            let (k2, a2, i2) = untag(t);
            assert_eq!(k2, k);
            assert_eq!(a2, a & 0xFF);
            assert_eq!(i2, i);
        }
    }

    #[test]
    fn staleness_detection() {
        let t = tag(1, 1, 0);
        let (_, a, _) = untag(t);
        assert!(fresh(a, 1));
        assert!(!fresh(a, 2), "wake from attempt 1 is stale in attempt 2");
        // attempt counter wraps at 256: accept the collision (1-in-256 on
        // long retry chains, harmless: the state machine re-validates).
        assert!(fresh(a, 257));
    }
}
