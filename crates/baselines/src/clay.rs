//! Clay (§VI-A.2): online load-driven repartitioning.
//!
//! "The repartitioning starts when it detects the load imbalance among
//! nodes. Then it generates a partition reconfiguration based on the
//! co-access frequency and adjusts the partitions through data migration.
//! To better compare the cleverness of the reconfiguration, we implement the
//! asynchronous replication and remastering for Clay as Lion."
//!
//! The crucial blind spot the paper points out is preserved: Clay's trigger
//! is *CPU load*, so a node busy with distributed transactions on a balanced
//! cluster never triggers repartitioning — Clay "can not eliminate all
//! distributed transactions" (§II-B.1).

use crate::standard::{most_primaries, RemoteAction, Standard, StandardPolicy};
use lion_common::{FastMap, NodeId, PartitionId, TxnId};
use lion_engine::{Engine, TickKind};

/// Clay's monitor policy over the standard 2PC machine.
pub struct ClayPolicy {
    /// Load-imbalance tolerance: trigger when max > (1+ε)·avg.
    pub epsilon: f64,
    /// Max partitions moved per monitor tick.
    pub moves_per_tick: usize,
    co_access: FastMap<(u32, u32), u64>,
    /// Diagnostics: monitor activations.
    pub activations: u64,
}

impl Default for ClayPolicy {
    fn default() -> Self {
        ClayPolicy {
            epsilon: 0.35,
            moves_per_tick: 2,
            co_access: FastMap::default(),
            activations: 0,
        }
    }
}

impl ClayPolicy {
    /// Most co-accessed partner of `part`, if any.
    fn best_partner(&self, part: PartitionId) -> Option<PartitionId> {
        self.co_access
            .iter()
            .filter(|((a, b), _)| *a == part.0 || *b == part.0)
            .max_by_key(|(_, &w)| w)
            .map(|((a, b), _)| PartitionId(if *a == part.0 { *b } else { *a }))
    }

    fn monitor(&mut self, eng: &mut Engine) {
        let busy = eng.node_window_busy().to_vec();
        let n = busy.len() as f64;
        let avg = busy.iter().sum::<u64>() as f64 / n;
        if avg <= 0.0 {
            return;
        }
        let (max_idx, &max_busy) = busy
            .iter()
            .enumerate()
            .max_by_key(|(_, &b)| b)
            .expect("non-empty");
        if (max_busy as f64) <= (1.0 + self.epsilon) * avg {
            return; // Clay sees a balanced cluster — even if it is balanced
                    // *because* every node burns CPU on 2PC rounds.
        }
        self.activations += 1;
        let overloaded = NodeId(max_idx as u16);
        let (min_idx, _) = busy
            .iter()
            .enumerate()
            .min_by_key(|(_, &b)| b)
            .expect("non-empty");
        let target = NodeId(min_idx as u16);
        if target == overloaded {
            return;
        }

        // Hottest primaries on the overloaded node, by last-window accesses.
        let mut hot: Vec<(u64, PartitionId)> = eng
            .cluster
            .placement
            .primary_partitions_on(overloaded)
            .into_iter()
            .map(|p| (eng.cluster.freq.count(p), p))
            .collect();
        hot.sort_by_key(|&(count, _)| std::cmp::Reverse(count));

        let mut moved = 0;
        let mut queue: Vec<PartitionId> = Vec::new();
        for (cnt, p) in hot {
            if moved >= self.moves_per_tick {
                break;
            }
            if cnt == 0 {
                break;
            }
            queue.push(p);
            // Clay extends the clump with the most co-accessed partner so
            // the pair moves together.
            if let Some(q) = self.best_partner(p) {
                if eng.cluster.placement.primary_of(q) == overloaded && !queue.contains(&q) {
                    queue.push(q);
                }
            }
            while let Some(part) = queue.pop() {
                if moved >= self.moves_per_tick {
                    break;
                }
                // Paper's fairness provision: Clay gets remastering when a
                // secondary already sits on the target.
                let res = if eng.cluster.placement.has_secondary(part, target) {
                    eng.remaster_async(part, target).map(|_| ())
                } else {
                    eng.migrate_async(part, target).map(|_| ())
                };
                if res.is_ok() {
                    moved += 1;
                }
            }
        }
    }
}

impl StandardPolicy for ClayPolicy {
    fn name(&self) -> &'static str {
        "Clay"
    }

    fn route(&mut self, eng: &Engine, txn: TxnId) -> NodeId {
        most_primaries(eng, txn)
    }

    fn remote_action(&mut self, _: &mut Engine, _: TxnId, _: PartitionId) -> RemoteAction {
        RemoteAction::TwoPc
    }

    fn on_tick(&mut self, eng: &mut Engine, kind: TickKind) {
        match kind {
            TickKind::Monitor => self.monitor(eng),
            TickKind::Planner => {
                // Refresh co-access statistics from the routed history.
                for rec in eng.drain_history() {
                    for i in 0..rec.parts.len() {
                        for j in (i + 1)..rec.parts.len() {
                            let (a, b) = (rec.parts[i].0, rec.parts[j].0);
                            let key = if a < b { (a, b) } else { (b, a) };
                            *self.co_access.entry(key).or_insert(0) += 1;
                        }
                    }
                }
                // Bound memory on long runs.
                if self.co_access.len() > 100_000 {
                    self.co_access.retain(|_, w| *w > 1);
                }
            }
        }
    }
}

/// The Clay baseline protocol.
pub type Clay = Standard<ClayPolicy>;

/// Builds Clay with default monitor settings.
pub fn clay() -> Clay {
    Standard::new(ClayPolicy::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use lion_common::{SimConfig, SECOND};
    use lion_workloads::{YcsbConfig, YcsbWorkload};

    fn cfg(nodes: usize) -> SimConfig {
        SimConfig {
            nodes,
            partitions_per_node: 4,
            keys_per_partition: 256,
            value_size: 32,
            clients_per_node: 6,
            ..Default::default()
        }
    }

    #[test]
    fn clay_rebalances_skewed_load() {
        // 90% of transactions hit node 0's partitions: Clay must detect the
        // overload and move primaries off node 0.
        let wl = Box::new(YcsbWorkload::new(
            YcsbConfig::for_cluster(4, 4, 256)
                .with_mix(0.0, 0.9)
                .with_seed(11),
        ));
        let mut eng = Engine::new(cfg(4), wl);
        let before = eng.cluster.placement.primaries_on(NodeId(0));
        let r = eng.run(&mut clay(), 6 * SECOND);
        let after = eng.cluster.placement.primaries_on(NodeId(0));
        assert!(r.commits > 100);
        assert!(
            after < before || r.migrations + r.remasters > 0,
            "Clay should have moved load off node 0: before {before}, after {after}"
        );
        eng.cluster.check_invariants().unwrap();
    }

    #[test]
    fn clay_stays_put_on_balanced_distributed_load() {
        // 100% cross-partition, uniform: every node equally busy with 2PC.
        // Clay's CPU-based trigger must NOT fire — the paper's blind spot.
        let wl = Box::new(YcsbWorkload::new(
            YcsbConfig::for_cluster(4, 4, 256)
                .with_mix(1.0, 0.0)
                .with_seed(12),
        ));
        let mut eng = Engine::new(cfg(4), wl);
        let mut proto = clay();
        let r = eng.run(&mut proto, 4 * SECOND);
        assert!(r.commits > 100);
        assert_eq!(
            proto.policy().activations,
            0,
            "balanced CPU must not trigger Clay even with 100% distributed txns"
        );
        assert!(
            r.class_fractions[2] > 0.9,
            "distributed txns remain: {:?}",
            r.class_fractions
        );
    }
}
