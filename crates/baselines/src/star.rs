//! Star (§VI-A.2): asymmetric replication with phase switching.
//!
//! "An asymmetric replication approach with a two-phase switching algorithm.
//! It ensures one node has all the partitions. The transactions will be
//! collected in batches. The distributed transactions in the batch will be
//! routed to that node as the single-node one and get committed without
//! 2PC." The super node (node 0) is provisioned with a full replica set at
//! deployment time; each batch runs a *partition phase* (single-home
//! transactions at their owners) and a *single-master phase* (every cross
//! transaction serialized through node 0's workers) separated by switching
//! barriers — node 0 saturating with the cross ratio is the bottleneck of
//! Figs. 9 and 11b.

use crate::tags::{fresh, tag, untag};
use lion_common::{NodeId, PartitionId, Phase, Time, TxnId};
use lion_engine::{ByteClass, Engine, MetricEvent, OpFail, Protocol, TxnClass};

const K_SINGLE: u8 = 1;
const K_CROSS: u8 = 2;

const SUPER_NODE: NodeId = NodeId(0);

/// The Star baseline.
#[derive(Default)]
pub struct Star {
    initialized: bool,
    /// Diagnostics: cross transactions routed through the super node.
    pub super_node_txns: u64,
}

impl Star {
    /// Builds Star.
    pub fn new() -> Self {
        Star::default()
    }

    /// Provisions the deployment-time full replica set on the super node.
    fn ensure_super_node(&mut self, eng: &mut Engine) {
        if self.initialized {
            return;
        }
        for p in 0..eng.cluster.n_partitions() {
            let part = PartitionId(p as u32);
            if !eng.cluster.placement.has_replica(part, SUPER_NODE) {
                eng.cluster
                    .install_secondary_free(part, SUPER_NODE)
                    .expect("provision super node");
            }
        }
        self.initialized = true;
    }

    /// Is every accessed partition's primary on one node?
    fn single_home(eng: &Engine, txn: TxnId) -> Option<NodeId> {
        let parts = &eng.txn(txn).parts;
        let first = eng.cluster.placement.primary_of(parts[0]);
        parts
            .iter()
            .all(|&p| eng.cluster.placement.primary_of(p) == first)
            .then_some(first)
    }
}

impl Protocol for Star {
    fn name(&self) -> &'static str {
        "Star"
    }

    fn batch_mode(&self) -> bool {
        true
    }

    fn on_submit(&mut self, _: &mut Engine, _: TxnId) {}

    fn on_batch(&mut self, eng: &mut Engine, batch: &[TxnId]) {
        self.ensure_super_node(eng);
        let now = eng.now();
        let c = eng.config().sim.cpu;

        // ---- Partition phase: single-home transactions at their owners --
        let mut phase_end: Time = now;
        let mut crosses: Vec<TxnId> = Vec::new();
        for &t in batch {
            match Self::single_home(eng, t) {
                Some(home) => {
                    eng.txn_mut(t).home = home;
                    let reads = eng.txn(t).req.read_count();
                    let writes = eng.txn(t).req.write_count();
                    let cost = eng.op_cpu(reads, writes)
                        + c.txn_overhead_us
                        + c.validate_us
                        + c.install_us;
                    let (start, end) = eng.cpu_grant(home, now, cost);
                    eng.charge_phase(t, Phase::Scheduling, start - now);
                    eng.charge_phase(t, Phase::Execution, cost);
                    phase_end = phase_end.max(end);
                    let attempt = eng.txn(t).attempts;
                    eng.wake_at(end, t, tag(K_SINGLE, attempt, 0));
                }
                None => crosses.push(t),
            }
        }

        // ---- Phase switch: mastership moves to the super node -----------
        // The switch barrier reaches every *live* node; the farthest
        // (possibly cross-zone) round trip gates it — dead nodes cannot
        // ack and must not stretch the barrier. During an honest split the
        // barrier only spans the super node's side of the cut: far-side
        // nodes can no more ack the switch than dead ones.
        let switch_rtt = eng
            .cluster
            .live_nodes()
            .filter(|&n| eng.cluster.same_side(SUPER_NODE, n))
            .map(|n| 2 * eng.cluster.net_delay_between(SUPER_NODE, n, 64))
            .max()
            .unwrap_or(0);
        let switch = phase_end + switch_rtt;

        // ---- Single-master phase: all cross txns through node 0 ---------
        for t in crosses {
            eng.txn_mut(t).home = SUPER_NODE;
            // Honest split-brain: the mastership switch cannot reach owners
            // across the cut — those cross transactions park until heal.
            if !eng.txn_reachable(t) {
                eng.park_until_heal(t);
                continue;
            }
            self.super_node_txns += 1;
            eng.txn_mut(t).class = TxnClass::Remastered; // single-node via mastership switch
            eng.load_declared_sets(t);
            let reads = eng.txn(t).req.read_count();
            let writes = eng.txn(t).req.write_count();
            let cost = eng.op_cpu(reads, writes) + c.txn_overhead_us + c.install_us;
            let (start, end) = eng.cpu_grant(SUPER_NODE, switch, cost);
            eng.charge_phase(t, Phase::Scheduling, start - now);
            eng.charge_phase(t, Phase::Execution, cost);
            // Writes replicate from the super node back to the owners; the
            // farthest owner (zone-aware) gates the replication time.
            let bytes = writes as u64 * (eng.config().sim.value_size as u64 + 32);
            eng.emit(MetricEvent::Bytes {
                at: end,
                class: ByteClass::Replication,
                bytes,
                node: None,
                zone: None,
            });
            let repl = eng
                .txn(t)
                .write_set
                .iter()
                .map(|w| {
                    let owner = eng.cluster.placement.primary_of(w.part);
                    eng.cluster
                        .net_delay_between(SUPER_NODE, owner, bytes as u32)
                })
                .max()
                .unwrap_or_else(|| eng.cluster.net_delay(bytes as u32));
            eng.charge_phase(t, Phase::Replication, repl);
            let attempt = eng.txn(t).attempts;
            eng.wake_at(end, t, tag(K_CROSS, attempt, 0));
        }
    }

    fn on_wake(&mut self, eng: &mut Engine, txn: TxnId, tagv: u32) {
        let (kind, attempt, _) = untag(tagv);
        if !fresh(attempt, eng.txn(txn).attempts) {
            return;
        }
        match kind {
            K_SINGLE => {
                // Execute + OCC commit at the owner.
                let home = eng.txn(txn).home;
                match eng.exec_local_ops(home, txn) {
                    Ok(_) => {
                        if eng.validate_at(home, txn) {
                            eng.install_at(home, txn);
                            eng.commit(txn);
                        } else {
                            eng.abort_defer(txn);
                        }
                    }
                    Err(OpFail::Locked) => eng.abort_defer(txn),
                    Err(_) => eng.abort_defer(txn),
                }
            }
            K_CROSS => {
                // Serial single-master phase: conflict-free by construction.
                eng.install_unchecked(txn);
                eng.commit(txn);
            }
            _ => unreachable!(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lion_common::{SimConfig, SECOND};
    use lion_workloads::{YcsbConfig, YcsbWorkload};

    fn cfg() -> SimConfig {
        SimConfig {
            nodes: 4,
            partitions_per_node: 4,
            keys_per_partition: 256,
            value_size: 32,
            batch_size: 64,
            ..Default::default()
        }
    }

    fn ycsb(cross: f64, seed: u64) -> Box<YcsbWorkload> {
        Box::new(YcsbWorkload::new(
            YcsbConfig::for_cluster(4, 4, 256)
                .with_mix(cross, 0.0)
                .with_seed(seed),
        ))
    }

    #[test]
    fn star_routes_cross_txns_to_super_node() {
        let mut eng = Engine::new(cfg(), ycsb(0.8, 51));
        let mut proto = Star::new();
        let r = eng.run(&mut proto, 2 * SECOND);
        assert!(r.commits > 300, "commits {}", r.commits);
        assert!(proto.super_node_txns > 0);
        // cross txns counted as converted (mastership switch), not 2PC
        assert!(
            r.class_fractions[2] < 0.05,
            "no distributed 2PC in Star: {:?}",
            r.class_fractions
        );
        // super node holds a full replica set
        for p in 0..eng.cluster.n_partitions() {
            assert!(eng
                .cluster
                .placement
                .has_replica(lion_common::PartitionId(p as u32), SUPER_NODE));
        }
    }

    #[test]
    fn super_node_is_the_bottleneck() {
        // With everything cross-partition, node 0's workers serialize the
        // whole cluster: throughput must be far below the 0%-cross case.
        let t_low = {
            let mut eng = Engine::new(cfg(), ycsb(0.0, 52));
            eng.run(&mut Star::new(), 2 * SECOND).throughput_tps
        };
        let t_high = {
            let mut eng = Engine::new(cfg(), ycsb(1.0, 53));
            eng.run(&mut Star::new(), 2 * SECOND).throughput_tps
        };
        assert!(
            t_low > t_high * 1.5,
            "super node saturation expected: low {t_low:.0} vs high {t_high:.0}"
        );
    }

    #[test]
    fn star_throughput_is_stable_across_mid_cross_ratios() {
        // The paper notes Star's throughput "remains stable when varying the
        // cross-ratio" in the mid range (no 2PC cliff).
        let mk = |cross: f64, seed| {
            let mut eng = Engine::new(cfg(), ycsb(cross, seed));
            eng.run(&mut Star::new(), 2 * SECOND).throughput_tps
        };
        let t20 = mk(0.2, 54);
        let t50 = mk(0.5, 55);
        assert!(
            t20 / t50 < 2.2,
            "no 2PC-style collapse between 20% and 50%: {t20:.0} vs {t50:.0}"
        );
    }
}
