//! Lotus (§VI-A.2): epoch-based execution with granule locks and
//! asynchronous commit.
//!
//! "It is implemented with granule locks to enhance concurrency and
//! introduces batch execution/commit for overlapping computation,
//! communication, and asynchronous replication." The flip side the paper
//! measures: "Lotus maintains locks until the end of an epoch, leading to
//! transaction aborts and re-executions" under contention, and "a costly
//! commit protocol for distributed transactions" at high cross ratios.

use crate::calvin::{charge_replication, zone_surcharge};
use crate::tags::{fresh, tag, untag};
use lion_common::{FastMap, FastSet, NodeId, OpKind, Phase, Time, TxnId};
use lion_engine::{Engine, Protocol, TxnClass};

const K_COMMIT: u8 = 1;
const K_ABORT: u8 = 2;

/// The Lotus baseline.
#[derive(Default)]
pub struct Lotus {
    /// Diagnostics: granule-claim conflicts.
    pub claim_conflicts: u64,
}

impl Lotus {
    /// Builds Lotus.
    pub fn new() -> Self {
        Lotus::default()
    }
}

impl Protocol for Lotus {
    fn name(&self) -> &'static str {
        "Lotus"
    }

    fn batch_mode(&self) -> bool {
        true
    }

    fn on_submit(&mut self, _: &mut Engine, _: TxnId) {}

    fn on_batch(&mut self, eng: &mut Engine, batch: &[TxnId]) {
        let now = eng.now();
        // Granule (row) claims held until epoch end: the first transaction
        // of the epoch to touch a row owns it; later conflicting ones abort
        // and re-execute next epoch.
        let mut claimed_w: FastSet<(u32, u64)> = FastSet::default();
        let mut claimed_r: FastSet<(u32, u64)> = FastSet::default();
        let mut epoch_end: Time = now;
        let mut winners: Vec<(TxnId, Time)> = Vec::new();
        let mut losers: Vec<TxnId> = Vec::new();

        for &t in batch {
            eng.load_declared_sets(t);
            let conflict = eng.txn(t).req.ops.iter().any(|op| {
                let k = (op.partition.0, op.key);
                match op.kind {
                    OpKind::Write => claimed_w.contains(&k) || claimed_r.contains(&k),
                    OpKind::Read => claimed_w.contains(&k),
                }
            });
            if conflict {
                self.claim_conflicts += 1;
                losers.push(t);
                continue;
            }
            for op in &eng.txn(t).req.ops {
                let k = (op.partition.0, op.key);
                match op.kind {
                    OpKind::Write => {
                        claimed_w.insert(k);
                    }
                    OpKind::Read => {
                        claimed_r.insert(k);
                    }
                }
            }
            // Execute: per-node CPU in parallel; zero scheduling time (the
            // epoch structure replaces a lock manager, §VI-G).
            let mut by_node: FastMap<NodeId, (usize, usize)> = FastMap::default();
            for op in &eng.txn(t).req.ops {
                let n = eng.cluster.placement.primary_of(op.partition);
                let e = by_node.entry(n).or_insert((0, 0));
                match op.kind {
                    OpKind::Read => e.0 += 1,
                    OpKind::Write => e.1 += 1,
                }
            }
            let n_nodes = by_node.len();
            let nodes: Vec<NodeId> = by_node.keys().copied().collect();
            let mut done = now;
            for (node, (r, w)) in by_node {
                let (_, end) = eng.cpu_grant(node, now, eng.op_cpu(r, w));
                done = done.max(end);
            }
            if n_nodes > 1 {
                // Distributed transactions pay the full commit protocol:
                // two coordination rounds of latency plus prepare/commit
                // handling CPU at every participant. Each round pays the
                // cross-zone surcharge when the participants span racks.
                let rtt = eng.cluster.net_delay(48)
                    + eng.cluster.net_delay(16)
                    + zone_surcharge(eng, &nodes);
                done += 2 * rtt;
                let commit_cpu = eng.config().sim.cpu.validate_us
                    + eng.config().sim.cpu.install_us
                    + 2 * eng.config().sim.cpu.msg_handle_us;
                for node in nodes {
                    let (_, end) = eng.cpu_grant(node, done, commit_cpu);
                    done = done.max(end);
                }
                eng.txn_mut(t).class = TxnClass::Distributed;
                eng.charge_phase(t, Phase::Commit, 2 * rtt);
            }
            eng.charge_phase(t, Phase::Execution, done - now);
            charge_replication(eng, t, done);
            epoch_end = epoch_end.max(done);
            winners.push((t, done));
        }

        // Asynchronous commit: winners become visible at their completion
        // (not at the barrier) — Lotus's low median latency (Fig. 14a).
        for (t, done) in winners {
            let attempt = eng.txn(t).attempts;
            eng.wake_at(done, t, tag(K_COMMIT, attempt, 0));
        }
        // Claim losers hold until epoch end, then re-execute next epoch —
        // the high tail latency of Fig. 14a.
        for t in losers {
            eng.charge_phase(t, Phase::Other, epoch_end - now);
            let attempt = eng.txn(t).attempts;
            eng.wake_at(epoch_end, t, tag(K_ABORT, attempt, 0));
        }
    }

    fn on_wake(&mut self, eng: &mut Engine, txn: TxnId, tagv: u32) {
        let (kind, attempt, _) = untag(tagv);
        if !fresh(attempt, eng.txn(txn).attempts) {
            return;
        }
        match kind {
            K_COMMIT => {
                eng.install_unchecked(txn);
                eng.commit(txn);
            }
            K_ABORT => eng.abort_defer(txn),
            _ => unreachable!(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lion_common::{Op, PartitionId, SimConfig, TxnRequest, SECOND};
    use lion_workloads::{YcsbConfig, YcsbWorkload};

    fn cfg() -> SimConfig {
        SimConfig {
            nodes: 4,
            partitions_per_node: 4,
            // enough rows that same-batch birthday collisions are rare, as
            // at the paper's 24M-row scale
            keys_per_partition: 4096,
            value_size: 32,
            batch_size: 64,
            ..Default::default()
        }
    }

    #[test]
    fn lotus_excels_on_low_cross_ratio() {
        let mk = |cross: f64| {
            let wl = Box::new(YcsbWorkload::new(
                YcsbConfig::for_cluster(4, 4, 4096)
                    .with_mix(cross, 0.0)
                    .with_seed(41),
            ));
            let mut eng = Engine::new(cfg(), wl);
            eng.run(&mut Lotus::new(), SECOND).throughput_tps
        };
        let low = mk(0.0);
        let high = mk(1.0);
        assert!(
            low > high * 1.3,
            "Lotus must degrade with cross ratio: low {low:.0} vs high {high:.0}"
        );
    }

    #[test]
    fn cross_zone_surcharge_prices_distributed_commit() {
        let p50 = |extra: u64| {
            let mut c = cfg();
            c.zones = 2;
            // Interleaved racks: the YCSB partner pairing (p ↔ p^1) lands on
            // adjacent nodes, so contiguous blocks would make every cross
            // pair rack-local and never exercise the surcharge.
            c.zone_map = vec![0, 1, 0, 1];
            c.net.cross_zone_extra_us = extra;
            let wl = Box::new(YcsbWorkload::new(
                YcsbConfig::for_cluster(4, 4, 4096)
                    .with_mix(1.0, 0.0)
                    .with_seed(43),
            ));
            let mut eng = Engine::new(c, wl);
            eng.run(&mut Lotus::new(), SECOND).latency_p[1]
        };
        let flat = p50(0);
        let zoned = p50(400);
        assert!(
            zoned > flat,
            "cross-rack commit rounds must pay the surcharge: flat {flat} vs zoned {zoned}"
        );
    }

    #[test]
    fn epoch_claims_abort_contended_rows() {
        let wl = Box::new(move |_now| TxnRequest::new(vec![Op::write(PartitionId(0), 0)]));
        let mut c = cfg();
        c.batch_size = 16;
        let mut eng = Engine::new(c, wl);
        let mut proto = Lotus::new();
        let r = eng.run(&mut proto, SECOND / 2);
        assert!(proto.claim_conflicts > 0);
        assert!(r.aborts > 0, "claim losers re-execute");
        assert!(r.commits > 0, "one winner per epoch still commits");
        // claim losers dominate: most attempts abort and re-execute
        assert!(r.abort_rate > 0.5, "abort rate {}", r.abort_rate);
    }

    #[test]
    fn uniform_workload_rarely_conflicts() {
        let wl = Box::new(YcsbWorkload::new(
            YcsbConfig::for_cluster(4, 4, 4096)
                .with_mix(0.0, 0.0)
                .with_seed(42),
        ));
        let mut eng = Engine::new(cfg(), wl);
        let mut proto = Lotus::new();
        let r = eng.run(&mut proto, SECOND);
        assert!(r.abort_rate < 0.1, "abort rate {}", r.abort_rate);
        assert!(r.commits > 500);
    }
}
