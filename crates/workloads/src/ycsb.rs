//! YCSB workload generator (§VI-A.1) with the paper's dynamic-hotspot
//! schedules (§VI-C.2).
//!
//! Knobs mirror the paper exactly:
//! * `cross_ratio` — fraction of cross-partition transactions; "the
//!   cross-partitioned transactions always access two partitions";
//! * `skew_factor` — node-level skew: 0.8 ⇒ "80% of transactions tend to
//!   access the partitions in the one node";
//! * partner pairing — each partition has a deterministic partner on a
//!   *different* home node, so co-access patterns are stable and learnable
//!   (this is what replica co-location can exploit; 2PC never adapts);
//! * phase schedules — hotspot interval/position changes every 60 s for the
//!   dynamic experiments.

use crate::zipf::Zipf;
use lion_common::{Op, PartitionId, Time, TxnRequest, Workload};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// One phase of a dynamic schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseCfg {
    /// Phase length in µs.
    pub duration_us: Time,
    /// Cross-partition transaction ratio in this phase.
    pub cross_ratio: f64,
    /// Node-level skew factor in this phase (0 = uniform).
    pub skew_factor: f64,
    /// Partition-id offset: shifts which partitions are hot / co-accessed
    /// (the "partition ID intervals shift among periods" of §VI-C.2).
    pub offset: u32,
}

/// Workload schedule: a static phase or a cycling list of phases.
#[derive(Debug, Clone, PartialEq)]
pub enum Schedule {
    /// One fixed phase forever.
    Static {
        /// Cross-partition ratio.
        cross_ratio: f64,
        /// Node-level skew factor.
        skew_factor: f64,
    },
    /// Cycle through phases (each with its own duration), repeating.
    Cycle(Vec<PhaseCfg>),
}

impl Schedule {
    /// The varying-hotspot-interval scenario (Fig. 8a): uniform access whose
    /// partition-id interval shifts by `shift` every `period_us`.
    pub fn interval_shift(period_us: Time, n_phases: u32, shift: u32, cross_ratio: f64) -> Self {
        let phases = (0..n_phases)
            .map(|i| PhaseCfg {
                duration_us: period_us,
                cross_ratio,
                skew_factor: 0.0,
                offset: i * shift,
            })
            .collect();
        Schedule::Cycle(phases)
    }

    /// The varying-hotspot-position scenario (Fig. 8b): periods A–D —
    /// uniform/50%, skew/50%, skew/100%, skew/100% with an id offset.
    pub fn position_shift(period_us: Time, skew: f64, offset: u32) -> Self {
        Schedule::Cycle(vec![
            PhaseCfg {
                duration_us: period_us,
                cross_ratio: 0.5,
                skew_factor: 0.0,
                offset: 0,
            },
            PhaseCfg {
                duration_us: period_us,
                cross_ratio: 0.5,
                skew_factor: skew,
                offset: 0,
            },
            PhaseCfg {
                duration_us: period_us,
                cross_ratio: 1.0,
                skew_factor: skew,
                offset: 0,
            },
            PhaseCfg {
                duration_us: period_us,
                cross_ratio: 1.0,
                skew_factor: skew,
                offset,
            },
        ])
    }

    /// Resolves the active phase at virtual time `now`.
    pub fn phase_at(&self, now: Time) -> PhaseCfg {
        match self {
            Schedule::Static {
                cross_ratio,
                skew_factor,
            } => PhaseCfg {
                duration_us: Time::MAX,
                cross_ratio: *cross_ratio,
                skew_factor: *skew_factor,
                offset: 0,
            },
            Schedule::Cycle(phases) => {
                debug_assert!(!phases.is_empty());
                let total: Time = phases.iter().map(|p| p.duration_us).sum();
                let mut t = now % total.max(1);
                for p in phases {
                    if t < p.duration_us {
                        return *p;
                    }
                    t -= p.duration_us;
                }
                *phases.last().expect("non-empty")
            }
        }
    }
}

/// YCSB configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct YcsbConfig {
    /// Total partitions (nodes × partitions/node).
    pub n_partitions: u32,
    /// Initial partitions per node (defines home nodes for skew targeting).
    pub partitions_per_node: u32,
    /// Rows per partition.
    pub keys_per_partition: u64,
    /// Operations per transaction (paper-standard: 10).
    pub ops_per_txn: usize,
    /// Fraction of read operations.
    pub read_ratio: f64,
    /// Intra-partition key skew θ (0 = uniform).
    pub key_theta: f64,
    /// Reserved: custom partner stride (0 = XOR-adjacent pairing). The
    /// default pairing maps partition `x` to `x ^ 1` after applying the
    /// phase offset: pairs are *disjoint* (partner(partner(p)) == p) and
    /// the two partitions of a pair always start on different home nodes
    /// under round-robin placement — stable, learnable co-access.
    pub partner_stride: u32,
    /// Access schedule.
    pub schedule: Schedule,
    /// RNG seed.
    pub seed: u64,
}

impl YcsbConfig {
    /// The paper's default setup for a given cluster shape.
    pub fn for_cluster(nodes: u32, partitions_per_node: u32, keys_per_partition: u64) -> Self {
        YcsbConfig {
            n_partitions: nodes * partitions_per_node,
            partitions_per_node,
            keys_per_partition,
            ops_per_txn: 10,
            read_ratio: 0.5,
            key_theta: 0.0,
            partner_stride: 0,
            schedule: Schedule::Static {
                cross_ratio: 0.0,
                skew_factor: 0.0,
            },
            seed: 0x5EED_EC5B,
        }
    }

    /// Sets a static cross-partition ratio and skew factor.
    pub fn with_mix(mut self, cross_ratio: f64, skew_factor: f64) -> Self {
        self.schedule = Schedule::Static {
            cross_ratio,
            skew_factor,
        };
        self
    }

    /// Sets a dynamic schedule.
    pub fn with_schedule(mut self, schedule: Schedule) -> Self {
        self.schedule = schedule;
        self
    }

    /// Overrides the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// The YCSB transaction generator.
pub struct YcsbWorkload {
    cfg: YcsbConfig,
    rng: SmallRng,
    key_dist: Zipf,
}

impl YcsbWorkload {
    /// Builds the generator.
    pub fn new(cfg: YcsbConfig) -> Self {
        assert!(
            cfg.n_partitions >= 2,
            "cross transactions need two partitions"
        );
        let key_dist = Zipf::new(cfg.keys_per_partition, cfg.key_theta);
        YcsbWorkload {
            rng: SmallRng::seed_from_u64(cfg.seed),
            cfg,
            key_dist,
        }
    }

    /// Configuration accessor.
    pub fn config(&self) -> &YcsbConfig {
        &self.cfg
    }

    /// Picks the "primary" partition of a transaction under the phase's
    /// skew: with probability `skew_factor`, one of the hot node's
    /// partitions; otherwise uniform.
    fn pick_partition(&mut self, phase: &PhaseCfg) -> u32 {
        let n = self.cfg.n_partitions;
        let ppn = self.cfg.partitions_per_node;
        let raw = if self.rng.gen::<f64>() < phase.skew_factor {
            // Hot node = node 0's initial partitions (ids ≡ 0 mod nodes
            // under round-robin: those are 0, nodes, 2*nodes, ...). We use
            // the first `ppn` partition ids whose home is node 0.
            let nodes = n / ppn;
            let slot = self.rng.gen_range(0..ppn);
            slot * nodes // id ≡ 0 (mod nodes) → home node 0
        } else {
            self.rng.gen_range(0..n)
        };
        (raw + phase.offset) % n
    }

    /// The deterministic partner of partition `p` (cross transactions).
    /// XOR-adjacent pairing in offset space: symmetric and disjoint, so the
    /// co-access graph decomposes into clumps of two that a placement can
    /// fully localize; the phase offset re-pairs partitions on hotspot
    /// shifts. A non-zero `partner_stride` selects legacy stride pairing.
    fn partner(&self, p: u32, phase: &PhaseCfg) -> u32 {
        let n = self.cfg.n_partitions;
        if self.cfg.partner_stride != 0 {
            return (p + self.cfg.partner_stride + phase.offset) % n;
        }
        let x = (p + phase.offset) % n;
        let y = x ^ 1;
        if y >= n {
            return p; // odd tail partition pairs with itself (single-part)
        }
        (y + n - (phase.offset % n)) % n
    }
}

impl Workload for YcsbWorkload {
    fn next_txn(&mut self, now: Time) -> TxnRequest {
        let phase = self.cfg.schedule.phase_at(now);
        let a = self.pick_partition(&phase);
        let cross = self.rng.gen::<f64>() < phase.cross_ratio;
        let b = if cross {
            Some(self.partner(a, &phase))
        } else {
            None
        };

        let mut ops = Vec::with_capacity(self.cfg.ops_per_txn);
        for i in 0..self.cfg.ops_per_txn {
            // Cross transactions keep most work at the home partition and
            // touch the partner with ~20% of their ops (so higher cross
            // ratios add coordination without offloading the hot node).
            let part = match b {
                Some(b) if i % 5 == 4 => b,
                _ => a,
            };
            let key = self.key_dist.sample_scrambled(&mut self.rng);
            let op = if self.rng.gen::<f64>() < self.cfg.read_ratio {
                Op::read(PartitionId(part), key)
            } else {
                Op::write(PartitionId(part), key)
            };
            ops.push(op);
        }
        TxnRequest::new(ops)
    }

    fn name(&self) -> &str {
        "ycsb"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> YcsbConfig {
        YcsbConfig::for_cluster(4, 12, 1000)
    }

    #[test]
    fn single_partition_when_cross_zero() {
        let mut w = YcsbWorkload::new(cfg().with_mix(0.0, 0.0));
        for _ in 0..200 {
            let t = w.next_txn(0);
            assert!(t.is_single_partition());
            assert_eq!(t.ops.len(), 10);
        }
    }

    #[test]
    fn cross_txns_access_exactly_two_partitions() {
        let mut w = YcsbWorkload::new(cfg().with_mix(1.0, 0.0));
        for _ in 0..200 {
            let t = w.next_txn(0);
            assert_eq!(t.partitions().len(), 2, "always two partitions (§VI-A.1)");
        }
    }

    #[test]
    fn partner_lands_on_a_different_home_node() {
        let w = YcsbWorkload::new(cfg().with_mix(1.0, 0.0));
        let phase = w.cfg.schedule.phase_at(0);
        let nodes = 4u32;
        for p in 0..48 {
            let q = w.partner(p, &phase);
            assert_ne!(
                p % nodes,
                q % nodes,
                "partner of {p} is {q}: same round-robin home"
            );
        }
    }

    #[test]
    fn pairing_is_symmetric_and_disjoint() {
        let w = YcsbWorkload::new(cfg().with_mix(1.0, 0.0));
        for offset in [0u32, 7, 16] {
            let phase = PhaseCfg {
                duration_us: 0,
                cross_ratio: 1.0,
                skew_factor: 0.0,
                offset,
            };
            for p in 0..48 {
                let q = w.partner(p, &phase);
                assert_eq!(
                    w.partner(q, &phase),
                    p,
                    "offset {offset}: partner not symmetric"
                );
            }
        }
    }

    #[test]
    fn offset_changes_the_pairing() {
        let w = YcsbWorkload::new(cfg().with_mix(1.0, 0.0));
        let a = PhaseCfg {
            duration_us: 0,
            cross_ratio: 1.0,
            skew_factor: 0.0,
            offset: 0,
        };
        let b = PhaseCfg {
            duration_us: 0,
            cross_ratio: 1.0,
            skew_factor: 0.0,
            offset: 7,
        };
        let changed = (0..48)
            .filter(|&p| w.partner(p, &a) != w.partner(p, &b))
            .count();
        assert!(
            changed > 24,
            "offset must re-pair most partitions: {changed}"
        );
    }

    #[test]
    fn skew_targets_one_node() {
        let mut w = YcsbWorkload::new(cfg().with_mix(0.0, 0.8));
        let nodes = 4;
        let mut on_hot = 0;
        const N: usize = 2000;
        for _ in 0..N {
            let t = w.next_txn(0);
            let p = t.partitions()[0].0;
            if p.is_multiple_of(nodes) {
                on_hot += 1;
            }
        }
        let frac = on_hot as f64 / N as f64;
        // 0.8 skew + 0.2*0.25 uniform → ~85% on node 0
        assert!(frac > 0.75, "hot-node share {frac}");
    }

    #[test]
    fn cross_ratio_statistics() {
        let mut w = YcsbWorkload::new(cfg().with_mix(0.5, 0.0));
        let mut cross = 0;
        const N: usize = 2000;
        for _ in 0..N {
            if w.next_txn(0).partitions().len() == 2 {
                cross += 1;
            }
        }
        let frac = cross as f64 / N as f64;
        assert!((frac - 0.5).abs() < 0.05, "cross share {frac}");
    }

    #[test]
    fn interval_shift_changes_accessed_partitions() {
        let sched = Schedule::interval_shift(60_000_000, 3, 16, 0.0);
        let cfg = cfg().with_schedule(sched);
        let mut w = YcsbWorkload::new(cfg);
        let collect = |w: &mut YcsbWorkload, at: Time| -> std::collections::HashSet<u32> {
            (0..300).map(|_| w.next_txn(at).partitions()[0].0).collect()
        };
        let phase0 = collect(&mut w, 0);
        let phase1 = collect(&mut w, 61_000_000);
        // both cover partitions, but the offset changes the mapping; with
        // uniform access over all 48 partitions both phases cover everything,
        // so instead check the schedule resolution directly:
        assert_eq!(w.cfg.schedule.phase_at(0).offset, 0);
        assert_eq!(w.cfg.schedule.phase_at(61_000_000).offset, 16);
        assert_eq!(w.cfg.schedule.phase_at(121_000_000).offset, 32);
        assert_eq!(w.cfg.schedule.phase_at(181_000_000).offset, 0, "cycles");
        assert!(!phase0.is_empty() && !phase1.is_empty());
    }

    #[test]
    fn position_shift_phases_match_paper_scenario() {
        let s = Schedule::position_shift(60_000_000, 0.8, 24);
        let a = s.phase_at(30_000_000);
        let b = s.phase_at(90_000_000);
        let c = s.phase_at(150_000_000);
        let d = s.phase_at(210_000_000);
        assert_eq!(
            (a.cross_ratio, a.skew_factor),
            (0.5, 0.0),
            "A: uniform, 50%"
        );
        assert_eq!((b.cross_ratio, b.skew_factor), (0.5, 0.8), "B: skew, 50%");
        assert_eq!((c.cross_ratio, c.skew_factor), (1.0, 0.8), "C: skew, 100%");
        assert_eq!(
            (d.cross_ratio, d.skew_factor, d.offset),
            (1.0, 0.8, 24),
            "D: shifted"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = YcsbWorkload::new(cfg().with_mix(0.5, 0.5).with_seed(9));
        let mut b = YcsbWorkload::new(cfg().with_mix(0.5, 0.5).with_seed(9));
        for _ in 0..50 {
            assert_eq!(a.next_txn(123).ops, b.next_txn(123).ops);
        }
    }
}
