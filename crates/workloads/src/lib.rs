//! # lion-workloads
//!
//! The two benchmarks of §VI-A.1 plus the dynamic-workload schedules of
//! §VI-C.2:
//!
//! * [`ycsb`] — YCSB with the paper's knobs: `skew_factor` (node-level skew:
//!   0.8 ⇒ 80% of transactions target one node's partitions), cross-partition
//!   ratio (cross transactions access exactly two partitions), and phase
//!   schedules for the changing-hotspot experiments (Figs. 8/10/12/13a);
//! * [`tpcc`] — TPC-C: 9 relations keyed into the partition-per-warehouse
//!   layout, NewOrder (with remote-warehouse items) and Payment generators;
//! * [`zipf`] — a YCSB-style Zipf(θ) generator for intra-partition key skew.

pub mod tpcc;
pub mod ycsb;
pub mod zipf;

pub use tpcc::{TpccConfig, TpccWorkload};
pub use ycsb::{PhaseCfg, Schedule, YcsbConfig, YcsbWorkload};
pub use zipf::Zipf;
