//! Zipf-distributed key generator (the YCSB "ScrambledZipfian" core).
//!
//! Implements the Gray et al. rejection-free algorithm with precomputed
//! `zeta(n, θ)`, the same construction YCSB uses. `θ = 0` degenerates to a
//! uniform distribution.

use rand::Rng;

/// Zipf(θ) sampler over `[0, n)`.
#[derive(Debug, Clone)]
pub struct Zipf {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    #[cfg_attr(not(test), allow(dead_code))]
    zeta2: f64,
}

impl Zipf {
    /// Creates a sampler over `n` items with skew `theta` (YCSB default
    /// 0.99; 0 = uniform).
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "need at least one item");
        assert!((0.0..1.0).contains(&theta), "theta in [0, 1)");
        if theta == 0.0 {
            return Zipf {
                n,
                theta,
                alpha: 0.0,
                zetan: 0.0,
                eta: 0.0,
                zeta2: 0.0,
            };
        }
        let zetan = Self::zeta(n, theta);
        let zeta2 = Self::zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Zipf {
            n,
            theta,
            alpha,
            zetan,
            eta,
            zeta2,
        }
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        // Exact sum for small n; integral approximation beyond, accurate to
        // well under 1% for the sizes used here.
        const EXACT: u64 = 100_000;
        let exact_n = n.min(EXACT);
        let mut sum = 0.0;
        for i in 1..=exact_n {
            sum += 1.0 / (i as f64).powf(theta);
        }
        if n > EXACT {
            // ∫ x^-θ dx from EXACT to n
            let a = 1.0 - theta;
            sum += ((n as f64).powf(a) - (EXACT as f64).powf(a)) / a;
        }
        sum
    }

    /// Number of items.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Draws one sample in `[0, n)`; rank 0 is the hottest item.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        if self.theta == 0.0 {
            return rng.gen_range(0..self.n);
        }
        let u: f64 = rng.gen();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let v = ((self.eta * u) - self.eta + 1.0).powf(self.alpha);
        ((self.n as f64) * v) as u64 % self.n
    }

    /// Draws a sample scattered over the key space (YCSB's scrambled
    /// variant) so that hot items are spread rather than clustered at 0.
    pub fn sample_scrambled<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let rank = self.sample(rng);
        // Fibonacci hashing as a cheap permutation.
        rank.wrapping_mul(0x9E37_79B9_7F4A_7C15) % self.n
    }

    /// The unused zeta(2) accessor keeps the struct self-describing.
    pub fn skew(&self) -> f64 {
        self.theta
    }

    #[cfg(test)]
    fn zeta2(&self) -> f64 {
        self.zeta2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_when_theta_zero() {
        let z = Zipf::new(100, 0.0);
        let mut rng = SmallRng::seed_from_u64(1);
        let mut counts = [0u32; 100];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        let min = *counts.iter().min().unwrap();
        let max = *counts.iter().max().unwrap();
        assert!(
            max < min * 2,
            "uniform spread expected: min {min}, max {max}"
        );
    }

    #[test]
    fn skewed_distribution_concentrates_on_low_ranks() {
        let z = Zipf::new(10_000, 0.99);
        let mut rng = SmallRng::seed_from_u64(2);
        let mut head = 0u32;
        const N: u32 = 50_000;
        for _ in 0..N {
            if z.sample(&mut rng) < 100 {
                head += 1;
            }
        }
        // With θ=0.99, the hottest 1% of items draw far more than 1% of
        // accesses (YCSB reference: >50%).
        assert!(
            head as f64 / N as f64 > 0.4,
            "head share {}",
            head as f64 / N as f64
        );
    }

    #[test]
    fn samples_stay_in_range() {
        for theta in [0.0, 0.5, 0.8, 0.99] {
            let z = Zipf::new(37, theta);
            let mut rng = SmallRng::seed_from_u64(3);
            for _ in 0..10_000 {
                assert!(z.sample(&mut rng) < 37);
                assert!(z.sample_scrambled(&mut rng) < 37);
            }
        }
    }

    #[test]
    fn zeta_integral_extension_is_close() {
        // compare approximate zeta against exact for a size just over the
        // exact cutoff
        let approx = Zipf::new(150_000, 0.9);
        let mut exact = 0.0;
        for i in 1..=150_000u64 {
            exact += 1.0 / (i as f64).powf(0.9);
        }
        assert!((approx.zetan - exact).abs() / exact < 0.01);
        assert!(approx.zeta2() > 0.0);
    }

    #[test]
    #[should_panic(expected = "theta in [0, 1)")]
    fn theta_one_rejected() {
        let _ = Zipf::new(10, 1.0);
    }
}
