//! TPC-C benchmark (§VI-A.1): 9 relations, partitioned by warehouse.
//!
//! "Its dataset comprises 9 relations ... By default, we allocate 24
//! warehouses per node. Specifically focusing on NewOrder transactions, the
//! benchmark emulates customers submitting orders to their local district
//! within a warehouse. We simulate scenarios where the same customer makes
//! purchases from different warehouses over time."
//!
//! Partition `w` holds warehouse `w`'s slice of every relation; composite
//! primary keys are packed into the engine's 64-bit key space with a
//! relation tag in the top byte. Row payload types with binary round-trip
//! encodings are provided for population and standalone use; the simulated
//! engine synthesizes write payloads of equivalent size.

use crate::zipf::Zipf;
use lion_common::{Key, Op, PartitionId, Time, TxnRequest, Workload};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The nine TPC-C relations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Relation {
    /// WAREHOUSE (1 row per partition).
    Warehouse = 1,
    /// DISTRICT (10 per warehouse).
    District = 2,
    /// CUSTOMER (per district).
    Customer = 3,
    /// HISTORY (append-only).
    History = 4,
    /// NEW-ORDER (insert per NewOrder).
    NewOrder = 5,
    /// ORDER (insert per NewOrder).
    Order = 6,
    /// ORDER-LINE (5–15 inserts per NewOrder).
    OrderLine = 7,
    /// ITEM (read-only catalogue, conceptually replicated).
    Item = 8,
    /// STOCK (per item per warehouse).
    Stock = 9,
}

impl Relation {
    fn from_tag(tag: u8) -> Option<Relation> {
        Some(match tag {
            1 => Relation::Warehouse,
            2 => Relation::District,
            3 => Relation::Customer,
            4 => Relation::History,
            5 => Relation::NewOrder,
            6 => Relation::Order,
            7 => Relation::OrderLine,
            8 => Relation::Item,
            9 => Relation::Stock,
            _ => return None,
        })
    }
}

/// Packs `(relation, a, b, c)` into a 64-bit key:
/// `[tag:8][a:16][b:24][c:16]`. Component ranges are asserted.
pub fn encode_key(rel: Relation, a: u64, b: u64, c: u64) -> Key {
    assert!(a < (1 << 16), "component a out of range");
    assert!(b < (1 << 24), "component b out of range");
    assert!(c < (1 << 16), "component c out of range");
    ((rel as u64) << 56) | (a << 40) | (b << 16) | c
}

/// Reverses [`encode_key`].
pub fn decode_key(key: Key) -> Option<(Relation, u64, u64, u64)> {
    let rel = Relation::from_tag((key >> 56) as u8)?;
    let a = (key >> 40) & 0xFFFF;
    let b = (key >> 16) & 0xFF_FFFF;
    let c = key & 0xFFFF;
    Some((rel, a, b, c))
}

// ---------------------------------------------------------------------
// Row payloads with binary round-trip encodings
// ---------------------------------------------------------------------

/// WAREHOUSE row (trimmed to the fields NewOrder/Payment touch).
#[derive(Debug, Clone, PartialEq)]
pub struct WarehouseRow {
    /// Warehouse id.
    pub w_id: u32,
    /// Sales tax.
    pub tax: f32,
    /// Year-to-date balance.
    pub ytd: f64,
    /// Name (fixed 10 bytes, zero-padded).
    pub name: [u8; 10],
}

/// DISTRICT row.
#[derive(Debug, Clone, PartialEq)]
pub struct DistrictRow {
    /// District id (1–10).
    pub d_id: u8,
    /// District tax.
    pub tax: f32,
    /// Year-to-date balance.
    pub ytd: f64,
    /// Next order number (the contended counter NewOrder increments).
    pub next_o_id: u32,
}

/// CUSTOMER row.
#[derive(Debug, Clone, PartialEq)]
pub struct CustomerRow {
    /// Customer id.
    pub c_id: u32,
    /// Discount rate.
    pub discount: f32,
    /// Balance.
    pub balance: f64,
    /// Last name (fixed 16 bytes, zero-padded).
    pub last: [u8; 16],
}

/// STOCK row.
#[derive(Debug, Clone, PartialEq)]
pub struct StockRow {
    /// Item id.
    pub i_id: u32,
    /// Quantity on hand (decremented by NewOrder).
    pub quantity: i32,
    /// Year-to-date units sold.
    pub ytd: u32,
    /// Orders served.
    pub order_cnt: u32,
}

macro_rules! impl_fixed_codec {
    ($ty:ident, $size:expr, |$row:ident, $buf:ident| $enc:block, |$data:ident| $dec:block) => {
        impl $ty {
            /// Encoded size in bytes.
            pub const SIZE: usize = $size;

            /// Serializes to a fixed-size buffer.
            pub fn to_bytes(&self) -> [u8; $size] {
                let $row = self;
                let mut $buf = [0u8; $size];
                $enc
                $buf
            }

            /// Deserializes; `None` on short input.
            pub fn from_bytes(data: &[u8]) -> Option<Self> {
                if data.len() < $size {
                    return None;
                }
                let $data = data;
                Some($dec)
            }
        }
    };
}

impl_fixed_codec!(
    WarehouseRow,
    26,
    |r, buf| {
        buf[0..4].copy_from_slice(&r.w_id.to_le_bytes());
        buf[4..8].copy_from_slice(&r.tax.to_le_bytes());
        buf[8..16].copy_from_slice(&r.ytd.to_le_bytes());
        buf[16..26].copy_from_slice(&r.name);
    },
    |d| {
        WarehouseRow {
            w_id: u32::from_le_bytes(d[0..4].try_into().ok()?),
            tax: f32::from_le_bytes(d[4..8].try_into().ok()?),
            ytd: f64::from_le_bytes(d[8..16].try_into().ok()?),
            name: d[16..26].try_into().ok()?,
        }
    }
);

impl_fixed_codec!(
    DistrictRow,
    17,
    |r, buf| {
        buf[0] = r.d_id;
        buf[1..5].copy_from_slice(&r.tax.to_le_bytes());
        buf[5..13].copy_from_slice(&r.ytd.to_le_bytes());
        buf[13..17].copy_from_slice(&r.next_o_id.to_le_bytes());
    },
    |d| {
        DistrictRow {
            d_id: d[0],
            tax: f32::from_le_bytes(d[1..5].try_into().ok()?),
            ytd: f64::from_le_bytes(d[5..13].try_into().ok()?),
            next_o_id: u32::from_le_bytes(d[13..17].try_into().ok()?),
        }
    }
);

impl_fixed_codec!(
    CustomerRow,
    32,
    |r, buf| {
        buf[0..4].copy_from_slice(&r.c_id.to_le_bytes());
        buf[4..8].copy_from_slice(&r.discount.to_le_bytes());
        buf[8..16].copy_from_slice(&r.balance.to_le_bytes());
        buf[16..32].copy_from_slice(&r.last);
    },
    |d| {
        CustomerRow {
            c_id: u32::from_le_bytes(d[0..4].try_into().ok()?),
            discount: f32::from_le_bytes(d[4..8].try_into().ok()?),
            balance: f64::from_le_bytes(d[8..16].try_into().ok()?),
            last: d[16..32].try_into().ok()?,
        }
    }
);

impl_fixed_codec!(
    StockRow,
    16,
    |r, buf| {
        buf[0..4].copy_from_slice(&r.i_id.to_le_bytes());
        buf[4..8].copy_from_slice(&r.quantity.to_le_bytes());
        buf[8..12].copy_from_slice(&r.ytd.to_le_bytes());
        buf[12..16].copy_from_slice(&r.order_cnt.to_le_bytes());
    },
    |d| {
        StockRow {
            i_id: u32::from_le_bytes(d[0..4].try_into().ok()?),
            quantity: i32::from_le_bytes(d[4..8].try_into().ok()?),
            ytd: u32::from_le_bytes(d[8..12].try_into().ok()?),
            order_cnt: u32::from_le_bytes(d[12..16].try_into().ok()?),
        }
    }
);

// ---------------------------------------------------------------------
// Workload generator
// ---------------------------------------------------------------------

/// TPC-C configuration (scaled-down defaults; paper: 24 warehouses/node).
#[derive(Debug, Clone, PartialEq)]
pub struct TpccConfig {
    /// Executor nodes.
    pub nodes: u32,
    /// Warehouses per node (= partitions per node).
    pub warehouses_per_node: u32,
    /// Districts per warehouse (TPC-C: 10).
    pub districts: u32,
    /// Customers per district (scaled from 3000).
    pub customers_per_district: u32,
    /// Catalogue items (scaled from 100k).
    pub items: u32,
    /// Fraction of transactions touching a remote warehouse (the paper's
    /// cross-partition ratio for TPC-C).
    pub remote_ratio: f64,
    /// Fraction of Payment transactions (0 = pure NewOrder, as §VI-A.1).
    pub payment_ratio: f64,
    /// Warehouse-level skew factor (targets node-0 warehouses).
    pub skew_factor: f64,
    /// Item-popularity skew θ.
    pub item_theta: f64,
    /// RNG seed.
    pub seed: u64,
}

impl TpccConfig {
    /// Scaled defaults for a cluster shape.
    pub fn for_cluster(nodes: u32, warehouses_per_node: u32) -> Self {
        TpccConfig {
            nodes,
            warehouses_per_node,
            districts: 10,
            customers_per_district: 120,
            items: 1_000,
            remote_ratio: 0.0,
            payment_ratio: 0.0,
            skew_factor: 0.0,
            item_theta: 0.3,
            seed: 0x79CC,
        }
    }

    /// Total warehouses (= partitions).
    pub fn n_warehouses(&self) -> u32 {
        self.nodes * self.warehouses_per_node
    }

    /// Sets the remote (cross-partition) ratio and skew.
    pub fn with_mix(mut self, remote_ratio: f64, skew_factor: f64) -> Self {
        self.remote_ratio = remote_ratio;
        self.skew_factor = skew_factor;
        self
    }

    /// Adds a Payment share to the mix.
    pub fn with_payment_ratio(mut self, ratio: f64) -> Self {
        self.payment_ratio = ratio;
        self
    }
}

/// The TPC-C transaction generator (NewOrder + optional Payment).
pub struct TpccWorkload {
    cfg: TpccConfig,
    rng: SmallRng,
    item_dist: Zipf,
    /// Per-(warehouse, district) next order id (the D_NEXT_O_ID counters).
    next_o_id: Vec<u32>,
    /// Per-warehouse history counter (HISTORY has no primary key in TPC-C).
    next_h_id: Vec<u32>,
}

impl TpccWorkload {
    /// Builds the generator.
    pub fn new(cfg: TpccConfig) -> Self {
        assert!(cfg.n_warehouses() >= 2);
        let item_dist = Zipf::new(cfg.items as u64, cfg.item_theta);
        let slots = (cfg.n_warehouses() * cfg.districts) as usize;
        TpccWorkload {
            rng: SmallRng::seed_from_u64(cfg.seed),
            item_dist,
            next_o_id: vec![1; slots],
            next_h_id: vec![1; cfg.n_warehouses() as usize],
            cfg,
        }
    }

    /// Configuration accessor.
    pub fn config(&self) -> &TpccConfig {
        &self.cfg
    }

    fn pick_warehouse(&mut self) -> u32 {
        let n = self.cfg.n_warehouses();
        if self.rng.gen::<f64>() < self.cfg.skew_factor {
            let slot = self.rng.gen_range(0..self.cfg.warehouses_per_node);
            slot * self.cfg.nodes // home node 0 under round-robin
        } else {
            self.rng.gen_range(0..n)
        }
    }

    /// Deterministic remote partner (a warehouse on another node), so the
    /// "same customer purchases from different warehouses" pattern is stable
    /// and learnable. XOR-adjacent pairing keeps the co-access graph a set
    /// of disjoint warehouse pairs, with the two warehouses of a pair on
    /// different home nodes under round-robin placement.
    fn partner_warehouse(&self, w: u32) -> u32 {
        let n = self.cfg.n_warehouses();
        let q = w ^ 1;
        if q >= n {
            return w;
        }
        q
    }

    fn new_order(&mut self) -> TxnRequest {
        let w = self.pick_warehouse();
        let d = self.rng.gen_range(0..self.cfg.districts) as u64;
        let c = self.rng.gen_range(0..self.cfg.customers_per_district) as u64;
        let home = PartitionId(w);
        let remote = self.rng.gen::<f64>() < self.cfg.remote_ratio;
        let supply_w = if remote { self.partner_warehouse(w) } else { w };

        let slot = (w * self.cfg.districts + d as u32) as usize;
        let o_id = self.next_o_id[slot] as u64 & 0xFF_FFFF;
        self.next_o_id[slot] = self.next_o_id[slot].wrapping_add(1);

        let mut ops = Vec::with_capacity(24);
        // SELECT w_tax FROM warehouse; SELECT+UPDATE district (next_o_id).
        ops.push(Op::read(home, encode_key(Relation::Warehouse, 0, 0, 0)));
        ops.push(Op::read(home, encode_key(Relation::District, d, 0, 0)));
        ops.push(Op::write(home, encode_key(Relation::District, d, 0, 0)));
        ops.push(Op::read(home, encode_key(Relation::Customer, d, c, 0)));

        let ol_cnt = self.rng.gen_range(5..=15u64);
        for ol in 0..ol_cnt {
            let item = self.item_dist.sample_scrambled(&mut self.rng) & 0xFF_FFFF;
            // ITEM is a replicated read-only catalogue: read locally.
            ops.push(Op::read(home, encode_key(Relation::Item, 0, item, 0)));
            // 10% of lines of a remote transaction hit the remote stock
            // (at least one guaranteed), matching TPC-C's remote item rule.
            let line_remote = remote && (ol == 0 || self.rng.gen::<f64>() < 0.1);
            let sw = if line_remote { supply_w } else { w };
            let spart = PartitionId(sw);
            ops.push(Op::read(spart, encode_key(Relation::Stock, 0, item, 0)));
            ops.push(Op::write(spart, encode_key(Relation::Stock, 0, item, 0)));
            // INSERT order-line.
            ops.push(Op::write(
                home,
                encode_key(Relation::OrderLine, d, o_id, ol),
            ));
        }
        // INSERT order + new-order rows.
        ops.push(Op::write(home, encode_key(Relation::Order, d, o_id, 0)));
        ops.push(Op::write(home, encode_key(Relation::NewOrder, d, o_id, 0)));
        TxnRequest::new(ops)
    }

    fn payment(&mut self) -> TxnRequest {
        let w = self.pick_warehouse();
        let d = self.rng.gen_range(0..self.cfg.districts) as u64;
        let c = self.rng.gen_range(0..self.cfg.customers_per_district) as u64;
        let home = PartitionId(w);
        // 15% of payments are for a customer of a remote warehouse.
        let remote = self.rng.gen::<f64>() < self.cfg.remote_ratio * 0.15;
        let cw = if remote { self.partner_warehouse(w) } else { w };
        let cpart = PartitionId(cw);

        let h = self.next_h_id[w as usize] as u64 & 0xFF_FFFF;
        self.next_h_id[w as usize] = self.next_h_id[w as usize].wrapping_add(1);

        let mut ops = Vec::with_capacity(8);
        ops.push(Op::read(home, encode_key(Relation::Warehouse, 0, 0, 0)));
        ops.push(Op::write(home, encode_key(Relation::Warehouse, 0, 0, 0)));
        ops.push(Op::read(home, encode_key(Relation::District, d, 0, 0)));
        ops.push(Op::write(home, encode_key(Relation::District, d, 0, 0)));
        ops.push(Op::read(cpart, encode_key(Relation::Customer, d, c, 0)));
        ops.push(Op::write(cpart, encode_key(Relation::Customer, d, c, 0)));
        ops.push(Op::write(home, encode_key(Relation::History, d, h, 0)));
        TxnRequest::new(ops)
    }
}

impl Workload for TpccWorkload {
    fn next_txn(&mut self, _now: Time) -> TxnRequest {
        if self.rng.gen::<f64>() < self.cfg.payment_ratio {
            self.payment()
        } else {
            self.new_order()
        }
    }

    fn name(&self) -> &str {
        "tpcc"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> TpccConfig {
        TpccConfig::for_cluster(4, 6)
    }

    #[test]
    fn key_encoding_roundtrip() {
        for (rel, a, b, c) in [
            (Relation::Warehouse, 0u64, 0u64, 0u64),
            (Relation::District, 9, 0, 0),
            (Relation::Customer, 9, 2999, 0),
            (Relation::OrderLine, 3, 123_456, 14),
            (Relation::Stock, 0, 99_999, 0),
        ] {
            let k = encode_key(rel, a, b, c);
            assert_eq!(decode_key(k), Some((rel, a, b, c)));
        }
        assert_eq!(decode_key(0), None, "tag 0 is invalid");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn key_component_overflow_panics() {
        let _ = encode_key(Relation::Customer, 1 << 17, 0, 0);
    }

    #[test]
    fn row_codecs_roundtrip() {
        let w = WarehouseRow {
            w_id: 7,
            tax: 0.06,
            ytd: 300_000.0,
            name: *b"WAREHOUSE7",
        };
        assert_eq!(WarehouseRow::from_bytes(&w.to_bytes()), Some(w.clone()));
        let d = DistrictRow {
            d_id: 3,
            tax: 0.01,
            ytd: 30_000.0,
            next_o_id: 3001,
        };
        assert_eq!(DistrictRow::from_bytes(&d.to_bytes()), Some(d.clone()));
        let c = CustomerRow {
            c_id: 42,
            discount: 0.3,
            balance: -10.0,
            last: *b"BARBARBAR\0\0\0\0\0\0\0",
        };
        assert_eq!(CustomerRow::from_bytes(&c.to_bytes()), Some(c.clone()));
        let s = StockRow {
            i_id: 11,
            quantity: 91,
            ytd: 100,
            order_cnt: 5,
        };
        assert_eq!(StockRow::from_bytes(&s.to_bytes()), Some(s.clone()));
        assert_eq!(StockRow::from_bytes(&[0u8; 3]), None, "short input");
    }

    #[test]
    fn local_new_orders_are_single_partition() {
        let mut w = TpccWorkload::new(cfg());
        for _ in 0..100 {
            let t = w.next_txn(0);
            assert!(t.is_single_partition(), "remote_ratio 0 ⇒ single warehouse");
            // NewOrder shape: ≥ 4 header ops + 4 per line × ≥5 lines + 2.
            assert!(t.ops.len() >= 4 + 5 * 4 + 2, "got {} ops", t.ops.len());
        }
    }

    #[test]
    fn remote_new_orders_touch_partner_warehouse() {
        let mut w = TpccWorkload::new(cfg().with_mix(1.0, 0.0));
        let mut multi = 0;
        for _ in 0..100 {
            let t = w.next_txn(0);
            let parts = t.partitions();
            if parts.len() == 2 {
                multi += 1;
                let (a, b) = (parts[0].0, parts[1].0);
                let (home, partner) = if w.partner_warehouse(a) == b {
                    (a, b)
                } else {
                    (b, a)
                };
                assert_eq!(w.partner_warehouse(home), partner);
                assert_ne!(home % 4, partner % 4, "partner on another node");
            }
        }
        assert!(
            multi >= 95,
            "nearly all remote orders span two warehouses: {multi}"
        );
    }

    #[test]
    fn district_counter_generates_distinct_orders() {
        let mut w = TpccWorkload::new(cfg());
        let mut order_keys = std::collections::HashSet::new();
        for _ in 0..50 {
            let t = w.next_txn(0);
            for op in &t.ops {
                if let Some((Relation::Order, ..)) = decode_key(op.key) {
                    assert!(
                        order_keys.insert((op.partition, op.key)),
                        "order keys must never repeat"
                    );
                }
            }
        }
    }

    #[test]
    fn payment_mix_produces_both_types() {
        let mut w = TpccWorkload::new(cfg().with_payment_ratio(0.5));
        let mut payments = 0;
        let mut neworders = 0;
        for _ in 0..200 {
            let t = w.next_txn(0);
            let has_history = t
                .ops
                .iter()
                .any(|o| matches!(decode_key(o.key), Some((Relation::History, ..))));
            if has_history {
                payments += 1;
            } else {
                neworders += 1;
            }
        }
        assert!(
            payments > 50 && neworders > 50,
            "payments={payments} neworders={neworders}"
        );
    }

    #[test]
    fn skew_concentrates_on_node_zero_warehouses() {
        let mut w = TpccWorkload::new(cfg().with_mix(0.0, 0.8));
        let mut hot = 0;
        for _ in 0..1000 {
            let t = w.next_txn(0);
            if t.partitions()[0].0.is_multiple_of(4) {
                hot += 1;
            }
        }
        assert!(hot > 750, "hot-node share {hot}/1000");
    }
}
