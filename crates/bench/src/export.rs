//! `--export`: collects every [`RunReport`] the harness produces as JSONL.
//!
//! [`crate::harness::run_job`] records each finished report here; after the
//! requested experiments complete, `lion-bench` writes one JSON object per
//! line (see `RunReport::to_json`) to the requested path. Worker threads
//! finish in host-scheduling order, so lines are sorted before writing —
//! the file is deterministic for a fixed experiment selection even though
//! the sweep executor is parallel.

use lion_engine::RunReport;
use std::sync::Mutex;

static COLLECTED: Mutex<Vec<String>> = Mutex::new(Vec::new());

/// Records one finished run. Called by the harness for every job; the cost
/// is one JSON serialization, negligible next to the run itself.
pub fn record(report: &RunReport) {
    let line = report.to_json();
    COLLECTED.lock().expect("export collector").push(line);
}

/// Drains everything recorded so far as a deterministic JSONL document
/// (lines sorted, trailing newline). Empty string when nothing ran.
pub fn drain_jsonl() -> String {
    let mut lines = std::mem::take(&mut *COLLECTED.lock().expect("export collector"));
    if lines.is_empty() {
        return String::new();
    }
    lines.sort_unstable();
    let mut out = lines.join("\n");
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{base_sim, run_job, Job, ProtoKind, WorkloadSpec};
    use lion_workloads::YcsbConfig;

    #[test]
    fn harness_runs_are_collected_and_drain_as_jsonl() {
        drop(drain_jsonl()); // isolate from any earlier test's leftovers
        let mut sim = base_sim(2);
        sim.partitions_per_node = 2;
        sim.keys_per_partition = 256;
        sim.clients_per_node = 2;
        let job = Job::new(
            "export-smoke",
            ProtoKind::TwoPc,
            sim,
            WorkloadSpec::Ycsb(
                YcsbConfig::for_cluster(2, 2, 256)
                    .with_mix(0.0, 0.0)
                    .with_seed(3),
            ),
            100_000,
        );
        let report = run_job(&job);
        let doc = drain_jsonl();
        let lines: Vec<&str> = doc.lines().filter(|l| l.contains("export-smoke")).collect();
        assert_eq!(lines.len(), 1, "one line per run");
        let parsed = lion_obs::json::parse(lines[0]).expect("valid JSON line");
        assert_eq!(
            parsed.get("commits").unwrap().as_num(),
            Some(report.commits as f64)
        );
        assert!(parsed.get("node_rollups").unwrap().as_arr().is_some());
        // Drained means drained.
        assert!(!drain_jsonl().contains("export-smoke"));
    }
}
