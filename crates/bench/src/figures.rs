//! One experiment per paper table/figure (§VI). Each function assembles the
//! sweep, runs it on the pool, and renders the same rows/series the paper
//! plots.

use crate::harness::{
    base_sim, run_all, run_job, tpcc_spec, ycsb_sched_spec, ycsb_spec, Job, ProtoKind, Scale,
    WorkloadSpec,
};
use lion_core::LionConfig;
use lion_engine::RunReport;
use lion_workloads::Schedule;
use std::fmt::Write as _;

/// Cross-partition sweep points (% of cross-partition transactions).
const CROSS_POINTS: [f64; 5] = [0.0, 0.2, 0.5, 0.8, 1.0];

fn kilo(v: f64) -> String {
    format!("{:>8.1}", v / 1000.0)
}

/// Renders a protocols × sweep matrix of throughputs (k txn/s).
fn matrix(title: &str, cols: &[String], rows: &[(&str, Vec<&RunReport>)]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== {title}");
    let _ = write!(out, "{:<10}", "protocol");
    for c in cols {
        let _ = write!(out, "{c:>9}");
    }
    let _ = writeln!(out, "   (throughput, k txn/s)");
    for (name, reports) in rows {
        let _ = write!(out, "{name:<10}");
        for r in reports {
            let _ = write!(out, " {}", kilo(r.throughput_tps));
        }
        let _ = writeln!(out);
    }
    out
}

fn sweep_jobs(
    protos: &[ProtoKind],
    mk_workload: impl Fn(f64, u64) -> WorkloadSpec,
    nodes: usize,
    horizon: u64,
) -> (Vec<Job>, Vec<String>) {
    let mut jobs = Vec::new();
    let cols: Vec<String> = CROSS_POINTS
        .iter()
        .map(|c| format!("{:.0}%", c * 100.0))
        .collect();
    for proto in protos {
        for (i, &cross) in CROSS_POINTS.iter().enumerate() {
            jobs.push(Job::new(
                format!("{}/{}", proto.label(), cols[i]),
                *proto,
                base_sim(nodes),
                mk_workload(cross, 1000 + i as u64),
                horizon,
            ));
        }
    }
    (jobs, cols)
}

fn render_sweep(
    title: &str,
    protos: &[ProtoKind],
    cols: Vec<String>,
    reports: &[RunReport],
) -> String {
    let per = cols.len();
    let rows: Vec<(&str, Vec<&RunReport>)> = protos
        .iter()
        .enumerate()
        .map(|(pi, p)| {
            (
                p.label(),
                reports[pi * per..(pi + 1) * per].iter().collect(),
            )
        })
        .collect();
    matrix(title, &cols, &rows)
}

// ---------------------------------------------------------------------
// Tables
// ---------------------------------------------------------------------

/// Table I: the qualitative comparison matrix (static content).
pub fn table1() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== Table I: comparison of Lion with existing approaches"
    );
    let _ = writeln!(
        out,
        "{:<10} {:<26} {:<9} {:<11} {:<10} {:<12}",
        "system", "key design", "adaptive", "mig.-free", "balanced", "constraints"
    );
    for (sys, design, ad, mf, lb, cons) in [
        (
            "2PC",
            "distributed transactions",
            "n/a",
            "n/a",
            "n/a",
            "none",
        ),
        ("Schism", "offline repartitioning", "no", "no", "yes", "n/a"),
        ("Leap", "aggressive migration", "yes", "no", "no", "n/a"),
        ("Clay", "periodical migration", "yes", "no", "yes", "n/a"),
        (
            "Hermes",
            "deterministic migration",
            "yes",
            "no",
            "yes",
            "in batches",
        ),
        ("Star", "full replication", "no", "yes", "no", "in batches"),
        ("Lion", "adaptive replication", "yes", "yes", "yes", "none"),
    ] {
        let _ = writeln!(
            out,
            "{sys:<10} {design:<26} {ad:<9} {mf:<11} {lb:<10} {cons:<12}"
        );
    }
    out
}

/// Table II: the ablation variant settings, straight from the configs.
pub fn table2() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== Table II: ablation variants");
    let _ = writeln!(
        out,
        "{:<10} {:<22} {:<11} {:<6}",
        "variant", "partitioning", "prediction", "batch"
    );
    let _ = writeln!(out, "{:<10} {:<22} {:<11} {:<6}", "2PC", "-", "-", "-");
    for cfg in LionConfig::all_variants() {
        let part = match cfg.partitioning {
            lion_core::Partitioning::Rearrange => "replica rearrangement",
            lion_core::Partitioning::Schism => "Schism",
        };
        let _ = writeln!(
            out,
            "{:<10} {:<22} {:<11} {:<6}",
            cfg.name,
            part,
            if cfg.prediction { "yes" } else { "-" },
            if cfg.batch { "yes" } else { "-" }
        );
    }
    out
}

// ---------------------------------------------------------------------
// Fig. 6: ablation, uniform YCSB, cross-partition sweep
// ---------------------------------------------------------------------

/// Fig. 6: throughput of every ablation variant vs cross-partition ratio.
pub fn fig6(scale: Scale) -> String {
    let protos = ProtoKind::ablation_set();
    let (jobs, cols) = sweep_jobs(&protos, |c, s| ycsb_spec(4, c, 0.0, s), 4, scale.steady_us);
    let reports = run_all(jobs);
    render_sweep("Fig. 6: ablation (uniform YCSB)", &protos, cols, &reports)
}

// ---------------------------------------------------------------------
// Fig. 7 / Fig. 9: cross-partition sweeps, skewed YCSB + TPC-C
// ---------------------------------------------------------------------

/// Fig. 7: standard-execution protocols, skewed workloads.
pub fn fig7(scale: Scale) -> String {
    let protos = ProtoKind::standard_set();
    let (jobs_a, cols) = sweep_jobs(&protos, |c, s| ycsb_spec(4, c, 0.8, s), 4, scale.steady_us);
    let (jobs_b, _) = sweep_jobs(&protos, |c, _| tpcc_spec(4, c, 0.8), 4, scale.steady_us);
    let ra = run_all(jobs_a);
    let rb = run_all(jobs_b);
    let mut out = render_sweep(
        "Fig. 7a: skewed YCSB (standard)",
        &protos,
        cols.clone(),
        &ra,
    );
    out.push_str(&render_sweep(
        "Fig. 7b: skewed TPC-C (standard)",
        &protos,
        cols,
        &rb,
    ));
    out
}

/// Fig. 9: batch-execution protocols, skewed workloads.
pub fn fig9(scale: Scale) -> String {
    let protos = ProtoKind::batch_set();
    let (jobs_a, cols) = sweep_jobs(&protos, |c, s| ycsb_spec(4, c, 0.8, s), 4, scale.steady_us);
    let (jobs_b, _) = sweep_jobs(&protos, |c, _| tpcc_spec(4, c, 0.8), 4, scale.steady_us);
    let ra = run_all(jobs_a);
    let rb = run_all(jobs_b);
    let mut out = render_sweep("Fig. 9a: skewed YCSB (batch)", &protos, cols.clone(), &ra);
    out.push_str(&render_sweep(
        "Fig. 9b: skewed TPC-C (batch)",
        &protos,
        cols,
        &rb,
    ));
    out
}

// ---------------------------------------------------------------------
// Fig. 8 / Fig. 10: dynamic workloads (throughput over time)
// ---------------------------------------------------------------------

fn timeline(title: &str, protos: &[ProtoKind], reports: &[RunReport]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== {title} (k txn/s per second)");
    let secs = reports
        .iter()
        .map(|r| r.throughput_series.len())
        .max()
        .unwrap_or(0);
    let _ = write!(out, "{:<10}", "t(s)");
    for s in 0..secs {
        let _ = write!(out, "{s:>7}");
    }
    let _ = writeln!(out);
    for (p, r) in protos.iter().zip(reports) {
        let _ = write!(out, "{:<10}", p.label());
        for s in 0..secs {
            let v = r.throughput_series.get(s).copied().unwrap_or(0.0);
            let _ = write!(out, "{:>7.0}", v / 1000.0);
        }
        let _ = writeln!(out);
    }
    out
}

fn dynamic_jobs(protos: &[ProtoKind], schedule: Schedule, horizon: u64) -> Vec<Job> {
    protos
        .iter()
        .map(|p| {
            Job::new(
                p.label(),
                *p,
                base_sim(4),
                ycsb_sched_spec(4, schedule.clone(), 77),
                horizon,
            )
        })
        .collect()
}

/// Fig. 8: dynamic workloads, standard protocols.
pub fn fig8(scale: Scale) -> String {
    let protos = ProtoKind::standard_set();
    let period = scale.period_us;
    let horizon = period * 4;
    let a = run_all(dynamic_jobs(
        &protos,
        Schedule::interval_shift(period, 3, 9, 0.5),
        horizon,
    ));
    let b = run_all(dynamic_jobs(
        &protos,
        Schedule::position_shift(period, 0.8, 16),
        horizon,
    ));
    let mut out = timeline(
        &format!(
            "Fig. 8a: varying hotspot interval (period {}s)",
            period / 1_000_000
        ),
        &protos,
        &a,
    );
    out.push_str(&timeline(
        &format!(
            "Fig. 8b: varying hotspot position A-D (period {}s)",
            period / 1_000_000
        ),
        &protos,
        &b,
    ));
    out
}

/// Fig. 10: dynamic workloads, batch protocols.
pub fn fig10(scale: Scale) -> String {
    let protos = ProtoKind::batch_set();
    let period = scale.period_us;
    let horizon = period * 4;
    let a = run_all(dynamic_jobs(
        &protos,
        Schedule::interval_shift(period, 3, 9, 0.5),
        horizon,
    ));
    let b = run_all(dynamic_jobs(
        &protos,
        Schedule::position_shift(period, 0.8, 16),
        horizon,
    ));
    let mut out = timeline(
        &format!(
            "Fig. 10a: varying hotspot interval, batch (period {}s)",
            period / 1_000_000
        ),
        &protos,
        &a,
    );
    out.push_str(&timeline(
        &format!(
            "Fig. 10b: varying hotspot position A-D, batch (period {}s)",
            period / 1_000_000
        ),
        &protos,
        &b,
    ));
    out
}

// ---------------------------------------------------------------------
// Fig. 11: scalability
// ---------------------------------------------------------------------

/// Fig. 11: throughput vs node count (100% cross, uniform).
pub fn fig11(scale: Scale) -> String {
    let sizes = [4usize, 6, 8, 10];
    let mut out = String::new();
    for (title, protos) in [
        (
            "Fig. 11a: scalability (standard)",
            ProtoKind::standard_set(),
        ),
        ("Fig. 11b: scalability (batch)", ProtoKind::batch_set()),
    ] {
        let mut jobs = Vec::new();
        for proto in &protos {
            for &n in &sizes {
                jobs.push(Job::new(
                    format!("{}/{}", proto.label(), n),
                    *proto,
                    base_sim(n),
                    ycsb_spec(n as u32, 1.0, 0.0, 42),
                    scale.steady_us,
                ));
            }
        }
        let reports = run_all(jobs);
        let cols: Vec<String> = sizes.iter().map(|n| format!("{n} nodes")).collect();
        let rows: Vec<(&str, Vec<&RunReport>)> = protos
            .iter()
            .enumerate()
            .map(|(pi, p)| {
                (
                    p.label(),
                    reports[pi * sizes.len()..(pi + 1) * sizes.len()]
                        .iter()
                        .collect(),
                )
            })
            .collect();
        out.push_str(&matrix(title, &cols, &rows));
        // scalability factor: T(10)/T(4)
        for (name, rs) in &rows {
            let f = rs.last().expect("sizes").throughput_tps
                / rs.first().expect("sizes").throughput_tps.max(1.0);
            let _ = writeln!(out, "   {name:<10} speedup 4→10 nodes: {f:.2}x");
        }
    }
    out
}

// ---------------------------------------------------------------------
// Fig. 12: migration/remastering analysis (adaptation timeline)
// ---------------------------------------------------------------------

/// Fig. 12: Lion's adaptation timeline — throughput and network bytes per
/// transaction around a predicted workload switch.
pub fn fig12(scale: Scale) -> String {
    let period = scale.period_us * 2;
    let sched = Schedule::Cycle(vec![
        lion_workloads::PhaseCfg {
            duration_us: period,
            cross_ratio: 0.8,
            skew_factor: 0.0,
            offset: 0,
        },
        lion_workloads::PhaseCfg {
            duration_us: period,
            cross_ratio: 0.8,
            skew_factor: 0.0,
            offset: 9,
        },
    ]);
    let job = Job::new(
        "Lion",
        ProtoKind::LionStd,
        base_sim(4),
        ycsb_sched_spec(4, sched, 78),
        period * 2,
    );
    let r = run_job(&job);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== Fig. 12: adaptation analysis (workload switch at t={}s)",
        period / 1_000_000
    );
    let _ = writeln!(out, "{:<6} {:>12} {:>14}", "t(s)", "ktxn/s", "bytes/txn");
    for (s, (tput, bpt)) in r
        .throughput_series
        .iter()
        .zip(&r.bytes_per_txn_series)
        .enumerate()
    {
        let _ = writeln!(out, "{:<6} {:>12.1} {:>14.0}", s, tput / 1000.0, bpt);
    }
    let _ = writeln!(
        out,
        "total remasters: {}  replica adds: {}",
        r.remasters, r.replica_adds
    );
    out
}

// ---------------------------------------------------------------------
// Fig. 13: prediction + batch-optimization analysis
// ---------------------------------------------------------------------

/// Fig. 13a: adaptation with and without the predictor.
pub fn fig13a(scale: Scale) -> String {
    let period = scale.period_us;
    let sched = Schedule::interval_shift(period, 3, 9, 1.0);
    let jobs = vec![
        Job::new(
            "Baseline",
            ProtoKind::LionR,
            base_sim(4),
            ycsb_sched_spec(4, sched.clone(), 79),
            period * 6,
        ),
        Job::new(
            "With Predictor",
            ProtoKind::LionRW,
            base_sim(4),
            ycsb_sched_spec(4, sched, 79),
            period * 6,
        ),
    ];
    let reports = run_all(jobs);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== Fig. 13a: impact of pre-replication (k txn/s per second)"
    );
    let secs = reports[0]
        .throughput_series
        .len()
        .max(reports[1].throughput_series.len());
    let _ = write!(out, "{:<16}", "t(s)");
    for s in 0..secs {
        let _ = write!(out, "{s:>6}");
    }
    let _ = writeln!(out);
    for r in &reports {
        let _ = write!(out, "{:<16}", r.protocol);
        for s in 0..secs {
            let v = r.throughput_series.get(s).copied().unwrap_or(0.0);
            let _ = write!(out, "{:>6.0}", v / 1000.0);
        }
        let _ = writeln!(out);
    }
    let _ = writeln!(
        out,
        "total commits: baseline {} vs with-predictor {}",
        reports[0].commits, reports[1].commits
    );
    out
}

/// Fig. 13b: throughput vs remastering duration, non-batch vs batch.
pub fn fig13b(scale: Scale) -> String {
    let delays = [500u64, 1_500, 2_000, 3_000, 3_500];
    let mut jobs = Vec::new();
    for proto in [ProtoKind::LionStd, ProtoKind::LionFull] {
        for &d in &delays {
            jobs.push(Job::new(
                format!("{}/{}", proto.label(), d),
                proto,
                base_sim(4).with_remaster_delay(d),
                ycsb_spec(4, 0.8, 0.5, 80),
                scale.steady_us,
            ));
        }
    }
    let reports = run_all(jobs);
    let cols: Vec<String> = delays.iter().map(|d| format!("{d}us")).collect();
    let rows = vec![
        ("Non-batch", reports[..delays.len()].iter().collect()),
        ("Batch", reports[delays.len()..].iter().collect()),
    ];
    matrix("Fig. 13b: impact of remastering duration", &cols, &rows)
}

// ---------------------------------------------------------------------
// Fig. 14: latency + phase breakdown
// ---------------------------------------------------------------------

/// Fig. 14: latency percentiles (a) and normalized phase breakdown (b) for
/// the batch protocols.
pub fn fig14(scale: Scale) -> String {
    let protos = ProtoKind::batch_set();
    let jobs: Vec<Job> = protos
        .iter()
        .map(|p| {
            Job::new(
                p.label(),
                *p,
                base_sim(4),
                ycsb_spec(4, 0.5, 0.0, 81),
                scale.steady_us,
            )
        })
        .collect();
    let reports = run_all(jobs);
    let mut out = String::new();
    let _ = writeln!(out, "== Fig. 14a: latency percentiles (us)");
    let _ = writeln!(
        out,
        "{:<10} {:>8} {:>8} {:>8} {:>10}",
        "protocol", "p10", "p50", "p95", "p50/floor"
    );
    for r in &reports {
        // p50 as a multiple of the network latency floor (the cheapest
        // possible cross-node commit round trip) — a topology-independent
        // view of protocol overhead.
        let _ = writeln!(
            out,
            "{:<10} {:>8} {:>8} {:>8} {:>9.1}x",
            r.protocol, r.latency_p[0], r.latency_p[1], r.latency_p[2], r.p50_floor_x
        );
    }
    let _ = writeln!(out, "\n== Fig. 14b: normalized runtime breakdown");
    for r in &reports {
        let _ = writeln!(out, "{}", r.phase_row());
    }
    out
}

// ---------------------------------------------------------------------
// Fig. F1: throughput under node failure (fault-injection subsystem)
// ---------------------------------------------------------------------

/// Fig. F1: goodput under a node crash + recovery, Lion vs the baselines.
///
/// A deterministic [`lion_engine::FaultPlan`] crashes N1 one third into the
/// run and restarts it at two thirds. Lion's adaptively provisioned
/// secondaries double as warm standbys, so its partitions fail over by
/// promotion (priced like remastering); systems are compared on goodput
/// dip/ramp, per-partition recovery latency, and total unavailability.
pub fn fig_f1(scale: Scale) -> String {
    use lion_common::NodeId;
    let horizon = scale.steady_us * 3;
    let crash_at = horizon / 3;
    let recover_at = 2 * horizon / 3;
    let faults = lion_engine::FaultPlan::single_failure(crash_at, NodeId(1), recover_at);
    let protos = [
        ProtoKind::LionStd,
        ProtoKind::TwoPc,
        ProtoKind::Star,
        ProtoKind::Calvin,
        ProtoKind::Hermes,
    ];
    let jobs: Vec<Job> = protos
        .iter()
        .map(|p| {
            Job::new(
                p.label(),
                *p,
                base_sim(4),
                ycsb_spec(4, 0.5, 0.0, 90),
                horizon,
            )
            .with_faults(faults.clone())
        })
        .collect();
    let reports = run_all(jobs);

    let mut out = String::new();
    let _ = writeln!(
        out,
        "== Fig. F1: throughput under node failure (crash N1 at t={}s, recover at t={}s)",
        crash_at / 1_000_000,
        recover_at / 1_000_000
    );
    out.push_str(&timeline("Fig. F1a: goodput timeline", &protos, &reports));
    let _ = writeln!(out, "\n== Fig. F1b: recovery analysis");
    for r in &reports {
        let _ = writeln!(out, "{}", r.failover_row());
    }
    let _ = writeln!(
        out,
        "\n== Fig. F1c: goodput ramp (time to 80% of pre-crash goodput)"
    );
    for r in &reports {
        let ramp = r
            .recovery_ramp_us(crash_at, crash_at, 0.8)
            .map(|us| format!("{:.1} ms", us as f64 / 1000.0))
            .unwrap_or_else(|| "never".into());
        let _ = writeln!(out, "{:<10} {}", r.protocol, ramp);
    }
    out
}

// ---------------------------------------------------------------------
// Fig. F2: the locality-vs-availability frontier (failure domains)
// ---------------------------------------------------------------------

/// Fig. F2: LocalityFirst vs RackSafe placement under a single-zone loss.
///
/// A 4-node cluster is split into two racks (Z0 = {N0,N1}, Z1 = {N2,N3})
/// with a cross-zone latency surcharge; a deterministic
/// [`lion_engine::FaultPlan`] kills rack Z1 one third into the run and
/// restores it at two thirds. Each protocol runs twice — locality-first
/// placement (the paper's Algorithm 1) and rack-safe anti-affinity
/// (`min_zones = 2`) — and the matrix reports what rack-safety costs in
/// throughput against what it buys in availability: under LocalityFirst,
/// partitions whose replicas were rack-local stall for the whole outage
/// (`stalled > 0`); under RackSafe every partition keeps a live replica and
/// fails over (`stalled = 0`).
pub fn fig_f2(scale: Scale) -> String {
    use lion_common::{PlacementPolicy, ZoneId};
    let horizon = scale.steady_us * 3;
    let crash_at = horizon / 3;
    let heal_at = 2 * horizon / 3;
    let faults = lion_engine::FaultPlan::zone_failure(crash_at, ZoneId(1), heal_at);
    let protos = [
        ProtoKind::LionStd,
        ProtoKind::TwoPc,
        ProtoKind::Star,
        ProtoKind::Calvin,
    ];
    let policies = [
        ("LocalityFirst", PlacementPolicy::LocalityFirst),
        ("RackSafe(2)", PlacementPolicy::RackSafe { min_zones: 2 }),
    ];
    // Two arms per (protocol, policy): a fault-free steady-state run that
    // isolates the pure locality cost of rack-safe placement (cross-zone
    // prepare replication), and the zone-outage run that shows what that
    // cost buys. Job order: [steady, outage] per policy per protocol.
    let mut jobs = Vec::new();
    for proto in &protos {
        for (pname, policy) in &policies {
            let mut sim = base_sim(4).with_zones(2).with_placement(*policy);
            sim.net.cross_zone_extra_us = 60; // aggregation-layer hop
            jobs.push(Job::new(
                format!("{}/{}/steady", proto.label(), pname),
                *proto,
                sim.clone(),
                ycsb_spec(4, 0.5, 0.0, 91),
                scale.steady_us,
            ));
            jobs.push(
                Job::new(
                    format!("{}/{}/outage", proto.label(), pname),
                    *proto,
                    sim,
                    ycsb_spec(4, 0.5, 0.0, 91),
                    horizon,
                )
                .with_faults(faults.clone()),
            );
        }
    }
    let reports = run_all(jobs);

    let mut out = String::new();
    let _ = writeln!(
        out,
        "== Fig. F2: failure domains — rack Z1 = {{N2,N3}} lost at t={}s, restored at t={}s",
        crash_at / 1_000_000,
        heal_at / 1_000_000
    );
    let _ = writeln!(
        out,
        "{:<10} {:<14} {:>9} {:>8} {:>9} {:>8} {:>10} {:>12}",
        "protocol", "placement", "steady", "cost", "outage", "stalled", "failovers", "unavail(ms)"
    );
    let _ = writeln!(
        out,
        "{:<10} {:<14} {:>9} {:>8} {:>9}",
        "", "", "(ktxn/s)", "", "(ktxn/s)"
    );
    for (pi, proto) in protos.iter().enumerate() {
        let base = pi * 4;
        let lf_steady = &reports[base];
        for (qi, (pname, _)) in policies.iter().enumerate() {
            let steady = &reports[base + qi * 2];
            let outage = &reports[base + qi * 2 + 1];
            // Locality cost of this policy in failure-free steady state,
            // relative to LocalityFirst (0% for the LocalityFirst row).
            let cost = (steady.throughput_tps / lf_steady.throughput_tps.max(1.0) - 1.0) * 100.0;
            let _ = writeln!(
                out,
                "{:<10} {:<14} {:>9.1} {:>+7.1}% {:>9.1} {:>8} {:>10} {:>12.1}",
                proto.label(),
                pname,
                steady.throughput_tps / 1000.0,
                cost,
                outage.throughput_tps / 1000.0,
                outage.stalled_partitions,
                outage.failovers,
                outage.unavailability_us as f64 / 1000.0,
            );
        }
    }
    let _ = writeln!(
        out,
        "\n(`cost` = steady-state throughput of this placement vs LocalityFirst: what\n\
         anti-affinity spends on cross-rack replication. `stalled` = partitions whose\n\
         every replica sat in the dead rack — they blocked until the heal. RackSafe\n\
         keeps stalled at 0: the availability its locality cost buys.)"
    );
    out
}

// ---------------------------------------------------------------------
// Fig. E: epoch group commit — ack latency vs epoch length
// ---------------------------------------------------------------------

/// Fig. E: client-visible ack latency vs epoch-commit length, steady state
/// and under the figf1 crash script.
///
/// Column `0us` is ack-at-commit (the legacy, optimistic ack): lowest
/// latency, but the crash arm shows a non-zero `acked_then_lost` — commits
/// reported to clients whose log entries died with the primary's epoch
/// buffer. Every epoch-commit column trades p50 ack latency (epoch
/// residency + replication transit) for `acked_then_lost = 0`: an ack only
/// escapes behind its epoch's replication, and a crash retries the parked,
/// never-acked transactions instead.
pub fn fig_e(scale: Scale) -> String {
    use lion_common::NodeId;
    const EPOCHS_US: [u64; 5] = [0, 1_000, 5_000, 10_000, 20_000];
    let protos = [
        ProtoKind::LionStd,
        ProtoKind::TwoPc,
        ProtoKind::Star,
        ProtoKind::Calvin,
    ];
    let horizon = scale.steady_us * 3;
    let crash_at = horizon / 3;
    let recover_at = 2 * horizon / 3;
    let faults = lion_engine::FaultPlan::single_failure(crash_at, NodeId(1), recover_at);
    // Two arms per (protocol, epoch length): [steady, crash].
    let mut jobs = Vec::new();
    for proto in &protos {
        for &e in &EPOCHS_US {
            jobs.push(
                Job::new(
                    format!("{}/{}us/steady", proto.label(), e),
                    *proto,
                    base_sim(4),
                    ycsb_spec(4, 0.5, 0.0, 92),
                    scale.steady_us,
                )
                .with_epoch_commit(e),
            );
            jobs.push(
                Job::new(
                    format!("{}/{}us/crash", proto.label(), e),
                    *proto,
                    base_sim(4),
                    ycsb_spec(4, 0.5, 0.0, 92),
                    horizon,
                )
                .with_faults(faults.clone())
                .with_epoch_commit(e),
            );
        }
    }
    let reports = run_all(jobs);

    let mut out = String::new();
    let _ = writeln!(
        out,
        "== Fig. E: epoch group commit — ack latency vs epoch length (0us = ack at commit)"
    );
    let cols: Vec<String> = EPOCHS_US.iter().map(|e| format!("{e}us")).collect();
    let per = 2 * EPOCHS_US.len();
    let _ = writeln!(out, "-- Fig. Ea: steady-state ack latency p50 (us)");
    let _ = write!(out, "{:<10}", "protocol");
    for c in &cols {
        let _ = write!(out, "{c:>9}");
    }
    let _ = writeln!(out);
    for (pi, p) in protos.iter().enumerate() {
        let _ = write!(out, "{:<10}", p.label());
        for ei in 0..EPOCHS_US.len() {
            let r = &reports[pi * per + 2 * ei];
            let _ = write!(out, " {:>8}", r.ack_latency_p[0]);
        }
        let _ = writeln!(out);
    }
    let _ = writeln!(out, "-- Fig. Eb: steady-state throughput (k txn/s)");
    let _ = write!(out, "{:<10}", "protocol");
    for c in &cols {
        let _ = write!(out, "{c:>9}");
    }
    let _ = writeln!(out);
    for (pi, p) in protos.iter().enumerate() {
        let _ = write!(out, "{:<10}", p.label());
        for ei in 0..EPOCHS_US.len() {
            let r = &reports[pi * per + 2 * ei];
            let _ = write!(out, " {:>8.1}", r.throughput_tps / 1000.0);
        }
        let _ = writeln!(out);
    }
    let _ = writeln!(
        out,
        "-- Fig. Ec: crash arm (N1 down at t={}s, back at t={}s) — the durability hole",
        crash_at / 1_000_000,
        recover_at / 1_000_000
    );
    for (pi, _) in protos.iter().enumerate() {
        for (ei, col) in cols.iter().enumerate() {
            let r = &reports[pi * per + 2 * ei + 1];
            let _ = writeln!(out, "{col:>8}  {}", r.ack_row());
        }
    }
    let _ = writeln!(
        out,
        "\n(`acked_then_lost` > 0 only ever appears in the 0us ack-at-commit rows: acks\n\
         that escaped before replication and died with the crashed primary. Under epoch\n\
         commit the same crashes abort the open epochs — `retried_acks` — and the\n\
         counter stays 0: no acked commit is ever lost.)"
    );
    out
}

// ---------------------------------------------------------------------
// Fig. SB: honest split-brain — availability vs divergent-work cost
// ---------------------------------------------------------------------

/// Fig. SB: what quorum fencing costs and buys under an honest network
/// partition, Lion vs 2PC/Star/Calvin.
///
/// A 4-node cluster with `rf = 3` (round-robin: partition `p_i`'s replica
/// set is `{N_i, N_{i+1}, N_{i+2}}`) loses `{N2, N3}` to a network cut one
/// third into the run and heals at two thirds. Three arms per protocol:
///
/// * **crash-approx** — the legacy path: the majority side treats the
///   isolated nodes as crashed; every transaction they were serving is
///   aborted, their goodput is zero for the window.
/// * **quorum-fence** — honest split-brain with epoch group commit and
///   round-trip-priced retries: both sides stay live, but a commit whose
///   writes touch a partition served from the non-quorum side parks its
///   ack behind the quorum fence; the heal aborts those divergent epochs
///   and the clients resubmit. `acked_then_lost` stays 0.
/// * **optimistic** — honest split-brain with ack-at-commit: the minority
///   side acks immediately, and the heal audit counts every ack whose
///   timeline lost (`acked_then_lost > 0`).
pub fn fig_sb(scale: Scale) -> String {
    use lion_common::NodeId;
    let horizon = scale.steady_us * 3;
    let cut_at = horizon / 3;
    let heal_at = 2 * horizon / 3;
    let cut = vec![NodeId(2), NodeId(3)];
    let plan = |split: bool| {
        let p = lion_engine::FaultPlan::new()
            .partition_at(cut_at, cut.clone())
            .heal_at(heal_at);
        if split {
            p.with_split_brain()
        } else {
            p
        }
    };
    const EPOCH_US: u64 = 5_000;
    let protos = [
        ProtoKind::LionStd,
        ProtoKind::TwoPc,
        ProtoKind::Star,
        ProtoKind::Calvin,
    ];
    let sim = {
        let mut s = base_sim(4);
        s.replication_factor = 3;
        s.max_replicas = 4;
        s
    };
    // Three arms per protocol: [crash-approx, quorum-fence, optimistic].
    let mut jobs = Vec::new();
    for proto in &protos {
        jobs.push(
            Job::new(
                format!("{}/crash-approx", proto.label()),
                *proto,
                sim.clone(),
                ycsb_spec(4, 0.5, 0.0, 93),
                horizon,
            )
            .with_faults(plan(false))
            .with_epoch_commit(EPOCH_US),
        );
        jobs.push(
            Job::new(
                format!("{}/quorum-fence", proto.label()),
                *proto,
                sim.clone(),
                ycsb_spec(4, 0.5, 0.0, 93),
                horizon,
            )
            .with_faults(plan(true))
            .with_epoch_commit(EPOCH_US)
            .with_retry_round_trip(),
        );
        jobs.push(
            Job::new(
                format!("{}/optimistic", proto.label()),
                *proto,
                sim.clone(),
                ycsb_spec(4, 0.5, 0.0, 93),
                horizon,
            )
            .with_faults(plan(true)),
        );
    }
    let reports = run_all(jobs);

    let mut out = String::new();
    let _ = writeln!(
        out,
        "== Fig. SB: honest split-brain — {{N2,N3}} cut off at t={}s, healed at t={}s (rf=3)",
        cut_at / 1_000_000,
        heal_at / 1_000_000
    );
    let _ = writeln!(
        out,
        "{:<10} {:<13} {:>9} {:>9} {:>7} {:>8} {:>9} {:>9} {:>11}",
        "protocol",
        "arm",
        "goodput",
        "minority",
        "fenced",
        "divergent",
        "retried",
        "lost",
        "unavail(ms)"
    );
    let _ = writeln!(
        out,
        "{:<10} {:<13} {:>9} {:>9} {:>7} {:>8} {:>9} {:>9}",
        "", "", "(ktxn/s)", "commits", "acks", "epochs", "acks", "acks"
    );
    for (pi, proto) in protos.iter().enumerate() {
        for (ai, arm) in ["crash-approx", "quorum-fence", "optimistic"]
            .iter()
            .enumerate()
        {
            let r = &reports[pi * 3 + ai];
            let _ = writeln!(
                out,
                "{:<10} {:<13} {:>9.1} {:>9} {:>7} {:>8} {:>9} {:>9} {:>11.1}",
                proto.label(),
                arm,
                r.throughput_tps / 1000.0,
                r.minority_commits,
                r.fenced_acks,
                r.divergent_epochs_aborted,
                r.epoch_retried_acks,
                r.acked_then_lost,
                r.unavailability_us as f64 / 1000.0,
            );
        }
    }
    let _ = writeln!(
        out,
        "\n(`minority commits` = work the non-quorum side kept serving through the cut —\n\
         zero under crash-approx, which kills that side outright. `fenced acks` parked\n\
         behind the quorum fence and `divergent epochs` were aborted at heal; their\n\
         clients resubmitted (`retried acks`), so `lost` stays 0 for quorum-fence. The\n\
         optimistic arm releases minority acks at commit and pays for it at heal with\n\
         `lost` > 0 — acks whose timeline did not survive.)"
    );
    out
}

/// Runs every experiment in sequence.
pub fn all(scale: Scale) -> String {
    let mut out = String::new();
    out.push_str(&table1());
    out.push('\n');
    out.push_str(&table2());
    out.push('\n');
    for (name, s) in [
        ("fig6", fig6(scale)),
        ("fig7", fig7(scale)),
        ("fig8", fig8(scale)),
        ("fig9", fig9(scale)),
        ("fig10", fig10(scale)),
        ("fig11", fig11(scale)),
        ("fig12", fig12(scale)),
        ("fig13a", fig13a(scale)),
        ("fig13b", fig13b(scale)),
        ("fig14", fig14(scale)),
        ("figf1", fig_f1(scale)),
        ("figf2", fig_f2(scale)),
        ("fige", fig_e(scale)),
        ("figsb", fig_sb(scale)),
    ] {
        let _ = name;
        out.push_str(&s);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_render() {
        let t1 = table1();
        assert!(t1.contains("Lion") && t1.contains("adaptive replication"));
        let t2 = table2();
        assert!(t2.contains("Lion(RW)"));
        assert!(t2.contains("Schism"));
    }
}
