//! `lion-bench obsgate`: CI gate on observability overhead.
//!
//! The metrics pipeline sits on the engine's hot path — every commit, abort
//! and byte transfer emits a [`MetricEvent`](lion_engine::MetricEvent). This
//! gate runs one fixed YCSB job under [`ObsMode::Null`](lion_engine::ObsMode)
//! (events constructed and discarded at the hub) and `ObsMode::Full` (run
//! metrics + dimensioned rollups), takes the best of several repeats of
//! each (best-of-N discards scheduler noise, the same trick `perf --check`
//! uses), and fails if full observability costs more than the tolerance in
//! events-per-wall-second.
//!
//! Tolerance defaults to 3% and can be widened on noisy shared runners via
//! the `OBS_GATE_TOLERANCE` env var (e.g. `OBS_GATE_TOLERANCE=0.10`).

use crate::harness::{base_sim, run_job_with_obs, ycsb_spec, Job, ProtoKind};
use lion_engine::ObsMode;
use std::time::Instant;

/// Default headroom for the Full pipeline vs the Null baseline.
const DEFAULT_TOLERANCE: f64 = 0.03;

/// Repeats per mode; only the fastest counts.
const REPEATS: usize = 5;

fn gate_job() -> Job {
    // Mid-size, contended enough to exercise every event variant that
    // matters for throughput: commits, aborts, replication, messages.
    let sim = base_sim(4);
    Job::new(
        "obsgate",
        ProtoKind::LionStd,
        sim,
        ycsb_spec(4, 0.2, 0.6, 42),
        1_000_000,
    )
}

fn best_rate(job: &Job, mode: ObsMode) -> (f64, u64) {
    let mut best = 0.0f64;
    let mut events = 0u64;
    for _ in 0..REPEATS {
        let start = Instant::now();
        let report = run_job_with_obs(job, mode);
        let secs = start.elapsed().as_secs_f64().max(1e-9);
        let rate = report.events as f64 / secs;
        if rate > best {
            best = rate;
        }
        events = report.events;
    }
    (best, events)
}

/// Runs the gate. Returns `Err` with a human-readable message on failure so
/// `main` can print it and exit non-zero.
pub fn run() -> Result<(), String> {
    let tolerance = std::env::var("OBS_GATE_TOLERANCE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(DEFAULT_TOLERANCE);
    let job = gate_job();

    println!(
        "obsgate: {REPEATS}x per mode, tolerance {:.1}%",
        tolerance * 100.0
    );
    let (null_rate, null_events) = best_rate(&job, ObsMode::Null);
    let (full_rate, full_events) = best_rate(&job, ObsMode::Full);

    // The simulation itself is deterministic and the sink must not steer it:
    // both modes replay the identical event schedule.
    if null_events != full_events {
        return Err(format!(
            "obsgate: event-count divergence — Null processed {null_events} \
             events, Full processed {full_events}; the sink is influencing \
             the simulation"
        ));
    }

    let overhead = (null_rate - full_rate) / null_rate.max(1e-9);
    println!(
        "obsgate: Null {:>12.0} ev/s | Full {:>12.0} ev/s | overhead {:>6.2}%",
        null_rate,
        full_rate,
        overhead * 100.0
    );
    if overhead > tolerance {
        return Err(format!(
            "obsgate: full observability costs {:.2}% (> {:.1}% tolerance); \
             check for allocation or locking on the MetricSink hot path",
            overhead * 100.0,
            tolerance * 100.0
        ));
    }
    println!("obsgate: OK");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_and_full_replay_the_same_schedule() {
        // Cheap version of the gate's divergence check: a short run under
        // each mode processes the same number of events and commits the
        // same transactions in Full as in Run-only accounting.
        let mut job = gate_job();
        job.horizon = 150_000;
        let null = run_job_with_obs(&job, ObsMode::Null);
        let full = run_job_with_obs(&job, ObsMode::Full);
        assert_eq!(null.events, full.events);
        // Null mode drops every metric on the floor...
        assert_eq!(null.commits, 0);
        // ...while Full records them.
        assert!(full.commits > 0);
    }
}
