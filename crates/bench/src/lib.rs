//! # lion-bench
//!
//! The experiment harness that regenerates **every table and figure** of the
//! paper's evaluation (§VI). `src/figures.rs` holds one experiment per
//! table/figure; the `lion-bench` binary dispatches them; the Criterion
//! benches under `benches/` micro-benchmark the planner, predictor, storage,
//! and protocol hot paths.
//!
//! Absolute throughputs differ from the paper (the substrate is a calibrated
//! simulator, not the authors' 10-node testbed); the *shapes* — who wins, by
//! roughly what factor, where crossovers fall — are the reproduction target.
//! EXPERIMENTS.md records paper-vs-measured for each experiment.

pub mod export;
pub mod figures;
pub mod harness;
pub mod obsgate;
pub mod perf;

pub use harness::{
    base_sim, run_all, run_job, run_job_with_obs, Job, ProtoKind, Scale, WorkloadSpec,
};
