//! `lion-bench perf`: the self-measuring performance harness.
//!
//! Runs a fixed-seed matrix — a YCSB protocol sweep, a TPC-C pair, and the
//! figf1 crash/recovery scenario — entirely on the virtual clock while
//! timing the *host* wall clock, and reports engine events/second and
//! committed transactions/second of real time. The YCSB aggregate is the
//! headline number tracked across PRs in `BENCH_perf.json` at the repo
//! root: the file keeps a frozen `baseline` section (captured before the
//! hot-path overhaul) next to the `current` section each run refreshes, so
//! the speedup is always visible in-tree.
//!
//! A self-timed micro-bench of the failover promotion-selection logic on a
//! 12-node topology rides along (criterion is gated out offline; this
//! covers the ROADMAP's promotion-selection bench item).
//!
//! ```text
//! lion-bench perf              # full matrix, refresh BENCH_perf.json
//! lion-bench perf --quick      # shorter horizons (CI smoke)
//! lion-bench perf --repeat 3   # best-of-3 per cell (suppresses host noise)
//! lion-bench perf --quick --check
//!                              # no write; fail if YCSB events/sec regressed
//!                              # >25% vs the committed `current` section
//! ```
//!
//! Wall-clock numbers on shared hardware are noisy; `--repeat N` runs every
//! cell N times and keeps the fastest run (the standard best-of-N estimate
//! of the uncontended time — virtual-time results are identical across
//! repeats, which the harness asserts).

use crate::harness::{base_sim, tpcc_spec, ycsb_spec, ProtoKind, WorkloadSpec};
use lion_common::{NodeId, SimConfig, Time, SECOND};
use lion_engine::{Engine, EngineConfig, FaultPlan};
use lion_obs::json::{extract_number, extract_object};
use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;

/// What this build's hot path looks like; becomes the section label in
/// `BENCH_perf.json` so before/after numbers stay self-describing.
const ENGINE_VARIANT: &str =
    "FxHash maps, txn slab, zero-copy write sets, calendar-queue FEL, dense row path, thin LTO";

/// Default regression tolerance for `--check`: runner noise on shared CI
/// hardware is real, so only a >25% drop in YCSB events/sec fails the job.
/// The committed numbers are absolute wall-clock rates from whatever host
/// refreshed `BENCH_perf.json` last, so a fleet-wide hardware change can
/// shift the comparison without any code regression — override with the
/// `PERF_CHECK_TOLERANCE` env var (e.g. `0.5`) while re-baselining.
const CHECK_TOLERANCE: f64 = 0.25;

/// `--check` tolerance: `PERF_CHECK_TOLERANCE` env override or the default.
fn check_tolerance() -> f64 {
    std::env::var("PERF_CHECK_TOLERANCE")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .filter(|t| (0.0..1.0).contains(t))
        .unwrap_or(CHECK_TOLERANCE)
}

/// One measured run.
struct Cell {
    group: &'static str,
    label: String,
    virtual_us: Time,
    wall_s: f64,
    events: u64,
    commits: u64,
}

impl Cell {
    fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.wall_s.max(1e-9)
    }
    fn commits_per_sec(&self) -> f64 {
        self.commits as f64 / self.wall_s.max(1e-9)
    }
}

fn run_cell(
    group: &'static str,
    label: String,
    proto: ProtoKind,
    sim: SimConfig,
    workload: &WorkloadSpec,
    horizon: Time,
    faults: FaultPlan,
) -> Cell {
    let cfg = EngineConfig {
        sim,
        plan_interval_us: 500_000,
        faults,
        ..EngineConfig::default()
    };
    let mut eng = Engine::new(cfg, workload.build());
    let mut proto = proto.build();
    let t0 = Instant::now();
    let report = eng.run(proto.as_mut(), horizon);
    let wall_s = t0.elapsed().as_secs_f64();
    Cell {
        group,
        label,
        virtual_us: horizon,
        wall_s,
        events: report.events,
        commits: report.commits,
    }
}

/// Best-of-`repeat` measurement of one cell.
#[allow(clippy::too_many_arguments)]
fn run_cell_best(
    repeat: u32,
    group: &'static str,
    label: String,
    proto: ProtoKind,
    sim: SimConfig,
    workload: &WorkloadSpec,
    horizon: Time,
    faults: FaultPlan,
) -> Cell {
    let mut best: Option<Cell> = None;
    for _ in 0..repeat.max(1) {
        let cell = run_cell(
            group,
            label.clone(),
            proto,
            sim.clone(),
            workload,
            horizon,
            faults.clone(),
        );
        let better = match &best {
            None => true,
            Some(b) => {
                assert_eq!(
                    (b.events, b.commits),
                    (cell.events, cell.commits),
                    "{label}: virtual-time results must not vary across repeats"
                );
                cell.wall_s < b.wall_s
            }
        };
        if better {
            best = Some(cell);
        }
    }
    best.expect("repeat >= 1")
}

/// The fixed-seed measurement matrix.
fn run_matrix(quick: bool, repeat: u32) -> Vec<Cell> {
    let horizon = if quick { SECOND / 2 } else { 2 * SECOND };
    let mut cells = Vec::new();

    // YCSB sweep: the standard-execution comparison set under a moderately
    // skewed, half-cross-partition mix — the headline events/sec aggregate.
    let ycsb = ycsb_spec(4, 0.5, 0.7, 7);
    for proto in [
        ProtoKind::TwoPc,
        ProtoKind::Leap,
        ProtoKind::Clay,
        ProtoKind::LionStd,
    ] {
        cells.push(run_cell_best(
            repeat,
            "ycsb",
            format!("ycsb/{}", proto.label()),
            proto,
            base_sim(4),
            &ycsb,
            horizon,
            FaultPlan::none(),
        ));
    }

    // TPC-C: the order-entry shape (multi-op read/write groups).
    let tpcc = tpcc_spec(4, 0.1, 0.0);
    for proto in [ProtoKind::TwoPc, ProtoKind::LionStd] {
        cells.push(run_cell_best(
            repeat,
            "tpcc",
            format!("tpcc/{}", proto.label()),
            proto,
            base_sim(4),
            &tpcc,
            horizon,
            FaultPlan::none(),
        ));
    }

    // figf1 fault matrix: crash + recovery mid-run exercises the failover
    // and replay paths under load.
    let ycsb_f = ycsb_spec(4, 0.5, 0.7, 11);
    for proto in [ProtoKind::TwoPc, ProtoKind::LionStd] {
        let faults = FaultPlan::single_failure(horizon / 4, NodeId(1), horizon / 2);
        cells.push(run_cell_best(
            repeat,
            "figf1",
            format!("figf1/{}", proto.label()),
            proto,
            base_sim(4),
            &ycsb_f,
            horizon,
            faults,
        ));
    }
    cells
}

/// The self-timed micro-bench results riding along with the matrix.
struct Micro {
    /// ns per `plan_failover` call on the 12-node topology.
    promotion_ns: f64,
    nodes: usize,
    parts_per_plan: usize,
    /// ns per schedule+pop pair, binary-heap FEL (the reference model).
    fel_heap_ns: f64,
    /// ns per schedule+pop pair, calendar-queue FEL (the production one).
    fel_calendar_ns: f64,
}

impl Micro {
    fn fel_speedup(&self) -> f64 {
        self.fel_heap_ns / self.fel_calendar_ns.max(1e-9)
    }
}

/// Self-timed FEL micro-bench: replay one deterministic event trace —
/// the delay mix a 12-node promotion-workload run schedules (1 µs client
/// re-arms, retry back-offs, LAN hops, epoch timers, far fault triggers) —
/// through both FEL implementations at 12-node steady-state population
/// (384 closed-loop clients ⇒ ~384 pending events), timing ns per
/// schedule+pop pair. Pop order is asserted identical along the way, so
/// the bench doubles as an equivalence check at scale.
fn micro_fel(quick: bool) -> (f64, f64) {
    use lion_sim::{CalendarQueue, HeapQueue};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    const PREFILL: usize = 384; // 12 nodes × 32 clients
    let iters: usize = if quick { 300_000 } else { 3_000_000 };
    let mut rng = SmallRng::seed_from_u64(0xF31_BEEF);
    let delays: Vec<Time> = (0..iters + PREFILL)
        .map(|_| match rng.gen_range(0u32..100) {
            0..=9 => 1,                                   // client re-arm
            10..=19 => 50,                                // retry back-off
            20..=84 => 40 + rng.gen_range(0u64..110),     // LAN hop ± payload
            85..=98 => rng.gen_range(500u64..10_000),     // epoch/flush timers
            _ => rng.gen_range(1_000_000u64..60_000_000), // fault triggers
        })
        .collect();

    let mut heap = HeapQueue::new();
    let mut cal = CalendarQueue::with_profile(&[40, 50, 10_000]);
    for (i, &d) in delays[..PREFILL].iter().enumerate() {
        heap.schedule(d, i as u64);
        cal.schedule(d, i as u64);
    }

    // Both queues replay the identical trace: an untimed warm-up prefix
    // (pages the shared delay vector in, warms the allocator and each
    // queue's own structures — whichever queue is timed first must not eat
    // the cold-cache cost alone), then the timed remainder.
    let warm = iters / 10;
    let mut heap_check = 0u64;
    for (i, &d) in delays[PREFILL..PREFILL + warm].iter().enumerate() {
        heap.schedule(d, i as u64);
        let (at, tag) = heap.pop().expect("steady-state population");
        heap_check = heap_check.wrapping_mul(31).wrapping_add(at ^ tag);
    }
    let t0 = Instant::now();
    for (i, &d) in delays[PREFILL + warm..].iter().enumerate() {
        heap.schedule(d, i as u64);
        let (at, tag) = heap.pop().expect("steady-state population");
        heap_check = heap_check.wrapping_mul(31).wrapping_add(at ^ tag);
    }
    let heap_ns = t0.elapsed().as_nanos() as f64 / (iters - warm) as f64;

    let mut cal_check = 0u64;
    for (i, &d) in delays[PREFILL..PREFILL + warm].iter().enumerate() {
        cal.schedule(d, i as u64);
        let (at, tag) = cal.pop().expect("steady-state population");
        cal_check = cal_check.wrapping_mul(31).wrapping_add(at ^ tag);
    }
    let t0 = Instant::now();
    for (i, &d) in delays[PREFILL + warm..].iter().enumerate() {
        cal.schedule(d, i as u64);
        let (at, tag) = cal.pop().expect("steady-state population");
        cal_check = cal_check.wrapping_mul(31).wrapping_add(at ^ tag);
    }
    let cal_ns = t0.elapsed().as_nanos() as f64 / (iters - warm) as f64;

    assert_eq!(
        heap_check, cal_check,
        "calendar queue must drain the trace in the heap's exact order"
    );
    (heap_ns, cal_ns)
}

/// Self-timed promotion-selection micro-bench on a 12-node topology:
/// crash one node, then re-plan its failovers repeatedly. Returns
/// `(ns per plan_failover call, nodes, partitions planned per call)`.
fn micro_promotion(quick: bool) -> (f64, usize, usize) {
    let sim = SimConfig {
        nodes: 12,
        partitions_per_node: 6,
        keys_per_partition: 64,
        value_size: 16,
        replication_factor: 3,
        ..Default::default()
    };
    let dead = NodeId(5);
    let mut cluster = lion_cluster::Cluster::new(sim);
    // Give the doomed node's primaries unshipped log entries so candidate
    // freshness actually differs (the selection must price the lag).
    let parts = cluster.placement.primary_partitions_on(dead);
    for part in &parts {
        for k in 0..8u64 {
            let store = cluster.primary_store_mut(*part);
            store.table.occ_lock(k, lion_common::TxnId(k));
            let v = store.table.occ_install(
                k,
                lion_common::TxnId(k),
                lion_storage::Table::synth_value(k, 2, 16),
            );
            store
                .log
                .append(*part, k, v, lion_storage::Table::synth_value(k, 2, 16));
        }
    }
    cluster.crash_node(dead, 0);
    let iters = if quick { 2_000 } else { 20_000 };
    let mut planned = 0usize;
    let t0 = Instant::now();
    for _ in 0..iters {
        let decisions = lion_faults::plan_failover(&cluster, dead);
        planned += std::hint::black_box(decisions.len());
    }
    let ns = t0.elapsed().as_nanos() as f64 / iters as f64;
    (ns, 12, planned / iters)
}

/// Headline metric: aggregate wall-clock events/sec over the YCSB cells.
fn ycsb_events_per_sec(cells: &[Cell]) -> f64 {
    let (ev, wall) = cells
        .iter()
        .filter(|c| c.group == "ycsb")
        .fold((0u64, 0f64), |(e, w), c| (e + c.events, w + c.wall_s));
    ev as f64 / wall.max(1e-9)
}

// ----------------------------------------------------------------------
// Hand-rolled JSON (the offline environment has no serde): the writer
// below and the two extractors form a closed loop over our own format —
// labels never contain braces or quotes.
// ----------------------------------------------------------------------

fn render_section(label: &str, scale: &str, cells: &[Cell], micro: &Micro) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "    \"label\": \"{label}\",");
    let _ = writeln!(s, "    \"scale\": \"{scale}\",");
    let _ = writeln!(
        s,
        "    \"ycsb_events_per_sec\": {:.0},",
        ycsb_events_per_sec(cells)
    );
    let _ = writeln!(s, "    \"cells\": [");
    for (i, c) in cells.iter().enumerate() {
        let comma = if i + 1 == cells.len() { "" } else { "," };
        let _ = writeln!(
            s,
            "      {{ \"label\": \"{}\", \"virtual_us\": {}, \"wall_ms\": {:.1}, \
             \"events\": {}, \"commits\": {}, \"events_per_sec\": {:.0}, \
             \"commits_per_sec\": {:.0} }}{comma}",
            c.label,
            c.virtual_us,
            c.wall_s * 1e3,
            c.events,
            c.commits,
            c.events_per_sec(),
            c.commits_per_sec(),
        );
    }
    let _ = writeln!(s, "    ],");
    let _ = writeln!(
        s,
        "    \"micro\": {{ \"promotion_selection_ns_per_plan\": {:.0}, \
         \"nodes\": {}, \"partitions_per_plan\": {}, \
         \"fel_heap_ns_per_op\": {:.1}, \"fel_calendar_ns_per_op\": {:.1}, \
         \"fel_speedup\": {:.2} }}",
        micro.promotion_ns,
        micro.nodes,
        micro.parts_per_plan,
        micro.fel_heap_ns,
        micro.fel_calendar_ns,
        micro.fel_speedup(),
    );
    let _ = write!(s, "  }}");
    s
}

// `BENCH_perf.json` is read with the shared extractors in
// `lion_obs::json` — the same helpers every machine-readable artifact in
// the repo goes through.

fn bench_json_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_perf.json")
}

/// Entry point for the `perf` subcommand. Returns the process exit code.
pub fn perf(quick: bool, check: bool, repeat: u32) -> i32 {
    let scale = if quick { "quick" } else { "full" };
    println!(
        "perf matrix ({scale} scale, fixed seeds, best of {}) — engine: {ENGINE_VARIANT}",
        repeat.max(1)
    );
    let cells = run_matrix(quick, repeat);
    let (promotion_ns, nodes, parts_per_plan) = micro_promotion(quick);
    let (fel_heap_ns, fel_calendar_ns) = micro_fel(quick);
    let micro = Micro {
        promotion_ns,
        nodes,
        parts_per_plan,
        fel_heap_ns,
        fel_calendar_ns,
    };
    for c in &cells {
        println!(
            "  {:<14} {:>9.0} events/s  {:>8.0} commits/s  ({} events, {} commits, {:.0} ms wall)",
            c.label,
            c.events_per_sec(),
            c.commits_per_sec(),
            c.events,
            c.commits,
            c.wall_s * 1e3,
        );
    }
    let headline = ycsb_events_per_sec(&cells);
    println!("  ycsb aggregate: {headline:.0} events/s");
    println!(
        "  micro: promotion selection {:.0} ns/plan ({} nodes, {} partitions/plan)",
        micro.promotion_ns, micro.nodes, micro.parts_per_plan
    );
    println!(
        "  micro: FEL schedule+pop {:.1} ns heap vs {:.1} ns calendar ({:.2}x, \
         384-event steady state)",
        micro.fel_heap_ns,
        micro.fel_calendar_ns,
        micro.fel_speedup(),
    );

    let path = bench_json_path();
    let existing = std::fs::read_to_string(&path).ok();

    if check {
        let Some(src) = existing else {
            eprintln!(
                "perf --check: no committed {} to compare against",
                path.display()
            );
            return 2;
        };
        let committed = extract_object(&src, "current")
            .as_deref()
            .and_then(|cur| extract_number(cur, "ycsb_events_per_sec"));
        let Some(committed) = committed else {
            eprintln!("perf --check: committed file has no current.ycsb_events_per_sec");
            return 2;
        };
        let tolerance = check_tolerance();
        let floor = committed * (1.0 - tolerance);
        println!(
            "  check: measured {headline:.0} vs committed {committed:.0} events/s \
             (floor {floor:.0}, tolerance {:.0}%)",
            tolerance * 100.0
        );
        if headline < floor {
            eprintln!(
                "perf --check FAILED: YCSB events/sec regressed >{:.0}% \
                 ({headline:.0} < {floor:.0}). If the runner hardware changed \
                 rather than the code, re-baseline with `lion-bench perf` or \
                 set PERF_CHECK_TOLERANCE.",
                tolerance * 100.0
            );
            return 1;
        }
        println!("  check: OK");
        return 0;
    }

    // Write mode: refresh `current`, freeze the first-ever run as `baseline`.
    let section = render_section(ENGINE_VARIANT, scale, &cells, &micro);
    let baseline = existing
        .as_deref()
        .and_then(|src| extract_object(src, "baseline"))
        .unwrap_or_else(|| section.clone());
    let speedup = existing
        .as_deref()
        .and_then(|src| extract_object(src, "baseline"))
        .and_then(|b| extract_number(&b, "ycsb_events_per_sec"))
        .map(|b| headline / b.max(1e-9))
        .unwrap_or(1.0);
    let out = format!(
        "{{\n  \"schema\": 1,\n  \"metric\": \"wall-clock engine events/sec over \
         fixed-seed virtual-time runs\",\n  \"baseline\": {baseline},\n  \
         \"current\": {section},\n  \"speedup_ycsb_events_per_sec\": {speedup:.2}\n}}\n"
    );
    match std::fs::write(&path, out) {
        Ok(()) => {
            println!(
                "  wrote {} (speedup vs baseline: {speedup:.2}x)",
                path.display()
            );
            0
        }
        Err(e) => {
            eprintln!("failed to write {}: {e}", path.display());
            1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extractors_roundtrip_our_format() {
        let cells = vec![Cell {
            group: "ycsb",
            label: "ycsb/2PC".into(),
            virtual_us: 1_000_000,
            wall_s: 0.5,
            events: 1_000_000,
            commits: 5_000,
        }];
        let micro = Micro {
            promotion_ns: 123.0,
            nodes: 12,
            parts_per_plan: 6,
            fel_heap_ns: 80.0,
            fel_calendar_ns: 20.0,
        };
        let section = render_section("test variant", "quick", &cells, &micro);
        let doc = format!(
            "{{\n  \"schema\": 1,\n  \"baseline\": {section},\n  \"current\": {section}\n}}\n"
        );
        let cur = extract_object(&doc, "current").expect("current block");
        assert!((extract_number(&cur, "ycsb_events_per_sec").unwrap() - 2_000_000.0).abs() < 1.0);
        assert!(
            (extract_number(&cur, "promotion_selection_ns_per_plan").unwrap() - 123.0).abs() < 1e-9
        );
        assert!((extract_number(&cur, "fel_speedup").unwrap() - 4.0).abs() < 1e-9);
        let base = extract_object(&doc, "baseline").expect("baseline block");
        assert_eq!(base, cur, "sections serialize identically");
    }

    #[test]
    fn micro_promotion_plans_the_dead_nodes_partitions() {
        let (ns, nodes, parts) = micro_promotion(true);
        assert!(ns > 0.0);
        assert_eq!(nodes, 12);
        assert_eq!(parts, 6, "12 nodes x 6 partitions: 6 primaries per node");
    }
}
