//! `lion-bench`: regenerates the paper's tables and figures.
//!
//! ```text
//! lion-bench [table1|table2|fig6|fig7|fig8|fig9|fig10|fig11|fig12|fig13a|fig13b|fig14|figf1|figf2|fige|all] [--full] [--export=runs.jsonl]
//! lion-bench perf [--quick] [--check]
//! lion-bench obsgate
//! ```
//!
//! `figf1` is the fault-injection experiment: throughput under a node crash
//! and recovery, Lion vs 2PC/Star/Calvin/Hermes.
//!
//! `figf2` is the failure-domain experiment: LocalityFirst vs RackSafe
//! replica placement under the loss of a whole rack, measuring the
//! throughput cost of anti-affinity against the stalled partitions it
//! prevents.
//!
//! `fige` is the durability experiment: client-visible ack latency vs
//! epoch-commit length for Lion/2PC/Star/Calvin, steady state and under the
//! figf1 crash script — ack-at-commit leaks `acked_then_lost` commits at a
//! crash, epoch group commit holds it at zero.
//!
//! `figsb` is the honest split-brain experiment: quorum fencing vs the
//! legacy crash approximation vs optimistic minority acks under a network
//! cut that both sides survive — availability kept on the minority side
//! against the divergent work the heal must abort and retry.
//!
//! `--full` lengthens the runs (5 s steady-state, 15 s hotspot periods);
//! the default quick scale finishes the whole suite in a few minutes.
//!
//! `perf` is the self-measuring wall-clock performance harness: it runs a
//! fixed-seed YCSB + TPC-C + crash/recovery matrix, reports engine
//! events/sec and commits/sec of *host* time, and maintains
//! `BENCH_perf.json` at the repo root (`--check` compares against the
//! committed numbers instead of writing, for CI).
//!
//! `obsgate` is the observability-overhead gate: the same job under
//! `ObsMode::Null` and `ObsMode::Full`, failing CI if the full metrics
//! pipeline costs more than 3% in events/sec (`OBS_GATE_TOLERANCE`
//! overrides).
//!
//! `--export=PATH` writes every run the selected experiments performed as
//! JSON Lines — one `RunReport::to_json` object per line — so plots and
//! regression tooling can consume the numbers without scraping the tables.

use lion_bench::figures;
use lion_bench::Scale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = if args.iter().any(|a| a == "--full") {
        Scale::full()
    } else {
        Scale::quick()
    };
    let which = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "all".into());
    let export_path = args
        .iter()
        .find_map(|a| a.strip_prefix("--export="))
        .map(String::from);

    if which == "obsgate" {
        match lion_bench::obsgate::run() {
            Ok(()) => std::process::exit(0),
            Err(msg) => {
                eprintln!("{msg}");
                std::process::exit(1);
            }
        }
    }

    if which == "perf" {
        let quick = args.iter().any(|a| a == "--quick");
        let check = args.iter().any(|a| a == "--check");
        let repeat = args
            .iter()
            .position(|a| a == "--repeat")
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(1);
        std::process::exit(lion_bench::perf::perf(quick, check, repeat));
    }

    let out = match which.as_str() {
        "table1" => figures::table1(),
        "table2" => figures::table2(),
        "fig6" => figures::fig6(scale),
        "fig7" => figures::fig7(scale),
        "fig8" => figures::fig8(scale),
        "fig9" => figures::fig9(scale),
        "fig10" => figures::fig10(scale),
        "fig11" => figures::fig11(scale),
        "fig12" => figures::fig12(scale),
        "fig13a" => figures::fig13a(scale),
        "fig13b" => figures::fig13b(scale),
        "fig14" => figures::fig14(scale),
        "figf1" => figures::fig_f1(scale),
        "figf2" => figures::fig_f2(scale),
        "fige" => figures::fig_e(scale),
        "figsb" => figures::fig_sb(scale),
        "all" => figures::all(scale),
        other => {
            eprintln!("unknown experiment `{other}`");
            eprintln!(
                "usage: lion-bench [table1|table2|fig6..fig14|figf1|figf2|fige|figsb|all|perf|obsgate] [--full] [--export=runs.jsonl]"
            );
            std::process::exit(2);
        }
    };
    println!("{out}");

    if let Some(path) = export_path {
        let doc = lion_bench::export::drain_jsonl();
        let runs = doc.lines().count();
        if let Err(e) = std::fs::write(&path, doc) {
            eprintln!("failed to write export to {path}: {e}");
            std::process::exit(1);
        }
        println!("exported {runs} runs to {path}");
    }
}
