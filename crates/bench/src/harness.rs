//! Job runner: protocol registry, workload specs, and a thread-pool sweep
//! executor (every run is an independent engine, so sweeps parallelize
//! perfectly).

use lion_baselines::{clay, leap, two_pc, Aria, Calvin, Hermes, Lotus, Star};
use lion_common::{SimConfig, Time};
use lion_core::{Lion, LionConfig};
use lion_engine::{DurabilityConfig, Engine, EngineConfig, FaultPlan, Protocol, RunReport};
use lion_workloads::{Schedule, TpccConfig, TpccWorkload, YcsbConfig, YcsbWorkload};
use std::sync::mpsc;
use std::thread;

/// Every protocol the harness can run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtoKind {
    /// Classic OCC + 2PC.
    TwoPc,
    /// Aggressive migration.
    Leap,
    /// Load-driven repartitioning.
    Clay,
    /// Lion, standard execution (rearrangement + prediction).
    LionStd,
    /// Lion, batch execution (the full system).
    LionFull,
    /// Ablation: Schism partitioning only.
    LionS,
    /// Ablation: rearrangement only.
    LionR,
    /// Ablation: Schism + prediction.
    LionSW,
    /// Ablation: rearrangement + prediction.
    LionRW,
    /// Ablation: rearrangement + batch.
    LionRB,
    /// Super-node full replication.
    Star,
    /// Deterministic, single-threaded lock manager.
    Calvin,
    /// Deterministic + demand migration.
    Hermes,
    /// Optimistic deterministic reservations.
    Aria,
    /// Epoch-based granule locks.
    Lotus,
}

impl ProtoKind {
    /// Legend label.
    pub fn label(&self) -> &'static str {
        match self {
            ProtoKind::TwoPc => "2PC",
            ProtoKind::Leap => "Leap",
            ProtoKind::Clay => "Clay",
            ProtoKind::LionStd | ProtoKind::LionFull => "Lion",
            ProtoKind::LionS => "Lion(S)",
            ProtoKind::LionR => "Lion(R)",
            ProtoKind::LionSW => "Lion(SW)",
            ProtoKind::LionRW => "Lion(RW)",
            ProtoKind::LionRB => "Lion(RB)",
            ProtoKind::Star => "Star",
            ProtoKind::Calvin => "Calvin",
            ProtoKind::Hermes => "Hermes",
            ProtoKind::Aria => "Aria",
            ProtoKind::Lotus => "Lotus",
        }
    }

    /// Builds a fresh protocol instance.
    pub fn build(&self) -> Box<dyn Protocol> {
        match self {
            ProtoKind::TwoPc => Box::new(two_pc()),
            ProtoKind::Leap => Box::new(leap()),
            ProtoKind::Clay => Box::new(clay()),
            ProtoKind::LionStd => Box::new(Lion::standard()),
            ProtoKind::LionFull => Box::new(Lion::full()),
            ProtoKind::LionS => Box::new(Lion::new(LionConfig::lion_s())),
            ProtoKind::LionR => Box::new(Lion::new(LionConfig::lion_r())),
            ProtoKind::LionSW => Box::new(Lion::new(LionConfig::lion_sw())),
            ProtoKind::LionRW => Box::new(Lion::new(LionConfig::lion_rw())),
            ProtoKind::LionRB => Box::new(Lion::new(LionConfig::lion_rb())),
            ProtoKind::Star => Box::new(Star::new()),
            ProtoKind::Calvin => Box::new(Calvin::new()),
            ProtoKind::Hermes => Box::new(Hermes::new()),
            ProtoKind::Aria => Box::new(Aria::new()),
            ProtoKind::Lotus => Box::new(Lotus::new()),
        }
    }

    /// The standard-execution comparison set (Figs. 7, 8, 11a).
    pub fn standard_set() -> Vec<ProtoKind> {
        vec![
            ProtoKind::TwoPc,
            ProtoKind::Leap,
            ProtoKind::Clay,
            ProtoKind::LionStd,
        ]
    }

    /// The batch-execution comparison set (Figs. 9, 10, 11b, 14).
    pub fn batch_set() -> Vec<ProtoKind> {
        vec![
            ProtoKind::Calvin,
            ProtoKind::Star,
            ProtoKind::Aria,
            ProtoKind::Lotus,
            ProtoKind::Hermes,
            ProtoKind::LionFull,
        ]
    }

    /// The Table II / Fig. 6 ablation set.
    pub fn ablation_set() -> Vec<ProtoKind> {
        vec![
            ProtoKind::TwoPc,
            ProtoKind::LionS,
            ProtoKind::LionR,
            ProtoKind::LionSW,
            ProtoKind::LionRW,
            ProtoKind::LionRB,
            ProtoKind::LionFull,
        ]
    }
}

/// A workload to instantiate inside the worker thread.
#[derive(Debug, Clone)]
pub enum WorkloadSpec {
    /// YCSB with the given config.
    Ycsb(YcsbConfig),
    /// TPC-C with the given config.
    Tpcc(TpccConfig),
}

impl WorkloadSpec {
    /// Instantiates the generator.
    pub fn build(&self) -> Box<dyn lion_common::Workload> {
        match self {
            WorkloadSpec::Ycsb(cfg) => Box::new(YcsbWorkload::new(cfg.clone())),
            WorkloadSpec::Tpcc(cfg) => Box::new(TpccWorkload::new(cfg.clone())),
        }
    }
}

/// One simulation run.
#[derive(Debug, Clone)]
pub struct Job {
    /// Row label in the experiment output.
    pub label: String,
    /// Protocol under test.
    pub proto: ProtoKind,
    /// Cluster configuration.
    pub sim: SimConfig,
    /// Workload.
    pub workload: WorkloadSpec,
    /// Virtual run length.
    pub horizon: Time,
    /// Deterministic fault script (empty = no failures).
    pub faults: FaultPlan,
    /// Epoch group-commit length (0 = ack at commit, the figure default).
    pub epoch_commit_us: Time,
    /// Price idempotent client resubmissions after an epoch abort as their
    /// own request round trip (figsb's group-commit-aware retry arm).
    pub retry_round_trip: bool,
}

impl Job {
    /// A fault-free job (the common case for the paper's figures).
    pub fn new(
        label: impl Into<String>,
        proto: ProtoKind,
        sim: SimConfig,
        workload: WorkloadSpec,
        horizon: Time,
    ) -> Self {
        Job {
            label: label.into(),
            proto,
            sim,
            workload,
            horizon,
            faults: FaultPlan::none(),
            epoch_commit_us: 0,
            retry_round_trip: false,
        }
    }

    /// Attaches a fault plan.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Enables epoch group commit with the given epoch length (fige).
    pub fn with_epoch_commit(mut self, epoch_commit_us: Time) -> Self {
        self.epoch_commit_us = epoch_commit_us;
        self
    }

    /// Prices epoch-abort retries as full client resubmission round trips.
    pub fn with_retry_round_trip(mut self) -> Self {
        self.retry_round_trip = true;
        self
    }
}

/// Harness time scale: `quick` shortens horizons (and the 60 s hotspot
/// periods, proportionally) so the whole suite finishes in minutes.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Steady-state run length.
    pub steady_us: Time,
    /// One hotspot period of the dynamic scenarios (paper: 60 s).
    pub period_us: Time,
}

impl Scale {
    /// Quick scale: 2 s steady runs, 6 s hotspot periods.
    pub fn quick() -> Self {
        Scale {
            steady_us: 2_000_000,
            period_us: 6_000_000,
        }
    }

    /// Full scale: 5 s steady runs, 15 s hotspot periods (still compressed
    /// vs the paper's 60 s; the adaptation dynamics are interval-scaled).
    pub fn full() -> Self {
        Scale {
            steady_us: 5_000_000,
            period_us: 15_000_000,
        }
    }
}

/// The harness's default cluster shape: the paper's 4 executor nodes × 8
/// workers, scaled-down tables (DESIGN.md §1).
pub fn base_sim(nodes: usize) -> SimConfig {
    SimConfig {
        nodes,
        partitions_per_node: 8,
        keys_per_partition: 4_000,
        value_size: 64,
        clients_per_node: 24,
        batch_size: 256,
        ..Default::default()
    }
}

/// YCSB spec matching a [`base_sim`] cluster.
pub fn ycsb_spec(nodes: u32, cross: f64, skew: f64, seed: u64) -> WorkloadSpec {
    WorkloadSpec::Ycsb(
        YcsbConfig::for_cluster(nodes, 8, 4_000)
            .with_mix(cross, skew)
            .with_seed(seed),
    )
}

/// YCSB spec with a dynamic schedule.
pub fn ycsb_sched_spec(nodes: u32, schedule: Schedule, seed: u64) -> WorkloadSpec {
    WorkloadSpec::Ycsb(
        YcsbConfig::for_cluster(nodes, 8, 4_000)
            .with_schedule(schedule)
            .with_seed(seed),
    )
}

/// TPC-C spec matching a [`base_sim`] cluster (8 warehouses per node).
pub fn tpcc_spec(nodes: u32, remote: f64, skew: f64) -> WorkloadSpec {
    WorkloadSpec::Tpcc(TpccConfig::for_cluster(nodes, 8).with_mix(remote, skew))
}

/// Runs one job to completion. The planner tick is shortened to 500 ms so
/// even the quick-scale runs see several planning rounds. The finished
/// report is handed to the `--export` collector (see [`crate::export`]).
pub fn run_job(job: &Job) -> RunReport {
    let report = run_job_with_obs(job, lion_engine::ObsMode::Full);
    crate::export::record(&report);
    report
}

/// [`run_job`] with an explicit observability mode and no export
/// side-effect — the overhead gate (`lion-bench obsgate`) runs the same job
/// under [`ObsMode::Null`](lion_engine::ObsMode) and `Full` and compares.
pub fn run_job_with_obs(job: &Job, obs_mode: lion_engine::ObsMode) -> RunReport {
    let mut durability = DurabilityConfig::epoch(job.epoch_commit_us);
    if job.retry_round_trip {
        durability = durability.with_retry_round_trip();
    }
    let cfg = EngineConfig {
        sim: job.sim.clone(),
        plan_interval_us: 500_000,
        faults: job.faults.clone(),
        durability,
        obs_mode,
        ..EngineConfig::default()
    };
    let mut eng = Engine::new(cfg, job.workload.build());
    let mut proto = job.proto.build();
    let mut report = eng.run(proto.as_mut(), job.horizon);
    report.protocol = job.label.clone();
    report
}

/// Runs jobs on a worker pool, preserving input order.
pub fn run_all(jobs: Vec<Job>) -> Vec<RunReport> {
    let threads = thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(jobs.len().max(1));
    let (tx, rx) = mpsc::channel::<(usize, RunReport)>();
    let jobs: Vec<(usize, Job)> = jobs.into_iter().enumerate().collect();
    let queue = std::sync::Mutex::new(jobs);
    let total = {
        let q = queue.lock().expect("fresh mutex");
        q.len()
    };
    thread::scope(|s| {
        for _ in 0..threads {
            let tx = tx.clone();
            let queue = &queue;
            s.spawn(move || loop {
                let next = {
                    let mut q = queue.lock().expect("job queue");
                    q.pop()
                };
                match next {
                    Some((i, job)) => {
                        let report = run_job(&job);
                        if tx.send((i, report)).is_err() {
                            break;
                        }
                    }
                    None => break,
                }
            });
        }
        drop(tx);
        let mut out: Vec<Option<RunReport>> = (0..total).map(|_| None).collect();
        for (i, r) in rx {
            out[i] = Some(r);
        }
        out.into_iter()
            .map(|r| r.expect("every job completed"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_protocol_builds_and_commits() {
        // Smoke: a tiny run of each protocol commits something.
        for kind in [
            ProtoKind::TwoPc,
            ProtoKind::Leap,
            ProtoKind::Clay,
            ProtoKind::LionStd,
            ProtoKind::LionFull,
            ProtoKind::Star,
            ProtoKind::Calvin,
            ProtoKind::Hermes,
            ProtoKind::Aria,
            ProtoKind::Lotus,
        ] {
            let mut sim = base_sim(2);
            sim.partitions_per_node = 2;
            sim.keys_per_partition = 512;
            sim.clients_per_node = 4;
            sim.batch_size = 32;
            let workload = WorkloadSpec::Ycsb(
                YcsbConfig::for_cluster(2, 2, 512)
                    .with_mix(0.3, 0.0)
                    .with_seed(1),
            );
            let job = Job::new(kind.label(), kind, sim, workload, 300_000);
            let r = run_job(&job);
            assert!(r.commits > 0, "{} committed nothing", kind.label());
        }
    }

    #[test]
    fn run_all_preserves_order() {
        let mut sim = base_sim(2);
        sim.partitions_per_node = 2;
        sim.keys_per_partition = 256;
        sim.clients_per_node = 2;
        let jobs: Vec<Job> = (0..6)
            .map(|i| {
                Job::new(
                    format!("job{i}"),
                    ProtoKind::TwoPc,
                    sim.clone(),
                    WorkloadSpec::Ycsb(
                        YcsbConfig::for_cluster(2, 2, 256)
                            .with_mix(0.0, 0.0)
                            .with_seed(i),
                    ),
                    100_000,
                )
            })
            .collect();
        let reports = run_all(jobs);
        for (i, r) in reports.iter().enumerate() {
            assert_eq!(r.protocol, format!("job{i}"));
        }
    }
}
