//! Predictor micro-benchmarks: LSTM forward/training and a full prediction
//! round (the per-planner-tick cost of §IV-C).

use criterion::{criterion_group, criterion_main, Criterion};
use lion_common::{PartitionId, TxnRecord};
use lion_predictor::{Lstm, PredictorConfig, WorkloadPredictor};

fn bench_predictor(c: &mut Criterion) {
    let mut group = c.benchmark_group("predictor");
    group.sample_size(20);

    // The paper's model shape: 2 layers x 20 hidden units.
    let net = Lstm::new(20, 2, 7);
    let window: Vec<f64> = (0..10).map(|i| (i as f64 * 0.3).sin()).collect();
    group.bench_function("lstm_forward_2x20_w10", |b| b.iter(|| net.predict(&window)));

    group.bench_function("lstm_train_step_2x20", |b| {
        let mut net = Lstm::new(20, 2, 8);
        b.iter(|| net.train_step(&window, 0.5, 0.01))
    });

    group.bench_function("predict_round_4_classes", |b| {
        let sec = 1_000_000u64;
        let mut records = Vec::new();
        for class in 0..4u64 {
            for t in 0..40u64 {
                for k in 0..10 {
                    records.push(TxnRecord {
                        at: t * sec + k,
                        parts: vec![PartitionId(class as u32 * 2), PartitionId(class as u32 * 2 + 1)],
                    });
                }
            }
        }
        b.iter(|| {
            let mut pred = WorkloadPredictor::new(PredictorConfig {
                sample_interval_us: sec,
                window: 8,
                hidden: 8,
                train_epochs: 5,
                ..Default::default()
            });
            pred.observe(&records);
            pred.predict(40 * sec)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_predictor);
criterion_main!(benches);
