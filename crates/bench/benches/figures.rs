//! A figure-shaped smoke benchmark: one Fig. 7-style point per protocol
//! class, asserting the harness wiring end-to-end under Criterion timing.

use criterion::{criterion_group, criterion_main, Criterion};
use lion_bench::{run_job, Job, ProtoKind};
use lion_common::SimConfig;
use lion_workloads::TpccConfig;

fn bench_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure_points");
    group.sample_size(10);

    let sim = SimConfig {
        nodes: 4,
        partitions_per_node: 4,
        keys_per_partition: 2_000,
        value_size: 64,
        clients_per_node: 8,
        batch_size: 128,
        ..Default::default()
    };

    group.bench_function("fig7b_tpcc_lion_point", |b| {
        let job = Job {
            label: "Lion".into(),
            proto: ProtoKind::LionStd,
            sim: sim.clone(),
            workload: lion_bench::WorkloadSpec::Tpcc(
                TpccConfig::for_cluster(4, 4).with_mix(0.5, 0.8),
            ),
            horizon: 200_000,
        };
        b.iter(|| run_job(&job).commits)
    });

    group.bench_function("fig9a_ycsb_star_point", |b| {
        let job = Job {
            label: "Star".into(),
            proto: ProtoKind::Star,
            sim: sim.clone(),
            workload: lion_bench::WorkloadSpec::Ycsb(
                lion_workloads::YcsbConfig::for_cluster(4, 4, 2_000).with_mix(0.5, 0.8),
            ),
            horizon: 200_000,
        };
        b.iter(|| run_job(&job).commits)
    });

    group.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
