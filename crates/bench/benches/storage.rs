//! Storage micro-benchmarks: OCC operations, replication apply, snapshots.

use criterion::{criterion_group, criterion_main, Criterion};
use lion_common::{PartitionId, TxnId};
use lion_storage::{ReplicaStore, Table};

fn bench_storage(c: &mut Criterion) {
    let mut group = c.benchmark_group("storage");

    group.bench_function("occ_read", |b| {
        let t = Table::populated(10_000, 100);
        let mut k = 0u64;
        b.iter(|| {
            k = (k + 7) % 10_000;
            t.occ_read(k, TxnId(1))
        })
    });

    group.bench_function("occ_lock_install", |b| {
        let mut t = Table::populated(10_000, 100);
        let mut k = 0u64;
        b.iter(|| {
            k = (k + 7) % 10_000;
            t.occ_lock(k, TxnId(1));
            t.occ_install(k, TxnId(1), Table::synth_value(k, 2, 100))
        })
    });

    group.bench_function("replication_roundtrip_100_writes", |b| {
        b.iter(|| {
            let mut primary = ReplicaStore::new_primary(PartitionId(0), 1_000, 100);
            let mut secondary = ReplicaStore::new_secondary(PartitionId(0), 1_000, 100);
            for k in 0..100u64 {
                primary.table.occ_lock(k, TxnId(k));
                let v = primary.table.occ_install(k, TxnId(k), Table::synth_value(k, 9, 100));
                primary.log.append(PartitionId(0), k, v, Table::synth_value(k, 9, 100));
            }
            let entries = primary.log.take_pending();
            secondary.apply_entries(&entries);
            secondary.applied_lsn
        })
    });

    group.bench_function("snapshot_10k_rows", |b| {
        let t = Table::populated(10_000, 100);
        b.iter(|| t.snapshot().len())
    });

    group.finish();
}

criterion_group!(benches, bench_storage);
criterion_main!(benches);
