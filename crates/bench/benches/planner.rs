//! Planner micro-benchmarks: heat-graph construction, clump generation, and
//! Algorithm 1 at realistic sweep sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lion_common::{PartitionId, Placement};
use lion_planner::{generate_clumps, rearrange, schism_plan, HeatGraph, PlannerConfig};

fn synth_graph(n_parts: usize, n_txns: usize) -> (HeatGraph, Placement) {
    let placement = Placement::round_robin(n_parts, 4, 2);
    let mut g = HeatGraph::new(n_parts);
    for i in 0..n_txns {
        let a = PartitionId((i % n_parts) as u32);
        let b = PartitionId(((i % n_parts) ^ 1) as u32);
        g.add_txn(&[a, b], 1.0, &placement, 4.0);
    }
    (g, placement)
}

fn bench_planner(c: &mut Criterion) {
    let mut group = c.benchmark_group("planner");
    for &n_parts in &[48usize, 240] {
        group.bench_with_input(
            BenchmarkId::new("graph_build", n_parts),
            &n_parts,
            |b, &n| {
                let placement = Placement::round_robin(n, 4, 2);
                b.iter(|| {
                    let mut g = HeatGraph::new(n);
                    for i in 0..10_000usize {
                        let a = PartitionId((i % n) as u32);
                        let pb = PartitionId(((i % n) ^ 1) as u32);
                        g.add_txn(&[a, pb], 1.0, &placement, 4.0);
                    }
                    g
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("clump_generation", n_parts),
            &n_parts,
            |b, &n| {
                let (g, _) = synth_graph(n, 10_000);
                b.iter(|| generate_clumps(&g, 2.0, 24))
            },
        );
        group.bench_with_input(
            BenchmarkId::new("rearrange", n_parts),
            &n_parts,
            |b, &n| {
                let (g, placement) = synth_graph(n, 10_000);
                let cfg = PlannerConfig::default();
                let freq = g.normalized_weights();
                b.iter(|| {
                    let clumps = generate_clumps(&g, 2.0, 24);
                    rearrange(clumps, &placement, &freq, &cfg, true)
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("schism_plan", n_parts),
            &n_parts,
            |b, &n| {
                let (g, placement) = synth_graph(n, 10_000);
                b.iter(|| schism_plan(&g, &placement, 0.25))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_planner);
criterion_main!(benches);
