//! Protocol throughput micro-benchmarks: short simulated runs per protocol
//! (wall time per simulated 200 ms of cluster work).

use criterion::{criterion_group, criterion_main, Criterion};
use lion_bench::{run_job, Job, ProtoKind};
use lion_common::SimConfig;
use lion_workloads::YcsbConfig;

fn small_job(proto: ProtoKind, cross: f64) -> Job {
    let sim = SimConfig {
        nodes: 4,
        partitions_per_node: 4,
        keys_per_partition: 2_000,
        value_size: 64,
        clients_per_node: 8,
        batch_size: 128,
        ..Default::default()
    };
    Job {
        label: proto.label().into(),
        proto,
        sim,
        workload: lion_bench::WorkloadSpec::Ycsb(
            YcsbConfig::for_cluster(4, 4, 2_000).with_mix(cross, 0.0),
        ),
        horizon: 200_000,
    }
}

fn bench_protocols(c: &mut Criterion) {
    let mut group = c.benchmark_group("protocols_200ms_sim");
    group.sample_size(10);
    for (name, proto) in [
        ("2PC", ProtoKind::TwoPc),
        ("LionStd", ProtoKind::LionStd),
        ("LionBatch", ProtoKind::LionFull),
        ("Calvin", ProtoKind::Calvin),
        ("Aria", ProtoKind::Aria),
        ("Star", ProtoKind::Star),
    ] {
        group.bench_function(format!("{name}_cross50"), |b| {
            b.iter(|| run_job(&small_job(proto, 0.5)).commits)
        });
    }
    group.finish();
}

criterion_group!(benches, bench_protocols);
criterion_main!(benches);
