//! The split-brain heal coordinator's decision logic.
//!
//! Two pure planning passes bracket every honest partition window:
//!
//! * **At split begin**, [`plan_split_promotions`] decides, for every data
//!   partition whose serving primary sits cut off on the non-quorum side,
//!   whether the quorum side promotes a replacement **for real** (the
//!   quorum side is the rest of the cluster, so the global routing view
//!   follows it) or only **in shadow** (the quorum side is the isolated
//!   set: the cut-off primary keeps serving the rest side for the whole
//!   window — every ack it produces is quorum-fenced — and the recorded
//!   promotion is applied when the cut heals).
//! * **At heal**, [`plan_heal`] turns the window's frozen state into a
//!   reconciliation script per partition: which node held the divergent
//!   timeline (its parked log is audited for acked-then-lost work and then
//!   discarded), which shadow remaster to apply, and which stale replicas
//!   to drop and re-add via background snapshot copies.
//!
//! Like the rest of this crate, nothing here touches the virtual clock:
//! the engine executes the returned decisions by scheduling events.

use crate::recovery::{price_promotion, select_promotion_target, PromotionCandidate};
use lion_cluster::Cluster;
use lion_common::{NodeId, PartitionId, Time};

/// What the quorum side does about one partition whose serving primary is
/// cut off on the non-quorum side.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SplitAction {
    /// The quorum side is the rest of the cluster: promote `target` in the
    /// global routing view once `duration` (failure detection + hand-off)
    /// elapses. No cross-cut lag sync — the target adopts its own applied
    /// head, and everything the old primary logs past the last certified
    /// frontier becomes the divergent timeline.
    Promote {
        /// Quorum-side replica that takes over.
        target: NodeId,
        /// Detection + hand-off window on the virtual clock.
        duration: Time,
    },
    /// The quorum side is the isolated set: record `target` as the shadow
    /// promotion applied at heal. The cut-off old primary keeps serving
    /// the rest side for the whole window; its acks are quorum-fenced.
    Shadow {
        /// Quorum-side replica promoted at heal.
        target: NodeId,
    },
    /// No gap-free quorum-side replica exists: the quorum side goes
    /// without this partition for the window (the fenced primary still
    /// serves its own side). Plan validation makes this unreachable for
    /// validated plans; it is kept for hand-built clusters.
    Stall,
}

/// One partition's split-begin decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitDecision {
    /// The affected partition.
    pub part: PartitionId,
    /// What the quorum side does about it.
    pub action: SplitAction,
}

/// Replicas of `part` on `side` eligible to lead it (live, holding a
/// store, counted among the placement's secondaries).
fn side_candidates(cluster: &Cluster, part: PartitionId, side: u8) -> Vec<PromotionCandidate> {
    cluster
        .placement
        .secondaries_of(part)
        .iter()
        .copied()
        .filter(|&n| cluster.is_up(n) && cluster.side_of(n) == side)
        .filter_map(|n| {
            cluster.store(n, part).map(|s| PromotionCandidate {
                node: n,
                applied_lsn: s.applied_lsn,
                has_gap: s.has_gap(),
            })
        })
        .collect()
}

/// Plans the quorum side's response to a just-opened split-brain window
/// (the window must already be open on `cluster`). Returns one decision per
/// partition whose serving primary sits on the non-quorum side, in
/// partition order; partitions served from their quorum side need nothing
/// and are omitted.
pub fn plan_split_promotions(cluster: &Cluster) -> Vec<SplitDecision> {
    debug_assert!(
        cluster.split_active(),
        "planning promotions without a split"
    );
    let mut out = Vec::new();
    for p in 0..cluster.n_partitions() {
        let part = PartitionId(p as u32);
        let qs = cluster.quorum_side_of(part);
        let primary = cluster.placement.primary_of(part);
        if cluster.side_of(primary) == qs {
            continue;
        }
        let candidates = side_candidates(cluster, part, qs);
        let action = match select_promotion_target(&candidates) {
            // Cross-cut promotion never syncs lag: detection + hand-off only.
            Some(target) if qs == 0 => SplitAction::Promote {
                target,
                duration: price_promotion(&cluster.cfg, 0),
            },
            Some(target) => SplitAction::Shadow { target },
            None => SplitAction::Stall,
        };
        out.push(SplitDecision { part, action });
    }
    out
}

/// One partition's heal-time reconciliation script.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealStep {
    /// The partition to reconcile.
    pub part: PartitionId,
    /// Shadow remaster to apply first: the quorum-side target recorded
    /// mid-window takes over from the divergent serving primary.
    pub shadow: Option<NodeId>,
    /// Replicas to drop and re-add via background snapshot copies: every
    /// holder that sat on the non-quorum side (it missed the durable
    /// timeline's flushes, or served the divergent timeline itself). Their
    /// stores are audited for acked-then-lost work before discarding.
    pub stale: Vec<NodeId>,
}

/// Plans heal reconciliation for the still-open split-brain window: call
/// **before** `Cluster::end_split`, execute after. Steps come in partition
/// order and only for partitions with something to reconcile.
pub fn plan_heal(cluster: &Cluster) -> Vec<HealStep> {
    debug_assert!(cluster.split_active(), "planning heal without a split");
    let mut out = Vec::new();
    for p in 0..cluster.n_partitions() {
        let part = PartitionId(p as u32);
        let qs = cluster.quorum_side_of(part);
        let primary = cluster.placement.primary_of(part);
        let divergent = cluster.side_of(primary) != qs;
        // The recorded shadow target can die mid-window (or a real
        // promotion's target died before its hand-off landed, leaving the
        // partition divergent with no shadow at all): re-pick among the
        // quorum side's live gap-free replicas so its timeline still wins.
        let shadow = if divergent {
            cluster
                .shadow_of(part)
                .filter(|&t| cluster.is_up(t))
                .or_else(|| select_promotion_target(&side_candidates(cluster, part, qs)))
        } else {
            None
        };
        let mut stale: Vec<NodeId> = cluster
            .placement
            .secondaries_of(part)
            .iter()
            .copied()
            .filter(|&n| cluster.side_of(n) != qs)
            .collect();
        // The divergent serving primary demotes when the shadow remaster
        // applies, then joins the stale set itself.
        if divergent && shadow.is_some() {
            stale.push(primary);
        }
        stale.sort_unstable();
        if shadow.is_some() || !stale.is_empty() {
            out.push(HealStep {
                part,
                shadow,
                stale,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lion_common::SimConfig;

    /// 4 nodes × rf 3: isolating {N2, N3} yields all four partition cases
    /// (round_robin holders of p_i = {i, i+1, i+2 mod 4}).
    fn split_cluster() -> Cluster {
        let cfg = SimConfig {
            nodes: 4,
            partitions_per_node: 1,
            keys_per_partition: 32,
            value_size: 16,
            replication_factor: 3,
            max_replicas: 4,
            ..Default::default()
        };
        let mut c = Cluster::new(cfg);
        c.begin_split(&[NodeId(2), NodeId(3)], 1_000);
        c
    }

    #[test]
    fn promotions_split_into_real_and_shadow_by_quorum_side() {
        let c = split_cluster();
        let plan = plan_split_promotions(&c);
        // p0 (primary N0, quorum rest) and p2 (primary N2, quorum isolated)
        // are served from their quorum sides: nothing to do.
        assert_eq!(
            plan.iter().map(|d| d.part).collect::<Vec<_>>(),
            vec![PartitionId(1), PartitionId(3)]
        );
        // p1: primary N1 (rest) vs quorum isolated → shadow onto N2 or N3.
        match plan[0].action {
            SplitAction::Shadow { target } => {
                assert!(target == NodeId(2) || target == NodeId(3))
            }
            other => panic!("p1 expected a shadow promotion, got {other:?}"),
        }
        // p3: primary N3 (isolated) vs quorum rest → real promotion with a
        // detection + hand-off window and no lag sync.
        match plan[1].action {
            SplitAction::Promote { target, duration } => {
                assert!(target == NodeId(0) || target == NodeId(1));
                assert_eq!(duration, c.cfg.failure_detect_us + c.cfg.remaster_delay_us);
            }
            other => panic!("p3 expected a real promotion, got {other:?}"),
        }
    }

    #[test]
    fn heal_plan_covers_divergent_primaries_and_stale_replicas() {
        let mut c = split_cluster();
        // Execute the split-begin plan the way the engine would.
        for d in plan_split_promotions(&c) {
            match d.action {
                SplitAction::Promote { target, .. } => c.split_promote(d.part, target, 2_000),
                SplitAction::Shadow { target } => c.set_shadow(d.part, target),
                SplitAction::Stall => {}
            }
        }
        let heal = plan_heal(&c);
        let step = |p: u32| heal.iter().find(|s| s.part == PartitionId(p));
        // p0 {0,1,2}, quorum rest: N2 went stale across the cut.
        assert_eq!(step(0).unwrap().stale, vec![NodeId(2)]);
        assert_eq!(step(0).unwrap().shadow, None);
        // p1 {1,2,3}, quorum isolated, divergent primary N1: the shadow
        // remaster applies and N1 joins the stale set.
        let s1 = step(1).unwrap();
        assert!(s1.shadow.is_some());
        assert!(s1.stale.contains(&NodeId(1)));
        // p2 {2,3,0}, quorum isolated, served in place: N0 went stale.
        assert_eq!(step(2).unwrap().stale, vec![NodeId(0)]);
        // p3: really promoted mid-window — old primary N3 is now a stale
        // secondary on the wrong side of the (already-adopted) timeline.
        let s3 = step(3).unwrap();
        assert_eq!(s3.shadow, None, "the promotion already happened");
        assert!(s3.stale.contains(&NodeId(3)));
    }

    #[test]
    fn quorum_served_partitions_without_stale_replicas_need_no_step() {
        let cfg = SimConfig {
            nodes: 2,
            partitions_per_node: 1,
            keys_per_partition: 32,
            value_size: 16,
            replication_factor: 1,
            max_replicas: 2,
            ..Default::default()
        };
        let mut c = Cluster::new(cfg);
        c.begin_split(&[NodeId(1)], 500);
        // rf 1: each partition's single holder *is* its quorum side, no
        // secondaries exist to go stale.
        assert!(plan_split_promotions(&c).is_empty());
        assert!(plan_heal(&c).is_empty());
    }
}
