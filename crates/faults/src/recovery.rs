//! The recovery coordinator's decision logic: which surviving replica takes
//! over a dead primary's partition, and what the promotion costs.
//!
//! Promotion is priced exactly as remastering is priced during normal
//! operation (§III): the configured hand-off window plus one microsecond per
//! log entry of replication lag the new primary must sync — on top of the
//! failure-detection delay that a crash (unlike a planned remaster) pays
//! first.

use lion_cluster::{Cluster, LAG_SYNC_US_PER_ENTRY};
use lion_common::{NodeId, PartitionId, SimConfig, Time, ZoneId};

/// Promotion price: failure detection + remaster hand-off + lag sync, the
/// same per-entry rate normal remastering pays.
pub fn price_promotion(cfg: &SimConfig, lag: u64) -> Time {
    cfg.failure_detect_us + cfg.remaster_delay_us + lag * LAG_SYNC_US_PER_ENTRY
}

/// One surviving replica considered for promotion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PromotionCandidate {
    /// Node holding the replica.
    pub node: NodeId,
    /// Highest densely-applied LSN (the replica's durability frontier).
    pub applied_lsn: u64,
    /// True when the replica observed out-of-order entries it could not yet
    /// apply — its applied-epoch prefix has a gap and it must not lead.
    pub has_gap: bool,
}

/// Picks the promotion target among `candidates`: the freshest gap-free
/// replica (highest `applied_lsn`), ties broken toward the lowest node id so
/// the choice is a pure function of the candidate set.
///
/// # Invariant: the dense-prefix `applied_lsn`
///
/// A candidate's `applied_lsn` is trustworthy *only because* the storage
/// layer advances it over a **dense prefix**: a replicated entry arriving
/// out of order parks in a reorder buffer and the frontier stays put until
/// the missing LSN lands (`ReplicaStore::apply_entries` in `lion-storage`).
/// `applied_lsn = n` therefore means "every entry 1..=n applied", never
/// "some entry n seen" — which is exactly what makes "freshest wins" a safe
/// leader-election rule. A replica whose prefix has a hole reports
/// [`PromotionCandidate::has_gap`] and is excluded outright, whatever its
/// frontier says.
///
/// ```
/// use lion_faults::{select_promotion_target, PromotionCandidate};
/// use lion_common::NodeId;
///
/// let candidates = [
///     PromotionCandidate { node: NodeId(2), applied_lsn: 90, has_gap: false },
///     // Highest frontier, but its applied prefix has a hole: ineligible.
///     PromotionCandidate { node: NodeId(3), applied_lsn: 95, has_gap: true },
/// ];
/// assert_eq!(select_promotion_target(&candidates), Some(NodeId(2)));
/// ```
pub fn select_promotion_target(candidates: &[PromotionCandidate]) -> Option<NodeId> {
    select_promotion_target_zoned(candidates, &[], None)
}

/// [`select_promotion_target`] with failure-domain awareness: on *equal*
/// freshness, candidates outside `avoid_zone` (the dead primary's zone) win
/// — if the zone is failing, its surviving members are the likeliest next
/// casualties, and promoting into it invites a mid-promotion re-plan.
/// Freshness still dominates: a fresher in-zone replica beats a staler
/// out-of-zone one (lag, not zone, prices the hand-off). With no zone map
/// (or a single zone) this reduces exactly to the unzoned selection.
pub fn select_promotion_target_zoned(
    candidates: &[PromotionCandidate],
    zone_of: &[ZoneId],
    avoid_zone: Option<ZoneId>,
) -> Option<NodeId> {
    let outside = |n: NodeId| -> u8 {
        match (avoid_zone, zone_of.get(n.idx())) {
            (Some(avoid), Some(&z)) if z == avoid => 0,
            (Some(_), Some(_)) => 1,
            _ => 0, // no zone information: everyone ranks equal
        }
    };
    candidates
        .iter()
        .filter(|c| !c.has_gap)
        .max_by(|a, b| {
            a.applied_lsn
                .cmp(&b.applied_lsn)
                .then_with(|| outside(a.node).cmp(&outside(b.node)))
                // prefer the *lower* node id on equal freshness and zone
                .then_with(|| b.node.cmp(&a.node))
        })
        .map(|c| c.node)
}

/// The coordinator's decision for one orphaned partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FailoverDecision {
    /// The partition whose primary died.
    pub part: PartitionId,
    /// The dead node that held the primary.
    pub dead: NodeId,
    /// Chosen promotion target; `None` when no live gap-free replica exists
    /// and the partition stalls until the node recovers.
    pub target: Option<NodeId>,
    /// Replication lag (log entries) the target must sync before serving.
    pub lag: u64,
    /// Promotion duration on the virtual clock: failure detection + hand-off
    /// window + lag sync. Zero when the partition stalls.
    pub duration: Time,
}

/// Surviving replicas of `part` eligible for promotion, with their
/// durability frontiers read from the [`lion_storage::ReplicaStore`]s.
/// During a split-brain window only replicas on the failed primary's own
/// side qualify — a crash is observed (and its failover planned) by the
/// side that hosted the node, and promoting across the cut would hand the
/// partition to nodes the coordinator cannot even reach.
pub fn promotion_candidates(cluster: &Cluster, part: PartitionId) -> Vec<PromotionCandidate> {
    let primary = cluster.placement.primary_of(part);
    cluster
        .placement
        .secondaries_of(part)
        .iter()
        .copied()
        .filter(|&n| cluster.is_up(n) && cluster.same_side(n, primary))
        .filter_map(|n| {
            cluster.store(n, part).map(|s| PromotionCandidate {
                node: n,
                applied_lsn: s.applied_lsn,
                has_gap: s.has_gap(),
            })
        })
        .collect()
}

/// Plans the failover of every partition whose primary sits on the (already
/// crashed) node `dead`. Pure decision logic: the engine executes the
/// returned decisions by scheduling promotions on the virtual clock.
pub fn plan_failover(cluster: &Cluster, dead: NodeId) -> Vec<FailoverDecision> {
    let cfg = &cluster.cfg;
    let mut out = Vec::new();
    for part in cluster.placement.primary_partitions_on(dead) {
        let head = cluster
            .store(dead, part)
            .map(|s| s.log.head_lsn())
            .unwrap_or(0);
        let candidates = promotion_candidates(cluster, part);
        // Avoid promoting back into the dead primary's failure domain when
        // an equally-fresh replica exists elsewhere (correlated-failure
        // hedge; a no-op on single-zone clusters).
        let target =
            select_promotion_target_zoned(&candidates, &cluster.zone_of, Some(cluster.zone(dead)));
        let (lag, duration) = match target {
            Some(node) => {
                let applied = candidates
                    .iter()
                    .find(|c| c.node == node)
                    .expect("target drawn from candidates")
                    .applied_lsn;
                let lag = head.saturating_sub(applied);
                (lag, price_promotion(cfg, lag))
            }
            None => (0, 0),
        };
        out.push(FailoverDecision {
            part,
            dead,
            target,
            lag,
            duration,
        });
    }
    // Deterministic order regardless of placement-map iteration details.
    out.sort_by_key(|d| d.part);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cand(node: u16, applied: u64, gap: bool) -> PromotionCandidate {
        PromotionCandidate {
            node: NodeId(node),
            applied_lsn: applied,
            has_gap: gap,
        }
    }

    #[test]
    fn freshest_wins() {
        let c = [cand(2, 5, false), cand(1, 9, false), cand(3, 7, false)];
        assert_eq!(select_promotion_target(&c), Some(NodeId(1)));
    }

    #[test]
    fn ties_break_to_lowest_node_id() {
        let c = [cand(3, 9, false), cand(1, 9, false), cand(2, 9, false)];
        assert_eq!(select_promotion_target(&c), Some(NodeId(1)));
        // order independence
        let mut r = c;
        r.reverse();
        assert_eq!(select_promotion_target(&r), Some(NodeId(1)));
    }

    #[test]
    fn zoned_selection_prefers_surviving_zones_on_ties() {
        use lion_common::ZoneId;
        let zones = [ZoneId(0), ZoneId(0), ZoneId(1), ZoneId(1)];
        // Equal freshness: N1 shares the dead primary N0's zone, N2 does
        // not — N2 wins despite the higher id.
        let c = [cand(1, 9, false), cand(2, 9, false)];
        assert_eq!(
            select_promotion_target_zoned(&c, &zones, Some(ZoneId(0))),
            Some(NodeId(2))
        );
        // Freshness still dominates the zone preference.
        let c = [cand(1, 10, false), cand(2, 9, false)];
        assert_eq!(
            select_promotion_target_zoned(&c, &zones, Some(ZoneId(0))),
            Some(NodeId(1))
        );
        // No zone info: identical to the unzoned selection.
        let c = [cand(3, 9, false), cand(1, 9, false)];
        assert_eq!(
            select_promotion_target_zoned(&c, &[], None),
            select_promotion_target(&c)
        );
    }

    #[test]
    fn gapped_replicas_never_lead() {
        let c = [cand(1, 100, true), cand(2, 3, false)];
        assert_eq!(select_promotion_target(&c), Some(NodeId(2)));
        let all_gapped = [cand(1, 100, true), cand(2, 50, true)];
        assert_eq!(select_promotion_target(&all_gapped), None);
        assert_eq!(select_promotion_target(&[]), None);
    }

    #[test]
    fn plan_failover_covers_every_orphaned_partition() {
        use lion_common::SimConfig;
        let cfg = SimConfig {
            nodes: 3,
            partitions_per_node: 2,
            keys_per_partition: 32,
            value_size: 16,
            replication_factor: 2,
            ..Default::default()
        };
        let mut cluster = Cluster::new(cfg);
        let dead = NodeId(0);
        cluster.crash_node(dead, 1_000);
        let decisions = plan_failover(&cluster, dead);
        // round-robin over 3 nodes: P0 and P3 are primaried on N0
        assert_eq!(decisions.len(), 2);
        for d in &decisions {
            assert_eq!(d.dead, dead);
            let t = d.target.expect("replication factor 2 leaves a secondary");
            assert!(cluster.is_up(t));
            assert!(d.duration >= cluster.cfg.failure_detect_us + cluster.cfg.remaster_delay_us);
        }
    }
}
