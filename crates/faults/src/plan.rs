//! The fault-plan DSL: deterministic failure scripts on the virtual clock.

use lion_common::{NodeId, Time};
use std::fmt;

/// What happens at a fault event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultKind {
    /// The node halts and its volatile state (unshipped epoch buffers) is
    /// lost; committed writes survive via the prepare logs replicated to
    /// secondaries.
    Crash(NodeId),
    /// The node restarts with its durable state and re-joins.
    Recover(NodeId),
    /// A network partition isolates the listed nodes from the rest of the
    /// cluster. The surviving majority side treats them as failed.
    Partition(Vec<NodeId>),
    /// The network partition heals; isolated nodes re-join.
    Heal,
}

/// One scheduled fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultEvent {
    /// Virtual time (µs) the event fires.
    pub at: Time,
    /// The event.
    pub kind: FaultKind,
}

/// Errors found by [`FaultPlan::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultPlanError {
    /// A node id is out of range for the cluster.
    UnknownNode(NodeId),
    /// Crash/isolate of a node that is already down at that point.
    AlreadyDown(NodeId),
    /// Recover of a node that is up at that point.
    AlreadyUp(NodeId),
    /// The plan would take down every node in the cluster.
    WholeClusterDown(Time),
    /// `Heal` without a preceding un-healed `Partition`.
    HealWithoutPartition(Time),
    /// A second `Partition` before the first healed.
    AlreadyPartitioned(Time),
    /// An empty isolation set.
    EmptyPartition(Time),
}

impl fmt::Display for FaultPlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultPlanError::UnknownNode(n) => write!(f, "unknown node {n}"),
            FaultPlanError::AlreadyDown(n) => write!(f, "{n} is already down"),
            FaultPlanError::AlreadyUp(n) => write!(f, "{n} is already up"),
            FaultPlanError::WholeClusterDown(t) => {
                write!(f, "plan takes the whole cluster down at t={t}µs")
            }
            FaultPlanError::HealWithoutPartition(t) => {
                write!(f, "heal at t={t}µs without an open network partition")
            }
            FaultPlanError::AlreadyPartitioned(t) => {
                write!(
                    f,
                    "second network partition at t={t}µs before the first healed"
                )
            }
            FaultPlanError::EmptyPartition(t) => {
                write!(f, "network partition at t={t}µs isolates no nodes")
            }
        }
    }
}

impl std::error::Error for FaultPlanError {}

/// An ordered, deterministic script of fault events.
///
/// Built with the `*_at` combinators; events keep insertion order within the
/// same timestamp and are sorted stably by time, so the execution order is a
/// pure function of the plan.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan (no faults — the default for every run).
    pub fn new() -> Self {
        FaultPlan { events: Vec::new() }
    }

    /// Alias for [`FaultPlan::new`], reading better at call sites.
    pub fn none() -> Self {
        Self::new()
    }

    /// True when the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// The events in firing order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    fn push(mut self, at: Time, kind: FaultKind) -> Self {
        self.events.push(FaultEvent { at, kind });
        // Stable sort: same-time events fire in insertion order.
        self.events.sort_by_key(|e| e.at);
        self
    }

    /// Schedules a crash of `node` at `at`.
    pub fn crash_at(self, at: Time, node: NodeId) -> Self {
        self.push(at, FaultKind::Crash(node))
    }

    /// Schedules a restart of `node` at `at`.
    pub fn recover_at(self, at: Time, node: NodeId) -> Self {
        self.push(at, FaultKind::Recover(node))
    }

    /// Schedules a network partition isolating `nodes` at `at`.
    pub fn partition_at(self, at: Time, nodes: Vec<NodeId>) -> Self {
        self.push(at, FaultKind::Partition(nodes))
    }

    /// Schedules the heal of the open network partition at `at`.
    pub fn heal_at(self, at: Time) -> Self {
        self.push(at, FaultKind::Heal)
    }

    /// Convenience: one crash/recover cycle of a single node.
    pub fn single_failure(crash_at: Time, node: NodeId, recover_at: Time) -> Self {
        assert!(crash_at < recover_at, "recovery must follow the crash");
        Self::new()
            .crash_at(crash_at, node)
            .recover_at(recover_at, node)
    }

    /// Checks the plan against a cluster of `n_nodes` nodes: ids in range,
    /// no double-crash / double-recover, heals paired with partitions, and
    /// at least one node left alive at every point.
    pub fn validate(&self, n_nodes: usize) -> Result<(), FaultPlanError> {
        let mut down = vec![false; n_nodes];
        let mut isolated: Option<Vec<NodeId>> = None;
        let check = |n: NodeId| {
            if n.idx() >= n_nodes {
                Err(FaultPlanError::UnknownNode(n))
            } else {
                Ok(())
            }
        };
        for ev in &self.events {
            match &ev.kind {
                FaultKind::Crash(n) => {
                    check(*n)?;
                    if down[n.idx()] {
                        return Err(FaultPlanError::AlreadyDown(*n));
                    }
                    down[n.idx()] = true;
                }
                FaultKind::Recover(n) => {
                    check(*n)?;
                    if !down[n.idx()] {
                        return Err(FaultPlanError::AlreadyUp(*n));
                    }
                    down[n.idx()] = false;
                }
                FaultKind::Partition(nodes) => {
                    if isolated.is_some() {
                        return Err(FaultPlanError::AlreadyPartitioned(ev.at));
                    }
                    if nodes.is_empty() {
                        return Err(FaultPlanError::EmptyPartition(ev.at));
                    }
                    for n in nodes {
                        check(*n)?;
                        if down[n.idx()] {
                            return Err(FaultPlanError::AlreadyDown(*n));
                        }
                        down[n.idx()] = true;
                    }
                    isolated = Some(nodes.clone());
                }
                FaultKind::Heal => match isolated.take() {
                    Some(nodes) => {
                        for n in nodes {
                            down[n.idx()] = false;
                        }
                    }
                    None => return Err(FaultPlanError::HealWithoutPartition(ev.at)),
                },
            }
            if down.iter().all(|&d| d) {
                return Err(FaultPlanError::WholeClusterDown(ev.at));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u16) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn builder_sorts_stably_by_time() {
        let plan = FaultPlan::new()
            .recover_at(500, n(0))
            .crash_at(100, n(0))
            .crash_at(500, n(1))
            .recover_at(900, n(1));
        let at: Vec<Time> = plan.events().iter().map(|e| e.at).collect();
        assert_eq!(at, vec![100, 500, 500, 900]);
        // same-time events keep insertion order: recover(n0) before crash(n1)
        assert_eq!(plan.events()[1].kind, FaultKind::Recover(n(0)));
        assert_eq!(plan.events()[2].kind, FaultKind::Crash(n(1)));
        assert!(plan.validate(2).is_ok());
    }

    #[test]
    fn validate_rejects_double_crash_and_unknown_nodes() {
        let p = FaultPlan::new().crash_at(1, n(0)).crash_at(2, n(0));
        assert_eq!(p.validate(4), Err(FaultPlanError::AlreadyDown(n(0))));
        let p = FaultPlan::new().crash_at(1, n(9));
        assert_eq!(p.validate(4), Err(FaultPlanError::UnknownNode(n(9))));
        let p = FaultPlan::new().recover_at(1, n(0));
        assert_eq!(p.validate(4), Err(FaultPlanError::AlreadyUp(n(0))));
    }

    #[test]
    fn validate_rejects_killing_everyone() {
        let p = FaultPlan::new().crash_at(1, n(0)).crash_at(2, n(1));
        assert_eq!(p.validate(2), Err(FaultPlanError::WholeClusterDown(2)));
        assert!(p.validate(3).is_ok());
    }

    #[test]
    fn partition_heal_pairing() {
        let p = FaultPlan::new().heal_at(5);
        assert_eq!(p.validate(2), Err(FaultPlanError::HealWithoutPartition(5)));
        let p = FaultPlan::new()
            .partition_at(1, vec![n(1)])
            .partition_at(2, vec![n(2)]);
        assert_eq!(p.validate(4), Err(FaultPlanError::AlreadyPartitioned(2)));
        let p = FaultPlan::new().partition_at(1, vec![]);
        assert_eq!(p.validate(4), Err(FaultPlanError::EmptyPartition(1)));
        let p = FaultPlan::new()
            .partition_at(1, vec![n(1), n(2)])
            .heal_at(9)
            .partition_at(10, vec![n(0)])
            .heal_at(20);
        assert!(p.validate(4).is_ok());
    }

    #[test]
    fn single_failure_roundtrip() {
        let p = FaultPlan::single_failure(1_000, n(2), 5_000);
        assert_eq!(p.len(), 2);
        assert!(p.validate(4).is_ok());
    }
}
