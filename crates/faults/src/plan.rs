//! The fault-plan DSL: deterministic failure scripts on the virtual clock.

use lion_common::{NodeId, PartitionId, Placement, Time, ZoneId};
use std::fmt;

/// What happens at a fault event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultKind {
    /// The node halts and its volatile state (unshipped epoch buffers) is
    /// lost; committed writes survive via the prepare logs replicated to
    /// secondaries.
    Crash(NodeId),
    /// The node restarts with its durable state and re-joins.
    Recover(NodeId),
    /// A network partition isolates the listed nodes from the rest of the
    /// cluster. The surviving majority side treats them as failed.
    Partition(Vec<NodeId>),
    /// The network partition heals; isolated nodes re-join.
    Heal,
    /// Correlated failure: every live node of the zone halts atomically on
    /// one virtual-clock tick (rack power / top-of-rack switch loss). A
    /// failover already in flight toward a zone member dies with it and is
    /// re-planned over the survivors.
    ZoneCrash(ZoneId),
    /// Every down node of the zone restarts (power restored).
    ZoneHeal(ZoneId),
    /// Zone-aware network partition: the listed zones are cut off from the
    /// rest of the cluster (aggregation-switch loss); the surviving side
    /// treats their members as failed until the matching [`FaultKind::Heal`].
    ZonePartition(Vec<ZoneId>),
}

/// One scheduled fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultEvent {
    /// Virtual time (µs) the event fires.
    pub at: Time,
    /// The event.
    pub kind: FaultKind,
}

/// Errors found by [`FaultPlan::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultPlanError {
    /// A node id is out of range for the cluster.
    UnknownNode(NodeId),
    /// Crash/isolate of a node that is already down at that point.
    AlreadyDown(NodeId),
    /// Recover of a node that is up at that point.
    AlreadyUp(NodeId),
    /// The plan would take down every node in the cluster.
    WholeClusterDown(Time),
    /// `Heal` without a preceding un-healed `Partition`.
    HealWithoutPartition(Time),
    /// A second `Partition` before the first healed.
    AlreadyPartitioned(Time),
    /// An empty isolation set.
    EmptyPartition(Time),
    /// A zone id with no member nodes in the cluster.
    UnknownZone(ZoneId),
    /// ZoneCrash of a zone whose members are all already down.
    ZoneAlreadyDown(ZoneId),
    /// ZoneHeal of a zone whose members are all already up.
    ZoneAlreadyUp(ZoneId),
    /// The plan's combined crashes leave every replica holder of a
    /// partition down at the end of the script, with no matching
    /// `Recover`/`ZoneHeal`/`Heal`: the run would stall that partition
    /// forever. Caught at validation instead of silently hanging.
    OrphanedForever(PartitionId),
    /// Split-brain refinement of [`FaultPlanError::OrphanedForever`]: at
    /// some instant of an open split-brain partition window, *neither* side
    /// of the cut holds a strict majority of this data partition's replica
    /// set among its live nodes. No side could fence the other, both
    /// timelines would claim durability, and the heal reconciliation would
    /// have no surviving timeline to keep — rejected up front.
    NoQuorumSide {
        /// Virtual time (µs) at which the quorum was lost (the partition
        /// event itself, or a crash inside the window).
        at: Time,
        /// The data partition with no quorum side.
        part: PartitionId,
    },
}

impl fmt::Display for FaultPlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultPlanError::UnknownNode(n) => write!(f, "unknown node {n}"),
            FaultPlanError::AlreadyDown(n) => write!(f, "{n} is already down"),
            FaultPlanError::AlreadyUp(n) => write!(f, "{n} is already up"),
            FaultPlanError::WholeClusterDown(t) => {
                write!(f, "plan takes the whole cluster down at t={t}µs")
            }
            FaultPlanError::HealWithoutPartition(t) => {
                write!(f, "heal at t={t}µs without an open network partition")
            }
            FaultPlanError::AlreadyPartitioned(t) => {
                write!(
                    f,
                    "second network partition at t={t}µs before the first healed"
                )
            }
            FaultPlanError::EmptyPartition(t) => {
                write!(f, "network partition at t={t}µs isolates no nodes")
            }
            FaultPlanError::UnknownZone(z) => write!(f, "unknown zone {z}"),
            FaultPlanError::ZoneAlreadyDown(z) => {
                write!(f, "every node of {z} is already down")
            }
            FaultPlanError::ZoneAlreadyUp(z) => {
                write!(f, "every node of {z} is already up")
            }
            FaultPlanError::OrphanedForever(p) => {
                write!(
                    f,
                    "plan leaves every replica of {p} down forever (no recover/heal)"
                )
            }
            FaultPlanError::NoQuorumSide { at, part } => {
                write!(
                    f,
                    "split-brain partition at t={at}µs leaves no side with a \
                     live majority of {part}'s replica set"
                )
            }
        }
    }
}

impl std::error::Error for FaultPlanError {}

/// An ordered, deterministic script of fault events.
///
/// Built with the `*_at` combinators; events keep insertion order within the
/// same timestamp and are sorted stably by time, so the execution order is a
/// pure function of the plan.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
    /// Honest split-brain mode: `Partition`/`ZonePartition` keep **both**
    /// sides live instead of approximating the isolated side as crashed.
    /// Minority-side coordinators keep accepting work (their acks fence
    /// behind the quorum seal), the quorum side promotes, and the matching
    /// `Heal` runs divergence reconciliation. Off by default — the legacy
    /// crash-approximation path stays bit-identical.
    split_brain: bool,
}

impl FaultPlan {
    /// An empty plan (no faults — the default for every run).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Alias for [`FaultPlan::new`], reading better at call sites.
    pub fn none() -> Self {
        Self::new()
    }

    /// True when the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// The events in firing order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    fn push(mut self, at: Time, kind: FaultKind) -> Self {
        self.events.push(FaultEvent { at, kind });
        // Stable sort: same-time events fire in insertion order.
        self.events.sort_by_key(|e| e.at);
        self
    }

    /// Schedules a crash of `node` at `at`.
    pub fn crash_at(self, at: Time, node: NodeId) -> Self {
        self.push(at, FaultKind::Crash(node))
    }

    /// Schedules a restart of `node` at `at`.
    pub fn recover_at(self, at: Time, node: NodeId) -> Self {
        self.push(at, FaultKind::Recover(node))
    }

    /// Schedules a network partition isolating `nodes` at `at`.
    pub fn partition_at(self, at: Time, nodes: Vec<NodeId>) -> Self {
        self.push(at, FaultKind::Partition(nodes))
    }

    /// Opts the plan into honest split-brain semantics: partitions keep
    /// both sides live (see the field docs on [`FaultPlan`]). Validation
    /// then additionally requires every data partition to keep one side
    /// with a live replica-set majority for the whole window
    /// ([`FaultPlanError::NoQuorumSide`]).
    pub fn with_split_brain(mut self) -> Self {
        self.split_brain = true;
        self
    }

    /// True when the plan runs partitions in honest split-brain mode.
    pub fn split_brain(&self) -> bool {
        self.split_brain
    }

    /// Schedules the heal of the open network partition at `at`.
    pub fn heal_at(self, at: Time) -> Self {
        self.push(at, FaultKind::Heal)
    }

    /// Schedules a correlated crash of every node in `zone` at `at`.
    pub fn crash_zone_at(self, at: Time, zone: ZoneId) -> Self {
        self.push(at, FaultKind::ZoneCrash(zone))
    }

    /// Schedules the restart of every down node in `zone` at `at`.
    pub fn heal_zone_at(self, at: Time, zone: ZoneId) -> Self {
        self.push(at, FaultKind::ZoneHeal(zone))
    }

    /// Schedules a network partition cutting the listed zones off at `at`.
    pub fn partition_zones_at(self, at: Time, zones: Vec<ZoneId>) -> Self {
        self.push(at, FaultKind::ZonePartition(zones))
    }

    /// Convenience: one zone-loss/zone-restore cycle.
    pub fn zone_failure(crash_at: Time, zone: ZoneId, heal_at: Time) -> Self {
        assert!(crash_at < heal_at, "the heal must follow the crash");
        Self::new()
            .crash_zone_at(crash_at, zone)
            .heal_zone_at(heal_at, zone)
    }

    /// Convenience: one crash/recover cycle of a single node.
    pub fn single_failure(crash_at: Time, node: NodeId, recover_at: Time) -> Self {
        assert!(crash_at < recover_at, "recovery must follow the crash");
        Self::new()
            .crash_at(crash_at, node)
            .recover_at(recover_at, node)
    }

    /// Checks the plan against a cluster of `n_nodes` nodes in one zone:
    /// ids in range, no double-crash / double-recover, heals paired with
    /// partitions, and at least one node left alive at every point. Plans
    /// with zone events need [`FaultPlan::validate_with_zones`].
    pub fn validate(&self, n_nodes: usize) -> Result<(), FaultPlanError> {
        let zone_of = vec![ZoneId(0); n_nodes];
        self.validate_with_zones(n_nodes, &zone_of)
    }

    /// [`FaultPlan::validate`] with a node→zone map, so zone events resolve
    /// to their member sets. Returns the final down-set for the orphan check.
    ///
    /// In split-brain mode isolated nodes are *not* marked down (both sides
    /// stay live); when `placement` is given, every instant of an open
    /// split-brain window must leave each data partition one side holding a
    /// live strict majority of its replica set.
    fn simulate(
        &self,
        n_nodes: usize,
        zone_of: &[ZoneId],
        placement: Option<&Placement>,
    ) -> Result<Vec<bool>, FaultPlanError> {
        debug_assert_eq!(zone_of.len(), n_nodes);
        let mut down = vec![false; n_nodes];
        let mut isolated: Option<Vec<NodeId>> = None;
        // Split-brain quorum rule: with the cut `iso` open, every data
        // partition needs one side whose live holders form a strict
        // majority of the *full* replica set.
        let quorum_check =
            |at: Time, down: &[bool], iso: &[NodeId]| -> Result<(), FaultPlanError> {
                let Some(pl) = placement else { return Ok(()) };
                for p in 0..pl.n_partitions() {
                    let part = PartitionId(p as u32);
                    let holders = pl.replica_nodes(part);
                    let rf = holders.len();
                    let mut live = [0usize; 2];
                    for h in &holders {
                        if !down[h.idx()] {
                            live[usize::from(iso.contains(h))] += 1;
                        }
                    }
                    if live[0] * 2 <= rf && live[1] * 2 <= rf {
                        return Err(FaultPlanError::NoQuorumSide { at, part });
                    }
                }
                Ok(())
            };
        let check = |n: NodeId| {
            if n.idx() >= n_nodes {
                Err(FaultPlanError::UnknownNode(n))
            } else {
                Ok(())
            }
        };
        let members = |z: ZoneId| -> Result<Vec<usize>, FaultPlanError> {
            let m: Vec<usize> = (0..n_nodes).filter(|&i| zone_of[i] == z).collect();
            if m.is_empty() {
                Err(FaultPlanError::UnknownZone(z))
            } else {
                Ok(m)
            }
        };
        for ev in &self.events {
            match &ev.kind {
                FaultKind::Crash(n) => {
                    check(*n)?;
                    if down[n.idx()] {
                        return Err(FaultPlanError::AlreadyDown(*n));
                    }
                    down[n.idx()] = true;
                    if self.split_brain {
                        if let Some(iso) = &isolated {
                            quorum_check(ev.at, &down, iso)?;
                        }
                    }
                }
                FaultKind::Recover(n) => {
                    check(*n)?;
                    if !down[n.idx()] {
                        return Err(FaultPlanError::AlreadyUp(*n));
                    }
                    down[n.idx()] = false;
                }
                FaultKind::Partition(nodes) => {
                    if isolated.is_some() {
                        return Err(FaultPlanError::AlreadyPartitioned(ev.at));
                    }
                    if nodes.is_empty() {
                        return Err(FaultPlanError::EmptyPartition(ev.at));
                    }
                    for n in nodes {
                        check(*n)?;
                        if down[n.idx()] {
                            return Err(FaultPlanError::AlreadyDown(*n));
                        }
                        if !self.split_brain {
                            down[n.idx()] = true;
                        }
                    }
                    if self.split_brain {
                        quorum_check(ev.at, &down, nodes)?;
                    }
                    isolated = Some(nodes.clone());
                }
                FaultKind::Heal => match isolated.take() {
                    Some(nodes) => {
                        if !self.split_brain {
                            for n in nodes {
                                down[n.idx()] = false;
                            }
                        }
                    }
                    None => return Err(FaultPlanError::HealWithoutPartition(ev.at)),
                },
                FaultKind::ZoneCrash(z) => {
                    let m = members(*z)?;
                    if m.iter().all(|&i| down[i]) {
                        return Err(FaultPlanError::ZoneAlreadyDown(*z));
                    }
                    for i in m {
                        down[i] = true;
                    }
                    if self.split_brain {
                        if let Some(iso) = &isolated {
                            quorum_check(ev.at, &down, iso)?;
                        }
                    }
                }
                FaultKind::ZoneHeal(z) => {
                    let m = members(*z)?;
                    if m.iter().all(|&i| !down[i]) {
                        return Err(FaultPlanError::ZoneAlreadyUp(*z));
                    }
                    for i in m {
                        down[i] = false;
                    }
                }
                FaultKind::ZonePartition(zones) => {
                    if isolated.is_some() {
                        return Err(FaultPlanError::AlreadyPartitioned(ev.at));
                    }
                    if zones.is_empty() {
                        return Err(FaultPlanError::EmptyPartition(ev.at));
                    }
                    let mut cut: Vec<NodeId> = Vec::new();
                    for z in zones {
                        for i in members(*z)? {
                            if !down[i] {
                                if !self.split_brain {
                                    down[i] = true;
                                }
                                cut.push(NodeId(i as u16));
                            }
                        }
                    }
                    if cut.is_empty() {
                        return Err(FaultPlanError::EmptyPartition(ev.at));
                    }
                    if self.split_brain {
                        quorum_check(ev.at, &down, &cut)?;
                    }
                    isolated = Some(cut);
                }
            }
            if down.iter().all(|&d| d) {
                return Err(FaultPlanError::WholeClusterDown(ev.at));
            }
        }
        Ok(down)
    }

    /// Structural validation with zone resolution (see [`FaultPlan::validate`]).
    pub fn validate_with_zones(
        &self,
        n_nodes: usize,
        zone_of: &[ZoneId],
    ) -> Result<(), FaultPlanError> {
        self.simulate(n_nodes, zone_of, None).map(|_| ())
    }

    /// Full validation against a concrete topology: the structural checks
    /// plus the *liveness* check — the script's terminal state must leave
    /// every partition with at least one live replica holder. A plan whose
    /// combined node and zone crashes take down every replica of some
    /// partition without a matching `Recover`/`ZoneHeal`/`Heal` would stall
    /// that partition to the end of the run; this rejects it up front
    /// instead. (Conservative: protocols that provision replicas online may
    /// outrun the static check, but a plan that only passes because of
    /// runtime replication is a fragile experiment.)
    pub fn validate_against(
        &self,
        placement: &Placement,
        zone_of: &[ZoneId],
    ) -> Result<(), FaultPlanError> {
        let down = self.simulate(placement.n_nodes(), zone_of, Some(placement))?;
        for p in 0..placement.n_partitions() {
            let part = PartitionId(p as u32);
            let orphaned = placement
                .replica_nodes(part)
                .iter()
                .all(|holder| down[holder.idx()]);
            if orphaned {
                return Err(FaultPlanError::OrphanedForever(part));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u16) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn builder_sorts_stably_by_time() {
        let plan = FaultPlan::new()
            .recover_at(500, n(0))
            .crash_at(100, n(0))
            .crash_at(500, n(1))
            .recover_at(900, n(1));
        let at: Vec<Time> = plan.events().iter().map(|e| e.at).collect();
        assert_eq!(at, vec![100, 500, 500, 900]);
        // same-time events keep insertion order: recover(n0) before crash(n1)
        assert_eq!(plan.events()[1].kind, FaultKind::Recover(n(0)));
        assert_eq!(plan.events()[2].kind, FaultKind::Crash(n(1)));
        assert!(plan.validate(2).is_ok());
    }

    #[test]
    fn validate_rejects_double_crash_and_unknown_nodes() {
        let p = FaultPlan::new().crash_at(1, n(0)).crash_at(2, n(0));
        assert_eq!(p.validate(4), Err(FaultPlanError::AlreadyDown(n(0))));
        let p = FaultPlan::new().crash_at(1, n(9));
        assert_eq!(p.validate(4), Err(FaultPlanError::UnknownNode(n(9))));
        let p = FaultPlan::new().recover_at(1, n(0));
        assert_eq!(p.validate(4), Err(FaultPlanError::AlreadyUp(n(0))));
    }

    #[test]
    fn validate_rejects_killing_everyone() {
        let p = FaultPlan::new().crash_at(1, n(0)).crash_at(2, n(1));
        assert_eq!(p.validate(2), Err(FaultPlanError::WholeClusterDown(2)));
        assert!(p.validate(3).is_ok());
    }

    #[test]
    fn partition_heal_pairing() {
        let p = FaultPlan::new().heal_at(5);
        assert_eq!(p.validate(2), Err(FaultPlanError::HealWithoutPartition(5)));
        let p = FaultPlan::new()
            .partition_at(1, vec![n(1)])
            .partition_at(2, vec![n(2)]);
        assert_eq!(p.validate(4), Err(FaultPlanError::AlreadyPartitioned(2)));
        let p = FaultPlan::new().partition_at(1, vec![]);
        assert_eq!(p.validate(4), Err(FaultPlanError::EmptyPartition(1)));
        let p = FaultPlan::new()
            .partition_at(1, vec![n(1), n(2)])
            .heal_at(9)
            .partition_at(10, vec![n(0)])
            .heal_at(20);
        assert!(p.validate(4).is_ok());
    }

    #[test]
    fn single_failure_roundtrip() {
        let p = FaultPlan::single_failure(1_000, n(2), 5_000);
        assert_eq!(p.len(), 2);
        assert!(p.validate(4).is_ok());
    }

    fn z(i: u16) -> ZoneId {
        ZoneId(i)
    }

    /// 4 nodes, racks Z0={N0,N1}, Z1={N2,N3}.
    fn two_zone_map() -> Vec<ZoneId> {
        vec![z(0), z(0), z(1), z(1)]
    }

    #[test]
    fn zone_crash_heal_cycle_validates() {
        let p = FaultPlan::zone_failure(1_000, z(1), 9_000);
        assert_eq!(p.len(), 2);
        assert!(p.validate_with_zones(4, &two_zone_map()).is_ok());
        // whole-cluster loss via zones is rejected
        let p = FaultPlan::new()
            .crash_zone_at(1, z(0))
            .crash_zone_at(2, z(1));
        assert_eq!(
            p.validate_with_zones(4, &two_zone_map()),
            Err(FaultPlanError::WholeClusterDown(2))
        );
        // unknown zone / double zone crash
        let p = FaultPlan::new().crash_zone_at(1, z(7));
        assert_eq!(
            p.validate_with_zones(4, &two_zone_map()),
            Err(FaultPlanError::UnknownZone(z(7)))
        );
        let p = FaultPlan::new()
            .crash_zone_at(1, z(1))
            .crash_zone_at(2, z(1));
        assert_eq!(
            p.validate_with_zones(4, &two_zone_map()),
            Err(FaultPlanError::ZoneAlreadyDown(z(1)))
        );
        let p = FaultPlan::new().heal_zone_at(1, z(0));
        assert_eq!(
            p.validate_with_zones(4, &two_zone_map()),
            Err(FaultPlanError::ZoneAlreadyUp(z(0)))
        );
    }

    #[test]
    fn zone_crash_composes_with_node_faults() {
        // N2 crashes alone; the later ZoneCrash takes its zone-mate N3 too;
        // ZoneHeal restores both.
        let p = FaultPlan::new()
            .crash_at(1, n(2))
            .crash_zone_at(5, z(1))
            .heal_zone_at(9, z(1));
        assert!(p.validate_with_zones(4, &two_zone_map()).is_ok());
        // plain validate (single-zone view) rejects zone ids it cannot map
        assert_eq!(
            FaultPlan::new().crash_zone_at(1, z(1)).validate(4),
            Err(FaultPlanError::UnknownZone(z(1)))
        );
    }

    #[test]
    fn zone_partition_isolates_members_until_heal() {
        let p = FaultPlan::new()
            .partition_zones_at(1, vec![z(1)])
            .heal_at(9);
        assert!(p.validate_with_zones(4, &two_zone_map()).is_ok());
        let p = FaultPlan::new().partition_zones_at(1, vec![z(0), z(1)]);
        assert_eq!(
            p.validate_with_zones(4, &two_zone_map()),
            Err(FaultPlanError::WholeClusterDown(1))
        );
        let p = FaultPlan::new().partition_zones_at(1, vec![]);
        assert_eq!(
            p.validate_with_zones(4, &two_zone_map()),
            Err(FaultPlanError::EmptyPartition(1))
        );
    }

    #[test]
    fn orphan_forever_plans_are_rejected() {
        // P0's replicas live on N0 and N1 — both in Z0. Crashing Z0 without
        // a heal stalls P0 to the horizon: rejected.
        let pl = Placement::round_robin(4, 4, 2);
        let zones = two_zone_map();
        let forever = FaultPlan::new().crash_zone_at(1_000, z(0));
        assert_eq!(
            forever.validate_against(&pl, &zones),
            Err(FaultPlanError::OrphanedForever(PartitionId(0)))
        );
        // The same loss with a heal is a legitimate outage scenario.
        let healed = FaultPlan::zone_failure(1_000, z(0), 9_000);
        assert!(healed.validate_against(&pl, &zones).is_ok());
        // Node+zone combination: crash N2 forever, zone-crash Z0 with heal —
        // P2 (replicas N2,N3) keeps N3, P0 recovers with the heal.
        let combo = FaultPlan::new()
            .crash_at(500, n(2))
            .crash_zone_at(1_000, z(0))
            .heal_zone_at(5_000, z(0));
        assert!(combo.validate_against(&pl, &zones).is_ok());
        // …but additionally crashing N3 forever orphans P2 = {N2, N3}.
        let combo_bad = FaultPlan::new()
            .crash_at(500, n(2))
            .crash_at(600, n(3))
            .heal_zone_at(5_000, z(1)); // heals Z1? no: both crashed individually
                                        // ZoneHeal restores down members of Z1 (N2, N3), so P2 survives:
        assert!(combo_bad.validate_against(&pl, &zones).is_ok());
        let truly_bad = FaultPlan::new().crash_at(500, n(2)).crash_at(600, n(3));
        assert_eq!(
            truly_bad.validate_against(&pl, &zones),
            Err(FaultPlanError::OrphanedForever(PartitionId(2)))
        );
        // Zone-safe placement survives the un-healed zone loss that
        // orphaned round-robin: every partition spans both racks.
        let safe = Placement::zone_spread(4, 4, 2, &zones, 2);
        assert!(forever.validate_against(&safe, &zones).is_ok());
    }

    #[test]
    fn split_brain_keeps_both_sides_structurally_live() {
        // Isolating one of two nodes would be WholeClusterDown-adjacent in
        // the crash approximation; in split-brain mode both sides stay up.
        let p = FaultPlan::new()
            .partition_at(1, vec![n(1)])
            .heal_at(9)
            .with_split_brain();
        assert!(p.split_brain());
        assert!(p.validate(2).is_ok());
        // The crash approximation of the same plan kills n1 for the window.
        let legacy = FaultPlan::new().partition_at(1, vec![n(1)]).heal_at(9);
        assert!(!legacy.split_brain());
        assert!(legacy.validate(2).is_ok());
        // Pairing rules are unchanged in split-brain mode.
        let p = FaultPlan::new().heal_at(5).with_split_brain();
        assert_eq!(p.validate(2), Err(FaultPlanError::HealWithoutPartition(5)));
    }

    #[test]
    fn split_brain_rejects_plans_with_no_quorum_side() {
        // rf=2: P0 lives on {N0, N1}; cutting N1 off splits its replica set
        // 1/1 — neither side holds a strict majority.
        let pl = Placement::round_robin(4, 4, 2);
        let zones = two_zone_map();
        let p = FaultPlan::new()
            .partition_at(1_000, vec![n(1)])
            .heal_at(9_000)
            .with_split_brain();
        assert_eq!(
            p.validate_against(&pl, &zones),
            Err(FaultPlanError::NoQuorumSide {
                at: 1_000,
                part: PartitionId(0)
            })
        );
        // The same cut with rf=3 leaves every partition a 2/1 split: ok.
        let pl3 = Placement::round_robin(4, 4, 3);
        assert!(p.validate_against(&pl3, &zones).is_ok());
        // Without split_brain the quorum rule does not apply (the isolated
        // side is approximated as crashed, and the heal restores it).
        let legacy = FaultPlan::new()
            .partition_at(1_000, vec![n(1)])
            .heal_at(9_000);
        assert!(legacy.validate_against(&pl, &zones).is_ok());
    }

    #[test]
    fn split_brain_quorum_holds_for_the_entire_window() {
        // rf=3 on 4 nodes, cut {N3}: at the partition P2 = {N2, N3, N0}
        // splits 2/1 toward the majority. Crashing N0 *inside* the window
        // drops the majority side to 1 live holder of 3 — rejected at the
        // crash instant, not the partition instant.
        let pl3 = Placement::round_robin(4, 4, 3);
        let zones = two_zone_map();
        let p = FaultPlan::new()
            .partition_at(1_000, vec![n(3)])
            .crash_at(2_000, n(0))
            .heal_at(9_000)
            .with_split_brain();
        assert_eq!(
            p.validate_against(&pl3, &zones),
            Err(FaultPlanError::NoQuorumSide {
                at: 2_000,
                part: PartitionId(2)
            })
        );
        // The same crash after the heal is fine.
        let p = FaultPlan::new()
            .partition_at(1_000, vec![n(3)])
            .heal_at(9_000)
            .crash_at(10_000, n(0))
            .with_split_brain();
        assert!(p.validate_against(&pl3, &zones).is_ok());
        // Zone cut in split-brain mode: Z1 = {N2, N3} keeps a 2/1 or 1/2
        // majority on every rf=3 partition.
        let p = FaultPlan::new()
            .partition_zones_at(1_000, vec![z(1)])
            .heal_at(9_000)
            .with_split_brain();
        assert!(p.validate_against(&pl3, &zones).is_ok());
    }
}
