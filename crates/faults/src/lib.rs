//! # lion-faults
//!
//! Deterministic fault injection and the failover recovery coordinator for
//! the simulated cluster. This crate opens the fault/recovery scenario
//! dimension: Lion's adaptively provisioned secondaries (PAPER.md §IV) are
//! warm standbys under the epoch-based group replication of §V, so the same
//! replicas that minimize distributed transactions also bound how long a
//! partition stays unavailable after its primary dies.
//!
//! ## The `FaultPlan` DSL
//!
//! A [`FaultPlan`] is an ordered script of [`FaultEvent`]s scheduled on the
//! engine's virtual clock. Because the whole simulation is a deterministic
//! discrete-event system, the same seed and the same plan always reproduce
//! the identical failure and recovery timeline — crash at the same virtual
//! microsecond, promote the same secondaries, measure the same windows.
//!
//! ```
//! use lion_faults::FaultPlan;
//! use lion_common::NodeId;
//!
//! // Crash node 1 two (virtual) seconds in; bring it back at six seconds.
//! let plan = FaultPlan::new()
//!     .crash_at(2_000_000, NodeId(1))
//!     .recover_at(6_000_000, NodeId(1));
//! assert!(plan.validate(4).is_ok());
//! assert_eq!(plan.len(), 2);
//! ```
//!
//! The event kinds:
//!
//! | event | semantics |
//! |---|---|
//! | [`FaultKind::Crash`] | the node halts: its workers stop, in-flight transactions touching it abort, its primaries fail over (or stall when no live replica exists) |
//! | [`FaultKind::Recover`] | the node restarts with its on-disk state: stalled primaries resume after a restart window; stale secondaries re-join via background snapshot copies |
//! | [`FaultKind::Partition`] | a network partition isolates a set of nodes. By default the majority side treats them exactly like crashed nodes; with [`FaultPlan::with_split_brain`] **both sides stay live** — per data partition the side holding a strict majority of the replica set owns the durable timeline, the other side's coordinators keep accepting quorum-fenced work, and the [`heal`] coordinator reconciles the divergence at heal |
//! | [`FaultKind::Heal`] | the network partition heals; isolated nodes re-join like recovered nodes (split-brain plans additionally audit, abort, and retry the divergent timeline's fenced work) |
//! | [`FaultKind::ZoneCrash`] | **correlated failure**: every live node of a failure domain halts atomically on one virtual-clock tick (rack power loss) — including a failover target mid-promotion, which is re-planned over the survivors |
//! | [`FaultKind::ZoneHeal`] | power restored: every down node of the zone restarts |
//! | [`FaultKind::ZonePartition`] | zone-aware network partition: whole racks are cut off until the matching [`FaultKind::Heal`] |
//!
//! Validation is two-layered: [`FaultPlan::validate_with_zones`] checks the
//! script structurally (ids in range, no double-crash, someone always
//! alive), and [`FaultPlan::validate_against`] additionally rejects plans
//! whose combined node + zone crashes leave some partition with **zero live
//! replica holders at the end of the script** — a run that would silently
//! stall forever fails fast at submission instead. The engine applies the
//! full check at run start.
//!
//! ## Failover semantics
//!
//! When a node dies, the *recovery coordinator* (driven by the engine, with
//! the decision logic in [`recovery`]) promotes, for each partition whose
//! primary was on the dead node, the **freshest live secondary** — the one
//! with the highest densely-applied LSN and no gap in its applied-epoch
//! prefix ([`select_promotion_target`]). Promotion is priced exactly like
//! remastering (§III): a failure-detection delay plus the configured
//! hand-off window plus one microsecond per log entry of replication lag the
//! new primary must sync. Writes that committed on the dead primary but had
//! not been epoch-flushed are recovered by replaying the prepare log that
//! §II-A synchronously replicated to the secondaries — no committed write is
//! lost. Partitions with **no** live replica stall (operations block,
//! availability clock keeps running) until the node recovers.
//!
//! Protocols observe topology changes through
//! `Protocol::on_fault` ([`FaultNotice`]); Lion reacts by dropping routing
//! affinity to the dead node and re-running the provision loop (Algorithm 1)
//! once failover lands.

pub mod heal;
pub mod plan;
pub mod recovery;

pub use heal::{plan_heal, plan_split_promotions, HealStep, SplitAction, SplitDecision};
pub use plan::{FaultEvent, FaultKind, FaultPlan, FaultPlanError};
pub use recovery::{
    plan_failover, price_promotion, promotion_candidates, select_promotion_target,
    select_promotion_target_zoned, FailoverDecision, PromotionCandidate,
};

use lion_common::{NodeId, PartitionId};

/// Topology-change notification delivered to protocols via
/// `Protocol::on_fault`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultNotice {
    /// A node crashed (or became isolated by a network partition). Placement
    /// still routes its primaries to it until the corresponding
    /// [`FaultNotice::FailoverComplete`] events fire.
    NodeDown(NodeId),
    /// A node rejoined the cluster (restart or partition heal).
    NodeUp(NodeId),
    /// A partition's primary was promoted onto a surviving replica.
    FailoverComplete {
        /// The partition that failed over.
        part: PartitionId,
        /// The dead node that held the primary.
        from: NodeId,
        /// The surviving node now holding the primary.
        to: NodeId,
    },
}
