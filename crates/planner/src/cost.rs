//! The cost model of §IV-B.2 (Eq. 3–4), shared by the plan generator and the
//! transaction routers ("each of which is equipped with a cost model
//! identical to the planner's", §III).

use lion_common::{NodeId, PartitionId, Placement, ZoneId};

/// Operation cost weights: `w_r` per remaster, `w_m` per migration
/// (migration ≫ remaster; the paper's Example 2 uses the same ordering),
/// plus an optional cross-zone coordination term `w_z`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostWeights {
    /// Cost of remastering one partition onto the target.
    pub w_r: f64,
    /// Cost of copying one partition onto the target.
    pub w_m: f64,
    /// Cross-zone surcharge per remote partition whose primary sits in a
    /// different failure domain than the candidate coordinator: the 2PC
    /// rounds to it traverse the aggregation layer, so deliberate routing
    /// should prefer rack-local coordinators under rack-safe placement.
    /// `0` (the default) reproduces the zone-oblivious Eq. 3 exactly.
    pub w_z: f64,
}

impl Default for CostWeights {
    fn default() -> Self {
        // Calibrated to the default timing knobs: a migration moves a full
        // partition (~ms of transfer) while a remaster only syncs the lag.
        CostWeights {
            w_r: 1.0,
            w_m: 10.0,
            w_z: 0.0,
        }
    }
}

impl CostWeights {
    /// Enables the cross-zone coordination term (builder style).
    pub fn with_zone_weight(mut self, w_z: f64) -> Self {
        self.w_z = w_z;
        self
    }
}

/// Eq. 4's `cnt_r(v, n)`: the (frequency-inflated) remaster count of placing
/// partition `v`'s clump on node `n`. `freq` is the normalized access
/// frequency `f(v, Np(v, p))` of the current primary — remastering a hot
/// primary is priced higher because it disrupts in-flight transactions.
fn cnt_r(placement: &Placement, freq: &[f64], v: PartitionId, n: NodeId) -> f64 {
    if placement.has_secondary(v, n) {
        1.0 + (freq[v.idx()] + 1.0).log2()
    } else {
        0.0
    }
}

/// Eq. 4's `cnt_m(v, n)`: 1 when node `n` holds no replica of `v` at all and
/// a data copy is unavoidable.
fn cnt_m(placement: &Placement, v: PartitionId, n: NodeId) -> f64 {
    if placement.has_replica(v, n) {
        0.0
    } else {
        1.0
    }
}

/// Eq. 3: the operational cost `f_o(n, c)` of placing the partitions `parts`
/// (a clump) onto node `n` under the current placement.
pub fn placement_cost(
    placement: &Placement,
    freq: &[f64],
    parts: &[PartitionId],
    n: NodeId,
    w: CostWeights,
) -> f64 {
    let mut remaster = 0.0;
    let mut migrate = 0.0;
    for &v in parts {
        remaster += cnt_r(placement, freq, v, n);
        migrate += cnt_m(placement, v, n);
    }
    w.w_r * remaster + w.w_m * migrate
}

/// How a transaction would execute at a candidate node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnPlacementClass {
    /// Every accessed partition's primary is local: single-node, no extra
    /// work (§III case 1).
    AllPrimary,
    /// Every partition has a local replica but some are secondaries:
    /// single-node after remastering (§III case 2).
    NeedsRemaster { count: usize },
    /// Some partitions have no local replica: distributed 2PC (§III case 3).
    Distributed { remote_parts: usize },
}

/// Classifies + prices executing a transaction over `parts` at node `n`.
///
/// The returned cost mirrors Eq. 3 with a distributed-execution penalty per
/// remote partition, so routers can pick "the node with maximum requisite
/// replicas, where the execution cost is the lowest" (§III).
pub fn execution_cost(
    placement: &Placement,
    freq: &[f64],
    parts: &[PartitionId],
    n: NodeId,
    w: CostWeights,
) -> (TxnPlacementClass, f64) {
    execution_cost_zoned(placement, freq, parts, n, w, &[])
}

/// Zone-aware Eq. 3: like [`execution_cost`], but each remote partition
/// whose primary lives in a *different failure domain* than the candidate
/// coordinator additionally pays `w_z` — its 2PC rounds cross the rack
/// boundary. With `w_z = 0` or an empty `zone_of` map this is exactly the
/// zone-oblivious score, so single-zone clusters and existing callers are
/// untouched.
pub fn execution_cost_zoned(
    placement: &Placement,
    freq: &[f64],
    parts: &[PartitionId],
    n: NodeId,
    w: CostWeights,
    zone_of: &[ZoneId],
) -> (TxnPlacementClass, f64) {
    let zoned = w.w_z != 0.0 && !zone_of.is_empty();
    let mut remasters = 0usize;
    let mut remote = 0usize;
    let mut cost = 0.0;
    for &v in parts {
        if placement.is_primary(v, n) {
            continue;
        } else if placement.has_secondary(v, n) {
            remasters += 1;
            cost += w.w_r * (1.0 + (freq[v.idx()] + 1.0).log2());
        } else {
            remote += 1;
            cost += w.w_m; // remote participation priced like a copy-class op
            if zoned && zone_of[placement.primary_of(v).idx()] != zone_of[n.idx()] {
                cost += w.w_z; // coordination rounds cross the rack boundary
            }
        }
    }
    let class = if remote > 0 {
        TxnPlacementClass::Distributed {
            remote_parts: remote,
        }
    } else if remasters > 0 {
        TxnPlacementClass::NeedsRemaster { count: remasters }
    } else {
        TxnPlacementClass::AllPrimary
    };
    (class, cost)
}

/// Scans all nodes and returns the cheapest `(node, class, cost)` for a
/// transaction, breaking ties toward the lower node id (deterministic).
pub fn best_execution_node(
    placement: &Placement,
    freq: &[f64],
    parts: &[PartitionId],
    w: CostWeights,
) -> (NodeId, TxnPlacementClass, f64) {
    let mut best: Option<(NodeId, TxnPlacementClass, f64)> = None;
    for n in 0..placement.n_nodes() as u16 {
        let node = NodeId(n);
        let (class, cost) = execution_cost(placement, freq, parts, node, w);
        let better = match &best {
            None => true,
            Some((_, _, bc)) => cost < *bc,
        };
        if better {
            best = Some((node, class, cost));
        }
    }
    best.expect("cluster has at least one node")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u32) -> PartitionId {
        PartitionId(i)
    }
    fn n(i: u16) -> NodeId {
        NodeId(i)
    }

    /// Example 2 (§IV-B.3): clump C1 = {P1, P2}; replicas as in Fig. 4b.
    /// With equal frequencies, costs to N1/N2/N3 are w_r, w_m + w_r, w_m.
    #[test]
    fn fig4_example2_costs() {
        // Build the Fig. 4b layout over 5 partitions, 3 nodes:
        //   P1(=p0): primary N1, secondary N2 ; P2(=p1): primary N3, sec N1
        //   P3(=p2): primary N2              ; P4(=p3): primary N3
        //   P5(=p4): primary N1, secondary N2
        let mut pl = Placement::round_robin(5, 3, 1);
        // round_robin gives p0->N0, p1->N1, p2->N2, p3->N0, p4->N1; rewrite:
        pl.migrate_primary(p(0), n(0)).unwrap();
        pl.migrate_primary(p(1), n(2)).unwrap();
        pl.migrate_primary(p(2), n(1)).unwrap();
        pl.migrate_primary(p(3), n(2)).unwrap();
        pl.migrate_primary(p(4), n(0)).unwrap();
        pl.add_secondary(p(0), n(1)).unwrap();
        pl.add_secondary(p(1), n(0)).unwrap();
        pl.add_secondary(p(4), n(1)).unwrap();

        let freq = vec![0.0; 5]; // "all replicas have ~the same access frequency"
        let w = CostWeights {
            w_r: 1.0,
            w_m: 10.0,
            w_z: 0.0,
        };
        let clump = [p(0), p(1)];
        let c_n1 = placement_cost(&pl, &freq, &clump, n(0), w);
        let c_n2 = placement_cost(&pl, &freq, &clump, n(1), w);
        let c_n3 = placement_cost(&pl, &freq, &clump, n(2), w);
        assert_eq!(c_n1, w.w_r, "N1: P1 primary local, P2 secondary local");
        assert_eq!(c_n2, w.w_m + w.w_r, "N2: P2 missing, P1 secondary");
        assert_eq!(c_n3, w.w_m, "N3: P2 primary local, P1 missing");
        assert!(c_n1 < c_n3 && c_n3 < c_n2);
    }

    #[test]
    fn hot_primary_inflates_remaster_cost() {
        let mut pl = Placement::round_robin(1, 2, 1);
        pl.add_secondary(p(0), n(1)).unwrap();
        let w = CostWeights::default();
        let cold = placement_cost(&pl, &[0.0], &[p(0)], n(1), w);
        let hot = placement_cost(&pl, &[1.0], &[p(0)], n(1), w);
        assert!(hot > cold);
        assert_eq!(cold, w.w_r * 1.0);
        assert_eq!(hot, w.w_r * 2.0, "f=1 doubles: 1 + log2(2) = 2");
    }

    #[test]
    fn execution_classes() {
        // p0 primary N0; p1 primary N1 with secondary N0; p2 primary N1.
        let mut pl = Placement::round_robin(3, 2, 1);
        pl.migrate_primary(p(2), n(1)).unwrap();
        pl.add_secondary(p(1), n(0)).unwrap();
        let freq = vec![0.0; 3];
        let w = CostWeights::default();

        let (class, cost) = execution_cost(&pl, &freq, &[p(0)], n(0), w);
        assert_eq!(class, TxnPlacementClass::AllPrimary);
        assert_eq!(cost, 0.0);

        let (class, _) = execution_cost(&pl, &freq, &[p(0), p(1)], n(0), w);
        assert_eq!(class, TxnPlacementClass::NeedsRemaster { count: 1 });

        let (class, _) = execution_cost(&pl, &freq, &[p(0), p(2)], n(0), w);
        assert_eq!(class, TxnPlacementClass::Distributed { remote_parts: 1 });
    }

    #[test]
    fn best_node_prefers_all_primary() {
        let mut pl = Placement::round_robin(2, 2, 1);
        pl.migrate_primary(p(1), n(0)).unwrap(); // both primaries on N0
        let (node, class, cost) =
            best_execution_node(&pl, &[0.0; 2], &[p(0), p(1)], CostWeights::default());
        assert_eq!(node, n(0));
        assert_eq!(class, TxnPlacementClass::AllPrimary);
        assert_eq!(cost, 0.0);
    }

    #[test]
    fn zone_term_prefers_rack_local_coordinators() {
        use lion_common::ZoneId;
        // 4 nodes over 2 racks: Z0 = {N0, N1}, Z1 = {N2, N3}.
        // p0 primary N0, p1 primary N1, p2 primary N2, p3 primary N3 (rf 1).
        let pl = Placement::round_robin(4, 4, 1);
        let zones = vec![ZoneId(0), ZoneId(0), ZoneId(1), ZoneId(1)];
        let freq = vec![0.0; 4];
        let w = CostWeights::default().with_zone_weight(2.0);
        // A txn over {p0, p1}: N0 and N1 both see one remote partition, but
        // its primary is rack-local — no surcharge. N2/N3 pay 2 × (w_m+w_z).
        let parts = [p(0), p(1)];
        let (_, c_n0) = execution_cost_zoned(&pl, &freq, &parts, n(0), w, &zones);
        let (_, c_n2) = execution_cost_zoned(&pl, &freq, &parts, n(2), w, &zones);
        assert_eq!(c_n0, w.w_m, "rack-local remote pays no zone term");
        assert_eq!(c_n2, 2.0 * (w.w_m + w.w_z), "cross-rack coordination");
        // With the term disabled (or no zone map) the scores are the
        // zone-oblivious Eq. 3 — N0 and N2 differ only by the remote count.
        let flat = CostWeights::default();
        let (_, f_n0) = execution_cost_zoned(&pl, &freq, &parts, n(0), flat, &zones);
        let (c0, e0) = execution_cost(&pl, &freq, &parts, n(0), flat);
        assert_eq!(
            (c0, e0),
            (TxnPlacementClass::Distributed { remote_parts: 1 }, f_n0)
        );
    }

    #[test]
    fn best_node_prefers_remaster_over_distributed() {
        // p0 primary N0, secondary N1; p1 primary N1. At N1: remaster p0.
        let mut pl = Placement::round_robin(2, 3, 1);
        pl.add_secondary(p(0), n(1)).unwrap();
        let (node, class, _) =
            best_execution_node(&pl, &[0.0; 2], &[p(0), p(1)], CostWeights::default());
        assert_eq!(node, n(1));
        assert_eq!(class, TxnPlacementClass::NeedsRemaster { count: 1 });
    }
}
