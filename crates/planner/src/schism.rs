//! A Schism-style workload-driven partitioner (§II-B.1, used by the
//! `Lion(S)` / `Lion(SW)` ablation variants of Table II).
//!
//! Schism models the workload as a co-access graph and computes a balanced
//! min-cut partitioning, then migrates data to realize it. We reproduce that
//! with a deterministic greedy streaming partitioner (linear deterministic
//! greedy: maximize edge affinity to the candidate node minus a load
//! penalty, under a capacity cap). Crucially — and this is the property the
//! ablation isolates — the result is *replica-oblivious*: realizing it
//! always migrates data, never exploiting existing secondaries.

use crate::graph::HeatGraph;
use crate::rearrange::{PlanAction, PlanEntry, ReconfigurationPlan};
use lion_common::{NodeId, PartitionId, Placement};

/// Computes a balanced node assignment for every accessed partition.
///
/// Returns `assignment[p] = Some(node)` for accessed partitions, `None` for
/// untouched ones. `slack` is the allowed overshoot over perfectly even load
/// (0.25 ⇒ a node may carry 125% of the average).
pub fn schism_partition(graph: &HeatGraph, n_nodes: usize, slack: f64) -> Vec<Option<NodeId>> {
    assert!(n_nodes > 0);
    let order = graph.hot_vertices();
    let total_w: f64 = order.iter().map(|&v| graph.vertex_weight(v)).sum();
    let cap = (total_w / n_nodes as f64) * (1.0 + slack);

    let mut assignment: Vec<Option<NodeId>> = vec![None; graph.n_partitions()];
    let mut load = vec![0.0f64; n_nodes];
    // Load-penalty scale: an average-weight vertex's worth of affinity.
    let lambda = if order.is_empty() {
        1.0
    } else {
        total_w / order.len() as f64
    };

    for v in order {
        let w = graph.vertex_weight(v);
        // Affinity of v to each node: total edge weight to already-placed
        // neighbors.
        let mut affinity = vec![0.0f64; n_nodes];
        for (adj, ew) in graph.neighbors(v) {
            if let Some(n) = assignment[adj.idx()] {
                affinity[n.idx()] += ew;
            }
        }
        let mut best: Option<(usize, f64)> = None;
        for n in 0..n_nodes {
            if load[n] + w > cap && load[n] > 0.0 {
                continue; // capacity-full node (always allow an empty node)
            }
            let score = affinity[n] - lambda * (load[n] / cap.max(1e-12));
            match best {
                Some((_, bs)) if score <= bs => {}
                _ => best = Some((n, score)),
            }
        }
        let n = best.map(|(n, _)| n).unwrap_or_else(|| {
            // Everything at capacity: fall back to the least-loaded node.
            load.iter()
                .enumerate()
                .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
                .map(|(n, _)| n)
                .expect("n_nodes > 0")
        });
        assignment[v.idx()] = Some(NodeId(n as u16));
        load[n] += w;
    }
    assignment
}

/// Emits a Schism reconfiguration plan: every accessed partition whose
/// assigned node differs from its current primary is *migrated* (Schism
/// "does not account for the placement of secondary replicas, leading to
/// unnecessary migrations", §II-B.1).
pub fn schism_plan(graph: &HeatGraph, placement: &Placement, slack: f64) -> ReconfigurationPlan {
    let assignment = schism_partition(graph, placement.n_nodes(), slack);
    let mut plan = ReconfigurationPlan::default();
    let mut groups: Vec<Vec<PartitionId>> = vec![Vec::new(); placement.n_nodes()];
    for (i, assigned) in assignment.iter().enumerate() {
        let Some(dest) = *assigned else { continue };
        let part = PartitionId(i as u32);
        groups[dest.idx()].push(part);
        if !placement.is_primary(part, dest) {
            plan.entries.push(PlanEntry {
                part,
                dest,
                action: PlanAction::Migrate,
            });
            plan.total_cost += 1.0;
        }
    }
    for (n, parts) in groups.into_iter().enumerate() {
        if !parts.is_empty() {
            plan.assignments.push((parts, NodeId(n as u16)));
        }
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u32) -> PartitionId {
        PartitionId(i)
    }

    fn pair_graph(pairs: &[(u32, u32, f64)], n: usize) -> HeatGraph {
        let placement = Placement::round_robin(n, 2, 1);
        let mut g = HeatGraph::new(n);
        for &(a, b, w) in pairs {
            g.add_txn(&[p(a), p(b)], w, &placement, 1.0);
        }
        g
    }

    #[test]
    fn co_accessed_pairs_land_together() {
        // Two heavy pairs; a 2-node split should keep each pair intact.
        let g = pair_graph(&[(0, 1, 10.0), (2, 3, 10.0)], 4);
        let a = schism_partition(&g, 2, 0.5);
        assert_eq!(a[0], a[1], "pair (0,1) must stay together");
        assert_eq!(a[2], a[3], "pair (2,3) must stay together");
        assert_ne!(a[0], a[2], "balance forces the pairs apart");
    }

    #[test]
    fn untouched_partitions_stay_unassigned() {
        let g = pair_graph(&[(0, 1, 1.0)], 4);
        let a = schism_partition(&g, 2, 0.5);
        assert!(a[0].is_some() && a[1].is_some());
        assert!(a[2].is_none() && a[3].is_none());
    }

    #[test]
    fn capacity_forces_spreading() {
        // Six equal singletons over 3 nodes: each node gets two.
        let placement = Placement::round_robin(6, 3, 1);
        let mut g = HeatGraph::new(6);
        for i in 0..6 {
            g.add_txn(&[p(i)], 1.0, &placement, 1.0);
        }
        let a = schism_partition(&g, 3, 0.01);
        let mut counts = [0usize; 3];
        for n in a.iter().flatten() {
            counts[n.idx()] += 1;
        }
        assert_eq!(counts, [2, 2, 2], "got {counts:?}");
    }

    #[test]
    fn plan_only_migrates() {
        let placement = Placement::round_robin(4, 2, 2);
        let mut g = HeatGraph::new(4);
        // p0 (home N0) and p1 (home N1) co-accessed; p2/p3 provide filler
        // load so capacity permits co-locating the pair.
        g.add_txn(&[p(0), p(1)], 10.0, &placement, 1.0);
        g.add_txn(&[p(2)], 10.0, &placement, 1.0);
        g.add_txn(&[p(3)], 10.0, &placement, 1.0);
        let plan = schism_plan(&g, &placement, 0.5);
        let a = schism_partition(&g, 2, 0.5);
        assert_eq!(a[0], a[1], "pair co-located");
        assert!(!plan.entries.is_empty(), "at least one partition must move");
        assert!(plan.entries.iter().all(|e| e.action == PlanAction::Migrate));
    }

    #[test]
    fn empty_graph_produces_empty_plan() {
        let placement = Placement::round_robin(4, 2, 1);
        let g = HeatGraph::new(4);
        let plan = schism_plan(&g, &placement, 0.5);
        assert!(plan.entries.is_empty());
        assert!(plan.assignments.is_empty());
    }
}
