//! The heat graph `G(V, E)` of §IV-A.
//!
//! Vertices are partitions weighted by access frequency; edges connect
//! partitions co-accessed by the same transaction, weighted by co-access
//! count. Edges crossing node boundaries under the current placement (`e_c`)
//! are boosted relative to same-node edges (`e_s`), "emphasizing the higher
//! priority given to e_c" — those are the edges that currently force
//! distributed transactions.

use lion_common::{FastMap, PartitionId, Placement};

/// Weighted co-access graph over partitions.
#[derive(Debug, Clone)]
pub struct HeatGraph {
    n_partitions: usize,
    vertex_w: Vec<f64>,
    adj: Vec<FastMap<u32, f64>>,
    edge_count: usize,
}

impl HeatGraph {
    /// Creates an empty graph over `n_partitions` vertices.
    pub fn new(n_partitions: usize) -> Self {
        HeatGraph {
            n_partitions,
            vertex_w: vec![0.0; n_partitions],
            adj: vec![FastMap::default(); n_partitions],
            edge_count: 0,
        }
    }

    /// Number of vertices.
    pub fn n_partitions(&self) -> usize {
        self.n_partitions
    }

    /// Number of distinct edges.
    pub fn n_edges(&self) -> usize {
        self.edge_count
    }

    /// Adds one transaction's accessed-partition set with weight `w`
    /// (1.0 for observed transactions, `wp` for predicted ones, §IV-C.1).
    /// `cross_boost` multiplies edge weight when the two partitions' primaries
    /// live on different nodes under `placement`.
    pub fn add_txn(
        &mut self,
        parts: &[PartitionId],
        w: f64,
        placement: &Placement,
        cross_boost: f64,
    ) {
        for &p in parts {
            self.vertex_w[p.idx()] += w;
        }
        for i in 0..parts.len() {
            for j in (i + 1)..parts.len() {
                let (u, v) = (parts[i], parts[j]);
                if u == v {
                    continue;
                }
                let cross = placement.primary_of(u) != placement.primary_of(v);
                let ew = if cross { w * cross_boost } else { w };
                self.add_edge(u, v, ew);
            }
        }
    }

    /// Adds `w` to the undirected edge `(u, v)`.
    pub fn add_edge(&mut self, u: PartitionId, v: PartitionId, w: f64) {
        debug_assert_ne!(u, v, "no self edges");
        let is_new = !self.adj[u.idx()].contains_key(&v.0);
        *self.adj[u.idx()].entry(v.0).or_insert(0.0) += w;
        *self.adj[v.idx()].entry(u.0).or_insert(0.0) += w;
        if is_new {
            self.edge_count += 1;
        }
    }

    /// Vertex weight (access frequency) of `p`.
    pub fn vertex_weight(&self, p: PartitionId) -> f64 {
        self.vertex_w[p.idx()]
    }

    /// Edge weight between `u` and `v` (0 when absent).
    pub fn edge_weight(&self, u: PartitionId, v: PartitionId) -> f64 {
        self.adj[u.idx()].get(&v.0).copied().unwrap_or(0.0)
    }

    /// Neighbors of `p` with edge weights.
    pub fn neighbors(&self, p: PartitionId) -> impl Iterator<Item = (PartitionId, f64)> + '_ {
        self.adj[p.idx()].iter().map(|(&v, &w)| (PartitionId(v), w))
    }

    /// Vertices ordered hottest-first (the `hVertices` priority queue of
    /// §IV-A), restricted to vertices that were accessed at all.
    pub fn hot_vertices(&self) -> Vec<PartitionId> {
        let mut v: Vec<PartitionId> = (0..self.n_partitions as u32)
            .map(PartitionId)
            .filter(|p| self.vertex_w[p.idx()] > 0.0)
            .collect();
        v.sort_by(|a, b| {
            self.vertex_w[b.idx()]
                .partial_cmp(&self.vertex_w[a.idx()])
                .expect("weights are finite")
                .then(a.0.cmp(&b.0))
        });
        v
    }

    /// Normalized vertex weights (hottest = 1.0), the `f(v, ·)` input of
    /// Eq. 4 when built from the same observation window.
    pub fn normalized_weights(&self) -> Vec<f64> {
        let max = self.vertex_w.iter().cloned().fold(0.0f64, f64::max);
        if max == 0.0 {
            return vec![0.0; self.n_partitions];
        }
        self.vertex_w.iter().map(|w| w / max).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lion_common::Placement;

    fn p(i: u32) -> PartitionId {
        PartitionId(i)
    }

    /// The Fig. 3a example: T1{P1,P2} T2{P3} T3{P4} T4{P1,P2} T5{P5} T6{P4}
    /// T7{P5} (0-indexed here as P0..P4).
    fn fig3_graph() -> HeatGraph {
        let placement = Placement::round_robin(5, 3, 1);
        let mut g = HeatGraph::new(5);
        let txns: Vec<Vec<PartitionId>> = vec![
            vec![p(0), p(1)],
            vec![p(2)],
            vec![p(3)],
            vec![p(0), p(1)],
            vec![p(4)],
            vec![p(3)],
            vec![p(4)],
        ];
        for t in &txns {
            g.add_txn(t, 1.0, &placement, 1.0);
        }
        g
    }

    #[test]
    fn fig3_vertex_and_edge_weights() {
        let g = fig3_graph();
        assert_eq!(g.vertex_weight(p(0)), 2.0);
        assert_eq!(g.vertex_weight(p(1)), 2.0);
        assert_eq!(g.vertex_weight(p(2)), 1.0);
        assert_eq!(g.vertex_weight(p(3)), 2.0);
        assert_eq!(g.vertex_weight(p(4)), 2.0);
        assert_eq!(g.edge_weight(p(0), p(1)), 2.0);
        assert_eq!(g.edge_weight(p(0), p(2)), 0.0);
        assert_eq!(g.n_edges(), 1);
    }

    #[test]
    fn cross_node_edges_are_boosted() {
        // P0 primary on N0, P1 primary on N1 (round-robin over 2 nodes).
        let placement = Placement::round_robin(4, 2, 1);
        let mut g = HeatGraph::new(4);
        g.add_txn(&[p(0), p(1)], 1.0, &placement, 10.0); // cross-node
        g.add_txn(&[p(0), p(2)], 1.0, &placement, 10.0); // same node (both N0)
        assert_eq!(g.edge_weight(p(0), p(1)), 10.0);
        assert_eq!(g.edge_weight(p(0), p(2)), 1.0);
    }

    #[test]
    fn hot_vertices_sorted_desc_with_stable_ties() {
        let g = fig3_graph();
        let hot = g.hot_vertices();
        assert_eq!(hot[4], p(2), "coldest vertex last");
        // all weight-2 vertices precede the weight-1 vertex, ties by id
        assert_eq!(hot[..4], [p(0), p(1), p(3), p(4)]);
    }

    #[test]
    fn hot_vertices_excludes_untouched() {
        let placement = Placement::round_robin(10, 2, 1);
        let mut g = HeatGraph::new(10);
        g.add_txn(&[p(7)], 1.0, &placement, 1.0);
        assert_eq!(g.hot_vertices(), vec![p(7)]);
    }

    #[test]
    fn predicted_weight_scales_contribution() {
        let placement = Placement::round_robin(3, 1, 1);
        let mut g = HeatGraph::new(3);
        g.add_txn(&[p(0), p(1)], 0.5, &placement, 1.0);
        assert_eq!(g.vertex_weight(p(0)), 0.5);
        assert_eq!(g.edge_weight(p(0), p(1)), 0.5);
    }

    #[test]
    fn normalized_weights_peak_at_one() {
        let g = fig3_graph();
        let norm = g.normalized_weights();
        assert_eq!(norm[p(0).idx()], 1.0);
        assert_eq!(norm[p(2).idx()], 0.5);
        let empty = HeatGraph::new(3);
        assert_eq!(empty.normalized_weights(), vec![0.0; 3]);
    }

    #[test]
    fn duplicate_partitions_in_txn_do_not_self_edge() {
        let placement = Placement::round_robin(2, 1, 1);
        let mut g = HeatGraph::new(2);
        g.add_txn(&[p(0), p(0), p(1)], 1.0, &placement, 1.0);
        assert_eq!(g.edge_weight(p(0), p(1)), 2.0, "two pairs (0,1) counted");
        assert_eq!(g.n_edges(), 1);
    }
}
