//! # lion-planner
//!
//! Lion's *planner* node (§III): the workload analyzer and plan generator.
//!
//! * [`graph`] — the heat graph `G(V, E)` built from a batch of observed
//!   (and predicted) transactions (§IV-A, Fig. 3a);
//! * [`clump`] — the clustering pass that grows clumps of co-accessed
//!   partitions from the hottest seeds (§IV-A, Fig. 3b);
//! * [`cost`] — the cost model of Eq. 3–4 pricing a clump placement by
//!   remastering vs migration work, and the router-side execution cost;
//! * [`rearrange()`] — Algorithm 1: greedy clump dispatching followed by load
//!   fine-tuning (§IV-B, Fig. 4);
//! * [`schism`] — a Schism-style replica-oblivious graph partitioner used by
//!   the `Lion(S)`/`Lion(SW)` ablation variants (Table II).
//!
//! Everything here is a pure function over [`lion_common`] types, so the
//! whole planning pipeline is unit- and property-testable in isolation.

pub mod clump;
pub mod cost;
pub mod graph;
pub mod rearrange;
pub mod schism;

pub use clump::{generate_clumps, Clump};
pub use cost::{
    execution_cost, execution_cost_zoned, placement_cost, CostWeights, TxnPlacementClass,
};
pub use graph::HeatGraph;
pub use rearrange::{
    rearrange, rearrange_with_live, rearrange_with_topology, PlanAction, PlanEntry, PlannerConfig,
    ReconfigurationPlan,
};
pub use schism::{schism_partition, schism_plan};
