//! Algorithm 1: the replica rearrangement algorithm (§IV-B.3).
//!
//! Two steps, exactly as the paper structures them:
//!
//! 1. **Clump dispatching** — `FindDstNode` assigns every clump to the node
//!    with the lowest Eq. 3 cost, memoizing interim costs in `mc` and
//!    tracking per-node balance factors `b`;
//! 2. **Load fine-tuning** — while the balance check fails, clumps are moved
//!    from overloaded nodes (`oN`) to idle nodes (`iN`), picking a clump
//!    small enough to bridge the gap and the idle destination with the
//!    lowest memoized cost, with a step budget `A` between balance
//!    re-evaluations.

use crate::clump::Clump;
use crate::cost::{placement_cost, CostWeights};
use lion_common::{NodeId, PartitionId, Placement, PlacementPolicy, ZoneId};

/// Planner tuning knobs (§IV defaults).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlannerConfig {
    /// Clump co-access threshold α (§IV-A).
    pub alpha: f64,
    /// Cross-node edge boost for the heat graph (e_c vs e_s, §IV-A).
    pub cross_edge_boost: f64,
    /// Cost weights for Eq. 3.
    pub weights: CostWeights,
    /// Permissible load imbalance ε; θ = avg·(1+ε) (§II-C).
    pub epsilon: f64,
    /// Fine-tuning step budget A between balance re-checks.
    pub step_a: usize,
    /// Weight wp of predicted transactions in the heat graph (§IV-C.1).
    pub predicted_weight: f64,
    /// Number of recent transactions analyzed per planning round (B).
    pub history_cap: usize,
    /// Safety cap on clump size (see [`crate::clump::generate_clumps`]).
    pub max_clump_size: usize,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        PlannerConfig {
            alpha: 2.0,
            cross_edge_boost: 4.0,
            weights: CostWeights::default(),
            // Wide enough that integer-granular clump counts (e.g. 5 vs 4
            // pairs per node) sit stably inside θ instead of oscillating.
            epsilon: 0.4,
            step_a: 8,
            predicted_weight: 1.0,
            history_cap: 4_000,
            max_clump_size: 24,
        }
    }
}

/// How the adaptor realizes moving one partition to its destination.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanAction {
    /// Target holds a secondary: promote it (cheap, §IV-B.1 case 2).
    Remaster,
    /// Target holds nothing: background-copy a replica, then remaster once
    /// the copy lands (Lion's non-intrusive path).
    AddReplica,
    /// Target holds nothing and the protocol is replica-oblivious: blocking
    /// full-data migration (Schism/Clay-style, §IV-B.1 case 3).
    Migrate,
    /// Background-copy a secondary *without* remastering: the anti-affinity
    /// repair of `PlacementPolicy::RackSafe` — the primary stays where
    /// locality wants it, the copy restores cross-zone coverage.
    AddSecondary,
}

/// One partition move of a reconfiguration plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanEntry {
    /// Partition to move.
    pub part: PartitionId,
    /// Destination node.
    pub dest: NodeId,
    /// Mechanism.
    pub action: PlanAction,
}

/// The `RP` structure of §IV-B.1: clump→node assignments plus the per-
/// partition actions realizing them.
#[derive(Debug, Clone, Default)]
pub struct ReconfigurationPlan {
    /// Partition-level actions to hand the adaptors.
    pub entries: Vec<PlanEntry>,
    /// Final clump→node mapping (the router affinity table).
    pub assignments: Vec<(Vec<PartitionId>, NodeId)>,
    /// Total Eq. 3 cost of the plan (Eq. 2's objective value).
    pub total_cost: f64,
}

impl ReconfigurationPlan {
    /// Destination lookup per partition (None when unassigned this round).
    pub fn dest_of(&self, part: PartitionId) -> Option<NodeId> {
        self.assignments
            .iter()
            .find(|(parts, _)| parts.contains(&part))
            .map(|&(_, n)| n)
    }

    /// Applies the plan's effect to a placement (used by tests and by the
    /// dry-run invariant property tests; the engine applies it with timing).
    pub fn apply_to(&self, placement: &mut Placement) {
        for e in &self.entries {
            match e.action {
                PlanAction::Remaster => {
                    let _ = placement.remaster(e.part, e.dest);
                }
                PlanAction::AddReplica => {
                    let _ = placement.add_secondary(e.part, e.dest);
                    let _ = placement.remaster(e.part, e.dest);
                }
                PlanAction::Migrate => {
                    let _ = placement.migrate_primary(e.part, e.dest);
                }
                PlanAction::AddSecondary => {
                    let _ = placement.add_secondary(e.part, e.dest);
                }
            }
        }
    }
}

/// Per-node balance state for the fine-tuning phase. Dead nodes (fault
/// injection) are excluded from averages and from both the overloaded and
/// idle candidate lists, so plans never route load at a crashed executor.
struct Balance {
    load: Vec<f64>,
    live: Vec<bool>,
    total: f64,
}

impl Balance {
    fn new(live: Vec<bool>) -> Self {
        Balance {
            load: vec![0.0; live.len()],
            live,
            total: 0.0,
        }
    }
    fn add(&mut self, node: NodeId, w: f64) {
        self.load[node.idx()] += w;
        self.total += w;
    }
    fn transfer(&mut self, from: NodeId, to: NodeId, w: f64) {
        self.load[from.idx()] -= w;
        self.load[to.idx()] += w;
    }
    fn live_count(&self) -> usize {
        self.live.iter().filter(|&&l| l).count()
    }
    fn avg(&self) -> f64 {
        self.total / self.live_count().max(1) as f64
    }
    fn theta(&self, epsilon: f64) -> f64 {
        self.avg() * (1.0 + epsilon)
    }
    /// `CheckBalance`: every live node under θ.
    fn balanced(&self, epsilon: f64) -> bool {
        let theta = self.theta(epsilon);
        self.load
            .iter()
            .zip(&self.live)
            .all(|(&l, &up)| !up || l <= theta + 1e-9)
    }
    /// `FindOINodes`: overloaded (> θ) and idle (< avg) live nodes.
    fn overloaded_and_idle(&self, epsilon: f64) -> (Vec<NodeId>, Vec<NodeId>) {
        let theta = self.theta(epsilon);
        let avg = self.avg();
        let mut over: Vec<NodeId> = Vec::new();
        let mut idle: Vec<NodeId> = Vec::new();
        for (i, &l) in self.load.iter().enumerate() {
            if !self.live[i] {
                continue;
            }
            if l > theta + 1e-9 {
                over.push(NodeId(i as u16));
            } else if l < avg - 1e-9 {
                idle.push(NodeId(i as u16));
            }
        }
        // Most overloaded first.
        over.sort_by(|a, b| {
            self.load[b.idx()]
                .partial_cmp(&self.load[a.idx()])
                .expect("finite")
        });
        (over, idle)
    }
}

/// `FindDstNode`: evaluates Eq. 3 across all nodes, memoizes the row into
/// `mc`, and returns the cheapest node (ties broken toward the currently
/// least-loaded node, then the lower id, for determinism).
fn find_dst_node(
    clump: &Clump,
    placement: &Placement,
    freq: &[f64],
    weights: CostWeights,
    balance: &Balance,
    mc_row: &mut Vec<f64>,
) -> NodeId {
    let n_nodes = placement.n_nodes();
    mc_row.clear();
    mc_row.reserve(n_nodes);
    let mut best = NodeId(0);
    let mut best_cost = f64::INFINITY;
    for n in 0..n_nodes as u16 {
        let node = NodeId(n);
        if !balance.live[node.idx()] {
            // A dead node can neither host primaries nor receive copies.
            mc_row.push(f64::INFINITY);
            continue;
        }
        let cost = placement_cost(placement, freq, &clump.parts, node, weights);
        mc_row.push(cost);
        let better = cost < best_cost - 1e-12
            || (cost < best_cost + 1e-12
                && balance.load[node.idx()] < balance.load[best.idx()] - 1e-12);
        if better {
            best = node;
            best_cost = cost;
        }
    }
    best
}

/// Runs Algorithm 1 over the generated clumps.
///
/// `replica_aware` selects the emitted action for partitions lacking a
/// replica at the destination: `AddReplica` (Lion) or `Migrate`
/// (replica-oblivious baselines / ablations).
pub fn rearrange(
    clumps: Vec<Clump>,
    placement: &Placement,
    freq: &[f64],
    cfg: &PlannerConfig,
    replica_aware: bool,
) -> ReconfigurationPlan {
    let live = vec![true; placement.n_nodes()];
    rearrange_with_live(clumps, placement, freq, cfg, replica_aware, &live)
}

/// [`rearrange`] with a node-liveness mask: dead nodes (fault injection)
/// receive no clumps, no replicas, and are ignored by the load balancer.
pub fn rearrange_with_live(
    clumps: Vec<Clump>,
    placement: &Placement,
    freq: &[f64],
    cfg: &PlannerConfig,
    replica_aware: bool,
    live: &[bool],
) -> ReconfigurationPlan {
    let zone_of = vec![ZoneId(0); placement.n_nodes()];
    rearrange_with_topology(
        clumps,
        placement,
        freq,
        cfg,
        replica_aware,
        live,
        &zone_of,
        PlacementPolicy::LocalityFirst,
    )
}

/// [`rearrange_with_live`] with failure-domain awareness: under
/// [`PlacementPolicy::RackSafe`] the emitted plan additionally repairs any
/// planned partition whose replica set would span fewer than `min_zones`
/// zones, appending [`PlanAction::AddSecondary`] copies onto the
/// least-loaded live node of an uncovered zone. Locality-first policies (and
/// single-zone clusters) produce byte-identical plans to
/// [`rearrange_with_live`].
// Algorithm 1's signature *is* the planning contract (workload, topology,
// policy, liveness); bundling the slices into a context struct would only
// rename the parameters.
#[allow(clippy::too_many_arguments)]
pub fn rearrange_with_topology(
    mut clumps: Vec<Clump>,
    placement: &Placement,
    freq: &[f64],
    cfg: &PlannerConfig,
    replica_aware: bool,
    live: &[bool],
    zone_of: &[ZoneId],
    policy: PlacementPolicy,
) -> ReconfigurationPlan {
    let n_nodes = placement.n_nodes();
    debug_assert_eq!(live.len(), n_nodes);
    let mut balance = Balance::new(live.to_vec());
    let mut mc: Vec<Vec<f64>> = vec![Vec::new(); clumps.len()];
    // Per-node clump index lists (the priority queues `q`), kept sorted by
    // ascending weight lazily at pick time.
    let mut q: Vec<Vec<usize>> = vec![Vec::new(); n_nodes];

    // ---- Step 1: clump dispatching --------------------------------------
    for (i, clump) in clumps.iter_mut().enumerate() {
        let dst = find_dst_node(clump, placement, freq, cfg.weights, &balance, &mut mc[i]);
        clump.dest = Some(dst);
        balance.add(dst, clump.weight);
        q[dst.idx()].push(i);
    }

    // ---- Step 2: load fine-tuning ---------------------------------------
    // Bounded by a global move budget for guaranteed termination.
    let mut moves_left = clumps.len().saturating_mul(2).max(16);
    'outer: while !balance.balanced(cfg.epsilon) && moves_left > 0 {
        let (over, idle) = balance.overloaded_and_idle(cfg.epsilon);
        if over.is_empty() || idle.is_empty() {
            break;
        }
        let mut step = cfg.step_a;
        let mut progressed = false;
        while !balance.balanced(cfg.epsilon) && step > 0 && moves_left > 0 {
            // PickClump: from the most overloaded node, the largest clump
            // that fits within the gap to the average.
            let mut picked: Option<(usize, NodeId, NodeId)> = None;
            'pick: for &on in &over {
                let gap = balance.load[on.idx()] - balance.avg();
                if gap <= 0.0 {
                    continue;
                }
                let mut candidates: Vec<usize> = q[on.idx()].clone();
                candidates.sort_by(|&a, &b| {
                    clumps[b]
                        .weight
                        .partial_cmp(&clumps[a].weight)
                        .expect("finite")
                });
                for idx in candidates {
                    if clumps[idx].dest != Some(on) || clumps[idx].weight > gap + 1e-9 {
                        continue;
                    }
                    // Cheapest idle destination by the memoized cost row.
                    let dest = idle
                        .iter()
                        .copied()
                        .min_by(|a, b| {
                            mc[idx][a.idx()]
                                .partial_cmp(&mc[idx][b.idx()])
                                .expect("finite")
                        })
                        .expect("idle set non-empty");
                    picked = Some((idx, on, dest));
                    break 'pick;
                }
            }
            let Some((idx, on, dest)) = picked else {
                break 'outer; // no qualifying clump anywhere: give up
            };
            let w = clumps[idx].weight;
            clumps[idx].dest = Some(dest);
            balance.transfer(on, dest, w);
            q[on.idx()].retain(|&i| i != idx);
            q[dest.idx()].push(idx);
            step -= 1;
            moves_left -= 1;
            progressed = true;
        }
        if !progressed {
            break;
        }
    }

    // ---- Emit the plan ---------------------------------------------------
    let mut plan = ReconfigurationPlan::default();
    for (i, clump) in clumps.iter().enumerate() {
        let dest = clump.dest.expect("dispatching assigned every clump");
        plan.total_cost += mc[i][dest.idx()];
        plan.assignments.push((clump.parts.clone(), dest));
        for &part in &clump.parts {
            if placement.is_primary(part, dest) {
                continue; // case 1: free
            }
            let action = if placement.has_secondary(part, dest) {
                PlanAction::Remaster
            } else if replica_aware {
                PlanAction::AddReplica
            } else {
                PlanAction::Migrate
            };
            plan.entries.push(PlanEntry { part, dest, action });
        }
    }

    // ---- Anti-affinity repair (RackSafe only) ----------------------------
    // Every planned partition's *post-plan* replica set must span at least
    // `min_zones` failure domains. Remastering never changes the set; an
    // AddReplica adds the destination. Anything still under the floor gets a
    // background copy onto the least-loaded live node of an uncovered zone —
    // priced like a copy (w_m) so the locality-vs-availability trade shows
    // up in the plan cost.
    let min_zones = policy.min_zones();
    if min_zones > 1 {
        debug_assert_eq!(zone_of.len(), placement.n_nodes());
        let n_zones = zone_of.iter().map(|z| z.idx() + 1).max().unwrap_or(1);
        fn cover(node: NodeId, zone_of: &[ZoneId], covered: &mut [bool], n_covered: &mut usize) {
            let z = zone_of[node.idx()].idx();
            if !covered[z] {
                covered[z] = true;
                *n_covered += 1;
            }
        }
        let mut covered = vec![false; n_zones];
        for clump in &clumps {
            let dest = clump.dest.expect("dispatching assigned every clump");
            for &part in &clump.parts {
                covered.iter_mut().for_each(|c| *c = false);
                let mut n_covered = 0usize;
                // A Migrate onto a node with no replica is a *move*: the old
                // primary's copy is dropped, so its zone must not count
                // toward post-plan coverage (Remaster and AddReplica keep
                // every current holder).
                let migrates_away = !replica_aware
                    && !placement.is_primary(part, dest)
                    && !placement.has_replica(part, dest);
                let old_primary = placement.primary_of(part);
                for holder in placement.replica_nodes(part) {
                    if migrates_away && holder == old_primary {
                        continue;
                    }
                    cover(holder, zone_of, &mut covered, &mut n_covered);
                }
                // the plan places a replica at the clump destination
                cover(dest, zone_of, &mut covered, &mut n_covered);
                while n_covered < min_zones {
                    // Least-loaded live node of an uncovered zone, lowest id
                    // on ties — deterministic like every other choice here.
                    let repair = (0..placement.n_nodes() as u16)
                        .map(NodeId)
                        .filter(|&n| {
                            live[n.idx()]
                                && !covered[zone_of[n.idx()].idx()]
                                && !placement.has_replica(part, n)
                        })
                        .min_by(|a, b| {
                            balance.load[a.idx()]
                                .partial_cmp(&balance.load[b.idx()])
                                .expect("finite")
                                .then_with(|| a.cmp(b))
                        });
                    let Some(repair) = repair else {
                        break; // not enough live zones left to satisfy the floor
                    };
                    cover(repair, zone_of, &mut covered, &mut n_covered);
                    plan.total_cost += cfg.weights.w_m;
                    plan.entries.push(PlanEntry {
                        part,
                        dest: repair,
                        action: PlanAction::AddSecondary,
                    });
                }
            }
        }
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u32) -> PartitionId {
        PartitionId(i)
    }
    fn n(i: u16) -> NodeId {
        NodeId(i)
    }

    /// Builds the Fig. 4b layout: 5 partitions over 3 nodes.
    ///   P1(p0): primary N1, secondary N2 ; P2(p1): primary N3, secondary N1
    ///   P3(p2): primary N2               ; P4(p3): primary N3
    ///   P5(p4): primary N1, secondary N2
    fn fig4_placement() -> Placement {
        let mut pl = Placement::round_robin(5, 3, 1);
        pl.migrate_primary(p(0), n(0)).unwrap();
        pl.migrate_primary(p(1), n(2)).unwrap();
        pl.migrate_primary(p(2), n(1)).unwrap();
        pl.migrate_primary(p(3), n(2)).unwrap();
        pl.migrate_primary(p(4), n(0)).unwrap();
        pl.add_secondary(p(0), n(1)).unwrap();
        pl.add_secondary(p(1), n(0)).unwrap();
        pl.add_secondary(p(4), n(1)).unwrap();
        pl
    }

    /// Fig. 4a clumps: C1{P1,P2} w4, C2{P3} w1, C3{P4} w2, C4{P5} w2.
    fn fig4_clumps() -> Vec<Clump> {
        vec![
            Clump::new(vec![p(0), p(1)], 4.0),
            Clump::new(vec![p(2)], 1.0),
            Clump::new(vec![p(3)], 2.0),
            Clump::new(vec![p(4)], 2.0),
        ]
    }

    fn cfg() -> PlannerConfig {
        PlannerConfig {
            epsilon: 0.5, // avg = 3, θ = 4.5: N1's 6 triggers fine-tuning
            weights: CostWeights {
                w_r: 1.0,
                w_m: 10.0,
                w_z: 0.0,
            },
            ..Default::default()
        }
    }

    /// Example 2 end-to-end: dispatching sends C1→N1, C2→N2, C3→N3, C4→N1,
    /// overloading N1 (weight 6); fine-tuning moves C4 to N2 at cost w_r,
    /// ending with the Fig. 4d layout and a total cost of 2·w_r.
    #[test]
    fn example2_full_run() {
        let pl = fig4_placement();
        let plan = rearrange(fig4_clumps(), &pl, &[0.0; 5], &cfg(), true);

        let dest_of = |part: PartitionId| plan.dest_of(part).unwrap();
        assert_eq!(dest_of(p(0)), n(0), "C1 stays on N1");
        assert_eq!(dest_of(p(1)), n(0));
        assert_eq!(dest_of(p(2)), n(1), "C2 on N2 (free)");
        assert_eq!(dest_of(p(3)), n(2), "C3 on N3 (free)");
        assert_eq!(dest_of(p(4)), n(1), "C4 fine-tuned from N1 to N2");
        assert!(
            (plan.total_cost - 2.0).abs() < 1e-9,
            "2 * w_r, got {}",
            plan.total_cost
        );

        // Actions: P2 remasters onto N1; P5 remasters onto N2.
        assert_eq!(plan.entries.len(), 2);
        assert!(plan.entries.contains(&PlanEntry {
            part: p(1),
            dest: n(0),
            action: PlanAction::Remaster
        }));
        assert!(plan.entries.contains(&PlanEntry {
            part: p(4),
            dest: n(1),
            action: PlanAction::Remaster
        }));
    }

    #[test]
    fn plan_apply_reaches_fig4d() {
        let mut pl = fig4_placement();
        let plan = rearrange(fig4_clumps(), &pl, &[0.0; 5], &cfg(), true);
        plan.apply_to(&mut pl);
        assert_eq!(pl.primary_of(p(0)), n(0));
        assert_eq!(pl.primary_of(p(1)), n(0));
        assert_eq!(pl.primary_of(p(2)), n(1));
        assert_eq!(pl.primary_of(p(3)), n(2));
        assert_eq!(pl.primary_of(p(4)), n(1));
        pl.validate().unwrap();
    }

    #[test]
    fn replica_oblivious_mode_migrates() {
        let pl = Placement::round_robin(4, 2, 1); // no secondaries anywhere
        let clumps = vec![Clump::new(vec![p(0), p(1)], 2.0)];
        let plan = rearrange(clumps, &pl, &[0.0; 4], &PlannerConfig::default(), false);
        // p0 primary N0, p1 primary N1: one of them must migrate.
        assert_eq!(plan.entries.len(), 1);
        assert_eq!(plan.entries[0].action, PlanAction::Migrate);
    }

    #[test]
    fn replica_aware_mode_adds_replicas() {
        let pl = Placement::round_robin(4, 2, 1);
        let clumps = vec![Clump::new(vec![p(0), p(1)], 2.0)];
        let plan = rearrange(clumps, &pl, &[0.0; 4], &PlannerConfig::default(), true);
        assert_eq!(plan.entries.len(), 1);
        assert_eq!(plan.entries[0].action, PlanAction::AddReplica);
    }

    #[test]
    fn balanced_input_requires_no_moves() {
        let pl = Placement::round_robin(4, 4, 2);
        // one singleton clump per partition, each already home
        let clumps: Vec<Clump> = (0..4).map(|i| Clump::new(vec![p(i)], 1.0)).collect();
        let plan = rearrange(clumps, &pl, &[0.0; 4], &PlannerConfig::default(), true);
        assert!(
            plan.entries.is_empty(),
            "everything already in place: {:?}",
            plan.entries
        );
        assert_eq!(plan.total_cost, 0.0);
    }

    #[test]
    fn fine_tuning_respects_gap_sizes() {
        // All four clumps are cheapest on N0; fine-tuning must spread them.
        let mut pl = Placement::round_robin(4, 2, 2);
        for i in 0..4 {
            pl.migrate_primary(p(i), n(0)).unwrap();
        }
        let clumps: Vec<Clump> = (0..4).map(|i| Clump::new(vec![p(i)], 1.0)).collect();
        let cfg = PlannerConfig {
            epsilon: 0.1,
            ..Default::default()
        };
        let plan = rearrange(clumps, &pl, &[0.0; 4], &cfg, true);
        let mut on_n1 = 0;
        for (parts, dest) in &plan.assignments {
            assert_eq!(parts.len(), 1);
            if *dest == n(1) {
                on_n1 += 1;
            }
        }
        assert_eq!(on_n1, 2, "half the load moves to the idle node");
    }

    fn z(i: u16) -> ZoneId {
        ZoneId(i)
    }

    /// RackSafe repair: a clump whose partitions would end up rack-local
    /// gains AddSecondary copies restoring cross-zone coverage, while the
    /// locality decision (the clump destination) is untouched.
    #[test]
    fn rack_safe_plan_repairs_zone_coverage() {
        // 4 nodes, racks Z0={N0,N1}, Z1={N2,N3}. Both partitions and all
        // their replicas live inside Z0.
        let zones = [z(0), z(0), z(1), z(1)];
        let mut pl = Placement::round_robin(2, 4, 1);
        pl.migrate_primary(p(0), n(0)).unwrap();
        pl.migrate_primary(p(1), n(0)).unwrap();
        pl.add_secondary(p(0), n(1)).unwrap();
        pl.add_secondary(p(1), n(1)).unwrap();
        let clumps = vec![Clump::new(vec![p(0), p(1)], 2.0)];
        let live = [true; 4];
        let plan = rearrange_with_topology(
            clumps,
            &pl,
            &[0.0; 2],
            &PlannerConfig::default(),
            true,
            &live,
            &zones,
            PlacementPolicy::RackSafe { min_zones: 2 },
        );
        // Destination stays in-zone (N0 is cheapest: both primaries local)…
        assert_eq!(plan.dest_of(p(0)), Some(n(0)));
        // …but each partition gets a Z1 copy.
        for part in [p(0), p(1)] {
            assert!(
                plan.entries.iter().any(|e| e.part == part
                    && e.action == PlanAction::AddSecondary
                    && zones[e.dest.idx()] == z(1)),
                "no cross-zone repair for {part}: {:?}",
                plan.entries
            );
        }
        // Applying the plan satisfies the floor.
        let mut after = pl.clone();
        plan.apply_to(&mut after);
        after.validate().unwrap();
        assert!(after.zone_coverage(p(0), &zones) >= 2);
        assert!(after.zone_coverage(p(1), &zones) >= 2);
    }

    /// A Migrate is a move: the old primary's zone must not count toward
    /// post-plan coverage, so migrating a partition's only replica across
    /// racks still triggers a repair copy back into the vacated rack.
    #[test]
    fn rack_safe_repair_accounts_for_migration_moves() {
        let zones = [z(0), z(0), z(1), z(1)];
        // P0's only replica is its primary on N2 (Z1). With N2 dead, the
        // replica-oblivious plan must Migrate it to a live node — N0 (Z0),
        // the cheapest survivor. The move vacates Z1, so counting the old
        // primary as still covering Z1 would (wrongly) skip the repair.
        let mut pl = Placement::round_robin(1, 4, 1);
        pl.migrate_primary(p(0), n(2)).unwrap();
        let live = [true, true, false, true];
        let plan = rearrange_with_topology(
            vec![Clump::new(vec![p(0)], 1.0)],
            &pl,
            &[0.0; 1],
            &PlannerConfig::default(),
            false, // replica-oblivious: Migrate, not AddReplica
            &live,
            &zones,
            PlacementPolicy::RackSafe { min_zones: 2 },
        );
        assert!(
            plan.entries
                .iter()
                .any(|e| e.part == p(0) && e.action == PlanAction::Migrate),
            "dead primary forces a migration: {:?}",
            plan.entries
        );
        assert!(
            plan.entries.iter().any(|e| e.part == p(0)
                && e.action == PlanAction::AddSecondary
                && zones[e.dest.idx()] == z(1)),
            "vacating Z1 must trigger a repair copy back into it: {:?}",
            plan.entries
        );
        let mut after = pl.clone();
        plan.apply_to(&mut after);
        after.validate().unwrap();
        assert!(after.zone_coverage(p(0), &zones) >= 2);
    }

    /// Repair never targets dead nodes, and an unsatisfiable floor (all
    /// other zones down) degrades gracefully instead of looping.
    #[test]
    fn rack_safe_repair_skips_dead_zones() {
        let zones = [z(0), z(0), z(1), z(1)];
        let mut pl = Placement::round_robin(1, 4, 1);
        pl.add_secondary(p(0), n(1)).unwrap();
        let clumps = vec![Clump::new(vec![p(0)], 1.0)];
        let live = [true, true, false, false]; // Z1 entirely down
        let plan = rearrange_with_topology(
            clumps,
            &pl,
            &[0.0; 1],
            &PlannerConfig::default(),
            true,
            &live,
            &zones,
            PlacementPolicy::RackSafe { min_zones: 2 },
        );
        assert!(
            plan.entries
                .iter()
                .all(|e| e.action != PlanAction::AddSecondary),
            "no live node outside Z0 exists: {:?}",
            plan.entries
        );
    }

    /// LocalityFirst (and the plain wrappers) never emit repair entries and
    /// stay byte-identical to the zone-free path.
    #[test]
    fn locality_first_matches_zone_free_plan() {
        let zones = [z(0), z(0), z(1)];
        let pl = fig4_placement();
        let live = [true; 3];
        let a = rearrange(fig4_clumps(), &pl, &[0.0; 5], &cfg(), true);
        let b = rearrange_with_topology(
            fig4_clumps(),
            &pl,
            &[0.0; 5],
            &cfg(),
            true,
            &live,
            &zones,
            PlacementPolicy::LocalityFirst,
        );
        assert_eq!(a.entries, b.entries);
        assert_eq!(a.total_cost, b.total_cost);
    }

    #[test]
    fn single_node_cluster_never_fine_tunes() {
        let pl = Placement::round_robin(3, 1, 1);
        let clumps = vec![Clump::new(vec![p(0), p(1), p(2)], 9.0)];
        let plan = rearrange(clumps, &pl, &[0.0; 3], &PlannerConfig::default(), true);
        assert!(plan.entries.is_empty());
        assert_eq!(plan.assignments[0].1, n(0));
    }
}
