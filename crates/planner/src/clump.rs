//! Clump generation (§IV-A, Fig. 3b).
//!
//! Starting from the hottest unvisited vertex, the clustering pass expands
//! across neighbors whose connection weight exceeds the threshold α, grouping
//! strongly co-accessed partitions into a *clump* — the unit the
//! rearrangement algorithm places on a node. Weakly-connected vertices end up
//! in their own singleton clumps.

use crate::graph::HeatGraph;
use lion_common::{NodeId, PartitionId};
use std::collections::VecDeque;

/// A set of co-accessed partitions to be placed on one node.
#[derive(Debug, Clone, PartialEq)]
pub struct Clump {
    /// Member partitions (`c.pids`).
    pub parts: Vec<PartitionId>,
    /// Weighted sum of member vertices (`c.w`), used for load balancing.
    pub weight: f64,
    /// Destination chosen by the rearrangement algorithm (`c.n`).
    pub dest: Option<NodeId>,
}

impl Clump {
    /// Builds a clump over `parts` with total weight `weight`.
    pub fn new(parts: Vec<PartitionId>, weight: f64) -> Self {
        Clump {
            parts,
            weight,
            dest: None,
        }
    }
}

/// Groups the graph's accessed partitions into clumps.
///
/// `alpha` is the co-access threshold: a neighbor joins the growing clump
/// when its connecting edge weight is `>= alpha`. The scan order follows the
/// `hVertices` hottest-first queue, and expansion is breadth-first so that a
/// chain `a—b—c` with strong links lands in a single clump. `max_size`
/// bounds a clump's partition count — a safety valve for pathological
/// workloads whose co-access graph is one giant connected component, which
/// no placement could localize on a single node anyway.
pub fn generate_clumps(graph: &HeatGraph, alpha: f64, max_size: usize) -> Vec<Clump> {
    let mut visited = vec![false; graph.n_partitions()];
    let mut clumps = Vec::new();

    for seed in graph.hot_vertices() {
        if visited[seed.idx()] {
            continue;
        }
        visited[seed.idx()] = true;
        let mut parts = vec![seed];
        let mut weight = graph.vertex_weight(seed);
        let mut frontier = VecDeque::from([seed]);

        'grow: while let Some(v) = frontier.pop_front() {
            // Deterministic expansion order: sort neighbors by descending
            // weight then id (HashMap iteration order is arbitrary).
            let mut neigh: Vec<(PartitionId, f64)> = graph
                .neighbors(v)
                .filter(|(adj, w)| !visited[adj.idx()] && *w >= alpha)
                .collect();
            neigh.sort_by(|a, b| {
                b.1.partial_cmp(&a.1)
                    .expect("finite")
                    .then(a.0 .0.cmp(&b.0 .0))
            });
            for (adj, _) in neigh {
                if visited[adj.idx()] {
                    continue;
                }
                if parts.len() >= max_size {
                    break 'grow;
                }
                visited[adj.idx()] = true;
                parts.push(adj);
                weight += graph.vertex_weight(adj);
                frontier.push_back(adj);
            }
        }
        clumps.push(Clump::new(parts, weight));
    }
    clumps
}

#[cfg(test)]
mod tests {
    use super::*;
    use lion_common::Placement;

    fn p(i: u32) -> PartitionId {
        PartitionId(i)
    }

    /// Fig. 3 example: expect clumps {P1,P2} w=4, {P3} w=1, {P4} w=2, {P5} w=2
    /// (0-indexed).
    #[test]
    fn fig3_clumps() {
        let placement = Placement::round_robin(5, 3, 1);
        let mut g = HeatGraph::new(5);
        for parts in [
            vec![p(0), p(1)],
            vec![p(2)],
            vec![p(3)],
            vec![p(0), p(1)],
            vec![p(4)],
            vec![p(3)],
            vec![p(4)],
        ] {
            g.add_txn(&parts, 1.0, &placement, 1.0);
        }
        let mut clumps = generate_clumps(&g, 1.0, usize::MAX);
        clumps.sort_by(|a, b| a.parts[0].0.cmp(&b.parts[0].0));
        assert_eq!(clumps.len(), 4);
        let c1 = &clumps[0];
        let mut pids = c1.parts.clone();
        pids.sort_unstable();
        assert_eq!(pids, vec![p(0), p(1)]);
        assert_eq!(c1.weight, 4.0);
        assert_eq!(clumps[1].parts, vec![p(2)]);
        assert_eq!(clumps[1].weight, 1.0);
        assert_eq!(clumps[2].weight, 2.0);
        assert_eq!(clumps[3].weight, 2.0);
    }

    #[test]
    fn clumps_partition_the_accessed_vertices() {
        let placement = Placement::round_robin(8, 2, 1);
        let mut g = HeatGraph::new(8);
        g.add_txn(&[p(0), p(1)], 3.0, &placement, 1.0);
        g.add_txn(&[p(1), p(2)], 3.0, &placement, 1.0);
        g.add_txn(&[p(4)], 1.0, &placement, 1.0);
        let clumps = generate_clumps(&g, 2.0, usize::MAX);
        let mut all: Vec<PartitionId> = clumps.iter().flat_map(|c| c.parts.clone()).collect();
        all.sort_unstable();
        let mut dedup = all.clone();
        dedup.dedup();
        assert_eq!(all, dedup, "clumps must be disjoint");
        assert_eq!(
            all,
            vec![p(0), p(1), p(2), p(4)],
            "and cover accessed vertices"
        );
    }

    #[test]
    fn transitive_chains_merge_into_one_clump() {
        let placement = Placement::round_robin(4, 2, 1);
        let mut g = HeatGraph::new(4);
        g.add_txn(&[p(0), p(1)], 5.0, &placement, 1.0);
        g.add_txn(&[p(1), p(2)], 5.0, &placement, 1.0);
        g.add_txn(&[p(2), p(3)], 5.0, &placement, 1.0);
        let clumps = generate_clumps(&g, 4.0, usize::MAX);
        assert_eq!(clumps.len(), 1);
        assert_eq!(clumps[0].parts.len(), 4);
    }

    #[test]
    fn weak_edges_split_clumps() {
        let placement = Placement::round_robin(4, 2, 1);
        let mut g = HeatGraph::new(4);
        g.add_txn(&[p(0), p(1)], 10.0, &placement, 1.0);
        g.add_txn(&[p(2), p(3)], 1.0, &placement, 1.0); // below alpha
        let clumps = generate_clumps(&g, 5.0, usize::MAX);
        assert_eq!(clumps.len(), 3, "strong pair + two weak singletons");
        assert!(clumps.iter().any(|c| c.parts.len() == 2));
    }

    #[test]
    fn hottest_seed_is_expanded_first() {
        let placement = Placement::round_robin(4, 2, 1);
        let mut g = HeatGraph::new(4);
        g.add_txn(&[p(2), p(3)], 10.0, &placement, 1.0); // hottest pair
        g.add_txn(&[p(0), p(1)], 2.0, &placement, 1.0);
        let clumps = generate_clumps(&g, 1.0, usize::MAX);
        assert_eq!(clumps[0].parts[0], p(2), "seeded from hottest vertex");
        assert_eq!(clumps[0].weight, 20.0);
    }

    #[test]
    fn empty_graph_yields_no_clumps() {
        let g = HeatGraph::new(10);
        assert!(generate_clumps(&g, 1.0, usize::MAX).is_empty());
    }

    #[test]
    fn size_cap_bounds_clumps() {
        // a strongly-connected chain of 6 vertices with cap 3
        let placement = Placement::round_robin(6, 2, 1);
        let mut g = HeatGraph::new(6);
        for i in 0..5 {
            g.add_txn(&[p(i), p(i + 1)], 10.0, &placement, 1.0);
        }
        let clumps = generate_clumps(&g, 1.0, 3);
        assert!(clumps.iter().all(|c| c.parts.len() <= 3), "{clumps:?}");
        let total: usize = clumps.iter().map(|c| c.parts.len()).sum();
        assert_eq!(total, 6, "all vertices still covered");
    }
}
