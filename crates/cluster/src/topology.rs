//! The simulated cluster: nodes, replica stores, adaptor operations.

use crate::freq::FreqTracker;
use lion_common::{FastMap, NodeId, PartitionId, SimConfig, Time, ZoneId};
use lion_sim::MultiServer;
use lion_storage::{LogEntry, ReplicaRole, ReplicaStore};
use std::fmt;

/// Per-µs cost of syncing one lagging log entry during remastering (and,
/// identically, during failover promotion — see `lion-faults`).
pub const LAG_SYNC_US_PER_ENTRY: Time = 1;

/// Errors from adaptor operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdaptorError {
    /// Another remaster/migration is already in flight for the partition.
    Busy(PartitionId),
    /// The target node holds no replica of the partition.
    NoReplica { part: PartitionId, node: NodeId },
    /// The target node already is the primary.
    AlreadyPrimary { part: PartitionId, node: NodeId },
    /// The target node already holds (or is copying) a replica.
    AlreadyHosted { part: PartitionId, node: NodeId },
}

impl fmt::Display for AdaptorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdaptorError::Busy(p) => write!(f, "{p} already has a replica operation in flight"),
            AdaptorError::NoReplica { part, node } => {
                write!(f, "{node} holds no replica of {part}")
            }
            AdaptorError::AlreadyPrimary { part, node } => {
                write!(f, "{node} is already primary of {part}")
            }
            AdaptorError::AlreadyHosted { part, node } => {
                write!(f, "{node} already hosts/copies a replica of {part}")
            }
        }
    }
}

impl std::error::Error for AdaptorError {}

/// Runtime state of one partition: adaptor operations in flight.
#[derive(Debug, Clone, Default)]
pub struct PartitionRuntime {
    /// Operations on the partition cannot execute before this time
    /// (remaster hand-off window / migration blackout).
    pub blocked_until: Time,
    /// Remaster target, if a remaster is in flight.
    pub remastering: Option<NodeId>,
    /// Migration target, if a migration is in flight.
    pub migrating: Option<NodeId>,
    /// Nodes currently receiving a background replica copy.
    pub copying_to: Vec<NodeId>,
    /// Failover promotion target, if the primary died and a survivor is
    /// being promoted.
    pub failing_over: Option<NodeId>,
    /// The primary's node is down and no live replica can take over: every
    /// operation stalls until the node recovers.
    pub primary_down: bool,
    /// Transfer generation: bumped whenever a blocking transfer (remaster,
    /// migration, failover) begins or is canceled by a crash, so completion
    /// events scheduled for a superseded transfer can be recognized as stale
    /// and dropped.
    pub gen: u64,
}

impl PartitionRuntime {
    /// True when a remaster or migration is in flight.
    pub fn transfer_in_flight(&self) -> bool {
        self.remastering.is_some() || self.migrating.is_some()
    }

    /// True when the partition is in any failure state (promotion in flight
    /// or stalled on a dead primary).
    pub fn failure_in_flight(&self) -> bool {
        self.failing_over.is_some() || self.primary_down
    }
}

/// What a node crash leaves behind (returned by [`Cluster::crash_node`]).
#[derive(Debug)]
pub struct CrashReport {
    /// The node that died.
    pub node: NodeId,
    /// Partitions whose primary was on the dead node, each with the
    /// prepare-log entries recovered from the synchronously replicated
    /// prepare logs (empty when the partition has no live secondary and
    /// must stall).
    pub orphaned: Vec<(PartitionId, Vec<LogEntry>)>,
    /// Partitions that lost a secondary replica (stripped from placement).
    pub lost_secondaries: Vec<PartitionId>,
    /// Partitions whose in-flight failover promotion targeted the dead
    /// node: the promotion is canceled and must be re-planned over the
    /// remaining survivors (or stalled when none are left).
    pub aborted_failovers: Vec<PartitionId>,
}

/// What an epoch-commit seal flush shipped (returned by
/// [`Cluster::epoch_flush_for_seal`]).
#[derive(Debug, Default)]
pub struct EpochFlush {
    /// Total wire bytes shipped to secondaries.
    pub bytes: u64,
    /// Slowest secondary round-trip among the flushed partitions: the
    /// replication transit that gates the epoch's durability (zone-aware).
    pub max_transit_us: Time,
    /// Per-partition log head certified durable once the transit lands.
    pub frontiers: Vec<(PartitionId, u64)>,
}

/// What a node restart requires (returned by [`Cluster::recover_node`]).
#[derive(Debug)]
pub struct RecoveryReport {
    /// The node that restarted.
    pub node: NodeId,
    /// Stalled partitions still primaried on the node: they resume after a
    /// restart window.
    pub restored_primaries: Vec<PartitionId>,
    /// Partitions whose primaries failed over elsewhere: the node re-joins
    /// them as a secondary via a background snapshot copy.
    pub rejoin_secondaries: Vec<PartitionId>,
}

/// Live split-brain state (honest `Partition` semantics): both sides of the
/// cut stay up, and per data partition exactly one side — the one holding a
/// strict majority of the replica set's then-live holders — owns the
/// durable timeline. Frozen at split begin, dissolved at heal.
#[derive(Debug, Clone)]
pub struct SplitBrain {
    /// Per-node side: `0` = the rest of the cluster, `1` = the isolated set.
    pub side_of: Vec<u8>,
    /// Per data partition, the quorum side (same encoding as
    /// [`SplitBrain::side_of`]) — only epochs sealed on this side may turn
    /// durable. **Frozen at split begin**: crashes inside the window never
    /// move the quorum (plan validation guarantees it survives).
    pub quorum_side: Vec<u8>,
    /// Per data partition, the quorum-side shadow-promotion target recorded
    /// when the serving primary sits cut off on the *non*-quorum side. The
    /// old primary keeps serving its side for the whole window (its commits
    /// are quorum-fenced); the shadow remaster is applied for real at heal.
    pub shadow: Vec<Option<NodeId>>,
}

/// The simulated cluster state shared by every protocol.
pub struct Cluster {
    /// Static configuration.
    pub cfg: SimConfig,
    /// Current replica placement (the "global router table" of §V).
    pub placement: lion_common::Placement,
    /// Per-node worker pools.
    pub workers: Vec<MultiServer>,
    /// Per-partition adaptor runtime state.
    pub parts: Vec<PartitionRuntime>,
    /// Access-frequency tracking for the cost model and eviction.
    pub freq: FreqTracker,
    /// Per-node liveness (fault injection; all nodes start up).
    pub node_up: Vec<bool>,
    /// Node→failure-domain map (from [`SimConfig::node_zones`]). Every
    /// zone-aware decision — cross-zone network pricing, anti-affinity
    /// eviction, correlated crash scenarios — reads this one vector.
    pub zone_of: Vec<ZoneId>,
    stores: Vec<FastMap<u32, ReplicaStore>>,
    /// Active split-brain window, when a `split_brain` fault plan has a
    /// partition open (`None` outside windows and on the legacy path).
    split: Option<SplitBrain>,
}

impl Cluster {
    /// Builds a cluster with the paper's default round-robin layout and
    /// populated tables.
    pub fn new(cfg: SimConfig) -> Self {
        let n_parts = cfg.n_partitions();
        let zone_of = cfg.node_zones();
        // Rack-safe deployments start from the anti-affinity layout; the
        // locality-first default keeps the paper's round-robin exactly.
        let placement = if cfg.placement.is_rack_safe() {
            lion_common::Placement::zone_spread(
                n_parts,
                cfg.nodes,
                cfg.replication_factor,
                &zone_of,
                cfg.placement.min_zones(),
            )
        } else {
            lion_common::Placement::round_robin(n_parts, cfg.nodes, cfg.replication_factor)
        };
        let workers = (0..cfg.nodes)
            .map(|_| MultiServer::new(cfg.workers_per_node))
            .collect();
        let mut stores: Vec<FastMap<u32, ReplicaStore>> =
            (0..cfg.nodes).map(|_| FastMap::default()).collect();
        for p in 0..n_parts {
            let part = PartitionId(p as u32);
            let primary = placement.primary_of(part);
            stores[primary.idx()].insert(
                part.0,
                ReplicaStore::new_primary(part, cfg.keys_per_partition, cfg.value_size),
            );
            for &sec in placement.secondaries_of(part) {
                stores[sec.idx()].insert(
                    part.0,
                    ReplicaStore::new_secondary(part, cfg.keys_per_partition, cfg.value_size),
                );
            }
        }
        let parts = vec![PartitionRuntime::default(); n_parts];
        let freq = FreqTracker::new(n_parts);
        let node_up = vec![true; cfg.nodes];
        Cluster {
            cfg,
            placement,
            workers,
            parts,
            freq,
            node_up,
            zone_of,
            stores,
            split: None,
        }
    }

    /// Node count.
    pub fn n_nodes(&self) -> usize {
        self.cfg.nodes
    }

    /// Partition count.
    pub fn n_partitions(&self) -> usize {
        self.parts.len()
    }

    /// All node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.cfg.nodes as u16).map(NodeId)
    }

    /// Replica store hosted by `node` for `part`, if any.
    pub fn store(&self, node: NodeId, part: PartitionId) -> Option<&ReplicaStore> {
        self.stores[node.idx()].get(&part.0)
    }

    /// Mutable replica store.
    pub fn store_mut(&mut self, node: NodeId, part: PartitionId) -> Option<&mut ReplicaStore> {
        self.stores[node.idx()].get_mut(&part.0)
    }

    /// Mutable store of the current primary replica.
    pub fn primary_store_mut(&mut self, part: PartitionId) -> &mut ReplicaStore {
        let primary = self.placement.primary_of(part);
        self.stores[primary.idx()]
            .get_mut(&part.0)
            .expect("primary store must exist")
    }

    /// Network delay for one message of `bytes` payload (zone-local path;
    /// use [`Cluster::net_delay_between`] when both endpoints are known).
    pub fn net_delay(&self, bytes: u32) -> Time {
        self.cfg.net.delay(bytes)
    }

    /// Network delay for one message of `bytes` payload from `from` to
    /// `to`: zone-local messages pay the base cost, cross-zone messages the
    /// aggregation-layer surcharge on top.
    pub fn net_delay_between(&self, from: NodeId, to: NodeId, bytes: u32) -> Time {
        self.cfg
            .net
            .delay_between(self.zone_of[from.idx()], self.zone_of[to.idx()], bytes)
    }

    // ------------------------------------------------------------------
    // Failure domains (zones / racks)
    // ------------------------------------------------------------------

    /// The failure domain hosting `node`.
    #[inline]
    pub fn zone(&self, node: NodeId) -> ZoneId {
        self.zone_of[node.idx()]
    }

    /// Number of distinct failure domains in the cluster.
    pub fn n_zones(&self) -> usize {
        self.cfg.n_zones()
    }

    /// Members of `zone`, in node-id order.
    pub fn zone_members(&self, zone: ZoneId) -> Vec<NodeId> {
        self.cfg.nodes_in_zone(zone)
    }

    /// Distinct failure domains currently covered by `part`'s replica set.
    pub fn zone_coverage(&self, part: PartitionId) -> usize {
        self.placement.zone_coverage(part, &self.zone_of)
    }

    /// Earliest time operations on `part` may execute.
    pub fn available_at(&self, part: PartitionId) -> Time {
        self.parts[part.idx()].blocked_until
    }

    // ------------------------------------------------------------------
    // Adaptor: remastering (§III)
    // ------------------------------------------------------------------

    /// Starts remastering `part` onto `to`. Returns the duration of the
    /// hand-off window: the configured delay plus log-lag sync time. The
    /// partition blocks for that window (new operations wait, §III).
    pub fn begin_remaster(
        &mut self,
        part: PartitionId,
        to: NodeId,
        now: Time,
    ) -> Result<Time, AdaptorError> {
        if self.placement.is_primary(part, to) {
            return Err(AdaptorError::AlreadyPrimary { part, node: to });
        }
        if !self.placement.has_secondary(part, to) {
            return Err(AdaptorError::NoReplica { part, node: to });
        }
        let rt = &self.parts[part.idx()];
        if rt.transfer_in_flight() || rt.failure_in_flight() {
            return Err(AdaptorError::Busy(part));
        }
        let primary = self.placement.primary_of(part);
        if !self.node_up[primary.idx()] || !self.node_up[to.idx()] {
            return Err(AdaptorError::Busy(part));
        }
        // A mastership hand-off cannot cross an active cut: the two nodes
        // cannot exchange the hand-off protocol.
        if !self.same_side(primary, to) {
            return Err(AdaptorError::Busy(part));
        }
        let head = self
            .store(primary, part)
            .expect("primary store")
            .log
            .head_lsn();
        let lag = self
            .store(to, part)
            .expect("secondary store")
            .lag_behind(head);
        let duration = self.cfg.remaster_delay_us + lag * LAG_SYNC_US_PER_ENTRY;
        let rt = &mut self.parts[part.idx()];
        rt.remastering = Some(to);
        rt.gen += 1;
        rt.blocked_until = rt.blocked_until.max(now + duration);
        Ok(duration)
    }

    /// Completes an in-flight remaster: syncs the pending log to every
    /// secondary, swaps roles, and updates the placement. Returns the wire
    /// bytes spent on the lag sync (for network accounting).
    pub fn finish_remaster(&mut self, part: PartitionId, now: Time) -> u64 {
        let to = self.parts[part.idx()]
            .remastering
            .take()
            .expect("finish_remaster without begin_remaster");
        let old_primary = self.placement.primary_of(part);

        // Sync the unshipped epoch buffer to all secondaries (the "lagging
        // logs" of §III) so the new primary starts from a consistent state.
        let pending = self.primary_store_mut(part).log.take_pending();
        let bytes: u64 = pending.iter().map(|e| e.wire_bytes()).sum();
        let secondaries: Vec<NodeId> = self.placement.secondaries_of(part).to_vec();
        for sec in &secondaries {
            if let Some(store) = self.store_mut(*sec, part) {
                store.apply_entries(&pending);
            }
        }

        let head = self
            .store(old_primary, part)
            .expect("old primary")
            .log
            .head_lsn();
        self.stores[old_primary.idx()]
            .get_mut(&part.0)
            .expect("old primary")
            .demote();
        self.stores[to.idx()]
            .get_mut(&part.0)
            .expect("new primary")
            .promote(head);
        self.placement
            .remaster(part, to)
            .expect("placement remaster");
        self.freq.touch(part, to, now);
        bytes * secondaries.len() as u64
    }

    // ------------------------------------------------------------------
    // Adaptor: background replica addition (§III, §V AddRepReqHandler)
    // ------------------------------------------------------------------

    /// Starts copying a new secondary of `part` onto `to` in the background.
    /// Returns `(copy duration, wire bytes)`. The partition stays fully
    /// available: this is the non-intrusive path Lion relies on.
    pub fn begin_add_replica(
        &mut self,
        part: PartitionId,
        to: NodeId,
        _now: Time,
    ) -> Result<(Time, u64), AdaptorError> {
        if self.placement.has_replica(part, to) || self.parts[part.idx()].copying_to.contains(&to) {
            return Err(AdaptorError::AlreadyHosted { part, node: to });
        }
        let primary = self.placement.primary_of(part);
        if !self.node_up[primary.idx()] || !self.node_up[to.idx()] {
            return Err(AdaptorError::Busy(part));
        }
        // A snapshot copy cannot cross an active cut either.
        if !self.same_side(primary, to) {
            return Err(AdaptorError::Busy(part));
        }
        let bytes = self
            .store(primary, part)
            .expect("primary store")
            .table
            .bytes()
            + 16 * self.cfg.keys_per_partition;
        let duration = self.cfg.migration_fixed_us / 2
            + (bytes as f64 / self.cfg.net.bytes_per_us).ceil() as Time;
        self.parts[part.idx()].copying_to.push(to);
        Ok((duration, bytes))
    }

    /// Completes a background copy: registers the secondary and, when the
    /// replica cap is exceeded, evicts the coldest other secondary
    /// (§IV-B.2). Returns the evicted node, if any.
    pub fn finish_add_replica(
        &mut self,
        part: PartitionId,
        to: NodeId,
        now: Time,
    ) -> Option<NodeId> {
        let rt = &mut self.parts[part.idx()];
        let pos = rt
            .copying_to
            .iter()
            .position(|&n| n == to)
            .expect("finish_add_replica without begin_add_replica");
        rt.copying_to.swap_remove(pos);

        let primary = self.placement.primary_of(part);
        let snapshot = {
            let src = self.stores[primary.idx()]
                .get(&part.0)
                .expect("primary store");
            ReplicaStore::from_snapshot(part, src)
        };
        self.stores[to.idx()].insert(part.0, snapshot);
        self.placement
            .add_secondary(part, to)
            .expect("placement add");
        self.freq.touch(part, to, now);

        if self.placement.replica_count(part) > self.cfg.max_replicas {
            let mut victims: Vec<NodeId> = self
                .placement
                .secondaries_of(part)
                .iter()
                .copied()
                .filter(|&n| n != to)
                .collect();
            // Anti-affinity: evicting a replica must not collapse the
            // partition's zone spread below the policy floor (or below the
            // spread it currently has, when already under the floor). Fall
            // back to the unconstrained victim set if no candidate
            // qualifies — the replica cap is a hard resource limit.
            if self.cfg.placement.is_rack_safe() {
                let floor = self.cfg.placement.min_zones().min(self.zone_coverage(part));
                let safe: Vec<NodeId> = victims
                    .iter()
                    .copied()
                    .filter(|&v| {
                        self.placement.zone_coverage_without(part, v, &self.zone_of) >= floor
                    })
                    .collect();
                if !safe.is_empty() {
                    victims = safe;
                }
            }
            if let Some(victim) = self.freq.coldest(part, &victims) {
                self.remove_replica(part, victim).expect("evict secondary");
                return Some(victim);
            }
        }
        None
    }

    /// Provisions a secondary replica instantly and free of charge —
    /// deployment-time setup only (e.g. Star's full-replica "super node"
    /// exists before the workload starts; it is not built online).
    pub fn install_secondary_free(
        &mut self,
        part: PartitionId,
        node: NodeId,
    ) -> Result<(), AdaptorError> {
        if self.placement.has_replica(part, node) {
            return Err(AdaptorError::AlreadyHosted { part, node });
        }
        let primary = self.placement.primary_of(part);
        let snapshot = {
            let src = self.stores[primary.idx()]
                .get(&part.0)
                .expect("primary store");
            ReplicaStore::from_snapshot(part, src)
        };
        self.stores[node.idx()].insert(part.0, snapshot);
        self.placement
            .add_secondary(part, node)
            .expect("placement add");
        Ok(())
    }

    /// Drops the secondary replica of `part` on `node` (delete-flag path).
    pub fn remove_replica(&mut self, part: PartitionId, node: NodeId) -> Result<(), AdaptorError> {
        if self.placement.is_primary(part, node) {
            return Err(AdaptorError::AlreadyPrimary { part, node });
        }
        if !self.placement.has_secondary(part, node) {
            return Err(AdaptorError::NoReplica { part, node });
        }
        self.placement
            .remove_secondary(part, node)
            .expect("placement remove");
        self.stores[node.idx()].remove(&part.0);
        self.freq.forget(part, node);
        Ok(())
    }

    // ------------------------------------------------------------------
    // Adaptor: blocking migration (the baselines' expensive path)
    // ------------------------------------------------------------------

    /// Starts migrating the primary of `part` to `to` (full data move).
    /// Returns `(duration, wire bytes)`; the partition blocks throughout.
    pub fn begin_migration(
        &mut self,
        part: PartitionId,
        to: NodeId,
        now: Time,
    ) -> Result<(Time, u64), AdaptorError> {
        if self.placement.is_primary(part, to) {
            return Err(AdaptorError::AlreadyPrimary { part, node: to });
        }
        if self.parts[part.idx()].transfer_in_flight() || self.parts[part.idx()].failure_in_flight()
        {
            return Err(AdaptorError::Busy(part));
        }
        let primary = self.placement.primary_of(part);
        if !self.node_up[primary.idx()] || !self.node_up[to.idx()] {
            return Err(AdaptorError::Busy(part));
        }
        // A blocking migration cannot cross an active cut either.
        if !self.same_side(primary, to) {
            return Err(AdaptorError::Busy(part));
        }
        let bytes = self
            .store(primary, part)
            .expect("primary store")
            .table
            .bytes()
            + 16 * self.cfg.keys_per_partition;
        let duration =
            self.cfg.migration_fixed_us + (bytes as f64 / self.cfg.net.bytes_per_us).ceil() as Time;
        let rt = &mut self.parts[part.idx()];
        rt.migrating = Some(to);
        rt.gen += 1;
        rt.blocked_until = rt.blocked_until.max(now + duration);
        Ok((duration, bytes))
    }

    /// Completes a migration: moves the primary's data to the target (the
    /// source copy is dropped — a move, not a copy) and updates placement.
    pub fn finish_migration(&mut self, part: PartitionId, now: Time) {
        let to = self.parts[part.idx()]
            .migrating
            .take()
            .expect("finish_migration without begin");
        let old_primary = self.placement.primary_of(part);
        if old_primary == to {
            return; // placement changed underneath (e.g. racing remaster); no-op
        }
        // Flush unshipped entries to surviving secondaries before the move.
        let pending = self.primary_store_mut(part).log.take_pending();
        let secondaries: Vec<NodeId> = self.placement.secondaries_of(part).to_vec();
        for sec in &secondaries {
            if let Some(store) = self.store_mut(*sec, part) {
                store.apply_entries(&pending);
            }
        }
        let mut moved = self.stores[old_primary.idx()]
            .remove(&part.0)
            .expect("primary store");
        if self.placement.has_secondary(part, to) {
            // Target already held a copy: promote it in place with the moved
            // (authoritative) table.
            let head = moved.log.head_lsn();
            let target = self.stores[to.idx()]
                .get_mut(&part.0)
                .expect("target store");
            target.table = moved.table;
            target.promote(head);
            self.placement
                .remaster(part, to)
                .expect("placement remaster");
            self.placement
                .remove_secondary(part, old_primary)
                .expect("drop source");
        } else {
            moved.applied_lsn = moved.log.head_lsn();
            self.stores[to.idx()].insert(part.0, moved);
            self.placement
                .migrate_primary(part, to)
                .expect("placement migrate");
        }
        self.freq.touch(part, to, now);
    }

    // ------------------------------------------------------------------
    // Failure injection & failover (decision logic in `lion-faults`)
    // ------------------------------------------------------------------

    /// True when `node` is alive.
    #[inline]
    pub fn is_up(&self, node: NodeId) -> bool {
        self.node_up[node.idx()]
    }

    /// Number of live nodes.
    pub fn live_count(&self) -> usize {
        self.node_up.iter().filter(|&&u| u).count()
    }

    /// Live node ids.
    pub fn live_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.node_up
            .iter()
            .enumerate()
            .filter(|(_, &up)| up)
            .map(|(i, _)| NodeId(i as u16))
    }

    /// Removes `node` from the copy-target list of `part` (a background
    /// replica copy canceled by a failure).
    pub fn cancel_copy(&mut self, part: PartitionId, node: NodeId) {
        let rt = &mut self.parts[part.idx()];
        if let Some(pos) = rt.copying_to.iter().position(|&n| n == node) {
            rt.copying_to.swap_remove(pos);
        }
    }

    // ------------------------------------------------------------------
    // Split-brain windows (honest network partitions)
    // ------------------------------------------------------------------

    /// The active split-brain window, if any.
    #[inline]
    pub fn split_brain(&self) -> Option<&SplitBrain> {
        self.split.as_ref()
    }

    /// True while a split-brain window is open.
    #[inline]
    pub fn split_active(&self) -> bool {
        self.split.is_some()
    }

    /// Side of the cut hosting `node` (`0` = rest, `1` = isolated; `0` for
    /// every node when no split is active).
    #[inline]
    pub fn side_of(&self, node: NodeId) -> u8 {
        self.split.as_ref().map_or(0, |s| s.side_of[node.idx()])
    }

    /// True when `a` and `b` can exchange messages as far as the cut is
    /// concerned (always true outside split-brain windows).
    #[inline]
    pub fn same_side(&self, a: NodeId, b: NodeId) -> bool {
        match &self.split {
            None => true,
            Some(s) => s.side_of[a.idx()] == s.side_of[b.idx()],
        }
    }

    /// True when a message from `from` can actually reach `to`: both nodes
    /// live and on the same side of any active cut. This is the reachability
    /// predicate that replaces the old crashed-node approximation.
    #[inline]
    pub fn reachable(&self, from: NodeId, to: NodeId) -> bool {
        self.node_up[from.idx()] && self.node_up[to.idx()] && self.same_side(from, to)
    }

    /// Quorum side of `part` under the active split (`0` when none): the
    /// side frozen at split begin as holder of a strict majority of the
    /// partition's replica set.
    #[inline]
    pub fn quorum_side_of(&self, part: PartitionId) -> u8 {
        self.split.as_ref().map_or(0, |s| s.quorum_side[part.idx()])
    }

    /// Shadow-promotion target recorded for `part`, if any.
    #[inline]
    pub fn shadow_of(&self, part: PartitionId) -> Option<NodeId> {
        self.split.as_ref().and_then(|s| s.shadow[part.idx()])
    }

    /// Records the quorum-side shadow-promotion target for `part` (applied
    /// for real at heal; see [`SplitBrain::shadow`]).
    pub fn set_shadow(&mut self, part: PartitionId, to: NodeId) {
        let s = self.split.as_mut().expect("shadow outside split window");
        s.shadow[part.idx()] = Some(to);
    }

    /// Opens a split-brain window isolating `isolated` from the rest of the
    /// cluster. Freezes each data partition's quorum side over its then-live
    /// replica holders and cancels every in-flight transfer that straddles
    /// the cut (remaster/migration/failover targets and background copy
    /// destinations cut off from the serving primary) — their scheduled
    /// completions go stale via the generation bump. Returns the partitions
    /// whose in-flight failovers were aborted so the caller can re-plan
    /// them on the quorum side.
    pub fn begin_split(&mut self, isolated: &[NodeId], now: Time) -> Vec<PartitionId> {
        assert!(self.split.is_none(), "split window already open");
        let mut side_of = vec![0u8; self.cfg.nodes];
        for n in isolated {
            side_of[n.idx()] = 1;
        }
        let n_parts = self.n_partitions();
        let mut quorum_side = vec![0u8; n_parts];
        for (p, qs) in quorum_side.iter_mut().enumerate() {
            let part = PartitionId(p as u32);
            let holders = self.placement.replica_nodes(part);
            let rf = holders.len();
            let mut live = [0usize; 2];
            for h in &holders {
                if self.node_up[h.idx()] {
                    live[side_of[h.idx()] as usize] += 1;
                }
            }
            // Plan validation guarantees one side holds a strict majority
            // of the full replica set; the tie-breaking fallback (more live
            // holders, rest side on a tie) only fires for hand-built
            // clusters that bypassed validation.
            *qs = if live[0] * 2 > rf {
                0
            } else if live[1] * 2 > rf {
                1
            } else {
                u8::from(live[1] > live[0])
            };
        }
        self.split = Some(SplitBrain {
            side_of,
            quorum_side,
            shadow: vec![None; n_parts],
        });
        let mut aborted_failovers = Vec::new();
        for p in 0..n_parts {
            let part = PartitionId(p as u32);
            let sp = self.placement.primary_of(part);
            let rt = &mut self.parts[p];
            let split = self.split.as_ref().expect("just opened");
            let cut_off = |n: NodeId| split.side_of[n.idx()] != split.side_of[sp.idx()];
            let cancel_remaster = rt.remastering.is_some_and(cut_off);
            let cancel_migration = rt.migrating.is_some_and(cut_off);
            let cancel_failover = rt.failing_over.is_some_and(cut_off);
            if cancel_remaster {
                rt.remastering = None;
            }
            if cancel_migration {
                rt.migrating = None;
            }
            if cancel_failover {
                rt.failing_over = None;
                aborted_failovers.push(part);
            }
            if cancel_remaster || cancel_migration || cancel_failover {
                rt.gen += 1;
                rt.blocked_until = rt.blocked_until.min(now);
            }
            rt.copying_to.retain(|&n| !cut_off(n));
        }
        aborted_failovers
    }

    /// Closes the split-brain window, returning its final state (shadow
    /// targets, quorum sides) for the heal coordinator's reconciliation
    /// bookkeeping. Reachability reverts to plain liveness.
    pub fn end_split(&mut self) -> Option<SplitBrain> {
        self.split.take()
    }

    /// Quorum-side promotion during a split: `part`'s serving primary sits
    /// cut off on the non-quorum side, so the quorum side promotes `to`
    /// **without any cross-cut replay** — the new primary adopts its own
    /// applied head, and everything the old primary logged past it is the
    /// divergent timeline discovered at heal. The old primary demotes in
    /// place (its log and ack frontier survive for the heal audit) and
    /// stays listed as a stale secondary until heal drops and re-adds it.
    pub fn split_promote(&mut self, part: PartitionId, to: NodeId, now: Time) {
        let old = self.placement.primary_of(part);
        debug_assert!(
            !self.same_side(old, to),
            "split promotion within one side — use a plain failover"
        );
        let rt = &mut self.parts[part.idx()];
        rt.gen += 1;
        rt.primary_down = false;
        rt.failing_over = None;
        if let Some(s) = self.stores[old.idx()].get_mut(&part.0) {
            if s.role == ReplicaRole::Primary {
                s.demote();
            }
        }
        let head = self
            .store(to, part)
            .expect("split promotion target has a store")
            .applied_lsn;
        self.stores[to.idx()]
            .get_mut(&part.0)
            .expect("split promotion target")
            .promote(head);
        self.placement
            .remaster(part, to)
            .expect("split promotion placement swap");
        self.freq.touch(part, to, now);
    }

    /// Halts `node`: cancels transfers involving it, strips it from every
    /// secondary list, and reports the partitions it primaried. For each
    /// orphaned partition that still has a live secondary, the dead
    /// primary's unshipped epoch buffer is drained and returned as the
    /// prepare-log replay source (§II-A replicated it synchronously at
    /// commit time, so the survivors can reconstruct those writes); stalled
    /// partitions keep their buffer for the eventual restart.
    pub fn crash_node(&mut self, node: NodeId, now: Time) -> CrashReport {
        assert!(
            self.node_up[node.idx()],
            "crash of an already-dead node {node}"
        );
        assert!(
            self.live_count() > 1,
            "refusing to crash the last live node {node}"
        );
        self.node_up[node.idx()] = false;
        let mut orphaned = Vec::new();
        let mut lost_secondaries = Vec::new();
        let mut aborted_failovers = Vec::new();
        for p in 0..self.n_partitions() {
            let part = PartitionId(p as u32);
            let primary = self.placement.primary_of(part);
            let primary_dead = primary == node;
            {
                let rt = &mut self.parts[p];
                // Cancel blocking transfers that involve the dead node as
                // source or destination; their scheduled completions become
                // stale (generation mismatch).
                let cancel_remaster =
                    rt.remastering.is_some() && (primary_dead || rt.remastering == Some(node));
                let cancel_migration =
                    rt.migrating.is_some() && (primary_dead || rt.migrating == Some(node));
                // An in-flight failover whose promotion target just died
                // must be aborted too: the caller re-plans it over the
                // remaining survivors.
                let cancel_failover = rt.failing_over == Some(node);
                if cancel_remaster {
                    rt.remastering = None;
                }
                if cancel_migration {
                    rt.migrating = None;
                }
                if cancel_failover {
                    rt.failing_over = None;
                    aborted_failovers.push(part);
                }
                if cancel_remaster || cancel_migration || cancel_failover {
                    rt.gen += 1;
                    rt.blocked_until = rt.blocked_until.min(now);
                }
                if let Some(pos) = rt.copying_to.iter().position(|&n| n == node) {
                    rt.copying_to.swap_remove(pos);
                }
            }
            if primary_dead {
                // During a split the drained epoch buffer can only reach
                // survivors on the dead node's own side of the cut.
                let has_live_secondary = self
                    .placement
                    .secondaries_of(part)
                    .iter()
                    .any(|&s| self.node_up[s.idx()] && self.same_side(s, node));
                let replay = if has_live_secondary {
                    self.stores[node.idx()]
                        .get_mut(&part.0)
                        .map(|s| s.log.take_pending())
                        .unwrap_or_default()
                } else {
                    Vec::new()
                };
                orphaned.push((part, replay));
            } else if self.placement.has_secondary(part, node) {
                self.placement
                    .remove_secondary(part, node)
                    .expect("strip dead secondary");
                self.freq.forget(part, node);
                lost_secondaries.push(part);
            }
        }
        CrashReport {
            node,
            orphaned,
            lost_secondaries,
            aborted_failovers,
        }
    }

    /// Starts promoting `target` to primary of `part` after its primary
    /// died. The partition blocks for `duration` (failure detection +
    /// hand-off + lag sync, priced by `lion-faults`).
    pub fn begin_failover(&mut self, part: PartitionId, target: NodeId, duration: Time, now: Time) {
        let rt = &mut self.parts[part.idx()];
        debug_assert!(rt.failing_over.is_none(), "{part} already failing over");
        rt.failing_over = Some(target);
        rt.primary_down = false;
        rt.gen += 1;
        rt.blocked_until = rt.blocked_until.max(now + duration);
    }

    /// Marks `part` as stalled: its primary is down and no live replica can
    /// take over. Operations block until the node recovers.
    pub fn stall_partition(&mut self, part: PartitionId, until: Time) {
        let rt = &mut self.parts[part.idx()];
        rt.primary_down = true;
        rt.blocked_until = rt.blocked_until.max(until);
    }

    /// Completes a failover: replays the recovered prepare-log entries to
    /// every live secondary, promotes the target at the dead primary's
    /// durability frontier, and rewrites the placement (the dead node drops
    /// out of the replica set entirely). Returns `(wire bytes shipped,
    /// adopted head LSN)`.
    pub fn finish_failover(
        &mut self,
        part: PartitionId,
        replay: &[LogEntry],
        now: Time,
    ) -> (u64, u64) {
        let to = self.parts[part.idx()]
            .failing_over
            .take()
            .expect("finish_failover without begin_failover");
        let dead = self.placement.primary_of(part);

        let entry_bytes: u64 = replay.iter().map(|e| e.wire_bytes()).sum();
        // During a split the replay only reaches secondaries on the
        // promotion target's side; same_side is always true otherwise.
        let secondaries: Vec<NodeId> = self
            .placement
            .secondaries_of(part)
            .iter()
            .copied()
            .filter(|&s| self.node_up[s.idx()] && self.same_side(s, to))
            .collect();
        let mut shipped = 0u64;
        for sec in &secondaries {
            if let Some(store) = self.store_mut(*sec, part) {
                store.apply_entries(replay);
                shipped += entry_bytes;
            }
        }

        // The durability frontier the new primary adopts: everything the
        // dead primary logged (its table state is reconstructed from the
        // epoch-flushed history plus the replayed prepare log).
        let dead_head = self
            .store(dead, part)
            .map(|s| s.log.head_lsn())
            .unwrap_or(0);
        let head = dead_head.max(self.store(to, part).expect("promotion target").applied_lsn);
        if let Some(s) = self.stores[dead.idx()].get_mut(&part.0) {
            if s.role == ReplicaRole::Primary {
                s.demote();
            }
        }
        self.stores[to.idx()]
            .get_mut(&part.0)
            .expect("promotion target")
            .promote(head);
        self.placement
            .remaster(part, to)
            .expect("failover placement swap");
        if self.node_up[dead.idx()] {
            // The node restarted while the promotion was in flight: keep it
            // as an in-sync secondary (its table held everything it logged).
            self.freq.touch(part, dead, now);
        } else {
            self.placement
                .remove_secondary(part, dead)
                .expect("drop dead node from replica set");
        }
        self.freq.touch(part, to, now);
        (shipped, head)
    }

    /// Restarts `node`: marks it live again and reports what must happen
    /// next. Partitions still primaried on it (they stalled through the
    /// outage) resume after a restart window the engine prices; partitions
    /// whose primaries failed over elsewhere discard their stale local copy
    /// and re-join as secondaries via background snapshot copies.
    pub fn recover_node(&mut self, node: NodeId, _now: Time) -> RecoveryReport {
        assert!(!self.node_up[node.idx()], "recover of a live node {node}");
        self.node_up[node.idx()] = true;
        let mut restored_primaries = Vec::new();
        let mut rejoin_secondaries = Vec::new();
        for p in 0..self.n_partitions() {
            let part = PartitionId(p as u32);
            if self.placement.primary_of(part) == node {
                if self.parts[p].failing_over.is_some() {
                    // A promotion is in flight: let it land; the restarted
                    // node is kept as a secondary when it completes.
                    continue;
                }
                restored_primaries.push(part);
            } else if !self.placement.has_replica(part, node)
                && self.stores[node.idx()].contains_key(&part.0)
            {
                // The copy predates the crash and the log shipped past it;
                // drop it and re-sync from a fresh snapshot.
                self.stores[node.idx()].remove(&part.0);
                rejoin_secondaries.push(part);
            }
        }
        RecoveryReport {
            node,
            restored_primaries,
            rejoin_secondaries,
        }
    }

    /// Drops a stale secondary during heal reconciliation: the replica
    /// either missed the durable timeline's flushes across the cut or held
    /// the divergent timeline itself, so its copy is discarded outright and
    /// the caller re-adds the node through a background snapshot copy (the
    /// [`Cluster::recover_node`] re-join pattern).
    pub fn drop_stale_secondary(&mut self, part: PartitionId, node: NodeId) {
        if self.placement.has_secondary(part, node) {
            self.placement
                .remove_secondary(part, node)
                .expect("drop stale secondary");
        }
        self.stores[node.idx()].remove(&part.0);
        self.freq.forget(part, node);
    }

    /// Clears the stall on a restored partition (its primary node is back);
    /// operations resume once the restart window `until` passes.
    pub fn restore_partition(&mut self, part: PartitionId, until: Time) {
        let rt = &mut self.parts[part.idx()];
        debug_assert!(
            rt.primary_down,
            "restore of a partition that is not stalled"
        );
        rt.primary_down = false;
        rt.blocked_until = rt.blocked_until.max(until);
    }

    // ------------------------------------------------------------------
    // Epoch-based group replication (§V)
    // ------------------------------------------------------------------

    /// Ships every partition's pending log entries to its secondaries.
    /// Returns the total wire bytes (for the Fig. 12b network accounting).
    /// One shipping loop serves both flush flavors — this delegates to
    /// [`Cluster::epoch_flush_for_seal`] and drops the seal-only
    /// bookkeeping, so the 10 ms flush and the epoch-commit seal can never
    /// drift apart.
    pub fn epoch_flush_all(&mut self) -> u64 {
        self.epoch_flush_for_seal().bytes
    }

    /// Ships every partition's pending entries like
    /// [`Cluster::epoch_flush_all`], but for an **epoch-commit seal**: on
    /// top of the wire bytes it reports the per-partition log frontiers the
    /// flush certifies and the slowest secondary round-trip — the replication
    /// transit the sealed epoch must wait out before its acks may escape.
    /// Cross-zone secondaries (rack-safe placement) stretch the transit by
    /// the aggregation-layer surcharge both ways.
    pub fn epoch_flush_for_seal(&mut self) -> EpochFlush {
        let mut out = EpochFlush::default();
        for p in 0..self.n_partitions() {
            let part = PartitionId(p as u32);
            let primary = self.placement.primary_of(part);
            if !self.node_up[primary.idx()] {
                continue; // dead primary: nothing ships until failover/restart
            }
            if self.split_active() && self.side_of(primary) != self.quorum_side_of(part) {
                // Quorum-fenced partition: the serving primary sits on the
                // non-quorum side, so its seal can never replicate to a
                // majority. Nothing ships and no frontier certifies —
                // entries pile up in its buffer as the divergent timeline
                // that heal-time reconciliation discards.
                continue;
            }
            let pending = {
                let store = self.stores[primary.idx()]
                    .get_mut(&part.0)
                    .expect("primary");
                if store.log.pending().is_empty() {
                    continue;
                }
                store.log.take_pending()
            };
            let head = pending.last().expect("non-empty pending").lsn;
            out.frontiers.push((part, head));
            let bytes: u64 = pending.iter().map(|e| e.wire_bytes()).sum();
            // Secondaries across an active cut are unreachable: they get
            // nothing (going stale; heal drops and re-adds them), and they
            // never gate the transit.
            let secondaries: Vec<NodeId> = self
                .placement
                .secondaries_of(part)
                .iter()
                .copied()
                .filter(|&s| self.same_side(s, primary))
                .collect();
            for sec in secondaries {
                if let Some(store) = self.store_mut(sec, part) {
                    store.apply_entries(&pending);
                    out.bytes += bytes;
                }
                if self.node_up[sec.idx()] {
                    let rtt =
                        self.net_delay_between(primary, sec, bytes.min(u32::MAX as u64) as u32)
                            + self.net_delay_between(sec, primary, 0);
                    out.max_transit_us = out.max_transit_us.max(rtt);
                }
            }
        }
        out
    }

    /// Checks cross-structure consistency (tests / debug).
    pub fn check_invariants(&self) -> Result<(), String> {
        self.placement.validate().map_err(|e| e.to_string())?;
        for p in 0..self.n_partitions() {
            let part = PartitionId(p as u32);
            let primary = self.placement.primary_of(part);
            let store = self
                .store(primary, part)
                .ok_or_else(|| format!("{part}: primary node {primary} has no store"))?;
            if store.role != lion_storage::ReplicaRole::Primary {
                return Err(format!("{part}: store on {primary} is not primary"));
            }
            for &sec in self.placement.secondaries_of(part) {
                let s = self
                    .store(sec, part)
                    .ok_or_else(|| format!("{part}: secondary {sec} has no store"))?;
                if s.role != lion_storage::ReplicaRole::Secondary {
                    return Err(format!("{part}: store on {sec} is not secondary"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lion_common::TxnId;
    use lion_storage::Bytes;

    fn small_cfg() -> SimConfig {
        SimConfig {
            nodes: 3,
            partitions_per_node: 2,
            keys_per_partition: 32,
            value_size: 16,
            replication_factor: 2,
            max_replicas: 3,
            ..Default::default()
        }
    }

    fn p(i: u32) -> PartitionId {
        PartitionId(i)
    }
    fn n(i: u16) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn construction_matches_placement() {
        let c = Cluster::new(small_cfg());
        c.check_invariants().unwrap();
        assert_eq!(c.n_partitions(), 6);
        assert!(c.store(n(0), p(0)).is_some());
        assert!(c.store(n(1), p(0)).is_some(), "secondary store exists");
        assert!(c.store(n(2), p(0)).is_none());
    }

    #[test]
    fn remaster_lifecycle_swaps_roles() {
        let mut c = Cluster::new(small_cfg());
        let dur = c.begin_remaster(p(0), n(1), 100).unwrap();
        assert_eq!(dur, c.cfg.remaster_delay_us);
        assert_eq!(c.available_at(p(0)), 100 + dur);
        // concurrent remaster on the same partition conflicts (§III)
        assert_eq!(
            c.begin_remaster(p(0), n(1), 110),
            Err(AdaptorError::Busy(p(0)))
        );
        c.finish_remaster(p(0), 100 + dur);
        assert_eq!(c.placement.primary_of(p(0)), n(1));
        c.check_invariants().unwrap();
    }

    #[test]
    fn remaster_syncs_pending_log() {
        let mut c = Cluster::new(small_cfg());
        // commit a write on the primary without an epoch flush
        let txn = TxnId(9);
        {
            let store = c.primary_store_mut(p(0));
            store.table.occ_lock(5, txn);
            let v = store.table.occ_install(5, txn, Bytes::from(vec![7u8; 16]));
            store.log.append(p(0), 5, v, Bytes::from(vec![7u8; 16]));
        }
        let dur = c.begin_remaster(p(0), n(1), 0).unwrap();
        assert!(dur > c.cfg.remaster_delay_us, "lag adds sync time");
        let bytes = c.finish_remaster(p(0), dur);
        assert!(bytes > 0);
        let new_primary = c.store(n(1), p(0)).unwrap();
        assert_eq!(
            new_primary.table.get(5).unwrap().value,
            Bytes::from(vec![7u8; 16])
        );
        c.check_invariants().unwrap();
    }

    #[test]
    fn remaster_requires_secondary() {
        let mut c = Cluster::new(small_cfg());
        assert_eq!(
            c.begin_remaster(p(0), n(2), 0),
            Err(AdaptorError::NoReplica {
                part: p(0),
                node: n(2)
            })
        );
        assert_eq!(
            c.begin_remaster(p(0), n(0), 0),
            Err(AdaptorError::AlreadyPrimary {
                part: p(0),
                node: n(0)
            })
        );
    }

    #[test]
    fn add_replica_does_not_block_partition() {
        let mut c = Cluster::new(small_cfg());
        let (dur, bytes) = c.begin_add_replica(p(0), n(2), 0).unwrap();
        assert!(dur > 0 && bytes > 0);
        assert_eq!(c.available_at(p(0)), 0, "background copy never blocks");
        assert_eq!(
            c.begin_add_replica(p(0), n(2), 1),
            Err(AdaptorError::AlreadyHosted {
                part: p(0),
                node: n(2)
            })
        );
        let evicted = c.finish_add_replica(p(0), n(2), dur);
        assert_eq!(evicted, None);
        assert!(c.placement.has_secondary(p(0), n(2)));
        assert!(c.store(n(2), p(0)).is_some());
        c.check_invariants().unwrap();
    }

    #[test]
    fn replica_cap_evicts_coldest() {
        let mut cfg = small_cfg();
        cfg.nodes = 4;
        cfg.max_replicas = 2; // primary + 1 secondary
        let mut c = Cluster::new(cfg);
        // p0: primary n0, secondary n1. Adding on n2 must evict n1.
        let (dur, _) = c.begin_add_replica(p(0), n(2), 0).unwrap();
        let evicted = c.finish_add_replica(p(0), n(2), dur);
        assert_eq!(evicted, Some(n(1)));
        assert!(!c.placement.has_secondary(p(0), n(1)));
        assert!(c.store(n(1), p(0)).is_none());
        c.check_invariants().unwrap();
    }

    #[test]
    fn migration_blocks_and_moves_data() {
        let mut c = Cluster::new(small_cfg());
        let (dur, bytes) = c.begin_migration(p(0), n(2), 50).unwrap();
        assert!(bytes >= c.cfg.keys_per_partition * c.cfg.value_size as u64);
        assert_eq!(
            c.available_at(p(0)),
            50 + dur,
            "migration blocks the partition"
        );
        c.finish_migration(p(0), 50 + dur);
        assert_eq!(c.placement.primary_of(p(0)), n(2));
        assert!(c.store(n(0), p(0)).is_none(), "source copy dropped (move)");
        assert!(c.store(n(2), p(0)).is_some());
        c.check_invariants().unwrap();
    }

    #[test]
    fn migration_onto_secondary_promotes_in_place() {
        let mut c = Cluster::new(small_cfg());
        let (dur, _) = c.begin_migration(p(0), n(1), 0).unwrap();
        c.finish_migration(p(0), dur);
        assert_eq!(c.placement.primary_of(p(0)), n(1));
        assert!(c.store(n(0), p(0)).is_none());
        c.check_invariants().unwrap();
    }

    #[test]
    fn crash_failover_lifecycle_preserves_log_continuity() {
        let mut c = Cluster::new(small_cfg());
        // Commit a write on P0's primary (N0) that never epoch-flushes: the
        // failover must recover it from the prepare-log replay.
        let txn = TxnId(5);
        {
            let store = c.primary_store_mut(p(0));
            store.table.occ_lock(9, txn);
            let v = store.table.occ_install(9, txn, Bytes::from(vec![4u8; 16]));
            store.log.append(p(0), 9, v, Bytes::from(vec![4u8; 16]));
        }
        let head_before = c.store(n(0), p(0)).unwrap().log.head_lsn();
        let report = c.crash_node(n(0), 1_000);
        assert!(!c.is_up(n(0)));
        assert_eq!(c.live_count(), 2);
        // N0 primaries P0 and P3 under 3-node round-robin.
        assert_eq!(report.orphaned.len(), 2);
        let (part, replay) = report
            .orphaned
            .iter()
            .find(|(pp, _)| *pp == p(0))
            .expect("P0 orphaned")
            .clone();
        assert_eq!(
            replay.len(),
            1,
            "unflushed write recovered from prepare log"
        );
        // N0 is stripped from every secondary list it was on.
        for lost in &report.lost_secondaries {
            assert!(!c.placement.has_secondary(*lost, n(0)));
        }

        c.begin_failover(part, n(1), 3_000, 1_000);
        assert_eq!(
            c.available_at(part),
            4_000,
            "promotion blocks the partition"
        );
        let (bytes, head) = c.finish_failover(part, &replay, 4_000);
        assert!(bytes > 0);
        assert_eq!(head, head_before, "no committed write lost");
        assert_eq!(c.placement.primary_of(part), n(1));
        assert!(
            !c.placement.has_secondary(part, n(0)),
            "dead node out of the replica set"
        );
        let new_primary = c.store(n(1), part).unwrap();
        assert_eq!(new_primary.log.head_lsn(), head_before);
        assert_eq!(
            new_primary.table.get(9).unwrap().value,
            Bytes::from(vec![4u8; 16]),
            "replayed write visible at the new primary"
        );
        c.check_invariants().unwrap();
    }

    #[test]
    fn recover_node_reports_rejoins_and_restores() {
        let mut cfg = small_cfg();
        cfg.replication_factor = 1; // no secondaries: crashes stall partitions
        let mut c = Cluster::new(cfg);
        let report = c.crash_node(n(0), 0);
        assert_eq!(report.orphaned.len(), 2);
        for (part, replay) in &report.orphaned {
            assert!(replay.is_empty(), "stalled partitions keep their buffer");
            c.stall_partition(*part, 10_000);
            assert!(c.parts[part.idx()].primary_down);
        }
        let rec = c.recover_node(n(0), 20_000);
        assert_eq!(rec.restored_primaries.len(), 2);
        assert!(rec.rejoin_secondaries.is_empty());
        for part in &rec.restored_primaries {
            c.restore_partition(*part, 23_000);
            assert!(!c.parts[part.idx()].primary_down);
            assert_eq!(c.available_at(*part), 23_000);
        }
        c.check_invariants().unwrap();
    }

    #[test]
    fn crashed_node_rejoins_as_secondary_after_failover() {
        let mut c = Cluster::new(small_cfg());
        let report = c.crash_node(n(0), 0);
        for (part, replay) in &report.orphaned {
            c.begin_failover(*part, n(1), 1_000, 0);
            c.finish_failover(*part, replay, 1_000);
        }
        let rec = c.recover_node(n(0), 50_000);
        assert!(rec.restored_primaries.is_empty());
        // Former primaries P0/P3 and former secondaries P2/P5 (stale stores
        // dropped at restart) all re-join via background copies.
        assert_eq!(rec.rejoin_secondaries.len(), 4);
        for part in &rec.rejoin_secondaries {
            assert!(c.store(n(0), *part).is_none(), "stale copy dropped");
            let (dur, _) = c.begin_add_replica(*part, n(0), 50_000).unwrap();
            c.finish_add_replica(*part, n(0), 50_000 + dur);
            assert!(c.placement.has_secondary(*part, n(0)));
        }
        c.check_invariants().unwrap();
    }

    #[test]
    fn dead_nodes_refuse_adaptor_operations() {
        let mut c = Cluster::new(small_cfg());
        c.crash_node(n(2), 0);
        // remaster away from a dead primary (failover's job, not the adaptor's)
        assert_eq!(
            c.begin_remaster(p(2), n(0), 0),
            Err(AdaptorError::Busy(p(2)))
        );
        // migration toward a dead node
        assert_eq!(
            c.begin_migration(p(1), n(2), 0),
            Err(AdaptorError::Busy(p(1)))
        );
        // replica copy toward a dead node
        assert_eq!(
            c.begin_add_replica(p(0), n(2), 0),
            Err(AdaptorError::Busy(p(0)))
        );
    }

    #[test]
    fn zone_queries_follow_the_config_map() {
        let mut cfg = small_cfg();
        cfg.nodes = 4;
        cfg.zones = 2;
        let c = Cluster::new(cfg);
        assert_eq!(c.n_zones(), 2);
        assert_eq!(c.zone(n(0)), lion_common::ZoneId(0));
        assert_eq!(c.zone(n(3)), lion_common::ZoneId(1));
        assert_eq!(c.zone_members(lion_common::ZoneId(0)), vec![n(0), n(1)]);
        // default: no cross-zone surcharge, both paths identical
        assert_eq!(c.net_delay_between(n(0), n(3), 100), c.net_delay(100));
    }

    #[test]
    fn cross_zone_surcharge_prices_remote_zones() {
        let mut cfg = small_cfg();
        cfg.nodes = 4;
        cfg.zones = 2;
        cfg.net.cross_zone_extra_us = 200;
        let c = Cluster::new(cfg);
        assert_eq!(
            c.net_delay_between(n(0), n(1), 64),
            c.net_delay(64),
            "rack-local stays at base cost"
        );
        assert_eq!(
            c.net_delay_between(n(1), n(2), 64),
            c.net_delay(64) + 200,
            "crossing the rack boundary pays the surcharge"
        );
    }

    #[test]
    fn rack_safe_construction_spreads_every_partition() {
        let mut cfg = small_cfg();
        cfg.nodes = 4;
        cfg.zones = 2;
        cfg.placement = lion_common::PlacementPolicy::RackSafe { min_zones: 2 };
        let c = Cluster::new(cfg);
        c.check_invariants().unwrap();
        for p_idx in 0..c.n_partitions() {
            assert!(
                c.zone_coverage(p(p_idx as u32)) >= 2,
                "P{p_idx} not spread across zones"
            );
        }
    }

    #[test]
    fn rack_safe_eviction_keeps_zone_coverage() {
        let mut cfg = small_cfg();
        cfg.nodes = 6; // N0-N2 in Z0, N3-N5 in Z1
        cfg.zones = 2;
        cfg.max_replicas = 3;
        cfg.placement = lion_common::PlacementPolicy::RackSafe { min_zones: 2 };
        let mut c = Cluster::new(cfg);
        // Zone-safe layout gives P0: primary N0 (Z0), secondary N3 (Z1).
        assert_eq!(c.placement.secondaries_of(p(0)), &[n(3)]);
        // Third replica inside Z0, then the cap-exceeding add on N2 (Z0).
        // Eviction candidates are {N1, N3}; N3 is the coldest — but it is
        // also the only Z1 holder, so plain coldest-eviction would collapse
        // P0 into one rack. The zone guard must evict N1 instead.
        c.install_secondary_free(p(0), n(1)).unwrap();
        c.freq.touch(p(0), n(1), 100);
        c.freq.touch(p(0), n(3), 1);
        let (dur, _) = c.begin_add_replica(p(0), n(2), 0).unwrap();
        let evicted = c.finish_add_replica(p(0), n(2), dur);
        assert_eq!(evicted, Some(n(1)), "the zone guard overrides coldness");
        assert!(
            c.placement.has_replica(p(0), n(3)),
            "the only cross-zone replica must survive eviction"
        );
        assert!(c.zone_coverage(p(0)) >= 2);
        c.check_invariants().unwrap();
    }

    #[test]
    fn epoch_flush_ships_to_all_secondaries() {
        let mut c = Cluster::new(small_cfg());
        let txn = TxnId(1);
        {
            let store = c.primary_store_mut(p(2));
            store.table.occ_lock(0, txn);
            let v = store.table.occ_install(0, txn, Bytes::from(vec![3u8; 16]));
            store.log.append(p(2), 0, v, Bytes::from(vec![3u8; 16]));
        }
        let bytes = c.epoch_flush_all();
        assert!(bytes > 0);
        let sec = c.placement.secondaries_of(p(2))[0];
        assert_eq!(
            c.store(sec, p(2)).unwrap().table.get(0).unwrap().value,
            Bytes::from(vec![3u8; 16])
        );
        // flushing again is free
        assert_eq!(c.epoch_flush_all(), 0);
    }

    /// 4 nodes × rf 3, one partition per node: isolating {N2, N3} produces
    /// all four per-partition split cases (see the figsb topology notes).
    fn split_cfg() -> SimConfig {
        SimConfig {
            nodes: 4,
            partitions_per_node: 1,
            keys_per_partition: 32,
            value_size: 16,
            replication_factor: 3,
            max_replicas: 4,
            ..Default::default()
        }
    }

    fn append_write(c: &mut Cluster, part: PartitionId, key: u64, txn: TxnId) {
        let store = c.primary_store_mut(part);
        store.table.occ_lock(key, txn);
        let v = store
            .table
            .occ_install(key, txn, Bytes::from(vec![9u8; 16]));
        store.log.append(part, key, v, Bytes::from(vec![9u8; 16]));
    }

    #[test]
    fn begin_split_freezes_quorum_sides_and_reachability() {
        let mut c = Cluster::new(split_cfg());
        assert!(c.same_side(n(0), n(3)) && c.reachable(n(0), n(3)));
        let aborted = c.begin_split(&[n(2), n(3)], 1_000);
        assert!(aborted.is_empty());
        assert!(c.split_active());
        assert_eq!(c.side_of(n(0)), 0);
        assert_eq!(c.side_of(n(2)), 1);
        assert!(c.same_side(n(2), n(3)));
        assert!(!c.same_side(n(1), n(2)));
        assert!(!c.reachable(n(1), n(2)));
        assert!(c.reachable(n(2), n(3)));
        // round_robin(4, 4, 3): holders of p_i = {i, i+1, i+2 mod 4}
        assert_eq!(c.quorum_side_of(p(0)), 0, "p0 {{0,1,2}}: majority rests");
        assert_eq!(c.quorum_side_of(p(1)), 1, "p1 {{1,2,3}}: majority isolated");
        assert_eq!(c.quorum_side_of(p(2)), 1, "p2 {{2,3,0}}: majority isolated");
        assert_eq!(c.quorum_side_of(p(3)), 0, "p3 {{3,0,1}}: majority rests");
        let state = c.end_split().expect("window was open");
        assert_eq!(state.quorum_side, vec![0, 1, 1, 0]);
        assert!(!c.split_active());
        assert!(c.reachable(n(1), n(2)));
    }

    #[test]
    fn quorum_side_counts_only_live_holders_at_split_begin() {
        let mut c = Cluster::new(split_cfg());
        // p0 holders {0,1,2}: with N1 dead the cut {2,3} splits the live
        // holders 1/1 — no strict majority, fallback keeps the rest side.
        c.crash_node(n(1), 500);
        c.begin_split(&[n(2), n(3)], 1_000);
        assert_eq!(c.quorum_side_of(p(0)), 0);
        // p1 holders {1,2,3}: live holders 0/2 — isolated side quorum.
        assert_eq!(c.quorum_side_of(p(1)), 1);
    }

    #[test]
    fn split_promote_swaps_primary_without_cross_cut_replay() {
        let mut c = Cluster::new(split_cfg());
        // p3 holders {3,0,1}: primary N3 isolated, quorum side rests.
        append_write(&mut c, p(3), 4, TxnId(1));
        c.epoch_flush_all(); // replicated pre-split
        append_write(&mut c, p(3), 5, TxnId(2)); // stranded on N3
        c.begin_split(&[n(2), n(3)], 1_000);
        let target_head = c.store(n(0), p(3)).unwrap().applied_lsn;
        c.split_promote(p(3), n(0), 2_000);
        assert_eq!(c.placement.primary_of(p(3)), n(0));
        let promoted = c.store(n(0), p(3)).unwrap();
        assert_eq!(promoted.role, ReplicaRole::Primary);
        assert_eq!(
            promoted.applied_lsn, target_head,
            "no cross-cut replay: the target adopts its own head"
        );
        // The divergent old primary demoted in place, log intact for the
        // heal audit.
        let old = c.store(n(3), p(3)).unwrap();
        assert_eq!(old.role, ReplicaRole::Secondary);
        assert_eq!(old.log.pending().len(), 1, "stranded entry survives");
        assert!(c.placement.has_secondary(p(3), n(3)));
        c.check_invariants().unwrap();
    }

    #[test]
    fn seal_flush_skips_fenced_partitions_and_cut_off_secondaries() {
        let mut c = Cluster::new(split_cfg());
        c.begin_split(&[n(2), n(3)], 1_000);
        // p1's primary N1 serves from the non-quorum side: fenced.
        append_write(&mut c, p(1), 3, TxnId(1));
        // p0's primary N0 is on its quorum side: ships, but only to N1.
        append_write(&mut c, p(0), 2, TxnId(2));
        let flush = c.epoch_flush_for_seal();
        assert_eq!(
            flush.frontiers.iter().map(|f| f.0).collect::<Vec<_>>(),
            vec![p(0)],
            "only the quorum-served partition certifies a frontier"
        );
        assert!(
            !c.store(n(1), p(1)).unwrap().log.pending().is_empty()
                || c.store(n(1), p(1)).unwrap().applied_lsn == 0,
            "fenced partition shipped nothing"
        );
        // N1 (same side) caught up on p0; N2 (cut off) did not.
        assert_eq!(c.store(n(1), p(0)).unwrap().applied_lsn, 1);
        assert_eq!(c.store(n(2), p(0)).unwrap().applied_lsn, 0);
        // The fenced primary's buffer is still intact for the heal audit.
        assert_eq!(c.store(n(1), p(1)).unwrap().log.pending().len(), 1);
    }

    #[test]
    fn begin_split_cancels_transfers_straddling_the_cut() {
        let mut c = Cluster::new(split_cfg());
        // p0 primary N0: remaster toward N2 crosses the upcoming cut.
        c.begin_remaster(p(0), n(2), 100).unwrap();
        // p1 primary N1 → N3 also crosses; p2 primary N2 → N3 stays inside.
        c.begin_remaster(p(1), n(3), 100).unwrap();
        c.begin_remaster(p(2), n(3), 100).unwrap();
        let g0 = c.parts[0].gen;
        let g2 = c.parts[2].gen;
        let aborted = c.begin_split(&[n(2), n(3)], 1_000);
        assert!(aborted.is_empty(), "no failovers were in flight");
        assert_eq!(c.parts[0].remastering, None);
        assert_eq!(c.parts[1].remastering, None);
        assert!(c.parts[0].gen > g0, "stale completion fenced by gen bump");
        assert_eq!(
            c.parts[2].remastering,
            Some(n(3)),
            "same-side transfer survives"
        );
        assert_eq!(c.parts[2].gen, g2);
    }
}
