//! The simulated cluster: nodes, replica stores, adaptor operations.

use crate::freq::FreqTracker;
use lion_common::{NodeId, PartitionId, SimConfig, Time};
use lion_sim::MultiServer;
use lion_storage::ReplicaStore;
use std::collections::HashMap;
use std::fmt;

/// Per-µs cost of syncing one lagging log entry during remastering.
const LAG_SYNC_US_PER_ENTRY: Time = 1;

/// Errors from adaptor operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdaptorError {
    /// Another remaster/migration is already in flight for the partition.
    Busy(PartitionId),
    /// The target node holds no replica of the partition.
    NoReplica { part: PartitionId, node: NodeId },
    /// The target node already is the primary.
    AlreadyPrimary { part: PartitionId, node: NodeId },
    /// The target node already holds (or is copying) a replica.
    AlreadyHosted { part: PartitionId, node: NodeId },
}

impl fmt::Display for AdaptorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdaptorError::Busy(p) => write!(f, "{p} already has a replica operation in flight"),
            AdaptorError::NoReplica { part, node } => write!(f, "{node} holds no replica of {part}"),
            AdaptorError::AlreadyPrimary { part, node } => {
                write!(f, "{node} is already primary of {part}")
            }
            AdaptorError::AlreadyHosted { part, node } => {
                write!(f, "{node} already hosts/copies a replica of {part}")
            }
        }
    }
}

impl std::error::Error for AdaptorError {}

/// Runtime state of one partition: adaptor operations in flight.
#[derive(Debug, Clone, Default)]
pub struct PartitionRuntime {
    /// Operations on the partition cannot execute before this time
    /// (remaster hand-off window / migration blackout).
    pub blocked_until: Time,
    /// Remaster target, if a remaster is in flight.
    pub remastering: Option<NodeId>,
    /// Migration target, if a migration is in flight.
    pub migrating: Option<NodeId>,
    /// Nodes currently receiving a background replica copy.
    pub copying_to: Vec<NodeId>,
}

impl PartitionRuntime {
    /// True when a remaster or migration is in flight.
    pub fn transfer_in_flight(&self) -> bool {
        self.remastering.is_some() || self.migrating.is_some()
    }
}

/// The simulated cluster state shared by every protocol.
pub struct Cluster {
    /// Static configuration.
    pub cfg: SimConfig,
    /// Current replica placement (the "global router table" of §V).
    pub placement: lion_common::Placement,
    /// Per-node worker pools.
    pub workers: Vec<MultiServer>,
    /// Per-partition adaptor runtime state.
    pub parts: Vec<PartitionRuntime>,
    /// Access-frequency tracking for the cost model and eviction.
    pub freq: FreqTracker,
    stores: Vec<HashMap<u32, ReplicaStore>>,
}

impl Cluster {
    /// Builds a cluster with the paper's default round-robin layout and
    /// populated tables.
    pub fn new(cfg: SimConfig) -> Self {
        let n_parts = cfg.n_partitions();
        let placement =
            lion_common::Placement::round_robin(n_parts, cfg.nodes, cfg.replication_factor);
        let workers = (0..cfg.nodes).map(|_| MultiServer::new(cfg.workers_per_node)).collect();
        let mut stores: Vec<HashMap<u32, ReplicaStore>> =
            (0..cfg.nodes).map(|_| HashMap::new()).collect();
        for p in 0..n_parts {
            let part = PartitionId(p as u32);
            let primary = placement.primary_of(part);
            stores[primary.idx()].insert(
                part.0,
                ReplicaStore::new_primary(part, cfg.keys_per_partition, cfg.value_size),
            );
            for &sec in placement.secondaries_of(part) {
                stores[sec.idx()].insert(
                    part.0,
                    ReplicaStore::new_secondary(part, cfg.keys_per_partition, cfg.value_size),
                );
            }
        }
        let parts = vec![PartitionRuntime::default(); n_parts];
        let freq = FreqTracker::new(n_parts);
        Cluster { cfg, placement, workers, parts, freq, stores }
    }

    /// Node count.
    pub fn n_nodes(&self) -> usize {
        self.cfg.nodes
    }

    /// Partition count.
    pub fn n_partitions(&self) -> usize {
        self.parts.len()
    }

    /// All node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.cfg.nodes as u16).map(NodeId)
    }

    /// Replica store hosted by `node` for `part`, if any.
    pub fn store(&self, node: NodeId, part: PartitionId) -> Option<&ReplicaStore> {
        self.stores[node.idx()].get(&part.0)
    }

    /// Mutable replica store.
    pub fn store_mut(&mut self, node: NodeId, part: PartitionId) -> Option<&mut ReplicaStore> {
        self.stores[node.idx()].get_mut(&part.0)
    }

    /// Mutable store of the current primary replica.
    pub fn primary_store_mut(&mut self, part: PartitionId) -> &mut ReplicaStore {
        let primary = self.placement.primary_of(part);
        self.stores[primary.idx()].get_mut(&part.0).expect("primary store must exist")
    }

    /// Network delay for one message of `bytes` payload.
    pub fn net_delay(&self, bytes: u32) -> Time {
        self.cfg.net.delay(bytes)
    }

    /// Earliest time operations on `part` may execute.
    pub fn available_at(&self, part: PartitionId) -> Time {
        self.parts[part.idx()].blocked_until
    }

    // ------------------------------------------------------------------
    // Adaptor: remastering (§III)
    // ------------------------------------------------------------------

    /// Starts remastering `part` onto `to`. Returns the duration of the
    /// hand-off window: the configured delay plus log-lag sync time. The
    /// partition blocks for that window (new operations wait, §III).
    pub fn begin_remaster(
        &mut self,
        part: PartitionId,
        to: NodeId,
        now: Time,
    ) -> Result<Time, AdaptorError> {
        if self.placement.is_primary(part, to) {
            return Err(AdaptorError::AlreadyPrimary { part, node: to });
        }
        if !self.placement.has_secondary(part, to) {
            return Err(AdaptorError::NoReplica { part, node: to });
        }
        let rt = &self.parts[part.idx()];
        if rt.transfer_in_flight() {
            return Err(AdaptorError::Busy(part));
        }
        let primary = self.placement.primary_of(part);
        let head = self.store(primary, part).expect("primary store").log.head_lsn();
        let lag = self.store(to, part).expect("secondary store").lag_behind(head);
        let duration = self.cfg.remaster_delay_us + lag * LAG_SYNC_US_PER_ENTRY;
        let rt = &mut self.parts[part.idx()];
        rt.remastering = Some(to);
        rt.blocked_until = rt.blocked_until.max(now + duration);
        Ok(duration)
    }

    /// Completes an in-flight remaster: syncs the pending log to every
    /// secondary, swaps roles, and updates the placement. Returns the wire
    /// bytes spent on the lag sync (for network accounting).
    pub fn finish_remaster(&mut self, part: PartitionId, now: Time) -> u64 {
        let to = self.parts[part.idx()]
            .remastering
            .take()
            .expect("finish_remaster without begin_remaster");
        let old_primary = self.placement.primary_of(part);

        // Sync the unshipped epoch buffer to all secondaries (the "lagging
        // logs" of §III) so the new primary starts from a consistent state.
        let pending = self.primary_store_mut(part).log.take_pending();
        let bytes: u64 = pending.iter().map(|e| e.wire_bytes()).sum();
        let secondaries: Vec<NodeId> = self.placement.secondaries_of(part).to_vec();
        for sec in &secondaries {
            if let Some(store) = self.store_mut(*sec, part) {
                store.apply_entries(&pending);
            }
        }

        let head = self.store(old_primary, part).expect("old primary").log.head_lsn();
        self.stores[old_primary.idx()].get_mut(&part.0).expect("old primary").demote();
        self.stores[to.idx()].get_mut(&part.0).expect("new primary").promote(head);
        self.placement.remaster(part, to).expect("placement remaster");
        self.freq.touch(part, to, now);
        bytes * secondaries.len() as u64
    }

    // ------------------------------------------------------------------
    // Adaptor: background replica addition (§III, §V AddRepReqHandler)
    // ------------------------------------------------------------------

    /// Starts copying a new secondary of `part` onto `to` in the background.
    /// Returns `(copy duration, wire bytes)`. The partition stays fully
    /// available: this is the non-intrusive path Lion relies on.
    pub fn begin_add_replica(
        &mut self,
        part: PartitionId,
        to: NodeId,
        _now: Time,
    ) -> Result<(Time, u64), AdaptorError> {
        if self.placement.has_replica(part, to) || self.parts[part.idx()].copying_to.contains(&to)
        {
            return Err(AdaptorError::AlreadyHosted { part, node: to });
        }
        let primary = self.placement.primary_of(part);
        let bytes =
            self.store(primary, part).expect("primary store").table.bytes() + 16 * self.cfg.keys_per_partition;
        let duration = self.cfg.migration_fixed_us / 2
            + (bytes as f64 / self.cfg.net.bytes_per_us).ceil() as Time;
        self.parts[part.idx()].copying_to.push(to);
        Ok((duration, bytes))
    }

    /// Completes a background copy: registers the secondary and, when the
    /// replica cap is exceeded, evicts the coldest other secondary
    /// (§IV-B.2). Returns the evicted node, if any.
    pub fn finish_add_replica(
        &mut self,
        part: PartitionId,
        to: NodeId,
        now: Time,
    ) -> Option<NodeId> {
        let rt = &mut self.parts[part.idx()];
        let pos = rt
            .copying_to
            .iter()
            .position(|&n| n == to)
            .expect("finish_add_replica without begin_add_replica");
        rt.copying_to.swap_remove(pos);

        let primary = self.placement.primary_of(part);
        let snapshot = {
            let src = self.stores[primary.idx()].get(&part.0).expect("primary store");
            ReplicaStore::from_snapshot(part, src)
        };
        self.stores[to.idx()].insert(part.0, snapshot);
        self.placement.add_secondary(part, to).expect("placement add");
        self.freq.touch(part, to, now);

        if self.placement.replica_count(part) > self.cfg.max_replicas {
            let victims: Vec<NodeId> = self
                .placement
                .secondaries_of(part)
                .iter()
                .copied()
                .filter(|&n| n != to)
                .collect();
            if let Some(victim) = self.freq.coldest(part, &victims) {
                self.remove_replica(part, victim).expect("evict secondary");
                return Some(victim);
            }
        }
        None
    }

    /// Provisions a secondary replica instantly and free of charge —
    /// deployment-time setup only (e.g. Star's full-replica "super node"
    /// exists before the workload starts; it is not built online).
    pub fn install_secondary_free(&mut self, part: PartitionId, node: NodeId) -> Result<(), AdaptorError> {
        if self.placement.has_replica(part, node) {
            return Err(AdaptorError::AlreadyHosted { part, node });
        }
        let primary = self.placement.primary_of(part);
        let snapshot = {
            let src = self.stores[primary.idx()].get(&part.0).expect("primary store");
            ReplicaStore::from_snapshot(part, src)
        };
        self.stores[node.idx()].insert(part.0, snapshot);
        self.placement.add_secondary(part, node).expect("placement add");
        Ok(())
    }

    /// Drops the secondary replica of `part` on `node` (delete-flag path).
    pub fn remove_replica(&mut self, part: PartitionId, node: NodeId) -> Result<(), AdaptorError> {
        if self.placement.is_primary(part, node) {
            return Err(AdaptorError::AlreadyPrimary { part, node });
        }
        if !self.placement.has_secondary(part, node) {
            return Err(AdaptorError::NoReplica { part, node });
        }
        self.placement.remove_secondary(part, node).expect("placement remove");
        self.stores[node.idx()].remove(&part.0);
        self.freq.forget(part, node);
        Ok(())
    }

    // ------------------------------------------------------------------
    // Adaptor: blocking migration (the baselines' expensive path)
    // ------------------------------------------------------------------

    /// Starts migrating the primary of `part` to `to` (full data move).
    /// Returns `(duration, wire bytes)`; the partition blocks throughout.
    pub fn begin_migration(
        &mut self,
        part: PartitionId,
        to: NodeId,
        now: Time,
    ) -> Result<(Time, u64), AdaptorError> {
        if self.placement.is_primary(part, to) {
            return Err(AdaptorError::AlreadyPrimary { part, node: to });
        }
        if self.parts[part.idx()].transfer_in_flight() {
            return Err(AdaptorError::Busy(part));
        }
        let primary = self.placement.primary_of(part);
        let bytes = self.store(primary, part).expect("primary store").table.bytes()
            + 16 * self.cfg.keys_per_partition;
        let duration = self.cfg.migration_fixed_us
            + (bytes as f64 / self.cfg.net.bytes_per_us).ceil() as Time;
        let rt = &mut self.parts[part.idx()];
        rt.migrating = Some(to);
        rt.blocked_until = rt.blocked_until.max(now + duration);
        Ok((duration, bytes))
    }

    /// Completes a migration: moves the primary's data to the target (the
    /// source copy is dropped — a move, not a copy) and updates placement.
    pub fn finish_migration(&mut self, part: PartitionId, now: Time) {
        let to =
            self.parts[part.idx()].migrating.take().expect("finish_migration without begin");
        let old_primary = self.placement.primary_of(part);
        if old_primary == to {
            return; // placement changed underneath (e.g. racing remaster); no-op
        }
        // Flush unshipped entries to surviving secondaries before the move.
        let pending = self.primary_store_mut(part).log.take_pending();
        let secondaries: Vec<NodeId> = self.placement.secondaries_of(part).to_vec();
        for sec in &secondaries {
            if let Some(store) = self.store_mut(*sec, part) {
                store.apply_entries(&pending);
            }
        }
        let mut moved = self.stores[old_primary.idx()].remove(&part.0).expect("primary store");
        if self.placement.has_secondary(part, to) {
            // Target already held a copy: promote it in place with the moved
            // (authoritative) table.
            let head = moved.log.head_lsn();
            let target = self.stores[to.idx()].get_mut(&part.0).expect("target store");
            target.table = moved.table;
            target.promote(head);
            self.placement.remaster(part, to).expect("placement remaster");
            self.placement.remove_secondary(part, old_primary).expect("drop source");
        } else {
            moved.applied_lsn = moved.log.head_lsn();
            self.stores[to.idx()].insert(part.0, moved);
            self.placement.migrate_primary(part, to).expect("placement migrate");
        }
        self.freq.touch(part, to, now);
    }

    // ------------------------------------------------------------------
    // Epoch-based group replication (§V)
    // ------------------------------------------------------------------

    /// Ships every partition's pending log entries to its secondaries.
    /// Returns the total wire bytes (for the Fig. 12b network accounting).
    pub fn epoch_flush_all(&mut self) -> u64 {
        let mut total = 0u64;
        for p in 0..self.n_partitions() {
            let part = PartitionId(p as u32);
            let primary = self.placement.primary_of(part);
            let pending = {
                let store = self.stores[primary.idx()].get_mut(&part.0).expect("primary");
                if store.log.pending().is_empty() {
                    continue;
                }
                store.log.take_pending()
            };
            let bytes: u64 = pending.iter().map(|e| e.wire_bytes()).sum();
            let secondaries: Vec<NodeId> = self.placement.secondaries_of(part).to_vec();
            for sec in secondaries {
                if let Some(store) = self.store_mut(sec, part) {
                    store.apply_entries(&pending);
                    total += bytes;
                }
            }
        }
        total
    }

    /// Checks cross-structure consistency (tests / debug).
    pub fn check_invariants(&self) -> Result<(), String> {
        self.placement.validate().map_err(|e| e.to_string())?;
        for p in 0..self.n_partitions() {
            let part = PartitionId(p as u32);
            let primary = self.placement.primary_of(part);
            let store = self
                .store(primary, part)
                .ok_or_else(|| format!("{part}: primary node {primary} has no store"))?;
            if store.role != lion_storage::ReplicaRole::Primary {
                return Err(format!("{part}: store on {primary} is not primary"));
            }
            for &sec in self.placement.secondaries_of(part) {
                let s = self
                    .store(sec, part)
                    .ok_or_else(|| format!("{part}: secondary {sec} has no store"))?;
                if s.role != lion_storage::ReplicaRole::Secondary {
                    return Err(format!("{part}: store on {sec} is not secondary"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lion_common::TxnId;

    fn small_cfg() -> SimConfig {
        SimConfig {
            nodes: 3,
            partitions_per_node: 2,
            keys_per_partition: 32,
            value_size: 16,
            replication_factor: 2,
            max_replicas: 3,
            ..Default::default()
        }
    }

    fn p(i: u32) -> PartitionId {
        PartitionId(i)
    }
    fn n(i: u16) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn construction_matches_placement() {
        let c = Cluster::new(small_cfg());
        c.check_invariants().unwrap();
        assert_eq!(c.n_partitions(), 6);
        assert!(c.store(n(0), p(0)).is_some());
        assert!(c.store(n(1), p(0)).is_some(), "secondary store exists");
        assert!(c.store(n(2), p(0)).is_none());
    }

    #[test]
    fn remaster_lifecycle_swaps_roles() {
        let mut c = Cluster::new(small_cfg());
        let dur = c.begin_remaster(p(0), n(1), 100).unwrap();
        assert_eq!(dur, c.cfg.remaster_delay_us);
        assert_eq!(c.available_at(p(0)), 100 + dur);
        // concurrent remaster on the same partition conflicts (§III)
        assert_eq!(c.begin_remaster(p(0), n(1), 110), Err(AdaptorError::Busy(p(0))));
        c.finish_remaster(p(0), 100 + dur);
        assert_eq!(c.placement.primary_of(p(0)), n(1));
        c.check_invariants().unwrap();
    }

    #[test]
    fn remaster_syncs_pending_log() {
        let mut c = Cluster::new(small_cfg());
        // commit a write on the primary without an epoch flush
        let txn = TxnId(9);
        {
            let store = c.primary_store_mut(p(0));
            store.table.occ_lock(5, txn);
            let v = store.table.occ_install(5, txn, Box::new([7u8; 16]));
            store.log.append(p(0), 5, v, Box::new([7u8; 16]));
        }
        let dur = c.begin_remaster(p(0), n(1), 0).unwrap();
        assert!(dur > c.cfg.remaster_delay_us, "lag adds sync time");
        let bytes = c.finish_remaster(p(0), dur);
        assert!(bytes > 0);
        let new_primary = c.store(n(1), p(0)).unwrap();
        assert_eq!(new_primary.table.get(5).unwrap().value, vec![7u8; 16].into_boxed_slice());
        c.check_invariants().unwrap();
    }

    #[test]
    fn remaster_requires_secondary() {
        let mut c = Cluster::new(small_cfg());
        assert_eq!(
            c.begin_remaster(p(0), n(2), 0),
            Err(AdaptorError::NoReplica { part: p(0), node: n(2) })
        );
        assert_eq!(
            c.begin_remaster(p(0), n(0), 0),
            Err(AdaptorError::AlreadyPrimary { part: p(0), node: n(0) })
        );
    }

    #[test]
    fn add_replica_does_not_block_partition() {
        let mut c = Cluster::new(small_cfg());
        let (dur, bytes) = c.begin_add_replica(p(0), n(2), 0).unwrap();
        assert!(dur > 0 && bytes > 0);
        assert_eq!(c.available_at(p(0)), 0, "background copy never blocks");
        assert_eq!(
            c.begin_add_replica(p(0), n(2), 1),
            Err(AdaptorError::AlreadyHosted { part: p(0), node: n(2) })
        );
        let evicted = c.finish_add_replica(p(0), n(2), dur);
        assert_eq!(evicted, None);
        assert!(c.placement.has_secondary(p(0), n(2)));
        assert!(c.store(n(2), p(0)).is_some());
        c.check_invariants().unwrap();
    }

    #[test]
    fn replica_cap_evicts_coldest() {
        let mut cfg = small_cfg();
        cfg.nodes = 4;
        cfg.max_replicas = 2; // primary + 1 secondary
        let mut c = Cluster::new(cfg);
        // p0: primary n0, secondary n1. Adding on n2 must evict n1.
        let (dur, _) = c.begin_add_replica(p(0), n(2), 0).unwrap();
        let evicted = c.finish_add_replica(p(0), n(2), dur);
        assert_eq!(evicted, Some(n(1)));
        assert!(!c.placement.has_secondary(p(0), n(1)));
        assert!(c.store(n(1), p(0)).is_none());
        c.check_invariants().unwrap();
    }

    #[test]
    fn migration_blocks_and_moves_data() {
        let mut c = Cluster::new(small_cfg());
        let (dur, bytes) = c.begin_migration(p(0), n(2), 50).unwrap();
        assert!(bytes >= c.cfg.keys_per_partition * c.cfg.value_size as u64);
        assert_eq!(c.available_at(p(0)), 50 + dur, "migration blocks the partition");
        c.finish_migration(p(0), 50 + dur);
        assert_eq!(c.placement.primary_of(p(0)), n(2));
        assert!(c.store(n(0), p(0)).is_none(), "source copy dropped (move)");
        assert!(c.store(n(2), p(0)).is_some());
        c.check_invariants().unwrap();
    }

    #[test]
    fn migration_onto_secondary_promotes_in_place() {
        let mut c = Cluster::new(small_cfg());
        let (dur, _) = c.begin_migration(p(0), n(1), 0).unwrap();
        c.finish_migration(p(0), dur);
        assert_eq!(c.placement.primary_of(p(0)), n(1));
        assert!(c.store(n(0), p(0)).is_none());
        c.check_invariants().unwrap();
    }

    #[test]
    fn epoch_flush_ships_to_all_secondaries() {
        let mut c = Cluster::new(small_cfg());
        let txn = TxnId(1);
        {
            let store = c.primary_store_mut(p(2));
            store.table.occ_lock(0, txn);
            let v = store.table.occ_install(0, txn, Box::new([3u8; 16]));
            store.log.append(p(2), 0, v, Box::new([3u8; 16]));
        }
        let bytes = c.epoch_flush_all();
        assert!(bytes > 0);
        let sec = c.placement.secondaries_of(p(2))[0];
        assert_eq!(c.store(sec, p(2)).unwrap().table.get(0).unwrap().value, vec![3u8; 16].into_boxed_slice());
        // flushing again is free
        assert_eq!(c.epoch_flush_all(), 0);
    }
}
