//! Partition access-frequency tracking.
//!
//! The cost model (Eq. 4) prices remastering by the normalized access
//! frequency of the current primary, `f(v, Np(v, p))`: remastering a hot
//! primary disrupts in-flight work. Replica eviction likewise drops the
//! secondary with the lowest `f(v, n)`. We track per-partition access counts
//! in a sliding window plus a per-(partition, node) last-use stamp for
//! eviction tie-breaks.

use lion_common::{FastMap, NodeId, PartitionId, Time};

/// Sliding-window access counters.
#[derive(Debug, Clone)]
pub struct FreqTracker {
    window: Vec<u64>,
    previous: Vec<u64>,
    /// Cached `max(previous)`: `previous` only changes on `roll_window`,
    /// while [`FreqTracker::normalized`] runs on every routed transaction —
    /// rescanning the window there made routing O(partitions²) per txn.
    previous_max: u64,
    last_used: FastMap<(PartitionId, NodeId), Time>,
}

impl FreqTracker {
    /// Creates a tracker for `n_partitions` partitions.
    pub fn new(n_partitions: usize) -> Self {
        FreqTracker {
            window: vec![0; n_partitions],
            previous: vec![0; n_partitions],
            previous_max: 0,
            last_used: FastMap::default(),
        }
    }

    /// Records one access to `part` executed at `node`.
    pub fn record_access(&mut self, part: PartitionId, node: NodeId, now: Time) {
        self.window[part.idx()] += 1;
        self.last_used.insert((part, node), now);
    }

    /// Marks a replica as used without counting an access (remaster target,
    /// fresh copy), so brand-new replicas aren't immediately evicted.
    pub fn touch(&mut self, part: PartitionId, node: NodeId, now: Time) {
        self.last_used.insert((part, node), now);
    }

    /// Rolls the window (called on planner ticks): current counts become the
    /// "previous" counts that queries read.
    pub fn roll_window(&mut self) {
        std::mem::swap(&mut self.previous, &mut self.window);
        self.window.iter_mut().for_each(|c| *c = 0);
        self.previous_max = self.previous.iter().copied().max().unwrap_or(0);
    }

    /// Raw access count of `part` in the last complete window.
    pub fn count(&self, part: PartitionId) -> u64 {
        self.previous[part.idx()]
    }

    /// Normalized access frequency in `[0, 1]` relative to the hottest
    /// partition of the last window (paper's `f(v, n)` for the primary).
    pub fn normalized(&self, part: PartitionId) -> f64 {
        let max = self.previous_max;
        if max == 0 {
            0.0
        } else {
            self.previous[part.idx()] as f64 / max as f64
        }
    }

    /// Last time a replica of `part` on `node` was used (0 if never).
    pub fn last_used(&self, part: PartitionId, node: NodeId) -> Time {
        self.last_used.get(&(part, node)).copied().unwrap_or(0)
    }

    /// Among `candidates`, the coldest replica holder of `part` (lowest
    /// last-use stamp) — the eviction victim of §IV-B.2.
    pub fn coldest(&self, part: PartitionId, candidates: &[NodeId]) -> Option<NodeId> {
        candidates
            .iter()
            .copied()
            .min_by_key(|&n| self.last_used(part, n))
    }

    /// Drops bookkeeping for a removed replica.
    pub fn forget(&mut self, part: PartitionId, node: NodeId) {
        self.last_used.remove(&(part, node));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u32) -> PartitionId {
        PartitionId(i)
    }
    fn n(i: u16) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn window_roll_exposes_counts() {
        let mut f = FreqTracker::new(3);
        f.record_access(p(0), n(0), 10);
        f.record_access(p(0), n(0), 11);
        f.record_access(p(2), n(1), 12);
        assert_eq!(f.count(p(0)), 0, "window not rolled yet");
        f.roll_window();
        assert_eq!(f.count(p(0)), 2);
        assert_eq!(f.count(p(2)), 1);
        assert!((f.normalized(p(0)) - 1.0).abs() < 1e-9);
        assert!((f.normalized(p(2)) - 0.5).abs() < 1e-9);
        f.roll_window();
        assert_eq!(f.count(p(0)), 0);
    }

    #[test]
    fn normalized_is_zero_when_idle() {
        let f = FreqTracker::new(2);
        assert_eq!(f.normalized(p(0)), 0.0);
    }

    #[test]
    fn coldest_picks_least_recently_used() {
        let mut f = FreqTracker::new(1);
        f.touch(p(0), n(0), 100);
        f.touch(p(0), n(1), 50);
        f.touch(p(0), n(2), 200);
        assert_eq!(f.coldest(p(0), &[n(0), n(1), n(2)]), Some(n(1)));
        assert_eq!(f.coldest(p(0), &[]), None);
        // a never-used node is coldest of all
        assert_eq!(f.coldest(p(0), &[n(0), n(3)]), Some(n(3)));
    }

    #[test]
    fn forget_clears_stamp() {
        let mut f = FreqTracker::new(1);
        f.touch(p(0), n(0), 5);
        f.forget(p(0), n(0));
        assert_eq!(f.last_used(p(0), n(0)), 0);
    }
}
