//! # lion-cluster
//!
//! The simulated share-nothing cluster of §III: executor nodes with worker
//! pools, partition replicas with primary/secondary roles, and the *adaptor*
//! operations every protocol composes:
//!
//! * **remastering** — promote a secondary after syncing its lag, blocking
//!   the partition only for the hand-off window (§III);
//! * **replica addition** — background snapshot copy that never blocks the
//!   primary (§III "asynchronous adjustment");
//! * **migration** — full data move that blocks the partition while in
//!   flight (the cost the migration-based baselines pay, §II-B.1);
//! * **replica removal** — eviction when the replica cap is exceeded
//!   (§IV-B.2).
//!
//! Timing is decided here (durations, bytes); the engine schedules the
//! corresponding events on the virtual clock.

pub mod freq;
pub mod topology;

pub use freq::FreqTracker;
pub use topology::{
    AdaptorError, Cluster, CrashReport, EpochFlush, PartitionRuntime, RecoveryReport, SplitBrain,
    LAG_SYNC_US_PER_ENTRY,
};
