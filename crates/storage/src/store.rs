//! A partition replica: table + replication state + role.

use crate::log::{LogEntry, ReplicationLog};
use crate::table::Table;
use lion_common::PartitionId;
use std::collections::BTreeMap;

/// Whether this replica currently serves writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplicaRole {
    /// Serves reads and writes; owns the replication log.
    Primary,
    /// Applies replicated entries; can be promoted by remastering.
    Secondary,
}

/// One replica of one partition hosted on one node.
#[derive(Debug, Clone)]
pub struct ReplicaStore {
    /// Partition this replica belongs to.
    pub partition: PartitionId,
    /// Current role.
    pub role: ReplicaRole,
    /// Row data.
    pub table: Table,
    /// Replication log (only appended on the primary; carried across
    /// remastering via [`ReplicationLog::adopt_head`]).
    pub log: ReplicationLog,
    /// Highest LSN applied on this replica. On the primary this equals the
    /// log head; on a secondary it trails by the replication lag.
    ///
    /// `applied_lsn` only advances over a *dense* prefix: an entry arriving
    /// ahead of the prefix is parked in `reorder` until the gap fills, so a
    /// secondary's frontier never claims writes it has not actually applied.
    /// Failover promotion relies on this (a gapped replica must not lead).
    pub applied_lsn: u64,
    /// Entries received ahead of the dense prefix, keyed by LSN.
    reorder: BTreeMap<u64, LogEntry>,
}

impl ReplicaStore {
    /// Creates a populated primary replica.
    pub fn new_primary(partition: PartitionId, keys: u64, value_size: u32) -> Self {
        ReplicaStore {
            partition,
            role: ReplicaRole::Primary,
            table: Table::populated(keys, value_size),
            log: ReplicationLog::new(),
            applied_lsn: 0,
            reorder: BTreeMap::new(),
        }
    }

    /// Creates a populated secondary replica (initially in sync).
    pub fn new_secondary(partition: PartitionId, keys: u64, value_size: u32) -> Self {
        ReplicaStore {
            role: ReplicaRole::Secondary,
            ..Self::new_primary(partition, keys, value_size)
        }
    }

    /// Creates a secondary from a primary snapshot (replica-add copy).
    pub fn from_snapshot(partition: PartitionId, src: &ReplicaStore) -> Self {
        ReplicaStore {
            partition,
            role: ReplicaRole::Secondary,
            table: Table::from_snapshot(src.table.snapshot()),
            log: ReplicationLog::new(),
            applied_lsn: src.log.head_lsn(),
            reorder: BTreeMap::new(),
        }
    }

    /// Replication lag in entries relative to a primary's head LSN.
    pub fn lag_behind(&self, primary_head: u64) -> u64 {
        primary_head.saturating_sub(self.applied_lsn)
    }

    /// Applies shipped log entries. Entries extending the dense prefix apply
    /// immediately; entries arriving ahead of a gap are parked and applied
    /// once the gap fills. Duplicates (LSN at or below the frontier) are
    /// ignored, so replaying an overlapping prepare log during failover is
    /// idempotent.
    pub fn apply_entries(&mut self, entries: &[LogEntry]) {
        for e in entries {
            debug_assert_eq!(e.partition, self.partition);
            if e.lsn <= self.applied_lsn {
                continue; // duplicate delivery / replay overlap
            }
            if e.lsn == self.applied_lsn + 1 {
                self.table
                    .apply_replicated(e.key, e.version, e.value.clone());
                self.applied_lsn = e.lsn;
                self.drain_reorder();
            } else {
                self.reorder.insert(e.lsn, e.clone());
            }
        }
    }

    fn drain_reorder(&mut self) {
        while let Some(e) = self.reorder.remove(&(self.applied_lsn + 1)) {
            self.table
                .apply_replicated(e.key, e.version, e.value.clone());
            self.applied_lsn = e.lsn;
        }
    }

    /// True when this replica holds entries it cannot apply yet — its
    /// applied-epoch prefix has a gap, disqualifying it from promotion.
    pub fn has_gap(&self) -> bool {
        !self.reorder.is_empty()
    }

    /// Promotes this secondary to primary after remastering: adopts the old
    /// primary's head LSN so the log continues densely.
    pub fn promote(&mut self, old_primary_head: u64) {
        debug_assert_eq!(
            self.role,
            ReplicaRole::Secondary,
            "only secondaries are promoted"
        );
        self.role = ReplicaRole::Primary;
        self.applied_lsn = old_primary_head;
        self.reorder.clear();
        self.log.adopt_head(old_primary_head);
    }

    /// Demotes a primary to secondary (the flip side of remastering).
    pub fn demote(&mut self) {
        debug_assert_eq!(
            self.role,
            ReplicaRole::Primary,
            "only primaries are demoted"
        );
        self.role = ReplicaRole::Secondary;
        self.applied_lsn = self.log.head_lsn();
        self.reorder.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row::Bytes;
    use lion_common::TxnId;

    fn p() -> PartitionId {
        PartitionId(0)
    }

    #[test]
    fn primary_secondary_roundtrip_stays_consistent() {
        let mut primary = ReplicaStore::new_primary(p(), 8, 16);
        let mut secondary = ReplicaStore::new_secondary(p(), 8, 16);

        // Commit two writes on the primary.
        for (k, txn) in [(1u64, TxnId(1)), (2, TxnId(2))] {
            primary.table.occ_lock(k, txn);
            let v = primary
                .table
                .occ_install(k, txn, Table::synth_value(k, 99, 16));
            primary.log.append(p(), k, v, Table::synth_value(k, 99, 16));
        }
        assert_eq!(secondary.lag_behind(primary.log.head_lsn()), 2);

        // Epoch flush ships the buffer.
        let shipped = primary.log.take_pending();
        secondary.apply_entries(&shipped);
        assert_eq!(secondary.lag_behind(primary.log.head_lsn()), 0);
        for k in [1u64, 2] {
            assert_eq!(
                secondary.table.get(k).unwrap().value,
                primary.table.get(k).unwrap().value
            );
            assert_eq!(
                secondary.table.get(k).unwrap().version,
                primary.table.get(k).unwrap().version
            );
        }
    }

    #[test]
    fn remastering_promote_demote() {
        let mut primary = ReplicaStore::new_primary(p(), 4, 8);
        let mut secondary = ReplicaStore::new_secondary(p(), 4, 8);
        primary.table.occ_lock(0, TxnId(1));
        let v = primary
            .table
            .occ_install(0, TxnId(1), Bytes::from(vec![1u8; 8]));
        primary.log.append(p(), 0, v, Bytes::from(vec![1u8; 8]));
        let shipped = primary.log.take_pending();
        secondary.apply_entries(&shipped);

        let head = primary.log.head_lsn();
        primary.demote();
        secondary.promote(head);
        assert_eq!(secondary.role, ReplicaRole::Primary);
        assert_eq!(primary.role, ReplicaRole::Secondary);
        // new primary continues the LSN sequence
        let next = secondary.log.append(p(), 1, 2, Bytes::from(vec![2u8; 8]));
        assert_eq!(next, head + 1);
    }

    #[test]
    fn out_of_order_entries_park_until_gap_fills() {
        let mut primary = ReplicaStore::new_primary(p(), 8, 8);
        let mut secondary = ReplicaStore::new_secondary(p(), 8, 8);
        let mut entries = Vec::new();
        for (k, txn) in [(1u64, TxnId(1)), (2, TxnId(2)), (3, TxnId(3))] {
            primary.table.occ_lock(k, txn);
            let v = primary
                .table
                .occ_install(k, txn, Table::synth_value(k, 5, 8));
            primary.log.append(p(), k, v, Table::synth_value(k, 5, 8));
            entries = primary.log.pending().to_vec();
        }
        // Deliver entry 3 first: frontier must not move, gap is flagged.
        secondary.apply_entries(&entries[2..3]);
        assert_eq!(secondary.applied_lsn, 0);
        assert!(secondary.has_gap());
        // Delivering the prefix drains the parked entry.
        secondary.apply_entries(&entries[0..2]);
        assert_eq!(secondary.applied_lsn, 3);
        assert!(!secondary.has_gap());
        assert_eq!(
            secondary.table.get(3).unwrap().value,
            primary.table.get(3).unwrap().value
        );
        // Duplicate replay is idempotent.
        let ver_before = secondary.table.get(2).unwrap().version;
        secondary.apply_entries(&entries);
        assert_eq!(secondary.applied_lsn, 3);
        assert_eq!(secondary.table.get(2).unwrap().version, ver_before);
    }

    #[test]
    fn snapshot_bootstrap_is_in_sync() {
        let mut primary = ReplicaStore::new_primary(p(), 8, 8);
        primary.table.occ_lock(3, TxnId(7));
        let v = primary
            .table
            .occ_install(3, TxnId(7), Bytes::from(vec![9u8; 8]));
        primary.log.append(p(), 3, v, Bytes::from(vec![9u8; 8]));
        primary.log.take_pending(); // shipped elsewhere

        let copy = ReplicaStore::from_snapshot(p(), &primary);
        assert_eq!(copy.lag_behind(primary.log.head_lsn()), 0);
        assert_eq!(
            copy.table.get(3).unwrap().value,
            primary.table.get(3).unwrap().value
        );
        assert_eq!(copy.role, ReplicaRole::Secondary);
    }
}
