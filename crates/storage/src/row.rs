//! Versioned, lockable rows.

use lion_common::TxnId;
use std::sync::Arc;

/// Immutable, reference-counted row payload.
///
/// A committed value is written once and then *shared* — between the row,
/// its replication-log entry, every shipped copy of that entry, and
/// partition snapshots. `Arc<[u8]>` makes all of those an 8-byte pointer
/// bump instead of a payload memcpy, which is what "zero-copy write sets"
/// means on this engine's commit path: the only allocation per installed
/// write is synthesizing the new payload itself.
pub type Bytes = Arc<[u8]>;

/// One stored row: payload bytes plus the OCC metadata word.
///
/// `version` increases monotonically with every installed write; `lock`
/// holds the transaction currently preparing a write to this row (between
/// 2PC prepare-validation and commit/abort), which blocks conflicting
/// validations exactly as the paper's OCC baseline (§VI-A.2) does.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Row {
    /// Monotonic row version, bumped on every install.
    pub version: u64,
    /// Transaction holding the prepare-lock, if any.
    pub lock: Option<TxnId>,
    /// Row payload (shared with the replication log; never mutated in
    /// place).
    pub value: Bytes,
}

impl Row {
    /// Creates a fresh row at version 1.
    pub fn new(value: Bytes) -> Self {
        Row {
            version: 1,
            lock: None,
            value,
        }
    }

    /// True when `txn` may lock this row: the row is unlocked or `txn`
    /// already holds the lock (re-entrant within one transaction).
    pub fn lockable_by(&self, txn: TxnId) -> bool {
        self.lock.is_none() || self.lock == Some(txn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_rows_start_unlocked_at_v1() {
        let r = Row::new(Bytes::from(vec![1, 2, 3]));
        assert_eq!(r.version, 1);
        assert!(r.lock.is_none());
        assert_eq!(&*r.value, &[1, 2, 3]);
    }

    #[test]
    fn reentrant_lock_check() {
        let mut r = Row::new(Bytes::from(vec![0u8; 4]));
        assert!(r.lockable_by(TxnId(1)));
        r.lock = Some(TxnId(1));
        assert!(r.lockable_by(TxnId(1)));
        assert!(!r.lockable_by(TxnId(2)));
    }

    #[test]
    fn clone_shares_the_payload_allocation() {
        let r = Row::new(Bytes::from(vec![7u8; 32]));
        let c = r.clone();
        assert!(
            Bytes::ptr_eq(&r.value, &c.value),
            "row clones are zero-copy"
        );
    }
}
