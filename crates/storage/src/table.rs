//! A single partition replica's key→row table with OCC operations.

use crate::row::{Bytes, Row};
use lion_common::{fast_map_with_capacity, FastMap, Key, TxnId};

/// Result of an OCC step against one row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpOutcome {
    /// The step succeeded; for reads, carries the observed version.
    Ok { version: u64 },
    /// The row is prepare-locked by another transaction.
    Locked { holder: TxnId },
    /// A read-set version no longer matches (write committed in between).
    VersionMismatch { expected: u64, found: u64 },
    /// The key does not exist (reads of missing rows observe version 0 and
    /// succeed; this outcome is only used by internal assertions).
    Missing,
}

impl OpOutcome {
    /// True for `Ok`.
    pub fn is_ok(&self) -> bool {
        matches!(self, OpOutcome::Ok { .. })
    }
}

/// Key→row map for one partition replica.
///
/// # Dense fast path
///
/// A freshly populated partition holds the contiguous key range `0..keys`
/// (how YCSB tables are laid out), so those rows live in a directly indexed
/// vector: every OCC step on them is an array access, no hashing. Keys at
/// or beyond the dense range (TPC-C's bit-packed composite keys, dynamic
/// inserts) live in the sparse map. The split is invisible through the
/// API — `(key, row)` behavior is identical on both paths — and the two
/// never overlap: a key belongs to the dense vector iff `key < dense.len()`.
#[derive(Debug, Clone, Default)]
pub struct Table {
    /// Direct-indexed rows for the contiguous populated range; `None` means
    /// the row is absent (never materialised, or an aborted insert).
    dense: Vec<Option<Row>>,
    /// Number of `Some` entries in `dense`.
    dense_rows: usize,
    /// Rows whose key falls outside the dense range.
    sparse: FastMap<Key, Row>,
    /// Payload bytes currently stored (maintained incrementally).
    bytes: u64,
}

impl Table {
    /// Creates an empty table.
    pub fn new() -> Self {
        Table::default()
    }

    /// Creates a table pre-populated with `keys` rows of `value_size` bytes,
    /// each initialised to a key-derived pattern (so that migrated/replicated
    /// copies can be content-checked in tests).
    pub fn populated(keys: u64, value_size: u32) -> Self {
        let mut t = Table {
            dense: Vec::with_capacity(keys as usize),
            dense_rows: keys as usize,
            sparse: FastMap::default(),
            bytes: 0,
        };
        for k in 0..keys {
            let v = Self::synth_value(k, 1, value_size);
            t.bytes += v.len() as u64;
            t.dense.push(Some(Row::new(v)));
        }
        t
    }

    /// Deterministic synthetic payload for (key, version): the 8-byte
    /// key/version stamp repeated little-endian. Collected straight into
    /// the shared allocation — synthesizing a payload is exactly one
    /// allocation, which the engine's install path counts on.
    pub fn synth_value(key: Key, version: u64, value_size: u32) -> Bytes {
        let stamp = key
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(version);
        (0..value_size as usize)
            .map(|i| (stamp >> ((i % 8) * 8)) as u8)
            .collect()
    }

    /// The shared empty payload used for insert placeholders (no per-lock
    /// allocation).
    fn empty_value() -> Bytes {
        static EMPTY: std::sync::OnceLock<Bytes> = std::sync::OnceLock::new();
        EMPTY.get_or_init(|| Bytes::from(&[][..])).clone()
    }

    /// A fresh insert placeholder: not yet visible (version 0).
    fn placeholder() -> Row {
        let mut r = Row::new(Self::empty_value());
        r.version = 0;
        r
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.dense_rows + self.sparse.len()
    }

    /// True when the table holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total payload bytes stored.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Dense-range test done in u64 width *before* any `as usize` cast: on
    /// a 32-bit target a bit-packed key like `(42 << 32) | 7` must not
    /// truncate and alias dense row 7.
    #[inline]
    fn in_dense(dense: &[Option<Row>], key: Key) -> bool {
        key < dense.len() as u64
    }

    /// Looks up a row.
    #[inline]
    pub fn get(&self, key: Key) -> Option<&Row> {
        if Self::in_dense(&self.dense, key) {
            self.dense[key as usize].as_ref()
        } else {
            self.sparse.get(&key)
        }
    }

    /// Row for `key`, materialising an insert placeholder when absent.
    /// Free-function shape (disjoint field borrows) so callers can keep
    /// updating `bytes` while the row borrow lives.
    #[inline]
    fn row_or_placeholder<'a>(
        dense: &'a mut [Option<Row>],
        dense_rows: &mut usize,
        sparse: &'a mut FastMap<Key, Row>,
        key: Key,
    ) -> &'a mut Row {
        if Self::in_dense(dense, key) {
            let slot = &mut dense[key as usize];
            if slot.is_none() {
                *slot = Some(Self::placeholder());
                *dense_rows += 1;
            }
            slot.as_mut().expect("just ensured")
        } else {
            sparse.entry(key).or_insert_with(Self::placeholder)
        }
    }

    /// Inserts or replaces a row wholesale (population, migration apply).
    pub fn upsert(&mut self, key: Key, value: Bytes) {
        let add = value.len() as u64;
        if Self::in_dense(&self.dense, key) {
            let slot = &mut self.dense[key as usize];
            match slot.replace(Row::new(value)) {
                Some(old) => self.bytes = self.bytes - old.value.len() as u64 + add,
                None => {
                    self.bytes += add;
                    self.dense_rows += 1;
                }
            }
            return;
        }
        match self.sparse.insert(key, Row::new(value)) {
            Some(old) => self.bytes = self.bytes - old.value.len() as u64 + add,
            None => self.bytes += add,
        }
    }

    /// OCC read: returns the current version (0 for missing rows, which is
    /// how inserts validate: the version must still be 0 at commit). A row
    /// prepare-locked by another transaction cannot be read consistently.
    #[inline]
    pub fn occ_read(&self, key: Key, txn: TxnId) -> OpOutcome {
        match self.get(key) {
            None => OpOutcome::Ok { version: 0 },
            Some(row) => match row.lock {
                Some(holder) if holder != txn => OpOutcome::Locked { holder },
                _ => OpOutcome::Ok {
                    version: row.version,
                },
            },
        }
    }

    /// OCC prepare-lock for a write key. Missing rows (inserts) are locked by
    /// materialising an empty version-0 row.
    pub fn occ_lock(&mut self, key: Key, txn: TxnId) -> OpOutcome {
        let row =
            Self::row_or_placeholder(&mut self.dense, &mut self.dense_rows, &mut self.sparse, key);
        if !row.lockable_by(txn) {
            return OpOutcome::Locked {
                holder: row.lock.expect("unlockable row must be locked"),
            };
        }
        row.lock = Some(txn);
        OpOutcome::Ok {
            version: row.version,
        }
    }

    /// OCC read-set validation: the observed version must still be current
    /// and the row must not be prepare-locked by another transaction.
    #[inline]
    pub fn occ_validate_read(&self, key: Key, observed: u64, txn: TxnId) -> OpOutcome {
        match self.get(key) {
            None => {
                if observed == 0 {
                    OpOutcome::Ok { version: 0 }
                } else {
                    OpOutcome::VersionMismatch {
                        expected: observed,
                        found: 0,
                    }
                }
            }
            Some(row) => {
                if let Some(holder) = row.lock {
                    if holder != txn {
                        return OpOutcome::Locked { holder };
                    }
                }
                if row.version != observed {
                    OpOutcome::VersionMismatch {
                        expected: observed,
                        found: row.version,
                    }
                } else {
                    OpOutcome::Ok {
                        version: row.version,
                    }
                }
            }
        }
    }

    /// Installs a write: stores the new payload, bumps the version, releases
    /// the lock. Returns the new version. The payload is shared, not copied:
    /// callers keep (an `Arc` clone of) the same allocation for the
    /// replication log.
    pub fn occ_install(&mut self, key: Key, txn: TxnId, value: Bytes) -> u64 {
        let add = value.len() as u64;
        let row =
            Self::row_or_placeholder(&mut self.dense, &mut self.dense_rows, &mut self.sparse, key);
        debug_assert!(
            row.lock.is_none() || row.lock == Some(txn),
            "installing over a foreign lock"
        );
        self.bytes = self.bytes - row.value.len() as u64 + add;
        row.value = value;
        row.version += 1;
        row.lock = None;
        row.version
    }

    /// Releases a prepare-lock without installing (abort path). Placeholder
    /// rows created for inserts are removed again.
    pub fn occ_unlock(&mut self, key: Key, txn: TxnId) {
        if Self::in_dense(&self.dense, key) {
            let slot = &mut self.dense[key as usize];
            if let Some(row) = slot.as_mut() {
                if row.lock == Some(txn) {
                    row.lock = None;
                    if row.version == 0 {
                        *slot = None; // insert placeholder never became visible
                        self.dense_rows -= 1;
                    }
                }
            }
            return;
        }
        let remove = match self.sparse.get_mut(&key) {
            Some(row) if row.lock == Some(txn) => {
                row.lock = None;
                row.version == 0
            }
            _ => false,
        };
        if remove {
            self.sparse.remove(&key);
        }
    }

    /// Applies a replicated write (no locking: replication is ordered).
    /// `value` is an `Arc` clone of the primary's payload — the apply is
    /// zero-copy.
    pub fn apply_replicated(&mut self, key: Key, version: u64, value: Bytes) {
        let add = value.len() as u64;
        let row =
            Self::row_or_placeholder(&mut self.dense, &mut self.dense_rows, &mut self.sparse, key);
        // Idempotent, ordered apply: never regress.
        if version >= row.version {
            self.bytes = self.bytes - row.value.len() as u64 + add;
            row.value = value;
            row.version = version;
        }
    }

    /// Snapshot of all rows for migration / replica bootstrap. Payloads are
    /// shared (`Arc` clones), so snapshotting never copies row bytes.
    pub fn snapshot(&self) -> Vec<(Key, u64, Bytes)> {
        // Dense keys come out ascending; sparse keys are all >= dense.len()
        // by construction, so appending the sorted sparse tail keeps the
        // whole snapshot key-ordered.
        let mut out: Vec<_> = self
            .dense
            .iter()
            .enumerate()
            .filter_map(|(k, slot)| {
                slot.as_ref()
                    .map(|r| (k as Key, r.version, r.value.clone()))
            })
            .collect();
        let head = out.len();
        out.extend(
            self.sparse
                .iter()
                .map(|(&k, r)| (k, r.version, r.value.clone())),
        );
        out[head..].sort_unstable_by_key(|(k, _, _)| *k);
        out
    }

    /// Rebuilds a table from a snapshot. A snapshot covering the contiguous
    /// range `0..n` (the common case: a fully populated partition copy)
    /// rebuilds the dense fast path; anything else lands in the sparse map.
    pub fn from_snapshot(snap: Vec<(Key, u64, Bytes)>) -> Self {
        let contiguous = !snap.is_empty()
            && snap[0].0 == 0
            && snap.last().expect("non-empty").0 == snap.len() as Key - 1;
        if contiguous {
            let mut t = Table {
                dense: Vec::with_capacity(snap.len()),
                dense_rows: snap.len(),
                sparse: FastMap::default(),
                bytes: 0,
            };
            for (_, version, value) in snap {
                t.bytes += value.len() as u64;
                let mut row = Row::new(value);
                row.version = version;
                t.dense.push(Some(row));
            }
            return t;
        }
        let mut t = Table {
            dense: Vec::new(),
            dense_rows: 0,
            sparse: fast_map_with_capacity(snap.len()),
            bytes: 0,
        };
        for (k, version, value) in snap {
            t.bytes += value.len() as u64;
            let mut row = Row::new(value);
            row.version = version;
            t.sparse.insert(k, row);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T1: TxnId = TxnId(1);
    const T2: TxnId = TxnId(2);

    #[test]
    fn read_missing_row_sees_version_zero() {
        let t = Table::new();
        assert_eq!(t.occ_read(7, T1), OpOutcome::Ok { version: 0 });
    }

    #[test]
    fn install_bumps_version_and_unlocks() {
        let mut t = Table::new();
        assert!(t.occ_lock(1, T1).is_ok());
        let v = t.occ_install(1, T1, Bytes::from(vec![9u8; 4]));
        assert_eq!(v, 1);
        assert!(t.get(1).unwrap().lock.is_none());
        assert_eq!(t.occ_read(1, T2), OpOutcome::Ok { version: 1 });
    }

    #[test]
    fn foreign_lock_blocks_reads_and_locks() {
        let mut t = Table::populated(4, 8);
        assert!(t.occ_lock(0, T1).is_ok());
        assert_eq!(t.occ_read(0, T2), OpOutcome::Locked { holder: T1 });
        assert_eq!(t.occ_lock(0, T2), OpOutcome::Locked { holder: T1 });
        // but the holder itself can re-enter
        assert!(t.occ_lock(0, T1).is_ok());
        assert!(t.occ_read(0, T1).is_ok());
    }

    #[test]
    fn validation_detects_concurrent_commit() {
        let mut t = Table::populated(2, 8);
        let OpOutcome::Ok { version } = t.occ_read(0, T1) else {
            panic!()
        };
        // T2 commits a write to key 0 in between.
        assert!(t.occ_lock(0, T2).is_ok());
        t.occ_install(0, T2, Bytes::from(vec![1u8; 8]));
        assert_eq!(
            t.occ_validate_read(0, version, T1),
            OpOutcome::VersionMismatch {
                expected: version,
                found: version + 1
            }
        );
    }

    #[test]
    fn abort_removes_insert_placeholder() {
        let mut t = Table::new();
        assert!(t.occ_lock(5, T1).is_ok());
        t.occ_unlock(5, T1);
        assert!(t.get(5).is_none());
        // but aborting a lock on an existing row keeps the row
        t.upsert(6, Bytes::from(vec![1u8; 2]));
        assert!(t.occ_lock(6, T1).is_ok());
        t.occ_unlock(6, T1);
        assert_eq!(t.get(6).unwrap().version, 1);
    }

    #[test]
    fn abort_removes_dense_insert_placeholder() {
        // An existing dense row survives an aborted lock untouched…
        let mut t = Table::populated(4, 8);
        assert!(t.occ_lock(2, T1).is_ok());
        t.occ_unlock(2, T1);
        assert_eq!(t.len(), 4, "existing dense row survives an aborted lock");
        assert_eq!(t.get(2).unwrap().version, 1);
        // …but a version-0 placeholder inside the dense range is removed.
        // A contiguous snapshot can legitimately carry one (a replica copy
        // taken while an insert was prepare-locked), which rebuilds dense.
        let mut snap = Table::populated(3, 8).snapshot();
        snap.push((3, 0, Bytes::from(&[][..]))); // v0 placeholder at the tail
        let mut copy = Table::from_snapshot(snap);
        assert_eq!(copy.len(), 4);
        assert!(copy.occ_lock(3, T1).is_ok(), "v0 row is lockable");
        copy.occ_unlock(3, T1);
        assert!(copy.get(3).is_none(), "aborted dense placeholder removed");
        assert_eq!(copy.len(), 3, "dense_rows stays in sync with the slots");
        // relocking re-materialises the placeholder through the dense path
        assert!(copy.occ_lock(3, T2).is_ok());
        assert_eq!(copy.len(), 4);
        copy.occ_install(3, T2, Bytes::from(vec![1u8; 8]));
        assert_eq!(copy.get(3).unwrap().version, 1);
    }

    #[test]
    fn insert_validates_against_version_zero() {
        let mut t = Table::new();
        // reader saw "missing" (version 0); insert commits; reader must fail
        assert!(t.occ_lock(3, T2).is_ok());
        t.occ_install(3, T2, Bytes::from(vec![0u8; 1]));
        assert!(matches!(
            t.occ_validate_read(3, 0, T1),
            OpOutcome::VersionMismatch {
                expected: 0,
                found: 1
            }
        ));
    }

    #[test]
    fn replicated_apply_is_idempotent_and_ordered() {
        let mut t = Table::new();
        t.apply_replicated(1, 3, Bytes::from(vec![3u8; 4]));
        t.apply_replicated(1, 2, Bytes::from(vec![2u8; 4])); // stale: ignored
        assert_eq!(t.get(1).unwrap().version, 3);
        assert_eq!(&*t.get(1).unwrap().value, &[3u8; 4]);
        t.apply_replicated(1, 3, Bytes::from(vec![3u8; 4])); // duplicate: fine
        assert_eq!(t.get(1).unwrap().version, 3);
    }

    #[test]
    fn snapshot_roundtrip_preserves_contents() {
        let mut t = Table::populated(16, 32);
        t.occ_lock(3, T1);
        t.occ_install(3, T1, Bytes::from(vec![7u8; 32]));
        let copy = Table::from_snapshot(t.snapshot());
        assert_eq!(copy.len(), t.len());
        assert_eq!(copy.bytes(), t.bytes());
        for k in 0..16 {
            assert_eq!(copy.get(k).unwrap().version, t.get(k).unwrap().version);
            assert_eq!(copy.get(k).unwrap().value, t.get(k).unwrap().value);
        }
    }

    #[test]
    fn mixed_dense_and_sparse_keys_coexist() {
        // TPC-C-style bit-packed keys land in the sparse map beside the
        // dense range; snapshots stay key-ordered across the boundary.
        let mut t = Table::populated(8, 8);
        let packed = (42u64 << 32) | 7;
        t.upsert(packed, Bytes::from(vec![5u8; 8]));
        assert_eq!(t.len(), 9);
        assert!(t.occ_lock(packed, T1).is_ok());
        t.occ_install(packed, T1, Bytes::from(vec![6u8; 8]));
        assert_eq!(t.get(packed).unwrap().version, 2);
        let snap = t.snapshot();
        assert_eq!(snap.len(), 9);
        assert!(snap.windows(2).all(|w| w[0].0 < w[1].0), "key-ordered");
        let copy = Table::from_snapshot(snap);
        assert_eq!(copy.len(), 9);
        assert_eq!(copy.get(packed).unwrap().version, 2);
        // aborting a sparse insert placeholder removes it again
        let other = (99u64 << 32) | 1;
        assert!(t.occ_lock(other, T2).is_ok());
        t.occ_unlock(other, T2);
        assert!(t.get(other).is_none());
        assert_eq!(t.len(), 9);
    }

    #[test]
    fn bytes_tracking_follows_updates() {
        let mut t = Table::new();
        t.upsert(1, Bytes::from(vec![0u8; 10]));
        assert_eq!(t.bytes(), 10);
        t.upsert(1, Bytes::from(vec![0u8; 4]));
        assert_eq!(t.bytes(), 4);
        t.occ_lock(1, T1);
        t.occ_install(1, T1, Bytes::from(vec![0u8; 20]));
        assert_eq!(t.bytes(), 20);
    }

    #[test]
    fn synth_value_is_deterministic() {
        assert_eq!(Table::synth_value(5, 1, 16), Table::synth_value(5, 1, 16));
        assert_ne!(Table::synth_value(5, 1, 16), Table::synth_value(5, 2, 16));
        // the pattern is the 8-byte stamp repeated little-endian
        let v = Table::synth_value(3, 2, 20);
        assert_eq!(v[..8], v[8..16]);
        assert_eq!(v[..4], v[16..20]);
    }
}
