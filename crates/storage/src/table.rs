//! A single partition replica's key→row table with OCC operations.

use crate::row::{Bytes, Row};
use lion_common::{fast_map_with_capacity, FastMap, Key, TxnId};

/// Result of an OCC step against one row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpOutcome {
    /// The step succeeded; for reads, carries the observed version.
    Ok { version: u64 },
    /// The row is prepare-locked by another transaction.
    Locked { holder: TxnId },
    /// A read-set version no longer matches (write committed in between).
    VersionMismatch { expected: u64, found: u64 },
    /// The key does not exist (reads of missing rows observe version 0 and
    /// succeed; this outcome is only used by internal assertions).
    Missing,
}

impl OpOutcome {
    /// True for `Ok`.
    pub fn is_ok(&self) -> bool {
        matches!(self, OpOutcome::Ok { .. })
    }
}

/// Key→row map for one partition replica.
#[derive(Debug, Clone, Default)]
pub struct Table {
    rows: FastMap<Key, Row>,
    /// Payload bytes currently stored (maintained incrementally).
    bytes: u64,
}

impl Table {
    /// Creates an empty table.
    pub fn new() -> Self {
        Table::default()
    }

    /// Creates a table pre-populated with `keys` rows of `value_size` bytes,
    /// each initialised to a key-derived pattern (so that migrated/replicated
    /// copies can be content-checked in tests).
    pub fn populated(keys: u64, value_size: u32) -> Self {
        let mut t = Table {
            rows: fast_map_with_capacity(keys as usize),
            bytes: 0,
        };
        for k in 0..keys {
            t.upsert(k, Self::synth_value(k, 1, value_size));
        }
        t
    }

    /// Deterministic synthetic payload for (key, version).
    pub fn synth_value(key: Key, version: u64, value_size: u32) -> Bytes {
        let mut v = vec![0u8; value_size as usize];
        let stamp = key
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(version);
        for (i, b) in v.iter_mut().enumerate() {
            *b = (stamp >> ((i % 8) * 8)) as u8;
        }
        Bytes::from(v)
    }

    /// The shared empty payload used for insert placeholders (no per-lock
    /// allocation).
    fn empty_value() -> Bytes {
        static EMPTY: std::sync::OnceLock<Bytes> = std::sync::OnceLock::new();
        EMPTY.get_or_init(|| Bytes::from(&[][..])).clone()
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Total payload bytes stored.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Looks up a row.
    pub fn get(&self, key: Key) -> Option<&Row> {
        self.rows.get(&key)
    }

    /// Inserts or replaces a row wholesale (population, migration apply).
    pub fn upsert(&mut self, key: Key, value: Bytes) {
        let add = value.len() as u64;
        match self.rows.insert(key, Row::new(value)) {
            Some(old) => self.bytes = self.bytes - old.value.len() as u64 + add,
            None => self.bytes += add,
        }
    }

    /// OCC read: returns the current version (0 for missing rows, which is
    /// how inserts validate: the version must still be 0 at commit). A row
    /// prepare-locked by another transaction cannot be read consistently.
    pub fn occ_read(&self, key: Key, txn: TxnId) -> OpOutcome {
        match self.rows.get(&key) {
            None => OpOutcome::Ok { version: 0 },
            Some(row) => match row.lock {
                Some(holder) if holder != txn => OpOutcome::Locked { holder },
                _ => OpOutcome::Ok {
                    version: row.version,
                },
            },
        }
    }

    /// OCC prepare-lock for a write key. Missing rows (inserts) are locked by
    /// materialising an empty version-0 row.
    pub fn occ_lock(&mut self, key: Key, txn: TxnId) -> OpOutcome {
        let row = self.rows.entry(key).or_insert_with(|| {
            let mut r = Row::new(Self::empty_value());
            r.version = 0; // insert placeholder: not yet visible
            r
        });
        if !row.lockable_by(txn) {
            return OpOutcome::Locked {
                holder: row.lock.expect("unlockable row must be locked"),
            };
        }
        row.lock = Some(txn);
        OpOutcome::Ok {
            version: row.version,
        }
    }

    /// OCC read-set validation: the observed version must still be current
    /// and the row must not be prepare-locked by another transaction.
    pub fn occ_validate_read(&self, key: Key, observed: u64, txn: TxnId) -> OpOutcome {
        match self.rows.get(&key) {
            None => {
                if observed == 0 {
                    OpOutcome::Ok { version: 0 }
                } else {
                    OpOutcome::VersionMismatch {
                        expected: observed,
                        found: 0,
                    }
                }
            }
            Some(row) => {
                if let Some(holder) = row.lock {
                    if holder != txn {
                        return OpOutcome::Locked { holder };
                    }
                }
                if row.version != observed {
                    OpOutcome::VersionMismatch {
                        expected: observed,
                        found: row.version,
                    }
                } else {
                    OpOutcome::Ok {
                        version: row.version,
                    }
                }
            }
        }
    }

    /// Installs a write: stores the new payload, bumps the version, releases
    /// the lock. Returns the new version. The payload is shared, not copied:
    /// callers keep (an `Arc` clone of) the same allocation for the
    /// replication log.
    pub fn occ_install(&mut self, key: Key, txn: TxnId, value: Bytes) -> u64 {
        let add = value.len() as u64;
        let row = self.rows.entry(key).or_insert_with(|| {
            let mut r = Row::new(Self::empty_value());
            r.version = 0;
            r
        });
        debug_assert!(
            row.lock.is_none() || row.lock == Some(txn),
            "installing over a foreign lock"
        );
        self.bytes = self.bytes - row.value.len() as u64 + add;
        row.value = value;
        row.version += 1;
        row.lock = None;
        row.version
    }

    /// Releases a prepare-lock without installing (abort path). Placeholder
    /// rows created for inserts are removed again.
    pub fn occ_unlock(&mut self, key: Key, txn: TxnId) {
        let remove = match self.rows.get_mut(&key) {
            Some(row) if row.lock == Some(txn) => {
                row.lock = None;
                row.version == 0 // insert placeholder never became visible
            }
            _ => false,
        };
        if remove {
            self.rows.remove(&key);
        }
    }

    /// Applies a replicated write (no locking: replication is ordered).
    /// `value` is an `Arc` clone of the primary's payload — the apply is
    /// zero-copy.
    pub fn apply_replicated(&mut self, key: Key, version: u64, value: Bytes) {
        let add = value.len() as u64;
        let row = self.rows.entry(key).or_insert_with(|| {
            let mut r = Row::new(Self::empty_value());
            r.version = 0;
            r
        });
        // Idempotent, ordered apply: never regress.
        if version >= row.version {
            self.bytes = self.bytes - row.value.len() as u64 + add;
            row.value = value;
            row.version = version;
        }
    }

    /// Snapshot of all rows for migration / replica bootstrap. Payloads are
    /// shared (`Arc` clones), so snapshotting never copies row bytes.
    pub fn snapshot(&self) -> Vec<(Key, u64, Bytes)> {
        let mut out: Vec<_> = self
            .rows
            .iter()
            .map(|(&k, r)| (k, r.version, r.value.clone()))
            .collect();
        out.sort_unstable_by_key(|(k, _, _)| *k);
        out
    }

    /// Rebuilds a table from a snapshot.
    pub fn from_snapshot(snap: Vec<(Key, u64, Bytes)>) -> Self {
        let mut t = Table {
            rows: fast_map_with_capacity(snap.len()),
            bytes: 0,
        };
        for (k, version, value) in snap {
            t.bytes += value.len() as u64;
            let mut row = Row::new(value);
            row.version = version;
            t.rows.insert(k, row);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T1: TxnId = TxnId(1);
    const T2: TxnId = TxnId(2);

    #[test]
    fn read_missing_row_sees_version_zero() {
        let t = Table::new();
        assert_eq!(t.occ_read(7, T1), OpOutcome::Ok { version: 0 });
    }

    #[test]
    fn install_bumps_version_and_unlocks() {
        let mut t = Table::new();
        assert!(t.occ_lock(1, T1).is_ok());
        let v = t.occ_install(1, T1, Bytes::from(vec![9u8; 4]));
        assert_eq!(v, 1);
        assert!(t.get(1).unwrap().lock.is_none());
        assert_eq!(t.occ_read(1, T2), OpOutcome::Ok { version: 1 });
    }

    #[test]
    fn foreign_lock_blocks_reads_and_locks() {
        let mut t = Table::populated(4, 8);
        assert!(t.occ_lock(0, T1).is_ok());
        assert_eq!(t.occ_read(0, T2), OpOutcome::Locked { holder: T1 });
        assert_eq!(t.occ_lock(0, T2), OpOutcome::Locked { holder: T1 });
        // but the holder itself can re-enter
        assert!(t.occ_lock(0, T1).is_ok());
        assert!(t.occ_read(0, T1).is_ok());
    }

    #[test]
    fn validation_detects_concurrent_commit() {
        let mut t = Table::populated(2, 8);
        let OpOutcome::Ok { version } = t.occ_read(0, T1) else {
            panic!()
        };
        // T2 commits a write to key 0 in between.
        assert!(t.occ_lock(0, T2).is_ok());
        t.occ_install(0, T2, Bytes::from(vec![1u8; 8]));
        assert_eq!(
            t.occ_validate_read(0, version, T1),
            OpOutcome::VersionMismatch {
                expected: version,
                found: version + 1
            }
        );
    }

    #[test]
    fn abort_removes_insert_placeholder() {
        let mut t = Table::new();
        assert!(t.occ_lock(5, T1).is_ok());
        t.occ_unlock(5, T1);
        assert!(t.get(5).is_none());
        // but aborting a lock on an existing row keeps the row
        t.upsert(6, Bytes::from(vec![1u8; 2]));
        assert!(t.occ_lock(6, T1).is_ok());
        t.occ_unlock(6, T1);
        assert_eq!(t.get(6).unwrap().version, 1);
    }

    #[test]
    fn insert_validates_against_version_zero() {
        let mut t = Table::new();
        // reader saw "missing" (version 0); insert commits; reader must fail
        assert!(t.occ_lock(3, T2).is_ok());
        t.occ_install(3, T2, Bytes::from(vec![0u8; 1]));
        assert!(matches!(
            t.occ_validate_read(3, 0, T1),
            OpOutcome::VersionMismatch {
                expected: 0,
                found: 1
            }
        ));
    }

    #[test]
    fn replicated_apply_is_idempotent_and_ordered() {
        let mut t = Table::new();
        t.apply_replicated(1, 3, Bytes::from(vec![3u8; 4]));
        t.apply_replicated(1, 2, Bytes::from(vec![2u8; 4])); // stale: ignored
        assert_eq!(t.get(1).unwrap().version, 3);
        assert_eq!(&*t.get(1).unwrap().value, &[3u8; 4]);
        t.apply_replicated(1, 3, Bytes::from(vec![3u8; 4])); // duplicate: fine
        assert_eq!(t.get(1).unwrap().version, 3);
    }

    #[test]
    fn snapshot_roundtrip_preserves_contents() {
        let mut t = Table::populated(16, 32);
        t.occ_lock(3, T1);
        t.occ_install(3, T1, Bytes::from(vec![7u8; 32]));
        let copy = Table::from_snapshot(t.snapshot());
        assert_eq!(copy.len(), t.len());
        assert_eq!(copy.bytes(), t.bytes());
        for k in 0..16 {
            assert_eq!(copy.get(k).unwrap().version, t.get(k).unwrap().version);
            assert_eq!(copy.get(k).unwrap().value, t.get(k).unwrap().value);
        }
    }

    #[test]
    fn bytes_tracking_follows_updates() {
        let mut t = Table::new();
        t.upsert(1, Bytes::from(vec![0u8; 10]));
        assert_eq!(t.bytes(), 10);
        t.upsert(1, Bytes::from(vec![0u8; 4]));
        assert_eq!(t.bytes(), 4);
        t.occ_lock(1, T1);
        t.occ_install(1, T1, Bytes::from(vec![0u8; 20]));
        assert_eq!(t.bytes(), 20);
    }

    #[test]
    fn synth_value_is_deterministic() {
        assert_eq!(Table::synth_value(5, 1, 16), Table::synth_value(5, 1, 16));
        assert_ne!(Table::synth_value(5, 1, 16), Table::synth_value(5, 2, 16));
    }
}
