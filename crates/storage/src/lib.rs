//! # lion-storage
//!
//! The storage substrate of the reproduced cluster (§II-A): in-memory
//! versioned tables with per-row lock words for OCC, a primary-to-secondary
//! replication log with epoch-batched shipping, and partition snapshots for
//! data migration.
//!
//! Each partition replica is a [`ReplicaStore`]; a node hosts one store per
//! replica it holds. Primaries execute reads/writes and append log entries;
//! secondaries apply shipped entries and track their replication lag (which
//! prices remastering: a lagging secondary must sync before taking over).

pub mod log;
pub mod row;
pub mod store;
pub mod table;

pub use log::{LogEntry, ReplicationLog};
pub use row::{Bytes, Row};
pub use store::{ReplicaRole, ReplicaStore};
pub use table::{OpOutcome, Table};
