//! Primary→secondary replication log.
//!
//! Primaries append one [`LogEntry`] per installed write. Entries accumulate
//! in an epoch buffer and are shipped to every secondary when the global
//! epoch advances (the epoch-based group commit of §V, 10 ms default).
//! A secondary's *lag* — how far its applied LSN trails the primary's — is
//! what remastering must sync before the leader hand-off (§III).

use crate::row::Bytes;
use lion_common::{Key, PartitionId};

/// One replicated write.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogEntry {
    /// Log sequence number, dense from 1 per partition.
    pub lsn: u64,
    /// Partition the write belongs to.
    pub partition: PartitionId,
    /// Row key.
    pub key: Key,
    /// Row version after the write.
    pub version: u64,
    /// Payload bytes (shared with the row that installed them).
    pub value: Bytes,
}

impl LogEntry {
    /// Wire size of this entry (payload + fixed header), for network costing.
    pub fn wire_bytes(&self) -> u64 {
        self.value.len() as u64 + 32
    }
}

/// Append-only log kept by a primary replica.
#[derive(Debug, Clone, Default)]
pub struct ReplicationLog {
    next_lsn: u64,
    /// Entries appended since the last epoch flush.
    buffer: Vec<LogEntry>,
    /// Highest LSN whose transaction has been *acked* to a client. In
    /// ack-at-commit mode this tracks the head; under epoch group commit it
    /// only advances when an epoch turns durable — so it can never pass
    /// [`ReplicationLog::shipped_lsn`], which is exactly the
    /// no-acked-commit-lost invariant the crash audit checks.
    acked_lsn: u64,
}

impl ReplicationLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        ReplicationLog {
            next_lsn: 0,
            buffer: Vec::new(),
            acked_lsn: 0,
        }
    }

    /// Highest LSN appended so far.
    pub fn head_lsn(&self) -> u64 {
        self.next_lsn
    }

    /// Durable frontier: the highest LSN already drained for shipment to
    /// the secondaries (entries below it left this node). Everything in
    /// `(shipped_lsn, head_lsn]` still lives only in the epoch buffer.
    pub fn shipped_lsn(&self) -> u64 {
        self.next_lsn - self.buffer.len() as u64
    }

    /// Ack frontier (see the field docs).
    pub fn acked_lsn(&self) -> u64 {
        self.acked_lsn
    }

    /// Advances the ack frontier (monotonic; clamped to the head).
    pub fn mark_acked(&mut self, lsn: u64) {
        self.acked_lsn = self.acked_lsn.max(lsn.min(self.next_lsn));
    }

    /// Entries acked to clients but not yet shipped off this node: the
    /// writes a crash of this node would *lose after acking* in a real
    /// deployment. Zero by construction under epoch group commit.
    pub fn acked_unshipped(&self) -> u64 {
        self.acked_lsn.saturating_sub(self.shipped_lsn())
    }

    /// Appends a write, returning its LSN.
    pub fn append(&mut self, partition: PartitionId, key: Key, version: u64, value: Bytes) -> u64 {
        self.next_lsn += 1;
        self.buffer.push(LogEntry {
            lsn: self.next_lsn,
            partition,
            key,
            version,
            value,
        });
        self.next_lsn
    }

    /// Entries pending shipment in the current epoch.
    pub fn pending(&self) -> &[LogEntry] {
        &self.buffer
    }

    /// Total wire bytes pending.
    pub fn pending_bytes(&self) -> u64 {
        self.buffer.iter().map(|e| e.wire_bytes()).sum()
    }

    /// Drains the epoch buffer for shipping.
    pub fn take_pending(&mut self) -> Vec<LogEntry> {
        std::mem::take(&mut self.buffer)
    }

    /// Resets the log to continue from an adopted state (new primary after
    /// remastering adopts the old primary's head LSN).
    pub fn adopt_head(&mut self, lsn: u64) {
        debug_assert!(self.buffer.is_empty(), "adopting with unshipped entries");
        self.next_lsn = lsn;
        self.acked_lsn = self.acked_lsn.min(lsn);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lsns_are_dense_from_one() {
        let mut log = ReplicationLog::new();
        assert_eq!(
            log.append(PartitionId(0), 1, 2, Bytes::from(vec![0u8; 4])),
            1
        );
        assert_eq!(
            log.append(PartitionId(0), 2, 2, Bytes::from(vec![0u8; 4])),
            2
        );
        assert_eq!(log.head_lsn(), 2);
    }

    #[test]
    fn take_pending_drains_buffer() {
        let mut log = ReplicationLog::new();
        log.append(PartitionId(1), 1, 1, Bytes::from(vec![0u8; 8]));
        log.append(PartitionId(1), 2, 1, Bytes::from(vec![0u8; 8]));
        assert_eq!(log.pending().len(), 2);
        assert_eq!(log.pending_bytes(), 2 * (8 + 32));
        let shipped = log.take_pending();
        assert_eq!(shipped.len(), 2);
        assert!(log.pending().is_empty());
        assert_eq!(log.head_lsn(), 2, "head survives the drain");
    }

    #[test]
    fn adopt_head_continues_sequence() {
        let mut log = ReplicationLog::new();
        log.adopt_head(41);
        assert_eq!(log.append(PartitionId(0), 9, 5, Bytes::from(vec![])), 42);
    }

    #[test]
    fn frontiers_track_ship_and_ack() {
        let mut log = ReplicationLog::new();
        log.append(PartitionId(0), 1, 1, Bytes::from(vec![0u8; 4]));
        log.append(PartitionId(0), 2, 1, Bytes::from(vec![0u8; 4]));
        assert_eq!(log.shipped_lsn(), 0, "both entries still buffered");
        // ack-at-commit: everything committed is acked immediately
        log.mark_acked(2);
        assert_eq!(log.acked_unshipped(), 2, "acked writes only on this node");
        let _ = log.take_pending();
        assert_eq!(log.shipped_lsn(), 2);
        assert_eq!(log.acked_unshipped(), 0);
        // the ack frontier is monotonic and clamped to the head
        log.mark_acked(1);
        assert_eq!(log.acked_lsn(), 2);
        log.mark_acked(99);
        assert_eq!(log.acked_lsn(), 2);
    }

    #[test]
    fn wire_bytes_include_header() {
        let e = LogEntry {
            lsn: 1,
            partition: PartitionId(0),
            key: 0,
            version: 1,
            value: Bytes::from(vec![0u8; 100]),
        };
        assert_eq!(e.wire_bytes(), 132);
    }
}
