//! Run summaries: the numbers the experiment harness prints per figure.

use crate::engine::Engine;
use lion_common::{Phase, Time};
use lion_obs::json::{arr, esc, num};
use lion_obs::DimRollup;

/// Aggregated results of one simulated run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Protocol legend name.
    pub protocol: String,
    /// Simulated duration (µs).
    pub duration_us: Time,
    /// Committed transactions.
    pub commits: u64,
    /// Aborted attempts.
    pub aborts: u64,
    /// Throughput in transactions/second.
    pub throughput_tps: f64,
    /// Mean commit latency (µs).
    pub mean_latency_us: f64,
    /// p10/p50/p95/p99 commit latency (µs).
    pub latency_p: [Time; 4],
    /// Fraction of commits per §III class: single-node / remastered /
    /// distributed.
    pub class_fractions: [f64; 3],
    /// Per-phase normalized runtime (Fig. 14b).
    pub phase_fractions: [f64; 5],
    /// Total network bytes over commits (Fig. 12b aggregate).
    pub bytes_per_txn: f64,
    /// Remasters / migrations / replica adds performed.
    pub remasters: u64,
    /// Completed migrations.
    pub migrations: u64,
    /// Completed background replica additions.
    pub replica_adds: u64,
    /// Abort rate over attempts.
    pub abort_rate: f64,
    /// Commits per second, per 1 s bucket (timeline figures).
    pub throughput_series: Vec<f64>,
    /// Network bytes per committed transaction, per 1 s bucket (Fig. 12b).
    pub bytes_per_txn_series: Vec<f64>,
    /// Injected node crashes.
    pub crashes: u64,
    /// Correlated zone-loss events. Deterministic, but excluded from
    /// [`RunReport::digest`] because the golden values predate this field
    /// (and it is zero on every zone-free configuration anyway).
    pub zone_crashes: u64,
    /// Partitions that stalled with no live promotable replica (see
    /// [`crate::metrics::Metrics::stalled_partitions`]). Excluded from
    /// [`RunReport::digest`] like `zone_crashes`.
    pub stalled_partitions: u64,
    /// Completed failover promotions.
    pub failovers: u64,
    /// In-flight transactions aborted by node failures.
    pub fault_aborts: u64,
    /// Prepare-log entries replayed to survivors during failovers.
    pub replayed_entries: u64,
    /// Mean per-partition recovery latency (crash → serving again), µs.
    pub mean_recovery_latency_us: f64,
    /// Worst per-partition recovery latency, µs.
    pub max_recovery_latency_us: Time,
    /// Total partition-unavailability time (open windows clipped at the
    /// horizon), µs.
    pub unavailability_us: u128,
    /// Number of partition unavailability windows.
    pub unavailability_windows: usize,
    /// Commits per second at 100 ms resolution (goodput dip/ramp analysis).
    pub goodput_series: Vec<f64>,
    /// Events processed by the engine (the perf harness's work unit).
    /// Deterministic, but excluded from [`RunReport::digest`] because the
    /// golden values predate this field.
    pub events: u64,
    /// Client-visible acks released. Like the other durability fields
    /// below, deterministic but excluded from [`RunReport::digest`]: the
    /// goldens predate the subsystem, and in ack-at-commit mode these
    /// merely mirror the commit-side numbers.
    pub acked: u64,
    /// Mean client-visible ack latency (µs): submission → ack. Equals
    /// `mean_latency_us` in ack-at-commit mode; under epoch group commit
    /// it adds epoch residency + replication transit.
    pub mean_ack_latency_us: f64,
    /// p50/p95/p99 ack latency (µs).
    pub ack_latency_p: [Time; 3],
    /// Commit epochs sealed.
    pub epochs_sealed: u64,
    /// Commit epochs voided by crashes before turning durable.
    pub epochs_aborted: u64,
    /// Parked acks retried because their epoch aborted (never lost: they
    /// were never released).
    pub epoch_retried_acks: u64,
    /// Acked-but-never-replicated log entries on crashed primaries — the
    /// durability hole. Must be zero under epoch group commit.
    pub acked_then_lost: u64,
    /// Split-brain windows opened. Like every split-brain field below,
    /// deterministic but excluded from [`RunReport::digest`]: the goldens
    /// predate honest partitions, and the fields are zero unless a plan
    /// opts into `split_brain`.
    pub partitions_begun: u64,
    /// Split-brain windows healed.
    pub partitions_healed: u64,
    /// Commit acks quorum-fenced during split-brain windows (parked outside
    /// epochs until heal reconciliation).
    pub fenced_acks: u64,
    /// Epoch boundaries spanned by divergent timelines aborted at heal.
    pub divergent_epochs_aborted: u64,
    /// Commits executed on the minority (non-quorum) side of a split.
    pub minority_commits: u64,
    /// Minority-side commits per second at 100 ms resolution (the
    /// availability both-sides-live buys during a split).
    pub minority_goodput_series: Vec<f64>,
    /// Theoretical minimum commit RTT this topology allows (see
    /// [`lion_common::SimConfig::commit_floor_us`]). Pure configuration —
    /// excluded from [`RunReport::digest`] like every field below.
    pub latency_floor_us: Time,
    /// Commit p50 as a multiple of [`RunReport::latency_floor_us`]: the
    /// scheduling-quality number that survives topology changes. Zero when
    /// the floor is zero (single-node cluster) or nothing committed.
    pub p50_floor_x: f64,
    /// Per-node goodput/bytes/latency rollups (empty under
    /// [`lion_obs::ObsMode::Run`]/`Null`, where the dimensioned sink is off).
    pub node_rollups: Vec<DimRollup>,
    /// Per-zone rollups (same gating).
    pub zone_rollups: Vec<DimRollup>,
    /// Bucket width of [`RunReport::throughput_series`] and
    /// [`RunReport::bytes_per_txn_series`] — 1 s until ring decimation
    /// widens it on very long runs.
    pub series_bucket_us: Time,
    /// Bucket width of [`RunReport::goodput_series`] — 100 ms until ring
    /// decimation widens it.
    pub goodput_bucket_us: Time,
}

impl RunReport {
    /// Builds the report from the engine state after a run.
    pub fn build(protocol: &str, eng: &Engine, duration_us: Time) -> Self {
        let m = &eng.metrics;
        let secs = (duration_us as f64 / 1_000_000.0).max(1e-9);
        let commits = m.commits;
        let class_total = (m.single_node + m.remastered + m.distributed).max(1) as f64;
        let throughput_series = m.commits_series.rates_per_sec();
        let bytes_per_txn_series = m.bytes_series.ratio(&m.commits_series);
        let latency_floor_us = eng.config().sim.commit_floor_us();
        let p50 = m.latency.quantile(0.50);
        let p50_floor_x = if latency_floor_us > 0 && commits > 0 {
            p50 as f64 / latency_floor_us as f64
        } else {
            0.0
        };
        RunReport {
            protocol: protocol.to_string(),
            duration_us,
            commits,
            aborts: m.aborts,
            throughput_tps: commits as f64 / secs,
            mean_latency_us: m.latency.mean(),
            latency_p: [
                m.latency.quantile(0.10),
                m.latency.quantile(0.50),
                m.latency.quantile(0.95),
                m.latency.quantile(0.99),
            ],
            class_fractions: [
                m.single_node as f64 / class_total,
                m.remastered as f64 / class_total,
                m.distributed as f64 / class_total,
            ],
            phase_fractions: m.phase_fractions(),
            bytes_per_txn: m.bytes_per_txn(),
            remasters: m.remasters,
            migrations: m.migrations,
            replica_adds: m.replica_adds,
            abort_rate: m.abort_rate(),
            throughput_series,
            bytes_per_txn_series,
            crashes: m.crashes,
            zone_crashes: m.zone_crashes,
            stalled_partitions: m.stalled_partitions,
            failovers: m.failovers,
            fault_aborts: m.fault_aborts,
            replayed_entries: m.replayed_entries,
            mean_recovery_latency_us: m.recovery_latency.mean(),
            max_recovery_latency_us: m.recovery_latency.max(),
            unavailability_us: m.unavailability_us(duration_us),
            unavailability_windows: m.unavailability.len(),
            goodput_series: m.goodput_series.rates_per_sec(),
            events: eng.events(),
            acked: m.acked,
            mean_ack_latency_us: m.ack_latency.mean(),
            ack_latency_p: [
                m.ack_latency.quantile(0.50),
                m.ack_latency.quantile(0.95),
                m.ack_latency.quantile(0.99),
            ],
            epochs_sealed: m.epochs_sealed,
            epochs_aborted: m.epochs_aborted,
            epoch_retried_acks: m.epoch_retried_acks,
            acked_then_lost: m.acked_then_lost,
            partitions_begun: m.partitions_begun,
            partitions_healed: m.partitions_healed,
            fenced_acks: m.fenced_acks,
            divergent_epochs_aborted: m.divergent_epochs_aborted,
            minority_commits: m.minority_commits,
            minority_goodput_series: m.minority_goodput_series.rates_per_sec(),
            latency_floor_us,
            p50_floor_x,
            node_rollups: eng.obs.dims.node_rollups(duration_us),
            zone_rollups: eng.obs.dims.zone_rollups(duration_us),
            series_bucket_us: m.commits_series.bucket_us(),
            goodput_bucket_us: m.goodput_series.bucket_us(),
        }
    }

    /// Stable 64-bit digest of the whole report (FNV-1a over a canonical
    /// byte serialization; floats are hashed by bit pattern so *any*
    /// numeric drift changes the digest). Same seed ⇒ same digest is the
    /// determinism contract the hot-path optimizations must preserve; the
    /// golden values in `tests/determinism_digest.rs` were captured before
    /// the FxHash/slab/zero-copy swaps and pin that behavior.
    pub fn digest(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        struct Fnv(u64);
        impl Fnv {
            fn bytes(&mut self, b: &[u8]) {
                for &x in b {
                    self.0 = (self.0 ^ x as u64).wrapping_mul(FNV_PRIME);
                }
            }
            fn u64(&mut self, v: u64) {
                self.bytes(&v.to_le_bytes());
            }
            fn u128(&mut self, v: u128) {
                self.bytes(&v.to_le_bytes());
            }
            fn f64(&mut self, v: f64) {
                self.u64(v.to_bits());
            }
        }
        let mut h = Fnv(FNV_OFFSET);
        h.bytes(self.protocol.as_bytes());
        h.u64(self.duration_us);
        h.u64(self.commits);
        h.u64(self.aborts);
        h.f64(self.throughput_tps);
        h.f64(self.mean_latency_us);
        for &p in &self.latency_p {
            h.u64(p);
        }
        for &f in &self.class_fractions {
            h.f64(f);
        }
        for &f in &self.phase_fractions {
            h.f64(f);
        }
        h.f64(self.bytes_per_txn);
        h.u64(self.remasters);
        h.u64(self.migrations);
        h.u64(self.replica_adds);
        h.f64(self.abort_rate);
        for &v in &self.throughput_series {
            h.f64(v);
        }
        for &v in &self.bytes_per_txn_series {
            h.f64(v);
        }
        h.u64(self.crashes);
        h.u64(self.failovers);
        h.u64(self.fault_aborts);
        h.u64(self.replayed_entries);
        h.f64(self.mean_recovery_latency_us);
        h.u64(self.max_recovery_latency_us);
        h.u128(self.unavailability_us);
        h.u64(self.unavailability_windows as u64);
        for &v in &self.goodput_series {
            h.f64(v);
        }
        h.0
    }

    /// One-line summary for harness tables. The latency columns are
    /// *commit-time* percentiles; client-visible ack latency (which differs
    /// under epoch group commit) is reported by [`RunReport::ack_row`] and
    /// [`RunReport::failover_row`]. The trailing column quotes p50 as a
    /// multiple of the topology's theoretical commit floor — how close the
    /// protocol runs to the physics of its network.
    pub fn summary_row(&self) -> String {
        format!(
            "{:<10} {:>10.0} tps  commit_p50={:>6}us commit_p95={:>7}us  single={:>5.1}% remaster={:>5.1}% dist={:>5.1}%  abort={:>5.2}%  bytes/txn={:>6.0}  p50/floor={:>5.1}x",
            self.protocol,
            self.throughput_tps,
            self.latency_p[1],
            self.latency_p[2],
            self.class_fractions[0] * 100.0,
            self.class_fractions[1] * 100.0,
            self.class_fractions[2] * 100.0,
            self.abort_rate * 100.0,
            self.bytes_per_txn,
            self.p50_floor_x,
        )
    }

    /// One-line availability/recovery summary (Fig. F1 rows), surfacing
    /// both latency histograms: commit-time p50 and client-visible ack p50.
    /// Empty stats read as zeros for runs without a fault plan.
    pub fn failover_row(&self) -> String {
        format!(
            "{:<10} crashes={} failovers={} stalled={} fault_aborts={:>4} replayed={:>4}  commit_p50={:>6}us ack_p50={:>6}us acked_then_lost={}  recovery: mean={:>7.0}us max={:>7}us  unavail={:>8}us over {} windows",
            self.protocol,
            self.crashes,
            self.failovers,
            self.stalled_partitions,
            self.fault_aborts,
            self.replayed_entries,
            self.latency_p[1],
            self.ack_latency_p[0],
            self.acked_then_lost,
            self.mean_recovery_latency_us,
            self.max_recovery_latency_us,
            self.unavailability_us,
            self.unavailability_windows,
        )
    }

    /// One-line durability/ack summary (Fig. E rows): both histograms side
    /// by side plus the epoch-commit accounting.
    pub fn ack_row(&self) -> String {
        format!(
            "{:<10} acked={:>7}  commit: mean={:>7.0}us p50={:>6}us  ack: mean={:>7.0}us p50={:>6}us p95={:>7}us  epochs sealed={} aborted={} retried_acks={} acked_then_lost={}",
            self.protocol,
            self.acked,
            self.mean_latency_us,
            self.latency_p[1],
            self.mean_ack_latency_us,
            self.ack_latency_p[0],
            self.ack_latency_p[1],
            self.epochs_sealed,
            self.epochs_aborted,
            self.epoch_retried_acks,
            self.acked_then_lost,
        )
    }

    /// Time from `after` until sustained goodput first reaches `frac` of the
    /// pre-fault baseline (mean goodput over `[0, baseline_until)`), in µs.
    /// `None` when the run never recovers to that level.
    pub fn recovery_ramp_us(&self, baseline_until: Time, after: Time, frac: f64) -> Option<Time> {
        // The report's own bucket width, not the configured constant: ring
        // decimation may have widened the buckets on a very long run.
        let bucket = self.goodput_bucket_us;
        let base_buckets = (baseline_until / bucket).max(1) as usize;
        let baseline: f64 =
            self.goodput_series.iter().take(base_buckets).sum::<f64>() / base_buckets as f64;
        if baseline <= 0.0 {
            return Some(0);
        }
        let target = baseline * frac;
        let start = (after / bucket) as usize;
        self.goodput_series
            .iter()
            .enumerate()
            .skip(start)
            .find(|(_, &v)| v >= target)
            .map(|(i, _)| (i as Time * bucket).saturating_sub(after))
    }

    /// The whole report as one line of JSON — the machine-readable artifact
    /// behind `lion-bench --export`. Every scalar, series, and rollup is
    /// included, plus the digest (as hex, so a consumer can cross-check a
    /// run against the pinned goldens without recomputing anything).
    /// Non-finite floats export as `null`; see [`lion_obs::json`].
    pub fn to_json(&self) -> String {
        fn rollups(rows: &[DimRollup]) -> String {
            arr(rows.iter().map(|r| {
                format!(
                    "{{\"label\":\"{}\",\"commits\":{},\"aborts\":{},\"bytes\":{},\"goodput_tps\":{},\"mean_latency_us\":{},\"p50_us\":{},\"p95_us\":{}}}",
                    esc(&r.label),
                    r.commits,
                    r.aborts,
                    r.bytes,
                    num(r.goodput_tps),
                    num(r.mean_latency_us),
                    r.p50_us,
                    r.p95_us,
                )
            }))
        }
        let mut s = String::with_capacity(1024);
        s.push('{');
        s.push_str(&format!("\"protocol\":\"{}\"", esc(&self.protocol)));
        s.push_str(&format!(",\"digest\":\"{:#018x}\"", self.digest()));
        s.push_str(&format!(",\"duration_us\":{}", self.duration_us));
        s.push_str(&format!(",\"commits\":{}", self.commits));
        s.push_str(&format!(",\"aborts\":{}", self.aborts));
        s.push_str(&format!(",\"throughput_tps\":{}", num(self.throughput_tps)));
        s.push_str(&format!(
            ",\"mean_latency_us\":{}",
            num(self.mean_latency_us)
        ));
        s.push_str(&format!(
            ",\"latency_p\":{}",
            arr(self.latency_p.iter().map(|p| p.to_string()))
        ));
        s.push_str(&format!(",\"latency_floor_us\":{}", self.latency_floor_us));
        s.push_str(&format!(",\"p50_floor_x\":{}", num(self.p50_floor_x)));
        s.push_str(&format!(
            ",\"class_fractions\":{}",
            arr(self.class_fractions.iter().map(|&f| num(f)))
        ));
        s.push_str(&format!(
            ",\"phase_fractions\":{}",
            arr(self.phase_fractions.iter().map(|&f| num(f)))
        ));
        s.push_str(&format!(",\"bytes_per_txn\":{}", num(self.bytes_per_txn)));
        s.push_str(&format!(",\"remasters\":{}", self.remasters));
        s.push_str(&format!(",\"migrations\":{}", self.migrations));
        s.push_str(&format!(",\"replica_adds\":{}", self.replica_adds));
        s.push_str(&format!(",\"abort_rate\":{}", num(self.abort_rate)));
        s.push_str(&format!(",\"crashes\":{}", self.crashes));
        s.push_str(&format!(",\"zone_crashes\":{}", self.zone_crashes));
        s.push_str(&format!(
            ",\"stalled_partitions\":{}",
            self.stalled_partitions
        ));
        s.push_str(&format!(",\"failovers\":{}", self.failovers));
        s.push_str(&format!(",\"fault_aborts\":{}", self.fault_aborts));
        s.push_str(&format!(",\"replayed_entries\":{}", self.replayed_entries));
        s.push_str(&format!(
            ",\"mean_recovery_latency_us\":{}",
            num(self.mean_recovery_latency_us)
        ));
        s.push_str(&format!(
            ",\"max_recovery_latency_us\":{}",
            self.max_recovery_latency_us
        ));
        s.push_str(&format!(
            ",\"unavailability_us\":{}",
            self.unavailability_us
        ));
        s.push_str(&format!(
            ",\"unavailability_windows\":{}",
            self.unavailability_windows
        ));
        s.push_str(&format!(",\"events\":{}", self.events));
        s.push_str(&format!(",\"acked\":{}", self.acked));
        s.push_str(&format!(
            ",\"mean_ack_latency_us\":{}",
            num(self.mean_ack_latency_us)
        ));
        s.push_str(&format!(
            ",\"ack_latency_p\":{}",
            arr(self.ack_latency_p.iter().map(|p| p.to_string()))
        ));
        s.push_str(&format!(",\"epochs_sealed\":{}", self.epochs_sealed));
        s.push_str(&format!(",\"epochs_aborted\":{}", self.epochs_aborted));
        s.push_str(&format!(
            ",\"epoch_retried_acks\":{}",
            self.epoch_retried_acks
        ));
        s.push_str(&format!(",\"acked_then_lost\":{}", self.acked_then_lost));
        s.push_str(&format!(",\"partitions_begun\":{}", self.partitions_begun));
        s.push_str(&format!(
            ",\"partitions_healed\":{}",
            self.partitions_healed
        ));
        s.push_str(&format!(",\"fenced_acks\":{}", self.fenced_acks));
        s.push_str(&format!(
            ",\"divergent_epochs_aborted\":{}",
            self.divergent_epochs_aborted
        ));
        s.push_str(&format!(",\"minority_commits\":{}", self.minority_commits));
        s.push_str(&format!(",\"series_bucket_us\":{}", self.series_bucket_us));
        s.push_str(&format!(
            ",\"goodput_bucket_us\":{}",
            self.goodput_bucket_us
        ));
        s.push_str(&format!(
            ",\"throughput_series\":{}",
            arr(self.throughput_series.iter().map(|&v| num(v)))
        ));
        s.push_str(&format!(
            ",\"bytes_per_txn_series\":{}",
            arr(self.bytes_per_txn_series.iter().map(|&v| num(v)))
        ));
        s.push_str(&format!(
            ",\"goodput_series\":{}",
            arr(self.goodput_series.iter().map(|&v| num(v)))
        ));
        s.push_str(&format!(
            ",\"minority_goodput_series\":{}",
            arr(self.minority_goodput_series.iter().map(|&v| num(v)))
        ));
        s.push_str(&format!(
            ",\"node_rollups\":{}",
            rollups(&self.node_rollups)
        ));
        s.push_str(&format!(
            ",\"zone_rollups\":{}",
            rollups(&self.zone_rollups)
        ));
        s.push('}');
        s
    }

    /// Phase breakdown as labeled percentages (Fig. 14b row).
    pub fn phase_row(&self) -> String {
        let mut s = format!("{:<10}", self.protocol);
        for ph in Phase::ALL {
            s.push_str(&format!(
                " {}={:.1}%",
                ph.label(),
                self.phase_fractions[ph.idx()] * 100.0
            ));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lion_common::{Op, PartitionId, SimConfig, TxnRequest, Workload};

    fn workload() -> Box<dyn Workload> {
        Box::new(|_now| TxnRequest::new(vec![Op::read(PartitionId(0), 1)]))
    }

    #[test]
    fn report_from_fresh_engine_is_zeroed() {
        let cfg = SimConfig {
            nodes: 2,
            partitions_per_node: 1,
            keys_per_partition: 8,
            ..Default::default()
        };
        let eng = Engine::new(cfg, workload());
        let r = RunReport::build("x", &eng, 1_000_000);
        assert_eq!(r.commits, 0);
        assert_eq!(r.throughput_tps, 0.0);
        assert_eq!(r.bytes_per_txn, 0.0);
        assert!(!r.summary_row().is_empty());
        assert!(r.phase_row().contains("execution"));
        // The floor is pure topology: present even on an idle run.
        assert!(r.latency_floor_us > 0);
        assert_eq!(r.p50_floor_x, 0.0);
    }

    #[test]
    fn report_json_parses_and_round_trips_key_fields() {
        let cfg = SimConfig {
            nodes: 2,
            partitions_per_node: 1,
            keys_per_partition: 8,
            ..Default::default()
        };
        let eng = Engine::new(cfg, workload());
        let mut r = RunReport::build("lion \"std\"", &eng, 1_000_000);
        r.commits = 42;
        r.throughput_tps = 123.5;
        r.node_rollups.push(DimRollup {
            label: "N0".into(),
            commits: 42,
            aborts: 1,
            bytes: 640,
            goodput_tps: 42.0,
            mean_latency_us: f64::NAN, // must export as null, not break parsing
            p50_us: 100,
            p95_us: 300,
        });
        let doc = lion_obs::json::parse(&r.to_json()).expect("export must be valid JSON");
        assert_eq!(doc.get("protocol").unwrap().as_str(), Some("lion \"std\""));
        assert_eq!(doc.get("commits").unwrap().as_num(), Some(42.0));
        assert_eq!(doc.get("throughput_tps").unwrap().as_num(), Some(123.5));
        assert_eq!(
            doc.get("latency_floor_us").unwrap().as_num(),
            Some(r.latency_floor_us as f64)
        );
        let rollup = &doc.get("node_rollups").unwrap().as_arr().unwrap()[0];
        assert_eq!(rollup.get("label").unwrap().as_str(), Some("N0"));
        assert_eq!(rollup.get("bytes").unwrap().as_num(), Some(640.0));
        assert_eq!(
            rollup.get("mean_latency_us"),
            Some(&lion_obs::json::JsonValue::Null)
        );
        // The digest rides along as hex for cross-checking against goldens.
        let digest = doc.get("digest").unwrap().as_str().unwrap().to_string();
        assert_eq!(digest, format!("{:#018x}", r.digest()));
    }
}
