//! Run metrics, re-exported from `lion-obs`.
//!
//! The aggregate [`Metrics`] struct, its window/failover record types, and
//! the series bucket widths moved to the observability crate when the
//! engine's inline field pokes became typed [`lion_obs::MetricEvent`]s —
//! the struct is now the *run sink* of that pipeline. This module keeps
//! the `lion_engine::metrics::*` paths (and the engine's own
//! `crate::metrics::*` uses) stable across the move.

pub use lion_obs::run::{
    FailoverRecord, Metrics, UnavailWindow, GOODPUT_BUCKET_US, SERIES_BUCKET_US,
};
