//! Run metrics: counters, latency histogram, per-phase totals, time series,
//! and the availability bookkeeping behind the fault-injection figures.

use lion_common::{FastMap, NodeId, PartitionId, Phase, Time};
use lion_sim::{Histogram, TimeSeries};

/// Time-series bucket width (1 simulated second), matching the granularity
/// of the paper's timeline figures.
pub const SERIES_BUCKET_US: Time = 1_000_000;

/// Fine-grained goodput bucket width (100 ms): resolves the dip and ramp
/// around a node failure, which 1 s buckets blur.
pub const GOODPUT_BUCKET_US: Time = 100_000;

/// One completed (or still open) window during which a partition could not
/// serve operations because its primary was dead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnavailWindow {
    /// The partition.
    pub part: PartitionId,
    /// When the primary died.
    pub from: Time,
    /// When the partition was serving again (`None` while still open).
    pub until: Option<Time>,
}

/// One completed failover promotion, for the replication-log replay checks
/// and the recovery analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FailoverRecord {
    /// The partition that failed over.
    pub part: PartitionId,
    /// Dead node that held the primary.
    pub from: NodeId,
    /// Surviving node promoted to primary.
    pub to: NodeId,
    /// The dead primary's log head at the crash (durability frontier).
    pub dead_head: u64,
    /// The head the new primary adopted. Equal to `dead_head` when no
    /// committed write was lost.
    pub promoted_head: u64,
    /// Replication lag (entries) the promotion had to sync.
    pub lag: u64,
    /// Crash time.
    pub crashed_at: Time,
    /// Promotion completion time.
    pub completed_at: Time,
}

/// All metrics collected during a run.
#[derive(Debug, Clone)]
pub struct Metrics {
    /// Committed transactions.
    pub commits: u64,
    /// Aborted attempts (each retry re-counts).
    pub aborts: u64,
    /// Transactions that committed on a single node without remastering.
    pub single_node: u64,
    /// Transactions converted to single-node via remastering.
    pub remastered: u64,
    /// Transactions executed as distributed 2PC.
    pub distributed: u64,
    /// Completed remaster operations.
    pub remasters: u64,
    /// Remaster requests rejected because another was in flight (§III
    /// remastering conflicts).
    pub remaster_conflicts: u64,
    /// Completed background replica additions.
    pub replica_adds: u64,
    /// Secondary replicas evicted by the replica cap.
    pub replica_evictions: u64,
    /// Completed blocking migrations.
    pub migrations: u64,
    /// Total message bytes (requests, acks, prepare/commit rounds).
    pub msg_bytes: u64,
    /// Replication bytes (epoch flushes + remaster lag sync).
    pub replication_bytes: u64,
    /// Migration / replica-copy bytes.
    pub migration_bytes: u64,
    /// Commit-latency histogram (µs).
    pub latency: Histogram,
    /// Per-phase accumulated µs across committed and aborted work.
    pub phase_us: [u128; 5],
    /// Commits per second.
    pub commits_series: TimeSeries,
    /// Network bytes per second (all classes combined).
    pub bytes_series: TimeSeries,
    /// Remasters per second.
    pub remaster_series: TimeSeries,
    /// Migrations per second.
    pub migration_series: TimeSeries,
    /// Injected node crashes (including partition isolations).
    pub crashes: u64,
    /// Correlated zone-loss events (each also counts its members under
    /// [`Metrics::crashes`]).
    pub zone_crashes: u64,
    /// Partitions that entered a stall — primary dead with *no* live
    /// promotable replica — and could only resume when a node came back.
    /// Zero under rack-safe placement during a single-zone loss; the
    /// headline availability metric of figf2.
    pub stalled_partitions: u64,
    /// Node restarts (including partition heals).
    pub node_recoveries: u64,
    /// Completed failover promotions.
    pub failovers: u64,
    /// In-flight transactions aborted because a node they touched died.
    pub fault_aborts: u64,
    /// Prepare-log entries replayed to survivors during failover.
    pub replayed_entries: u64,
    /// Per-partition crash→available recovery latency (µs).
    pub recovery_latency: Histogram,
    /// Per-partition unavailability windows, in crash order.
    pub unavailability: Vec<UnavailWindow>,
    /// Completed failovers with their log-continuity evidence.
    pub failover_log: Vec<FailoverRecord>,
    /// Commits per 100 ms bucket (goodput dip/ramp around failures).
    pub goodput_series: TimeSeries,
    /// Client-visible acks released. Equals `commits` in ack-at-commit
    /// mode; under epoch group commit it trails by the parked epochs (and
    /// by crash-retried acks).
    pub acked: u64,
    /// Client-visible ack latency (µs): submission → ack release. In
    /// ack-at-commit mode this mirrors [`Metrics::latency`]; under epoch
    /// group commit it adds the epoch residency + replication transit —
    /// the latency a client actually observes.
    pub ack_latency: Histogram,
    /// Commit epochs sealed (non-empty seal ticks).
    pub epochs_sealed: u64,
    /// Commit epochs voided by node crashes before turning durable.
    pub epochs_aborted: u64,
    /// Parked transactions whose epoch aborted: never acked, retried by
    /// their clients (the committed result is re-observed — not lost work).
    pub epoch_retried_acks: u64,
    /// No-acked-commit-lost audit: log entries a crashed primary had acked
    /// to clients but never shipped to any secondary. Non-zero quantifies
    /// the ack-at-commit durability hole; epoch group commit must keep it
    /// at zero.
    pub acked_then_lost: u64,
    /// Open unavailability windows keyed by partition index.
    unavail_open: FastMap<u32, Time>,
}

impl Default for Metrics {
    fn default() -> Self {
        Self::new()
    }
}

impl Metrics {
    /// Creates empty metrics.
    pub fn new() -> Self {
        Metrics {
            commits: 0,
            aborts: 0,
            single_node: 0,
            remastered: 0,
            distributed: 0,
            remasters: 0,
            remaster_conflicts: 0,
            replica_adds: 0,
            replica_evictions: 0,
            migrations: 0,
            msg_bytes: 0,
            replication_bytes: 0,
            migration_bytes: 0,
            latency: Histogram::new(),
            phase_us: [0; 5],
            commits_series: TimeSeries::new(SERIES_BUCKET_US),
            bytes_series: TimeSeries::new(SERIES_BUCKET_US),
            remaster_series: TimeSeries::new(SERIES_BUCKET_US),
            migration_series: TimeSeries::new(SERIES_BUCKET_US),
            crashes: 0,
            zone_crashes: 0,
            stalled_partitions: 0,
            node_recoveries: 0,
            failovers: 0,
            fault_aborts: 0,
            replayed_entries: 0,
            recovery_latency: Histogram::new(),
            unavailability: Vec::new(),
            failover_log: Vec::new(),
            goodput_series: TimeSeries::new(GOODPUT_BUCKET_US),
            acked: 0,
            ack_latency: Histogram::new(),
            epochs_sealed: 0,
            epochs_aborted: 0,
            epoch_retried_acks: 0,
            acked_then_lost: 0,
            unavail_open: FastMap::default(),
        }
    }

    /// Opens an unavailability window for `part` (its primary died at `at`).
    pub fn unavail_begin(&mut self, part: PartitionId, at: Time) {
        if self.unavail_open.contains_key(&part.0) {
            return; // already tracked (e.g. stalled partition re-reported)
        }
        self.unavail_open.insert(part.0, at);
        self.unavailability.push(UnavailWindow {
            part,
            from: at,
            until: None,
        });
    }

    /// Closes the open unavailability window for `part`: the partition can
    /// serve again at `at`. Records the recovery latency.
    pub fn unavail_end(&mut self, part: PartitionId, at: Time) {
        let Some(from) = self.unavail_open.remove(&part.0) else {
            return;
        };
        if let Some(w) = self
            .unavailability
            .iter_mut()
            .rev()
            .find(|w| w.part == part && w.until.is_none())
        {
            w.until = Some(at);
        }
        self.recovery_latency.record(at.saturating_sub(from));
    }

    /// Total partition-unavailability µs, counting windows still open at
    /// `horizon` as ending there.
    pub fn unavailability_us(&self, horizon: Time) -> u128 {
        self.unavailability
            .iter()
            .map(|w| (w.until.unwrap_or(horizon).saturating_sub(w.from)) as u128)
            .sum()
    }

    /// Records bytes on the wire at time `at`.
    pub fn add_bytes(&mut self, at: Time, bytes: u64) {
        self.msg_bytes += bytes;
        self.bytes_series.add(at, bytes as f64);
    }

    /// Adds to a phase accumulator.
    pub fn add_phase(&mut self, phase: Phase, us: u64) {
        self.phase_us[phase.idx()] += us as u128;
    }

    /// Total accumulated phase time.
    pub fn phase_total(&self) -> u128 {
        self.phase_us.iter().sum()
    }

    /// Normalized per-phase fractions (Fig. 14b bars).
    pub fn phase_fractions(&self) -> [f64; 5] {
        let total = self.phase_total().max(1) as f64;
        let mut out = [0.0; 5];
        for (i, &v) in self.phase_us.iter().enumerate() {
            out[i] = v as f64 / total;
        }
        out
    }

    /// Abort rate over attempts.
    pub fn abort_rate(&self) -> f64 {
        let attempts = self.commits + self.aborts;
        if attempts == 0 {
            0.0
        } else {
            self.aborts as f64 / attempts as f64
        }
    }

    /// Network bytes per committed transaction (Fig. 12b's metric).
    pub fn bytes_per_txn(&self) -> f64 {
        if self.commits == 0 {
            0.0
        } else {
            (self.msg_bytes + self.replication_bytes + self.migration_bytes) as f64
                / self.commits as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_fractions_sum_to_one() {
        let mut m = Metrics::new();
        m.add_phase(Phase::Execution, 30);
        m.add_phase(Phase::Commit, 50);
        m.add_phase(Phase::Replication, 20);
        let f = m.phase_fractions();
        assert!((f.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!((f[Phase::Commit.idx()] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn abort_rate_and_bytes_per_txn() {
        let mut m = Metrics::new();
        assert_eq!(m.abort_rate(), 0.0);
        assert_eq!(m.bytes_per_txn(), 0.0);
        m.commits = 8;
        m.aborts = 2;
        m.msg_bytes = 700;
        m.replication_bytes = 100;
        assert!((m.abort_rate() - 0.2).abs() < 1e-9);
        assert!((m.bytes_per_txn() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn unavailability_windows_open_close_and_clip() {
        let mut m = Metrics::new();
        let p = PartitionId(3);
        m.unavail_begin(p, 1_000);
        m.unavail_begin(p, 2_000); // duplicate begin is ignored
        m.unavail_end(p, 51_000);
        assert_eq!(m.unavailability.len(), 1);
        assert_eq!(m.unavailability[0].until, Some(51_000));
        assert_eq!(m.recovery_latency.count(), 1);
        assert_eq!(m.recovery_latency.max(), 50_000);
        // A window still open at the horizon is clipped there.
        m.unavail_begin(PartitionId(4), 80_000);
        assert_eq!(m.unavailability_us(100_000), 50_000 + 20_000);
        // Ending a partition that never began is a no-op.
        m.unavail_end(PartitionId(9), 5);
        assert_eq!(m.unavailability.len(), 2);
    }

    #[test]
    fn byte_series_accumulates() {
        let mut m = Metrics::new();
        m.add_bytes(0, 100);
        m.add_bytes(500_000, 200);
        m.add_bytes(1_200_000, 50);
        assert_eq!(m.msg_bytes, 350);
        assert_eq!(m.bytes_series.buckets(), &[300.0, 50.0]);
    }
}
