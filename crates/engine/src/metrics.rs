//! Run metrics: counters, latency histogram, per-phase totals, time series.

use lion_common::{Phase, Time};
use lion_sim::{Histogram, TimeSeries};

/// Time-series bucket width (1 simulated second), matching the granularity
/// of the paper's timeline figures.
pub const SERIES_BUCKET_US: Time = 1_000_000;

/// All metrics collected during a run.
#[derive(Debug, Clone)]
pub struct Metrics {
    /// Committed transactions.
    pub commits: u64,
    /// Aborted attempts (each retry re-counts).
    pub aborts: u64,
    /// Transactions that committed on a single node without remastering.
    pub single_node: u64,
    /// Transactions converted to single-node via remastering.
    pub remastered: u64,
    /// Transactions executed as distributed 2PC.
    pub distributed: u64,
    /// Completed remaster operations.
    pub remasters: u64,
    /// Remaster requests rejected because another was in flight (§III
    /// remastering conflicts).
    pub remaster_conflicts: u64,
    /// Completed background replica additions.
    pub replica_adds: u64,
    /// Secondary replicas evicted by the replica cap.
    pub replica_evictions: u64,
    /// Completed blocking migrations.
    pub migrations: u64,
    /// Total message bytes (requests, acks, prepare/commit rounds).
    pub msg_bytes: u64,
    /// Replication bytes (epoch flushes + remaster lag sync).
    pub replication_bytes: u64,
    /// Migration / replica-copy bytes.
    pub migration_bytes: u64,
    /// Commit-latency histogram (µs).
    pub latency: Histogram,
    /// Per-phase accumulated µs across committed and aborted work.
    pub phase_us: [u128; 5],
    /// Commits per second.
    pub commits_series: TimeSeries,
    /// Network bytes per second (all classes combined).
    pub bytes_series: TimeSeries,
    /// Remasters per second.
    pub remaster_series: TimeSeries,
    /// Migrations per second.
    pub migration_series: TimeSeries,
}

impl Default for Metrics {
    fn default() -> Self {
        Self::new()
    }
}

impl Metrics {
    /// Creates empty metrics.
    pub fn new() -> Self {
        Metrics {
            commits: 0,
            aborts: 0,
            single_node: 0,
            remastered: 0,
            distributed: 0,
            remasters: 0,
            remaster_conflicts: 0,
            replica_adds: 0,
            replica_evictions: 0,
            migrations: 0,
            msg_bytes: 0,
            replication_bytes: 0,
            migration_bytes: 0,
            latency: Histogram::new(),
            phase_us: [0; 5],
            commits_series: TimeSeries::new(SERIES_BUCKET_US),
            bytes_series: TimeSeries::new(SERIES_BUCKET_US),
            remaster_series: TimeSeries::new(SERIES_BUCKET_US),
            migration_series: TimeSeries::new(SERIES_BUCKET_US),
        }
    }

    /// Records bytes on the wire at time `at`.
    pub fn add_bytes(&mut self, at: Time, bytes: u64) {
        self.msg_bytes += bytes;
        self.bytes_series.add(at, bytes as f64);
    }

    /// Adds to a phase accumulator.
    pub fn add_phase(&mut self, phase: Phase, us: u64) {
        self.phase_us[phase.idx()] += us as u128;
    }

    /// Total accumulated phase time.
    pub fn phase_total(&self) -> u128 {
        self.phase_us.iter().sum()
    }

    /// Normalized per-phase fractions (Fig. 14b bars).
    pub fn phase_fractions(&self) -> [f64; 5] {
        let total = self.phase_total().max(1) as f64;
        let mut out = [0.0; 5];
        for (i, &v) in self.phase_us.iter().enumerate() {
            out[i] = v as f64 / total;
        }
        out
    }

    /// Abort rate over attempts.
    pub fn abort_rate(&self) -> f64 {
        let attempts = self.commits + self.aborts;
        if attempts == 0 {
            0.0
        } else {
            self.aborts as f64 / attempts as f64
        }
    }

    /// Network bytes per committed transaction (Fig. 12b's metric).
    pub fn bytes_per_txn(&self) -> f64 {
        if self.commits == 0 {
            0.0
        } else {
            (self.msg_bytes + self.replication_bytes + self.migration_bytes) as f64
                / self.commits as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_fractions_sum_to_one() {
        let mut m = Metrics::new();
        m.add_phase(Phase::Execution, 30);
        m.add_phase(Phase::Commit, 50);
        m.add_phase(Phase::Replication, 20);
        let f = m.phase_fractions();
        assert!((f.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!((f[Phase::Commit.idx()] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn abort_rate_and_bytes_per_txn() {
        let mut m = Metrics::new();
        assert_eq!(m.abort_rate(), 0.0);
        assert_eq!(m.bytes_per_txn(), 0.0);
        m.commits = 8;
        m.aborts = 2;
        m.msg_bytes = 700;
        m.replication_bytes = 100;
        assert!((m.abort_rate() - 0.2).abs() < 1e-9);
        assert!((m.bytes_per_txn() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn byte_series_accumulates() {
        let mut m = Metrics::new();
        m.add_bytes(0, 100);
        m.add_bytes(500_000, 200);
        m.add_bytes(1_200_000, 50);
        assert_eq!(m.msg_bytes, 350);
        assert_eq!(m.bytes_series.buckets(), &[300.0, 50.0]);
    }
}
