//! # lion-engine
//!
//! The transaction-processing engine every protocol (Lion and all eight
//! baselines) runs on. It drives the discrete-event simulation:
//!
//! * closed-loop clients (standard mode) or batch arming (batch mode, §IV-D);
//! * CPU primitives against each node's worker pool and network primitives
//!   against the latency+bandwidth model;
//! * OCC data access: versioned reads, prepare-locking, validation, install,
//!   with real per-row state so contention and aborts emerge from the data;
//! * epoch-based group replication (§V) and the adaptor operations
//!   (remaster / add-replica / migrate) scheduled on the virtual clock;
//! * observability: every metric flows as a typed [`MetricEvent`] through
//!   [`Engine::emit`] into the `lion-obs` sink pipeline — the run sink
//!   behind every report, per-node/per-zone rollups, and any caller-attached
//!   sinks (see `ARCHITECTURE.md` § Observability).
//!
//! Protocols implement the [`Protocol`] trait as explicit state machines:
//! the engine wakes them with `(txn, tag)` continuations.

pub mod engine;
pub mod metrics;
pub mod protocol;
pub mod report;
pub mod slab;
pub mod txn;

pub use engine::{Engine, EngineConfig, OpFail};
pub use lion_durability::{AckRecord, DurabilityConfig, DurableEpoch, EpochManager, PendingAck};
pub use lion_faults::{FaultEvent, FaultKind, FaultNotice, FaultPlan};
pub use lion_obs::{
    ByteClass, CommitClass, DimRollup, MetricEvent, MetricSink, NullSink, ObsHub, ObsMode,
};
pub use metrics::{FailoverRecord, Metrics, UnavailWindow};
pub use protocol::{Protocol, TickKind};
pub use report::RunReport;
pub use slab::TxnSlab;
pub use txn::{TxnClass, TxnCtx};
