//! The discrete-event transaction engine.

use crate::metrics::{FailoverRecord, Metrics};
use crate::protocol::{Protocol, TickKind};
use crate::report::RunReport;
use crate::slab::TxnSlab;
use crate::txn::{ReadEntry, TxnClass, TxnCtx, WriteEntry};
use lion_cluster::{AdaptorError, Cluster};
use lion_common::{
    ClientId, FastMap, NodeId, Op, OpKind, PartitionId, Phase, SimConfig, Time, TxnId, TxnRecord,
    TxnRequest, Workload,
};
use lion_durability::{DurabilityConfig, EpochManager, PendingAck};
use lion_faults::{
    plan_failover, plan_heal, plan_split_promotions, FaultKind, FaultNotice, FaultPlan, SplitAction,
};
use lion_obs::{ByteClass, CommitClass, MetricEvent, ObsHub, ObsMode};
use lion_sim::CalendarQueue;
use lion_storage::{LogEntry, OpOutcome, Table};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Engine-level configuration on top of the cluster's [`SimConfig`].
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Cluster + protocol timing knobs.
    pub sim: SimConfig,
    /// Planner tick interval (workload analysis + rearrangement, §III).
    pub plan_interval_us: Time,
    /// Monitoring tick interval (load sampling).
    pub monitor_interval_us: Time,
    /// Retained routed-transaction records between planner drains.
    pub history_cap: usize,
    /// Deterministic fault script executed on the virtual clock (empty by
    /// default: no failures).
    pub faults: FaultPlan,
    /// Epoch group-commit configuration: `epoch_commit_us = 0` (the
    /// default) acks at protocol commit, exactly the legacy behavior.
    pub durability: DurabilityConfig,
    /// How much of the observability pipeline runs ([`ObsMode::Full`] by
    /// default; [`ObsMode::Null`] is the overhead yardstick of
    /// `lion-bench obsgate`).
    pub obs_mode: ObsMode,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            sim: SimConfig::default(),
            plan_interval_us: 2_000_000,
            monitor_interval_us: 1_000_000,
            history_cap: 60_000,
            faults: FaultPlan::none(),
            durability: DurabilityConfig::default(),
            obs_mode: ObsMode::default(),
        }
    }
}

impl From<SimConfig> for EngineConfig {
    fn from(sim: SimConfig) -> Self {
        EngineConfig {
            sim,
            ..Default::default()
        }
    }
}

/// Why a data operation could not run right now.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpFail {
    /// The partition is blocked by an in-flight remaster/migration; retry
    /// after the given time.
    Blocked {
        /// Earliest time the partition is available again.
        until: Time,
    },
    /// The node no longer hosts the primary (placement moved underneath).
    NotPrimary {
        /// Current primary holder.
        primary: NodeId,
    },
    /// The row is prepare-locked by a conflicting transaction.
    Locked,
    /// An active split-brain window cuts the transaction's home side off
    /// from this partition's serving primary. The transaction parks until
    /// reachability returns (a split promotion or the heal).
    Unreachable,
}

/// Adaptor completions scheduled on the virtual clock. Blocking transfers
/// carry the partition's transfer generation so completions of transfers
/// canceled by a crash are recognized as stale and dropped.
#[derive(Debug, Clone, Copy)]
enum AdaptorFinish {
    Remaster(PartitionId, u64),
    AddReplica {
        part: PartitionId,
        node: NodeId,
        then_remaster: bool,
    },
    Migrate(PartitionId, u64),
}

/// Engine events.
enum Ev {
    ClientNext(ClientId),
    Wake {
        txn: TxnId,
        tag: u32,
    },
    Retry(TxnId),
    Epoch,
    Plan,
    Monitor,
    Adaptor(AdaptorFinish),
    BatchArm,
    /// A scripted fault event (index into the engine's `FaultPlan`).
    Fault(usize),
    /// Epoch group commit: seal the open commit epoch and flush its logs
    /// (only scheduled when `durability.epoch_commit_us > 0`).
    EpochSeal,
    /// A sealed epoch's replication round-trip landed: release its acks.
    /// Stale after a crash fenced the epoch id.
    EpochDurable(u64),
    /// A failover promotion completes (stale when `gen` mismatches).
    FailoverDone {
        part: PartitionId,
        gen: u64,
    },
    /// Re-extend the block on a partition stalled on a dead primary.
    StallCheck(PartitionId),
    /// The quorum side of an active split finished detecting + promoting a
    /// partition whose serving primary is cut off on the minority side.
    /// Stale when `seq` mismatches the engine's split counter, when the
    /// split already healed, or when the target died mid-window.
    SplitPromote {
        part: PartitionId,
        target: NodeId,
        seq: u64,
    },
}

/// Failover state carried between crash and promotion completion.
struct PendingFailover {
    replay: Vec<LogEntry>,
    from: NodeId,
    dead_head: u64,
    lag: u64,
    crashed_at: Time,
}

/// The simulation engine: cluster + event queue + transaction contexts.
pub struct Engine {
    /// The simulated cluster (placement, stores, workers, adaptor state).
    pub cluster: Cluster,
    /// The run sink: the aggregate metrics every report is built from.
    /// Kept as a public field so tests and examples read counters directly;
    /// the engine itself only writes it through [`Engine::emit`].
    pub metrics: Metrics,
    /// The observability hub: dimensioned rollups + caller-attached sinks,
    /// fed the same events as [`Engine::metrics`].
    pub obs: ObsHub,
    /// Deterministic RNG for protocol-side choices.
    pub rng: SmallRng,
    cfg: EngineConfig,
    queue: CalendarQueue<Ev>,
    txns: TxnSlab,
    workload: Box<dyn Workload>,
    next_seq: u64,
    history: Vec<TxnRecord>,
    horizon: Time,
    batch_mode: bool,
    batch_outstanding: usize,
    deferred: Vec<TxnId>,
    window_busy: Vec<Time>,
    submitted: u64,
    events: u64,
    pending_failovers: FastMap<u32, PendingFailover>,
    isolated: Vec<NodeId>,
    /// Epoch group-commit ack manager (inert when `epoch_commit_us = 0`).
    epochs: EpochManager,
    /// True in ack-at-commit mode: installs advance the log's ack frontier
    /// immediately (the crash audit then counts unshipped acked writes).
    ack_at_commit: bool,
    /// Reusable batch-assembly buffer (no per-tick allocation).
    batch_buf: Vec<TxnId>,
    /// Reusable fault-abort victim buffer (no per-crash allocation).
    victim_buf: Vec<(u64, TxnId)>,
    /// Monotonic split-window counter: stamps `Ev::SplitPromote` events so
    /// promotions scheduled in one window are stale in the next.
    split_seq: u64,
    /// Virtual time the active split window opened (failover bookkeeping).
    split_began_at: Time,
    /// Transactions parked because the split cut their home side off from a
    /// partition they access; drained (filtered by reachability) at each
    /// split promotion and fully at heal.
    heal_waiters: Vec<TxnId>,
    /// Partitions whose unavailability window opened at split begin pending
    /// a quorum-side promotion; any still open at heal close there.
    split_unavail_open: Vec<PartitionId>,
}

impl Engine {
    /// Builds an engine over a fresh cluster and the given workload.
    pub fn new(cfg: impl Into<EngineConfig>, workload: Box<dyn Workload>) -> Self {
        let cfg: EngineConfig = cfg.into();
        let cluster = Cluster::new(cfg.sim.clone());
        let nodes = cfg.sim.nodes;
        let epochs = EpochManager::new(cfg.durability);
        let ack_at_commit = !epochs.enabled();
        // Seed the calendar queue's bucket geometry from this run's
        // event-horizon profile: the delays below are what the hot path
        // actually schedules (network hops, retry back-off, epoch seals,
        // replication flushes, planner/monitor timers). The shortest of
        // them sizes the buckets; the long timers ride the overflow rung.
        let profile = [
            cfg.sim.net.one_way_us,
            cfg.sim.net.delay(cfg.sim.value_size),
            cfg.sim.retry_backoff_us,
            cfg.sim.stall_poll_us,
            cfg.sim.epoch_us,
            cfg.durability.epoch_commit_us,
            cfg.plan_interval_us,
            cfg.monitor_interval_us,
        ];
        Engine {
            rng: SmallRng::seed_from_u64(cfg.sim.seed),
            cluster,
            metrics: Metrics::new(),
            obs: ObsHub::new(cfg.obs_mode),
            cfg,
            queue: CalendarQueue::with_profile(&profile),
            txns: TxnSlab::new(),
            workload,
            next_seq: 0,
            history: Vec::new(),
            horizon: 0,
            batch_mode: false,
            batch_outstanding: 0,
            deferred: Vec::new(),
            window_busy: vec![0; nodes],
            submitted: 0,
            events: 0,
            pending_failovers: FastMap::default(),
            isolated: Vec::new(),
            epochs,
            ack_at_commit,
            batch_buf: Vec::new(),
            victim_buf: Vec::new(),
            split_seq: 0,
            split_began_at: 0,
            heal_waiters: Vec::new(),
            split_unavail_open: Vec::new(),
        }
    }

    /// The epoch group-commit manager (ack log, fence, parked count).
    pub fn epoch_manager(&self) -> &EpochManager {
        &self.epochs
    }

    /// Emits one observability event: run sink first (its fold order is
    /// the digest contract), then the dimensioned sink and any extras,
    /// all gated by the configured [`ObsMode`]. Every metric the engine
    /// records flows through here — protocols and baselines included.
    #[inline]
    pub fn emit(&mut self, ev: MetricEvent) {
        self.obs.emit(&mut self.metrics, ev);
    }

    /// Current virtual time.
    #[inline]
    pub fn now(&self) -> Time {
        self.queue.now()
    }

    /// Engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// Immutable transaction context.
    pub fn txn(&self, id: TxnId) -> &TxnCtx {
        self.txns.get(id).expect("live transaction")
    }

    /// Mutable transaction context.
    pub fn txn_mut(&mut self, id: TxnId) -> &mut TxnCtx {
        self.txns.get_mut(id).expect("live transaction")
    }

    /// True when the context is still live (not committed, and the id's
    /// slab generation has not been retired).
    pub fn is_live(&self, id: TxnId) -> bool {
        self.txns.contains(id)
    }

    /// The executor node that "owns" a client (Leap executes transactions at
    /// the node they arrive on). Clients of a dead node reconnect to the
    /// next live node in id order.
    pub fn origin_node(&self, client: ClientId) -> NodeId {
        let n = self.cfg.sim.nodes;
        let start = client.idx() % n;
        for i in 0..n {
            let node = NodeId(((start + i) % n) as u16);
            if self.cluster.is_up(node) {
                return node;
            }
        }
        NodeId(start as u16)
    }

    /// Total submitted transactions.
    pub fn submitted(&self) -> u64 {
        self.submitted
    }

    /// Total events popped from the future-event list so far. One event is
    /// the engine's unit of hot-path work, which makes wall-clock
    /// events/second the primary metric of `lion-bench perf`.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Busy µs per node accumulated during the last monitoring window.
    pub fn node_window_busy(&self) -> &[Time] {
        &self.window_busy
    }

    /// Drains the routed-transaction records accumulated since the last call
    /// (the planner's analysis batch B).
    pub fn drain_history(&mut self) -> Vec<TxnRecord> {
        std::mem::take(&mut self.history)
    }

    // ----------------------------------------------------------------
    // Main loop
    // ----------------------------------------------------------------

    /// Runs the protocol until the virtual clock reaches `horizon`, then
    /// summarizes the run.
    pub fn run(&mut self, proto: &mut dyn Protocol, horizon: Time) -> RunReport {
        self.horizon = horizon;
        self.batch_mode = proto.batch_mode();
        self.queue.schedule(self.cfg.sim.epoch_us, Ev::Epoch);
        if self.epochs.enabled() {
            self.queue
                .schedule(self.epochs.epoch_commit_us(), Ev::EpochSeal);
        }
        self.queue.schedule(self.cfg.plan_interval_us, Ev::Plan);
        self.queue
            .schedule(self.cfg.monitor_interval_us, Ev::Monitor);
        if !self.cfg.faults.is_empty() {
            // Full validation: structure (ids, pairing, someone always
            // alive) plus the liveness check — a plan whose combined node +
            // zone crashes would orphan a partition to the end of the run
            // is rejected here instead of silently stalling.
            self.cfg
                .faults
                .validate_against(&self.cluster.placement, &self.cluster.zone_of)
                .expect("invalid fault plan");
            for (i, ev) in self.cfg.faults.events().iter().enumerate() {
                self.queue.schedule_at(ev.at, Ev::Fault(i));
            }
        }
        if self.batch_mode {
            self.queue.schedule(0, Ev::BatchArm);
        } else {
            for c in 0..self.cfg.sim.total_clients() {
                // Slight stagger avoids a same-instant thundering herd.
                self.queue
                    .schedule((c % 97) as Time, Ev::ClientNext(ClientId(c as u32)));
            }
        }

        while let Some(at) = self.queue.peek_time() {
            if at >= horizon {
                break;
            }
            let (_, ev) = self.queue.pop().expect("peeked");
            self.events += 1;
            match ev {
                Ev::ClientNext(client) => {
                    let id = self.create_txn(client);
                    proto.on_submit(self, id);
                }
                Ev::Wake { txn, tag } => {
                    if self.is_live(txn) {
                        proto.on_wake(self, txn, tag);
                    }
                }
                Ev::Retry(txn) => {
                    if self.is_live(txn) {
                        self.txn_mut(txn).parked = false;
                        proto.on_submit(self, txn);
                    }
                }
                Ev::Epoch => {
                    let now = self.now();
                    let bytes = self.cluster.epoch_flush_all();
                    // Emitted even for 0 bytes: the series bucket this
                    // touches is part of the digest contract.
                    self.emit(MetricEvent::Bytes {
                        at: now,
                        class: ByteClass::Replication,
                        bytes,
                        node: None,
                        zone: None,
                    });
                    self.queue.schedule(self.cfg.sim.epoch_us, Ev::Epoch);
                }
                Ev::Plan => {
                    proto.on_tick(self, TickKind::Planner);
                    self.cluster.freq.roll_window();
                    self.queue.schedule(self.cfg.plan_interval_us, Ev::Plan);
                }
                Ev::Monitor => {
                    for (n, w) in self.window_busy.iter_mut().enumerate() {
                        *w = self.cluster.workers[n].take_window_busy();
                    }
                    proto.on_tick(self, TickKind::Monitor);
                    self.queue
                        .schedule(self.cfg.monitor_interval_us, Ev::Monitor);
                }
                Ev::Adaptor(fin) => self.finish_adaptor(fin),
                Ev::BatchArm => {
                    let batch = self.arm_batch();
                    if !batch.is_empty() {
                        self.batch_outstanding = batch.len();
                        proto.on_batch(self, &batch);
                    }
                    self.batch_buf = batch; // recycle the allocation
                }
                Ev::Fault(i) => {
                    let kind = self.cfg.faults.events()[i].kind.clone();
                    self.apply_fault(proto, kind);
                }
                Ev::EpochSeal => self.seal_epoch(),
                Ev::EpochDurable(id) => self.epoch_durable(id),
                Ev::FailoverDone { part, gen } => {
                    let rt = &self.cluster.parts[part.idx()];
                    if rt.gen == gen && rt.failing_over.is_some() {
                        self.finish_failover_event(proto, part);
                    }
                }
                Ev::StallCheck(part) => {
                    if self.cluster.parts[part.idx()].primary_down {
                        let now = self.now();
                        let poll = self.cfg.sim.stall_poll_us;
                        self.cluster.stall_partition(part, now + poll);
                        self.queue.schedule(poll, Ev::StallCheck(part));
                    }
                }
                Ev::SplitPromote { part, target, seq } => {
                    if seq == self.split_seq
                        && self.cluster.split_active()
                        && self.cluster.is_up(target)
                        && self
                            .cluster
                            .side_of(self.cluster.placement.primary_of(part))
                            != self.cluster.quorum_side_of(part)
                    {
                        self.split_promote_event(proto, part, target);
                    }
                }
            }
        }
        RunReport::build(proto.name(), self, horizon)
    }

    // ----------------------------------------------------------------
    // Fault handling (crash → failover → recovery)
    // ----------------------------------------------------------------

    fn apply_fault(&mut self, proto: &mut dyn Protocol, kind: FaultKind) {
        match kind {
            FaultKind::Crash(node) => self.node_down(proto, node),
            FaultKind::Recover(node) => self.node_up_event(proto, node),
            FaultKind::Partition(nodes) => {
                if self.cfg.faults.split_brain() {
                    let cut: Vec<NodeId> = nodes
                        .into_iter()
                        .filter(|&n| self.cluster.is_up(n))
                        .collect();
                    self.begin_split_brain(proto, cut);
                } else {
                    self.isolated = nodes.clone();
                    for n in nodes {
                        if self.cluster.is_up(n) {
                            self.node_down(proto, n);
                        }
                    }
                }
            }
            FaultKind::Heal => {
                if self.cfg.faults.split_brain() {
                    self.heal_split_brain(proto);
                } else {
                    let nodes = std::mem::take(&mut self.isolated);
                    for n in nodes {
                        if !self.cluster.is_up(n) {
                            self.node_up_event(proto, n);
                        }
                    }
                }
            }
            FaultKind::ZoneCrash(zone) => {
                // Correlated loss: every live zone member halts on this one
                // virtual-clock tick, in node-id order. A member that was
                // the promotion target of an earlier member's failover dies
                // mid-promotion and is re-planned over the survivors — the
                // cascade the single-node DSL could not script.
                let at = self.now();
                self.emit(MetricEvent::ZoneCrash { at, zone });
                for n in self.cluster.zone_members(zone) {
                    if self.cluster.is_up(n) && self.cluster.live_count() > 1 {
                        self.node_down(proto, n);
                    }
                }
            }
            FaultKind::ZoneHeal(zone) => {
                for n in self.cluster.zone_members(zone) {
                    if !self.cluster.is_up(n) {
                        self.node_up_event(proto, n);
                    }
                }
            }
            FaultKind::ZonePartition(zones) => {
                let cut: Vec<NodeId> = zones
                    .iter()
                    .flat_map(|&z| self.cluster.zone_members(z))
                    .filter(|&n| self.cluster.is_up(n))
                    .collect();
                if self.cfg.faults.split_brain() {
                    self.begin_split_brain(proto, cut);
                } else {
                    self.isolated = cut.clone();
                    for n in cut {
                        if self.cluster.live_count() > 1 {
                            self.node_down(proto, n);
                        }
                    }
                }
            }
        }
    }

    /// A node halts: abort in-flight transactions touching it, then promote
    /// the freshest live secondary for each partition it primaried (stalling
    /// partitions with no live replica until the node recovers).
    fn node_down(&mut self, proto: &mut dyn Protocol, node: NodeId) {
        let now = self.now();
        if std::env::var_os("LION_TRACE").is_some() {
            eprintln!("[{now}] crash {node}");
        }
        // The audit must read the dead node's log buffers *before*
        // `crash_node` drains them into the failover replay.
        self.audit_acked_unshipped(node);
        let zone = self.cluster.zone(node);
        let report = self.cluster.crash_node(node, now);
        self.emit(MetricEvent::Crash {
            at: now,
            node,
            zone,
        });
        self.abort_open_epochs();
        self.fault_abort_touching(node);
        let mut replays: FastMap<u32, Vec<LogEntry>> =
            report.orphaned.into_iter().map(|(p, r)| (p.0, r)).collect();
        for d in plan_failover(&self.cluster, node) {
            self.emit(MetricEvent::UnavailBegin {
                at: now,
                part: d.part,
            });
            match d.target {
                Some(target) => {
                    let dead_head = self
                        .cluster
                        .store(node, d.part)
                        .map(|s| s.log.head_lsn())
                        .unwrap_or(0);
                    self.cluster.begin_failover(d.part, target, d.duration, now);
                    let gen = self.cluster.parts[d.part.idx()].gen;
                    self.pending_failovers.insert(
                        d.part.0,
                        PendingFailover {
                            replay: replays.remove(&d.part.0).unwrap_or_default(),
                            from: node,
                            dead_head,
                            lag: d.lag,
                            crashed_at: now,
                        },
                    );
                    self.queue
                        .schedule(d.duration, Ev::FailoverDone { part: d.part, gen });
                }
                None => {
                    // No live gap-free replica: the partition stalls until
                    // the node comes back ("protocols without a live replica
                    // stall until Recover").
                    self.emit(MetricEvent::PartitionStalled {
                        at: now,
                        part: d.part,
                    });
                    let poll = self.cfg.sim.stall_poll_us;
                    self.cluster.stall_partition(d.part, now + poll);
                    self.queue.schedule(poll, Ev::StallCheck(d.part));
                }
            }
        }
        // Promotions whose target just died: re-plan them over the
        // remaining survivors (their unavailability windows stay open, and
        // the original dead primary's replay entries remain pending).
        for part in report.aborted_failovers {
            self.replan_failover(part, now);
        }
        proto.on_fault(self, &FaultNotice::NodeDown(node));
    }

    /// Re-plans a canceled promotion for `part` (its target crashed before
    /// the hand-off finished): promote the freshest remaining gap-free
    /// replica, or stall until the original primary recovers.
    fn replan_failover(&mut self, part: PartitionId, now: Time) {
        let candidates = lion_faults::promotion_candidates(&self.cluster, part);
        let avoid = self
            .pending_failovers
            .get(&part.0)
            .map(|pf| self.cluster.zone(pf.from));
        match lion_faults::select_promotion_target_zoned(&candidates, &self.cluster.zone_of, avoid)
        {
            Some(target) => {
                let pf = self
                    .pending_failovers
                    .get_mut(&part.0)
                    .expect("aborted failover retains its pending state");
                let applied = candidates
                    .iter()
                    .find(|c| c.node == target)
                    .expect("target drawn from candidates")
                    .applied_lsn;
                let lag = pf.dead_head.saturating_sub(applied);
                pf.lag = lag;
                let duration = lion_faults::price_promotion(&self.cfg.sim, lag);
                self.cluster.begin_failover(part, target, duration, now);
                let gen = self.cluster.parts[part.idx()].gen;
                self.queue
                    .schedule(duration, Ev::FailoverDone { part, gen });
            }
            None => {
                // Every replica is gone: stall until the original primary
                // restarts (its table still holds all committed writes).
                self.emit(MetricEvent::PartitionStalled { at: now, part });
                self.pending_failovers.remove(&part.0);
                let poll = self.cfg.sim.stall_poll_us;
                self.cluster.stall_partition(part, now + poll);
                self.queue.schedule(poll, Ev::StallCheck(part));
            }
        }
    }

    /// A failover promotion lands: replay the recovered prepare log, flip
    /// the placement, close the availability window.
    fn finish_failover_event(&mut self, proto: &mut dyn Protocol, part: PartitionId) {
        let now = self.now();
        let pf = self
            .pending_failovers
            .remove(&part.0)
            .expect("pending failover state");
        let (bytes, head) = self.cluster.finish_failover(part, &pf.replay, now);
        self.emit(MetricEvent::Bytes {
            at: now,
            class: ByteClass::Replication,
            bytes,
            node: None,
            zone: None,
        });
        let to = self.cluster.placement.primary_of(part);
        if std::env::var_os("LION_TRACE").is_some() {
            eprintln!(
                "[{now}] failover {part} {} -> {to} (lag {})",
                pf.from, pf.lag
            );
        }
        self.emit(MetricEvent::Failover {
            record: FailoverRecord {
                part,
                from: pf.from,
                to,
                dead_head: pf.dead_head,
                promoted_head: head,
                lag: pf.lag,
                crashed_at: pf.crashed_at,
                completed_at: now,
            },
            replayed: pf.replay.len() as u64,
        });
        self.emit(MetricEvent::UnavailEnd { at: now, part });
        proto.on_fault(
            self,
            &FaultNotice::FailoverComplete {
                part,
                from: pf.from,
                to,
            },
        );
    }

    /// A node restarts: stalled partitions resume after a restart window
    /// priced like a remaster hand-off; partitions that failed over re-gain
    /// the node as a secondary via background snapshot copies.
    fn node_up_event(&mut self, proto: &mut dyn Protocol, node: NodeId) {
        let now = self.now();
        if std::env::var_os("LION_TRACE").is_some() {
            eprintln!("[{now}] recover {node}");
        }
        let zone = self.cluster.zone(node);
        let report = self.cluster.recover_node(node, now);
        self.emit(MetricEvent::Recover {
            at: now,
            node,
            zone,
        });
        let restart = self.cfg.sim.remaster_delay_us;
        for part in report.restored_primaries {
            self.cluster.restore_partition(part, now + restart);
            self.emit(MetricEvent::UnavailEnd {
                at: now + restart,
                part,
            });
        }
        for part in report.rejoin_secondaries {
            let _ = self.add_replica_async(part, node, false);
        }
        proto.on_fault(self, &FaultNotice::NodeUp(node));
    }

    /// Aborts every in-flight transaction whose coordinator, participant, or
    /// accessed primary sits on the dead node. Retries ride the normal
    /// abort paths (back-off in standard mode, defer in batch mode).
    fn fault_abort_touching(&mut self, node: NodeId) {
        let now = self.now();
        let mut victims = std::mem::take(&mut self.victim_buf);
        victims.clear();
        victims.extend(
            self.txns
                .iter()
                .filter(|ctx| {
                    !ctx.parked
                        && (ctx.home == node
                            || ctx.participants.contains(&node)
                            || ctx
                                .parts
                                .iter()
                                .any(|&p| self.cluster.placement.primary_of(p) == node))
                })
                .map(|ctx| (ctx.seq, ctx.id)),
        );
        // Slab iteration follows slot order, which slot reuse decouples from
        // arrival order; sort by submission sequence for a deterministic
        // retry/defer sequence (same seed ⇒ identical recovery timeline).
        victims.sort_unstable();
        let backoff = self.cfg.sim.retry_backoff_us;
        for &(_, txn) in &victims {
            let home = self.txn(txn).home;
            self.emit(MetricEvent::Abort {
                at: now,
                fault: true,
                node: home,
                zone: self.cluster.zone(home),
            });
            self.release_all(txn);
            self.txn_mut(txn).reset_for_retry(now + backoff);
            self.txn_mut(txn).parked = true;
            if self.batch_mode {
                self.deferred.push(txn);
                self.batch_done_one();
            } else {
                self.queue.schedule(backoff, Ev::Retry(txn));
            }
        }
        self.victim_buf = victims; // recycle the allocation
    }

    // ----------------------------------------------------------------
    // Honest split-brain (both sides live, quorum fencing, heal)
    // ----------------------------------------------------------------

    /// True when no active split cuts `txn`'s home side off from the
    /// serving primary of any partition it accesses. Protocols check this
    /// at submission (and on retry re-entry) and park unreachable
    /// transactions via [`Engine::park_until_heal`] instead of spinning
    /// retries against the cut.
    pub fn txn_reachable(&self, txn: TxnId) -> bool {
        if !self.cluster.split_active() {
            return true;
        }
        let ctx = self.txn(txn);
        ctx.parts.iter().all(|&p| {
            self.cluster
                .same_side(ctx.home, self.cluster.placement.primary_of(p))
        })
    }

    /// Parks `txn` until reachability returns: the attempt fault-aborts
    /// (scheduled wakes go stale through the attempt counter, exactly like
    /// a crash abort) and the transaction joins the heal-waiter list, which
    /// drains — filtered by reachability — at every split promotion and
    /// fully at heal. The issuing client blocks with it: no goodput is
    /// faked while the partition the client needs sits across the cut.
    pub fn park_until_heal(&mut self, txn: TxnId) {
        let now = self.now();
        let home = self.txn(txn).home;
        self.emit(MetricEvent::Abort {
            at: now,
            fault: true,
            node: home,
            zone: self.cluster.zone(home),
        });
        self.release_all(txn);
        self.txn_mut(txn).reset_for_retry(now);
        self.txn_mut(txn).parked = true;
        self.heal_waiters.push(txn);
        if self.batch_mode {
            self.batch_done_one();
        }
    }

    /// Re-admits parked heal waiters whose accessed partitions are all
    /// reachable from their home side again (after a split promotion, or
    /// after the heal closed the window entirely).
    fn resume_reachable_waiters(&mut self) {
        if self.heal_waiters.is_empty() {
            return;
        }
        let backoff = self.cfg.sim.retry_backoff_us;
        let waiters = std::mem::take(&mut self.heal_waiters);
        let mut kept = Vec::new();
        for txn in waiters {
            if !self.is_live(txn) {
                continue;
            }
            if self.txn_reachable(txn) {
                if self.batch_mode {
                    self.deferred.push(txn);
                } else {
                    self.queue.schedule(backoff, Ev::Retry(txn));
                }
            } else {
                kept.push(txn);
            }
        }
        self.heal_waiters = kept;
    }

    /// Opens an honest split-brain window over the (still-live) `cut`
    /// nodes: both sides stay up, per-partition quorum sides freeze, the
    /// quorum side schedules real promotions for partitions it lost to the
    /// cut (shadow promotions when the quorum side *is* the isolated set),
    /// and in-flight transactions stranded across the cut park until
    /// reachability returns. No `Crash` events, no `NodeDown` notices —
    /// nothing actually died.
    fn begin_split_brain(&mut self, proto: &mut dyn Protocol, cut: Vec<NodeId>) {
        let _ = &proto; // topology is unchanged until promotions land
        let now = self.now();
        if std::env::var_os("LION_TRACE").is_some() {
            eprintln!("[{now}] split-brain begin {cut:?}");
        }
        self.split_seq += 1;
        self.split_began_at = now;
        self.emit(MetricEvent::PartitionBegin { at: now });
        let aborted = self.cluster.begin_split(&cut, now);
        for part in aborted {
            self.replan_failover(part, now);
        }
        // Park in-flight transactions the cut strands mid-protocol, in
        // submission order for a deterministic recovery timeline.
        let mut stranded: Vec<(u64, TxnId)> = self
            .txns
            .iter()
            .filter(|ctx| !ctx.parked)
            .map(|ctx| (ctx.seq, ctx.id))
            .collect();
        stranded.sort_unstable();
        for (_, txn) in stranded {
            if !self.txn_reachable(txn) {
                self.park_until_heal(txn);
            }
        }
        let decisions = plan_split_promotions(&self.cluster);
        if decisions
            .iter()
            .any(|d| matches!(d.action, SplitAction::Promote { .. }))
        {
            // Real promotions supersede cut-off primaries: epochs whose
            // frontiers those primaries certified can no longer turn
            // durable. Fence them like a crash — their parked acks retry,
            // none were ever released.
            self.abort_open_epochs();
        }
        for d in decisions {
            match d.action {
                SplitAction::Promote { target, duration } => {
                    self.emit(MetricEvent::UnavailBegin {
                        at: now,
                        part: d.part,
                    });
                    self.split_unavail_open.push(d.part);
                    self.queue.schedule(
                        duration,
                        Ev::SplitPromote {
                            part: d.part,
                            target,
                            seq: self.split_seq,
                        },
                    );
                }
                SplitAction::Shadow { target } => self.cluster.set_shadow(d.part, target),
                SplitAction::Stall => {
                    self.emit(MetricEvent::PartitionStalled {
                        at: now,
                        part: d.part,
                    });
                }
            }
        }
    }

    /// A quorum-side promotion lands mid-window: the global routing view
    /// flips to the quorum side's replica (the cut-off old primary demotes
    /// in place, its log intact for the heal audit) and rest-side waiters
    /// parked on this partition re-admit.
    fn split_promote_event(&mut self, proto: &mut dyn Protocol, part: PartitionId, target: NodeId) {
        let now = self.now();
        let from = self.cluster.placement.primary_of(part);
        let dead_head = self
            .cluster
            .store(from, part)
            .map(|s| s.log.head_lsn())
            .unwrap_or(0);
        self.cluster.split_promote(part, target, now);
        let promoted_head = self
            .cluster
            .store(target, part)
            .map(|s| s.applied_lsn)
            .unwrap_or(0);
        if std::env::var_os("LION_TRACE").is_some() {
            eprintln!("[{now}] split-promote {part} {from} -> {target}");
        }
        self.emit(MetricEvent::Failover {
            record: FailoverRecord {
                part,
                from,
                to: target,
                dead_head,
                promoted_head,
                lag: 0,
                crashed_at: self.split_began_at,
                completed_at: now,
            },
            replayed: 0,
        });
        self.emit(MetricEvent::UnavailEnd { at: now, part });
        self.split_unavail_open.retain(|&p| p != part);
        proto.on_fault(
            self,
            &FaultNotice::FailoverComplete {
                part,
                from,
                to: target,
            },
        );
        self.resume_reachable_waiters();
    }

    /// The cut heals: reconcile the divergence the window accumulated.
    /// Order matters — (1) abort in-flight work on partitions whose serving
    /// primary is about to swap (prepare-locks must release against the
    /// placement that granted them), (2) adopt the quorum timeline by
    /// applying the recorded shadow promotions, (3) audit every stale
    /// replica's log for acked-then-lost work, then discard it and re-add
    /// the replica via a background snapshot copy, (4) close promotion
    /// windows the mid-window hand-off never closed, (5) abort the fenced
    /// epochs and retry their parked clients, (6) end the window and
    /// release every remaining parked waiter.
    fn heal_split_brain(&mut self, proto: &mut dyn Protocol) {
        if !self.cluster.split_active() {
            return;
        }
        let now = self.now();
        if std::env::var_os("LION_TRACE").is_some() {
            eprintln!("[{now}] split-brain heal");
        }
        self.emit(MetricEvent::PartitionHeal { at: now });
        let steps = plan_heal(&self.cluster);
        let swapping: Vec<PartitionId> = steps
            .iter()
            .filter(|s| s.shadow.is_some())
            .map(|s| s.part)
            .collect();
        if !swapping.is_empty() {
            self.fault_abort_touching_parts(&swapping);
        }
        for step in &steps {
            if let Some(target) = step.shadow {
                let from = self.cluster.placement.primary_of(step.part);
                let dead_head = self
                    .cluster
                    .store(from, step.part)
                    .map(|s| s.log.head_lsn())
                    .unwrap_or(0);
                self.cluster.split_promote(step.part, target, now);
                let promoted_head = self
                    .cluster
                    .store(target, step.part)
                    .map(|s| s.applied_lsn)
                    .unwrap_or(0);
                if std::env::var_os("LION_TRACE").is_some() {
                    eprintln!("[{now}] heal-promote {} {from} -> {target}", step.part);
                }
                self.emit(MetricEvent::Failover {
                    record: FailoverRecord {
                        part: step.part,
                        from,
                        to: target,
                        dead_head,
                        promoted_head,
                        lag: 0,
                        crashed_at: self.split_began_at,
                        completed_at: now,
                    },
                    replayed: 0,
                });
                proto.on_fault(
                    self,
                    &FaultNotice::FailoverComplete {
                        part: step.part,
                        from,
                        to: target,
                    },
                );
            }
        }
        for step in &steps {
            for &n in &step.stale {
                if let Some(store) = self.cluster.store(n, step.part) {
                    // The divergence audit: acked-but-never-replicated
                    // entries on a timeline that just lost. Zero in epoch
                    // mode (fenced acks never escaped); the optimistic
                    // minority-ack arm pays its leak here.
                    let lost = store.log.acked_unshipped();
                    self.emit(MetricEvent::AckedThenLost { at: now, n: lost });
                }
                self.cluster.drop_stale_secondary(step.part, n);
                let _ = self.add_replica_async(step.part, n, false);
            }
        }
        for part in std::mem::take(&mut self.split_unavail_open) {
            self.emit(MetricEvent::UnavailEnd { at: now, part });
        }
        if self.epochs.enabled() {
            let abort = self.epochs.abort_fenced();
            self.emit(MetricEvent::DivergentEpochAborted {
                at: now,
                n: abort.epochs_aborted,
            });
            let backoff = self.cfg.sim.retry_backoff_us;
            let extra = self.retry_resubmit_cost(abort.retried.len());
            for ack in abort.retried {
                self.emit(MetricEvent::EpochRetriedAck { at: now });
                if !self.batch_mode {
                    self.queue
                        .schedule(backoff + extra, Ev::ClientNext(ack.client));
                }
            }
        }
        self.cluster.end_split();
        self.resume_reachable_waiters();
        debug_assert!(self.heal_waiters.is_empty(), "waiters survived the heal");
    }

    /// Aborts every in-flight transaction touching one of `parts` (the
    /// heal is about to swap their serving primaries; prepare-locks must
    /// release while the placement that granted them still routes there).
    fn fault_abort_touching_parts(&mut self, parts: &[PartitionId]) {
        let now = self.now();
        let mut victims = std::mem::take(&mut self.victim_buf);
        victims.clear();
        victims.extend(
            self.txns
                .iter()
                .filter(|ctx| !ctx.parked && ctx.parts.iter().any(|p| parts.contains(p)))
                .map(|ctx| (ctx.seq, ctx.id)),
        );
        victims.sort_unstable();
        let backoff = self.cfg.sim.retry_backoff_us;
        for &(_, txn) in &victims {
            let home = self.txn(txn).home;
            self.emit(MetricEvent::Abort {
                at: now,
                fault: true,
                node: home,
                zone: self.cluster.zone(home),
            });
            self.release_all(txn);
            self.txn_mut(txn).reset_for_retry(now + backoff);
            self.txn_mut(txn).parked = true;
            if self.batch_mode {
                self.deferred.push(txn);
                self.batch_done_one();
            } else {
                self.queue.schedule(backoff, Ev::Retry(txn));
            }
        }
        self.victim_buf = victims; // recycle the allocation
    }

    fn create_txn(&mut self, client: ClientId) -> TxnId {
        let now = self.now();
        let req = self.workload.next_txn(now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.submitted += 1;
        let id = self.txns.insert_with(|id| {
            let mut ctx = TxnCtx::new(id, client, req, now);
            ctx.seq = seq;
            ctx
        });
        if self.history.len() < self.cfg.history_cap {
            self.history.push(TxnRecord {
                at: now,
                parts: self.txn(id).parts.clone(),
            });
        }
        id
    }

    fn arm_batch(&mut self) -> Vec<TxnId> {
        let now = self.now();
        let mut batch = std::mem::take(&mut self.batch_buf);
        batch.clear();
        if now >= self.horizon {
            return batch;
        }
        batch.reserve(self.cfg.sim.batch_size);
        batch.append(&mut self.deferred);
        for &t in &batch {
            self.txns.get_mut(t).expect("deferred txn is live").parked = false;
        }
        while batch.len() < self.cfg.sim.batch_size {
            // Batch distributors pull from the open stream (§IV-D buffers
            // until the batch size or time window is reached).
            let client = ClientId((batch.len() % self.cfg.sim.total_clients()) as u32);
            batch.push(self.create_txn(client));
        }
        batch
    }

    fn finish_adaptor(&mut self, fin: AdaptorFinish) {
        let now = self.now();
        match fin {
            AdaptorFinish::Remaster(part, gen) => {
                let rt = &self.cluster.parts[part.idx()];
                if rt.gen != gen || rt.remastering.is_none() {
                    return; // transfer canceled by a crash
                }
                let to = rt.remastering;
                if std::env::var_os("LION_TRACE").is_some() {
                    eprintln!("[{now}] remaster {part} -> {to:?}");
                }
                let bytes = self.cluster.finish_remaster(part, now);
                self.emit(MetricEvent::Remaster { at: now, part });
                self.emit(MetricEvent::Bytes {
                    at: now,
                    class: ByteClass::Replication,
                    bytes,
                    node: None,
                    zone: None,
                });
            }
            AdaptorFinish::AddReplica {
                part,
                node,
                then_remaster,
            } => {
                if !self.cluster.parts[part.idx()].copying_to.contains(&node) {
                    return; // copy canceled by a crash of the target
                }
                let primary = self.cluster.placement.primary_of(part);
                if !self.cluster.is_up(node) || !self.cluster.is_up(primary) {
                    self.cluster.cancel_copy(part, node);
                    return; // source or destination died mid-copy
                }
                let evicted = self.cluster.finish_add_replica(part, node, now);
                self.emit(MetricEvent::ReplicaAdd {
                    at: now,
                    part,
                    evicted: evicted.is_some(),
                });
                if then_remaster {
                    match self.cluster.begin_remaster(part, node, now) {
                        Ok(d) => {
                            let gen = self.cluster.parts[part.idx()].gen;
                            self.queue
                                .schedule(d, Ev::Adaptor(AdaptorFinish::Remaster(part, gen)));
                        }
                        Err(AdaptorError::AlreadyPrimary { .. }) => {}
                        Err(_) => self.emit(MetricEvent::RemasterConflict { at: now }),
                    }
                }
            }
            AdaptorFinish::Migrate(part, gen) => {
                let rt = &self.cluster.parts[part.idx()];
                if rt.gen != gen || rt.migrating.is_none() {
                    return; // transfer canceled by a crash
                }
                self.cluster.finish_migration(part, now);
                self.emit(MetricEvent::Migration { at: now, part });
            }
        }
    }

    // ----------------------------------------------------------------
    // Timing primitives
    // ----------------------------------------------------------------

    /// Occupies one of `node`'s workers for `dur` µs, waking `(txn, tag)` on
    /// completion. Queue wait is booked as `Scheduling`; service as `phase`.
    pub fn cpu(&mut self, node: NodeId, phase: Phase, dur: Time, txn: TxnId, tag: u32) {
        let now = self.now();
        let grant = self.cluster.workers[node.idx()].acquire(now, dur);
        let wait = grant.queue_wait(now);
        let ctx = self.txn_mut(txn);
        ctx.phase_us[Phase::Scheduling.idx()] += wait;
        ctx.phase_us[phase.idx()] += dur;
        self.queue.schedule_at(grant.end, Ev::Wake { txn, tag });
    }

    /// One-way message of `bytes` payload; wakes `(txn, tag)` on delivery.
    pub fn net(&mut self, bytes: u32, phase: Phase, txn: TxnId, tag: u32) {
        let now = self.now();
        let d = self.cluster.net_delay(bytes);
        self.emit(MetricEvent::Bytes {
            at: now,
            class: ByteClass::Message,
            bytes: (bytes + self.cfg.sim.net.msg_overhead_bytes) as u64,
            node: None,
            zone: None,
        });
        self.txn_mut(txn).phase_us[phase.idx()] += d;
        self.queue.schedule(d, Ev::Wake { txn, tag });
    }

    /// Accounting-only one-way message (no wake), e.g. 2PC commit decisions
    /// whose acks the coordinator does not wait for.
    pub fn net_fire_and_forget(&mut self, bytes: u32) {
        let now = self.now();
        self.emit(MetricEvent::Bytes {
            at: now,
            class: ByteClass::Message,
            bytes: (bytes + self.cfg.sim.net.msg_overhead_bytes) as u64,
            node: None,
            zone: None,
        });
    }

    /// Request/response round from `from` to a remote node including remote
    /// CPU: request latency + worker queueing + service + response latency,
    /// as a single scheduled wake (the worker slot is reserved at request
    /// arrival). The origin node is charged message-handling CPU for the
    /// send and the response — the coordination work that makes distributed
    /// transactions expensive on their coordinator.
    // The argument list *is* the wire protocol of one request/response round
    // (endpoints, payload sizes, remote service time, phase, continuation);
    // bundling them into a struct would only rename the problem.
    #[allow(clippy::too_many_arguments)]
    pub fn remote_round(
        &mut self,
        from: NodeId,
        to: NodeId,
        bytes_req: u32,
        bytes_resp: u32,
        remote_cpu: Time,
        phase: Phase,
        txn: TxnId,
        tag: u32,
    ) {
        let now = self.now();
        let overhead = self.cfg.sim.net.msg_overhead_bytes;
        let handling = 2 * self.cfg.sim.cpu.msg_handle_us;
        let _ = self.cluster.workers[from.idx()].acquire(now, handling);
        // Zone-aware pricing: a round that crosses a rack boundary pays the
        // aggregation-layer surcharge both ways (zero on single-zone runs).
        let d1 = self.cluster.net_delay_between(from, to, bytes_req);
        let grant = self.cluster.workers[to.idx()].acquire(now + d1, remote_cpu);
        let d2 = self.cluster.net_delay_between(to, from, bytes_resp);
        self.emit(MetricEvent::Bytes {
            at: now,
            class: ByteClass::Message,
            bytes: (bytes_req + overhead) as u64 + (bytes_resp + overhead) as u64,
            node: Some(from),
            zone: Some(self.cluster.zone(from)),
        });
        let ctx = self.txn_mut(txn);
        ctx.phase_us[Phase::Scheduling.idx()] += grant.queue_wait(now + d1);
        ctx.phase_us[phase.idx()] += d1 + remote_cpu + d2;
        self.queue
            .schedule_at(grant.end + d2, Ev::Wake { txn, tag });
    }

    /// Pure wait (remaster hand-off, migration blackout, barrier).
    pub fn sleep(&mut self, dur: Time, phase: Phase, txn: TxnId, tag: u32) {
        self.txn_mut(txn).phase_us[phase.idx()] += dur;
        self.queue.schedule(dur, Ev::Wake { txn, tag });
    }

    /// Wake `(txn, tag)` at an absolute virtual time (batch protocols that
    /// compute completion times arithmetically).
    pub fn wake_at(&mut self, at: Time, txn: TxnId, tag: u32) {
        self.queue.schedule_at(at, Ev::Wake { txn, tag });
    }

    /// Books `us` of `phase` time on `txn` without scheduling anything
    /// (batch protocols account phases while computing times arithmetically).
    pub fn charge_phase(&mut self, txn: TxnId, phase: Phase, us: Time) {
        self.txn_mut(txn).phase_us[phase.idx()] += us;
    }

    /// Acquires a worker at `node` without scheduling a wake; returns the
    /// service interval. Batch protocols compose these grants into
    /// per-transaction completion times.
    pub fn cpu_grant(&mut self, node: NodeId, at: Time, dur: Time) -> (Time, Time) {
        let grant = self.cluster.workers[node.idx()].acquire(at, dur);
        (grant.start, grant.end)
    }

    // ----------------------------------------------------------------
    // Fan-out joins
    // ----------------------------------------------------------------

    /// Starts a fan-out of `n` branches on `txn`.
    pub fn join_begin(&mut self, txn: TxnId, n: u32) {
        let ctx = self.txn_mut(txn);
        ctx.pending = n;
        ctx.failed = false;
    }

    /// Records one branch arrival. Returns `None` while branches remain,
    /// `Some(all_ok)` when the last branch lands.
    pub fn join_arrive(&mut self, txn: TxnId, ok: bool) -> Option<bool> {
        let ctx = self.txn_mut(txn);
        debug_assert!(ctx.pending > 0, "join_arrive without join_begin");
        ctx.pending -= 1;
        ctx.failed |= !ok;
        if ctx.pending == 0 {
            Some(!ctx.failed)
        } else {
            None
        }
    }

    // ----------------------------------------------------------------
    // Data operations (instantaneous state transitions; timing is the
    // protocol's job via the primitives above)
    // ----------------------------------------------------------------

    /// Executes one declared operation at `node` (which must currently hold
    /// the primary): reads record versions, writes are buffered.
    pub fn exec_op_at(&mut self, node: NodeId, txn: TxnId, op: Op) -> Result<(), OpFail> {
        let now = self.now();
        let part = op.partition;
        let until = self.cluster.available_at(part);
        if until > now {
            return Err(OpFail::Blocked { until });
        }
        if !self.cluster.placement.is_primary(part, node) {
            return Err(OpFail::NotPrimary {
                primary: self.cluster.placement.primary_of(part),
            });
        }
        if self.cluster.split_active() && !self.cluster.same_side(self.txn(txn).home, node) {
            // Honest split-brain: the serving primary is on the far side of
            // the cut from this transaction's coordinator.
            return Err(OpFail::Unreachable);
        }
        self.cluster.freq.record_access(part, node, now);
        match op.kind {
            OpKind::Read => {
                let store = self.cluster.store_mut(node, part).expect("primary store");
                match store.table.occ_read(op.key, txn) {
                    OpOutcome::Ok { version } => {
                        self.txn_mut(txn).read_set.push(ReadEntry {
                            part,
                            key: op.key,
                            version,
                        });
                        Ok(())
                    }
                    _ => Err(OpFail::Locked),
                }
            }
            OpKind::Write => {
                self.txn_mut(txn)
                    .write_set
                    .push(WriteEntry { part, key: op.key });
                Ok(())
            }
        }
    }

    /// Executes every operation of `txn` whose partition primary is at
    /// `node`. Stops at the first failure.
    pub fn exec_local_ops(&mut self, node: NodeId, txn: TxnId) -> Result<usize, OpFail> {
        // Index walk instead of collecting the matching ops into a scratch
        // `Vec`: this runs once per submission attempt, `Op` is tiny, and
        // `exec_op_at` never changes the placement the filter reads.
        let mut n = 0;
        for i in 0..self.txn(txn).req.ops.len() {
            let op = self.txn(txn).req.ops[i];
            if !self.cluster.placement.is_primary(op.partition, node) {
                continue;
            }
            self.exec_op_at(node, txn, op)?;
            n += 1;
        }
        Ok(n)
    }

    /// CPU demand for executing `n_reads` + `n_writes` operations.
    pub fn op_cpu(&self, n_reads: usize, n_writes: usize) -> Time {
        let c = &self.cfg.sim.cpu;
        c.read_us * n_reads as u64 + c.write_us * n_writes as u64
    }

    /// OCC validation at `node`: prepare-locks the write set and validates
    /// the read set for partitions whose primary is at `node`. On failure,
    /// locks taken here are released and `false` is returned.
    pub fn validate_at(&mut self, node: NodeId, txn: TxnId) -> bool {
        let id = txn;
        let Engine { txns, cluster, .. } = self;
        let ctx = txns.get(txn).expect("live transaction");
        // Walk the sets in place (disjoint borrows: context is read-only,
        // stores are mutated) instead of cloning them into scratch `Vec`s.
        // `locked` counts the prefix of local write entries holding a
        // prepare-lock, so the failure path can release exactly those.
        let mut locked = 0usize;
        let mut ok = true;
        for w in &ctx.write_set {
            if !cluster.placement.is_primary(w.part, node) {
                continue;
            }
            let store = cluster.store_mut(node, w.part).expect("primary store");
            if store.table.occ_lock(w.key, id).is_ok() {
                locked += 1;
            } else {
                ok = false;
                break;
            }
        }
        if ok {
            for r in &ctx.read_set {
                if !cluster.placement.is_primary(r.part, node) {
                    continue;
                }
                let store = cluster.store(node, r.part).expect("primary store");
                if !store.table.occ_validate_read(r.key, r.version, id).is_ok() {
                    ok = false;
                    break;
                }
            }
        }
        if !ok {
            for w in &ctx.write_set {
                if locked == 0 {
                    break;
                }
                if !cluster.placement.is_primary(w.part, node) {
                    continue;
                }
                if let Some(store) = cluster.store_mut(node, w.part) {
                    store.table.occ_unlock(w.key, id);
                }
                locked -= 1;
            }
        }
        ok
    }

    /// Installs `txn`'s writes at `node` (partitions whose primary is
    /// local): stores synthesized payloads, bumps versions, appends to the
    /// replication log. Must follow a successful [`Engine::validate_at`].
    ///
    /// A partition whose primary moved away between prepare-validation and
    /// the commit decision (a remaster raced the 2PC window) can no longer
    /// install here; its prepare-locks are released on every replica holder
    /// instead — leaving them would poison the rows forever once the
    /// partition remasters back.
    pub fn install_at(&mut self, node: NodeId, txn: TxnId) {
        let value_size = self.cfg.sim.value_size;
        // Split borrow: the context is read in place (no write-set clone)
        // while the stores are mutated.
        let Engine {
            txns,
            cluster,
            ack_at_commit,
            ..
        } = self;
        let ctx = txns.get(txn).expect("live transaction");
        let attempt = ctx.attempts as u64;
        for w in &ctx.write_set {
            if !cluster.placement.is_primary(w.part, node) {
                if cluster.store(node, w.part).is_some() {
                    for holder in cluster.placement.replica_nodes(w.part) {
                        if let Some(store) = cluster.store_mut(holder, w.part) {
                            store.table.occ_unlock(w.key, txn);
                        }
                    }
                }
                continue;
            }
            let stamp = txn.0.wrapping_mul(31).wrapping_add(attempt);
            let value = Table::synth_value(w.key, stamp, value_size);
            let store = cluster.store_mut(node, w.part).expect("primary store");
            let version = store.table.occ_install(w.key, txn, value.clone());
            let lsn = store.log.append(w.part, w.key, version, value);
            if *ack_at_commit {
                // Commit == ack: the entry is client-visible the moment it
                // installs, replicated or not (the hole the audit counts).
                store.log.mark_acked(lsn);
            }
            Self::assert_zero_copy_install(store, w.key);
        }
    }

    /// Commit installs must be zero-copy: the row and the replication-log
    /// entry it just produced share one payload allocation — synthesizing
    /// the value is the *only* allocation an install performs. (The pre-PR2
    /// path cloned the write set and then deep-copied the payload again in
    /// `occ_install`.)
    #[inline]
    fn assert_zero_copy_install(store: &lion_storage::ReplicaStore, key: lion_common::Key) {
        debug_assert!(
            {
                let row = store.table.get(key).expect("row just installed");
                let entry = store.log.pending().last().expect("entry just appended");
                lion_storage::Bytes::ptr_eq(&row.value, &entry.value)
            },
            "commit install copied the payload instead of sharing it"
        );
        let _ = (store, key);
    }

    /// Installs `txn`'s writes directly at their current primaries without
    /// prepare-locks. Used by protocols whose write phase is conflict-free by
    /// construction (Star's serial single-master phase, deterministic
    /// protocols whose lock schedule already serialized the writers).
    pub fn install_unchecked(&mut self, txn: TxnId) {
        let value_size = self.cfg.sim.value_size;
        let Engine {
            txns,
            cluster,
            ack_at_commit,
            ..
        } = self;
        let ctx = txns.get(txn).expect("live transaction");
        let attempt = ctx.attempts as u64;
        for w in &ctx.write_set {
            let stamp = txn.0.wrapping_mul(31).wrapping_add(attempt);
            let value = Table::synth_value(w.key, stamp, value_size);
            let primary = cluster.placement.primary_of(w.part);
            let store = cluster.store_mut(primary, w.part).expect("primary store");
            let version = store.table.occ_install(w.key, txn, value.clone());
            let lsn = store.log.append(w.part, w.key, version, value);
            if *ack_at_commit {
                store.log.mark_acked(lsn);
            }
            Self::assert_zero_copy_install(store, w.key);
        }
    }

    /// Records the write set of `txn` from its declared ops without
    /// executing reads (deterministic protocols declare sets up front).
    pub fn load_declared_sets(&mut self, txn: TxnId) {
        // Disjoint field borrows within one context: read the declared ops,
        // append to the write set — no `req.ops` clone.
        let TxnCtx { req, write_set, .. } = self.txn_mut(txn);
        for op in &req.ops {
            match op.kind {
                OpKind::Read => {}
                OpKind::Write => write_set.push(WriteEntry {
                    part: op.partition,
                    key: op.key,
                }),
            }
        }
    }

    /// Releases any prepare-locks `txn` may hold anywhere (abort path). Scans
    /// every replica holder so racing placement changes cannot leak locks.
    pub fn release_all(&mut self, txn: TxnId) {
        let Engine { txns, cluster, .. } = self;
        let ctx = txns.get(txn).expect("live transaction");
        for w in &ctx.write_set {
            for node in cluster.placement.replica_nodes(w.part) {
                if let Some(store) = cluster.store_mut(node, w.part) {
                    store.table.occ_unlock(w.key, txn);
                }
            }
        }
    }

    /// Synchronous prepare-log replication at a participant (§II-A: "each
    /// participant ... replicates its prepare log to the corresponding
    /// secondary replicas"). Books the max secondary round trip as
    /// `Replication` time and wakes `(txn, tag)`.
    pub fn replicate_prepare(&mut self, node: NodeId, txn: TxnId, tag: u32) {
        let now = self.now();
        let overhead = self.cfg.sim.net.msg_overhead_bytes as u64;
        let value_size = self.cfg.sim.value_size;
        let Engine {
            txns,
            cluster,
            metrics,
            obs,
            ..
        } = self;
        let ctx = txns.get(txn).expect("live transaction");
        let mut parts: Vec<PartitionId> = ctx
            .write_set
            .iter()
            .map(|w| w.part)
            .filter(|&p| cluster.placement.is_primary(p, node))
            .collect();
        parts.sort_unstable();
        parts.dedup();
        let mut max_rtt = 0;
        for part in parts {
            let writes_here = ctx.write_set.iter().filter(|w| w.part == part).count() as u32;
            let bytes = writes_here * (value_size + 32);
            let secondaries = cluster.placement.secondaries_of(part);
            if secondaries.is_empty() {
                continue;
            }
            // The prepare must reach *every* secondary: the slowest replica
            // round trip gates the vote — a cross-zone secondary (rack-safe
            // placement) stretches it by the zone surcharge both ways.
            for &sec in secondaries {
                let rtt = cluster.net_delay_between(node, sec, bytes)
                    + cluster.net_delay_between(sec, node, 0);
                max_rtt = max_rtt.max(rtt);
            }
            obs.emit(
                metrics,
                MetricEvent::Bytes {
                    at: now,
                    class: ByteClass::Message,
                    bytes: secondaries.len() as u64 * (bytes as u64 + 2 * overhead),
                    node: Some(node),
                    zone: Some(cluster.zone(node)),
                },
            );
        }
        if max_rtt == 0 {
            // No secondaries / read-only at this participant: complete now.
            self.queue.schedule(0, Ev::Wake { txn, tag });
        } else {
            self.txn_mut(txn).phase_us[Phase::Replication.idx()] += max_rtt;
            self.queue.schedule(max_rtt, Ev::Wake { txn, tag });
        }
    }

    // ----------------------------------------------------------------
    // Epoch group commit (client-visible acks at epoch boundaries)
    // ----------------------------------------------------------------

    /// Seals the open commit epoch on the DES clock: flushes every pending
    /// replication log, then lets the epoch ride out the slowest secondary
    /// round-trip before its acks are released. Re-arms itself.
    fn seal_epoch(&mut self) {
        let now = self.now();
        let flush = self.cluster.epoch_flush_for_seal();
        if flush.bytes > 0 {
            self.emit(MetricEvent::Bytes {
                at: now,
                class: ByteClass::Replication,
                bytes: flush.bytes,
                node: None,
                zone: None,
            });
        }
        if let Some(id) = self.epochs.seal(flush.frontiers) {
            self.emit(MetricEvent::EpochSealed { at: now });
            self.queue
                .schedule(flush.max_transit_us, Ev::EpochDurable(id));
        }
        self.queue
            .schedule(self.epochs.epoch_commit_us(), Ev::EpochSeal);
    }

    /// A sealed epoch's replication landed: certify its log frontiers as
    /// acked and release every parked ack — record ack latency and re-arm
    /// the issuing clients (standard mode; batch clients are paced by the
    /// batch loop and only get the latency accounting).
    fn epoch_durable(&mut self, id: u64) {
        let now = self.now();
        let Some(epoch) = self.epochs.take_durable(id, now) else {
            return; // fenced/aborted by a crash: stale durability event
        };
        for (part, lsn) in epoch.frontiers {
            let primary = self.cluster.placement.primary_of(part);
            if let Some(store) = self.cluster.store_mut(primary, part) {
                // Epoch-mode acks only ever escape *behind* replication, so
                // the ack frontier can never legitimately pass the shipped
                // frontier. Capping matters when the primary moved between
                // seal and durability (a remaster raced the transit): the
                // new primary's log never shipped these entries, and an
                // uncapped mark would fabricate acked-but-unshipped state
                // the split-brain heal audit then miscounts as lost acks.
                let capped = lsn.min(store.log.shipped_lsn());
                store.log.mark_acked(capped);
            }
        }
        for ack in epoch.acks {
            self.emit(MetricEvent::Ack {
                at: now,
                latency_us: now.saturating_sub(ack.start),
            });
            if !self.batch_mode {
                self.queue.schedule(1, Ev::ClientNext(ack.client));
            }
        }
    }

    /// A crash voids every non-durable epoch: their parked transactions
    /// were never acked, so instead of losing acked work the clients simply
    /// retry (and re-observe the committed result). The epoch fence advances
    /// so a promoted primary cannot release an ack from the dead primary's
    /// timeline.
    fn abort_open_epochs(&mut self) {
        if !self.epochs.enabled() {
            return;
        }
        let now = self.now();
        let abort = self.epochs.on_crash();
        self.emit(MetricEvent::EpochsAborted {
            at: now,
            n: abort.epochs_aborted,
        });
        let backoff = self.cfg.sim.retry_backoff_us;
        let extra = self.retry_resubmit_cost(abort.retried.len());
        for ack in abort.retried {
            self.emit(MetricEvent::EpochRetriedAck { at: now });
            if !self.batch_mode {
                self.queue
                    .schedule(backoff + extra, Ev::ClientNext(ack.client));
            }
        }
    }

    /// Group-commit-aware retry pricing: when `retry_round_trip` is on, an
    /// idempotent client resubmission after an epoch abort pays its own
    /// request round trip on the wire (request out + ack back, at message
    /// framing size) instead of reappearing for free after the back-off.
    /// Returns the extra per-retry delay; `0` when the mode is off.
    fn retry_resubmit_cost(&mut self, retried: usize) -> Time {
        if !self.epochs.retry_round_trip() || retried == 0 {
            return 0;
        }
        let now = self.now();
        let overhead = self.cfg.sim.net.msg_overhead_bytes;
        self.emit(MetricEvent::Bytes {
            at: now,
            class: ByteClass::Message,
            bytes: 2 * u64::from(overhead) * retried as u64,
            node: None,
            zone: None,
        });
        2 * self.cfg.sim.net.delay(0)
    }

    /// Crash audit for the no-acked-commit-lost invariant: counts log
    /// entries the dead node acked to clients but never shipped to a
    /// secondary — writes a real deployment would lose *after* reporting
    /// success. Ack-at-commit mode leaks them freely (commit == ack, flush
    /// every `epoch_us`); epoch group commit keeps this at zero because an
    /// ack only ever escapes behind its epoch's replication.
    fn audit_acked_unshipped(&mut self, node: NodeId) {
        let now = self.now();
        for p in 0..self.cluster.n_partitions() {
            let part = PartitionId(p as u32);
            if self.cluster.placement.primary_of(part) != node {
                continue;
            }
            if let Some(store) = self.cluster.store(node, part) {
                let n = store.log.acked_unshipped();
                self.emit(MetricEvent::AckedThenLost { at: now, n });
            }
        }
    }

    // ----------------------------------------------------------------
    // Completion
    // ----------------------------------------------------------------

    /// Commits `txn`: records commit metrics and frees the context. The
    /// *client-visible ack* depends on the durability mode: ack-at-commit
    /// releases it here (and re-arms the issuing client in standard mode);
    /// epoch group commit parks it in the open epoch until the epoch's
    /// replication is durable. Batch protocols always advance their batch
    /// barrier here — their pacing is the batch loop, not the ack.
    pub fn commit(&mut self, txn: TxnId) {
        let now = self.now();
        let ctx = self.txns.remove(txn).expect("live transaction");
        // Quorum fence: during an active split a commit whose writes touch a
        // partition served from the non-quorum side can never replicate its
        // writes to a majority of the replica set — its ack must not be
        // allowed to turn durable. Ack-at-commit mode releases it anyway
        // (the optimistic-minority-ack arm; the heal audit counts the leak),
        // epoch mode parks it fenced until the heal coordinator retries it.
        let fenced = self.cluster.split_active()
            && ctx
                .write_set
                .iter()
                .any(|w| self.cluster.quorum_side_of(w.part) != self.cluster.side_of(ctx.home));
        self.emit(MetricEvent::Commit {
            at: now,
            latency_us: now.saturating_sub(ctx.start),
            class: match ctx.class {
                TxnClass::SingleNode => CommitClass::SingleNode,
                TxnClass::Remastered => CommitClass::Remastered,
                TxnClass::Distributed => CommitClass::Distributed,
            },
            node: ctx.home,
            zone: self.cluster.zone(ctx.home),
            phase_us: ctx.phase_us,
        });
        if fenced {
            self.emit(MetricEvent::MinorityCommit { at: now });
        }
        if self.batch_mode {
            self.batch_done_one();
        }
        if self.ack_at_commit {
            self.emit(MetricEvent::Ack {
                at: now,
                latency_us: now.saturating_sub(ctx.start),
            });
            if !self.batch_mode {
                self.queue.schedule(1, Ev::ClientNext(ctx.client));
            }
        } else if fenced {
            self.emit(MetricEvent::FencedAck { at: now });
            self.epochs.park_fenced(PendingAck {
                txn,
                client: ctx.client,
                seq: ctx.seq,
                start: ctx.start,
                committed_at: now,
            });
        } else {
            self.epochs.park(PendingAck {
                txn,
                client: ctx.client,
                seq: ctx.seq,
                start: ctx.start,
                committed_at: now,
            });
        }
    }

    /// Aborts the current attempt and schedules a retry after the configured
    /// back-off (standard mode).
    pub fn abort_retry(&mut self, txn: TxnId) {
        let now = self.now();
        let home = self.txn(txn).home;
        self.emit(MetricEvent::Abort {
            at: now,
            fault: false,
            node: home,
            zone: self.cluster.zone(home),
        });
        self.release_all(txn);
        let backoff = self.cfg.sim.retry_backoff_us;
        self.txn_mut(txn).reset_for_retry(now + backoff);
        self.txn_mut(txn).parked = true;
        self.queue.schedule(backoff, Ev::Retry(txn));
    }

    /// Aborts the current attempt and defers the transaction to the next
    /// batch (Aria-style carry-over; batch mode only).
    pub fn abort_defer(&mut self, txn: TxnId) {
        debug_assert!(self.batch_mode, "defer is a batch-mode operation");
        let now = self.now();
        let home = self.txn(txn).home;
        self.emit(MetricEvent::Abort {
            at: now,
            fault: false,
            node: home,
            zone: self.cluster.zone(home),
        });
        self.release_all(txn);
        self.txn_mut(txn).reset_for_retry(now);
        self.txn_mut(txn).parked = true;
        self.deferred.push(txn);
        self.batch_done_one();
    }

    fn batch_done_one(&mut self) {
        debug_assert!(self.batch_outstanding > 0);
        self.batch_outstanding -= 1;
        if self.batch_outstanding == 0 {
            self.queue.schedule(1, Ev::BatchArm);
        }
    }

    // ----------------------------------------------------------------
    // Adaptor scheduling
    // ----------------------------------------------------------------

    /// Starts an asynchronous remaster; the placement flips after the
    /// returned duration. Conflicting requests surface as `Err` (the caller
    /// decides whether to fall back to 2PC, §III).
    pub fn remaster_async(&mut self, part: PartitionId, to: NodeId) -> Result<Time, AdaptorError> {
        let now = self.now();
        match self.cluster.begin_remaster(part, to, now) {
            Ok(d) => {
                let gen = self.cluster.parts[part.idx()].gen;
                self.queue
                    .schedule(d, Ev::Adaptor(AdaptorFinish::Remaster(part, gen)));
                Ok(d)
            }
            Err(e) => {
                if matches!(e, AdaptorError::Busy(_)) {
                    self.emit(MetricEvent::RemasterConflict { at: now });
                }
                Err(e)
            }
        }
    }

    /// Starts a background replica copy; optionally chains a remaster once
    /// the copy lands (the planner's AddReplica action).
    pub fn add_replica_async(
        &mut self,
        part: PartitionId,
        to: NodeId,
        then_remaster: bool,
    ) -> Result<Time, AdaptorError> {
        let now = self.now();
        let (d, bytes) = self.cluster.begin_add_replica(part, to, now)?;
        self.emit(MetricEvent::Bytes {
            at: now,
            class: ByteClass::Migration,
            bytes,
            node: None,
            zone: None,
        });
        self.queue.schedule(
            d,
            Ev::Adaptor(AdaptorFinish::AddReplica {
                part,
                node: to,
                then_remaster,
            }),
        );
        Ok(d)
    }

    /// Starts a blocking migration of `part`'s primary to `to`.
    pub fn migrate_async(&mut self, part: PartitionId, to: NodeId) -> Result<Time, AdaptorError> {
        let now = self.now();
        let (d, bytes) = self.cluster.begin_migration(part, to, now)?;
        self.emit(MetricEvent::Bytes {
            at: now,
            class: ByteClass::Migration,
            bytes,
            node: None,
            zone: None,
        });
        let gen = self.cluster.parts[part.idx()].gen;
        self.queue
            .schedule(d, Ev::Adaptor(AdaptorFinish::Migrate(part, gen)));
        Ok(d)
    }

    /// Test/bench helper: submit one transaction directly with a caller-built
    /// request (bypasses the workload).
    pub fn inject_txn(&mut self, client: ClientId, req: TxnRequest) -> TxnId {
        let now = self.now();
        let seq = self.next_seq;
        self.next_seq += 1;
        self.submitted += 1;
        let id = self.txns.insert_with(|id| {
            let mut ctx = TxnCtx::new(id, client, req, now);
            ctx.seq = seq;
            ctx
        });
        self.history.push(TxnRecord {
            at: now,
            parts: self.txn(id).parts.clone(),
        });
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lion_common::SECOND;

    fn tiny_cfg() -> SimConfig {
        SimConfig {
            nodes: 2,
            partitions_per_node: 2,
            keys_per_partition: 64,
            value_size: 16,
            clients_per_node: 2,
            ..Default::default()
        }
    }

    fn uniform_workload(parts: usize) -> Box<dyn Workload> {
        let mut i = 0u64;
        Box::new(move |_now: Time| {
            i += 1;
            let p = PartitionId((i % parts as u64) as u32);
            TxnRequest::new(vec![Op::read(p, i % 64), Op::write(p, (i + 1) % 64)])
        })
    }

    /// The simplest possible protocol: execute everything at the primary of
    /// the first partition, one CPU slice, then commit.
    struct TrivialProto;
    impl Protocol for TrivialProto {
        fn name(&self) -> &'static str {
            "trivial"
        }
        fn on_submit(&mut self, eng: &mut Engine, txn: TxnId) {
            let home = eng.cluster.placement.primary_of(eng.txn(txn).parts[0]);
            eng.txn_mut(txn).home = home;
            match eng.exec_local_ops(home, txn) {
                Ok(_) => {
                    let cpu = eng.op_cpu(1, 1) + eng.config().sim.cpu.txn_overhead_us;
                    eng.cpu(home, Phase::Execution, cpu, txn, 1);
                }
                Err(_) => eng.abort_retry(txn),
            }
        }
        fn on_wake(&mut self, eng: &mut Engine, txn: TxnId, tag: u32) {
            assert_eq!(tag, 1);
            let home = eng.txn(txn).home;
            if eng.validate_at(home, txn) {
                eng.install_at(home, txn);
                eng.commit(txn);
            } else {
                eng.abort_retry(txn);
            }
        }
    }

    #[test]
    fn closed_loop_commits_transactions() {
        let mut eng = Engine::new(tiny_cfg(), uniform_workload(4));
        let report = eng.run(&mut TrivialProto, SECOND / 2);
        assert!(report.commits > 100, "got {}", report.commits);
        assert_eq!(report.commits, eng.metrics.single_node);
        assert!(report.throughput_tps > 0.0);
        eng.cluster.check_invariants().unwrap();
    }

    #[test]
    fn epoch_flush_replicates_writes() {
        let mut eng = Engine::new(tiny_cfg(), uniform_workload(4));
        eng.run(&mut TrivialProto, SECOND / 4);
        assert!(
            eng.metrics.replication_bytes > 0,
            "epoch flushes shipped bytes"
        );
        // After the final epoch flush, secondaries lag only by the last
        // unflushed epoch; force one more flush and check sync.
        let extra = eng.cluster.epoch_flush_all();
        let _ = extra;
        for p in 0..eng.cluster.n_partitions() {
            let part = PartitionId(p as u32);
            let primary = eng.cluster.placement.primary_of(part);
            let head = eng.cluster.store(primary, part).unwrap().log.head_lsn();
            for &s in eng.cluster.placement.secondaries_of(part) {
                assert_eq!(
                    eng.cluster.store(s, part).unwrap().lag_behind(head),
                    0,
                    "secondary {s} of {part} must be in sync after flush"
                );
            }
        }
    }

    #[test]
    fn conflicting_writes_abort_and_retry() {
        // Single key hammered by every client: version conflicts must abort
        // some attempts, and retries must eventually commit.
        let wl = Box::new(move |_now: Time| {
            TxnRequest::new(vec![
                Op::read(PartitionId(0), 0),
                Op::write(PartitionId(0), 0),
            ])
        });
        let mut cfg = tiny_cfg();
        cfg.clients_per_node = 8;
        let mut eng = Engine::new(cfg, wl);
        let report = eng.run(&mut TrivialProto, SECOND / 4);
        assert!(report.commits > 0);
        // trivially validating/installing in one wake: no interleaving
        // between validate and install of a single txn, so no aborts here —
        // the version check itself is exercised in the 2PC protocol tests.
        let key_version = {
            let part = PartitionId(0);
            let primary = eng.cluster.placement.primary_of(part);
            eng.cluster
                .store(primary, part)
                .unwrap()
                .table
                .get(0)
                .unwrap()
                .version
        };
        assert_eq!(
            key_version,
            report.commits + 1,
            "every commit bumped the version once"
        );
    }

    #[test]
    fn remaster_async_flips_placement_after_delay() {
        let mut eng = Engine::new(tiny_cfg(), uniform_workload(4));
        let part = PartitionId(0);
        let sec = eng.cluster.placement.secondaries_of(part)[0];
        // drive the engine with a protocol that triggers a remaster once
        struct Remasterer {
            target: NodeId,
            part: PartitionId,
            fired: bool,
        }
        impl Protocol for Remasterer {
            fn name(&self) -> &'static str {
                "remasterer"
            }
            fn on_submit(&mut self, eng: &mut Engine, txn: TxnId) {
                if !self.fired {
                    self.fired = true;
                    eng.remaster_async(self.part, self.target).unwrap();
                }
                eng.txn_mut(txn).class = TxnClass::SingleNode;
                eng.cpu(NodeId(0), Phase::Execution, 10, txn, 0);
            }
            fn on_wake(&mut self, eng: &mut Engine, txn: TxnId, _tag: u32) {
                eng.commit(txn);
            }
        }
        let mut proto = Remasterer {
            target: sec,
            part,
            fired: false,
        };
        eng.run(&mut proto, SECOND / 10);
        assert_eq!(eng.cluster.placement.primary_of(part), sec);
        assert_eq!(eng.metrics.remasters, 1);
        eng.cluster.check_invariants().unwrap();
    }

    #[test]
    fn join_helper_counts_branches() {
        let mut eng = Engine::new(tiny_cfg(), uniform_workload(4));
        let id = eng.inject_txn(
            ClientId(0),
            TxnRequest::new(vec![Op::read(PartitionId(0), 1)]),
        );
        eng.join_begin(id, 3);
        assert_eq!(eng.join_arrive(id, true), None);
        assert_eq!(eng.join_arrive(id, false), None);
        assert_eq!(eng.join_arrive(id, true), Some(false), "one branch failed");
        eng.join_begin(id, 1);
        assert_eq!(eng.join_arrive(id, true), Some(true));
    }

    #[test]
    fn blocked_partition_rejects_ops() {
        let mut eng = Engine::new(tiny_cfg(), uniform_workload(4));
        let part = PartitionId(0);
        let sec = eng.cluster.placement.secondaries_of(part)[0];
        eng.cluster.begin_remaster(part, sec, 0).unwrap();
        let id = eng.inject_txn(ClientId(0), TxnRequest::new(vec![Op::read(part, 1)]));
        let err = eng
            .exec_op_at(NodeId(0), id, Op::read(part, 1))
            .unwrap_err();
        assert!(matches!(err, OpFail::Blocked { .. }));
    }

    /// Regression: a remaster racing the 2PC commit window must not leak
    /// prepare-locks. Before the fix, `install_at` silently skipped
    /// partitions whose primary had moved, leaving the row locked on the
    /// demoted store forever — and permanently unavailable once the
    /// partition remastered back ("poisoned rows").
    #[test]
    fn remaster_during_commit_window_releases_locks() {
        let mut eng = Engine::new(tiny_cfg(), uniform_workload(4));
        let part = PartitionId(0);
        let home = NodeId(0);
        let sec = eng.cluster.placement.secondaries_of(part)[0];
        let txn = eng.inject_txn(
            ClientId(0),
            TxnRequest::new(vec![Op::read(part, 1), Op::write(part, 1)]),
        );
        eng.exec_op_at(home, txn, Op::read(part, 1)).unwrap();
        eng.exec_op_at(home, txn, Op::write(part, 1)).unwrap();
        assert!(
            eng.validate_at(home, txn),
            "prepare-lock taken at the old primary"
        );

        // Remaster completes between prepare and commit.
        let d = eng.cluster.begin_remaster(part, sec, eng.now()).unwrap();
        eng.cluster.finish_remaster(part, d);
        assert_eq!(eng.cluster.placement.primary_of(part), sec);

        // Commit decision arrives at the old primary: no install possible,
        // but the lock must be released everywhere.
        eng.install_at(home, txn);
        for holder in eng.cluster.placement.replica_nodes(part) {
            let row = eng
                .cluster
                .store(holder, part)
                .unwrap()
                .table
                .get(1)
                .unwrap();
            assert!(row.lock.is_none(), "lock leaked on {holder}");
        }
        // A later transaction can lock the row at the new primary.
        let txn2 = eng.inject_txn(ClientId(1), TxnRequest::new(vec![Op::write(part, 1)]));
        eng.txn_mut(txn2)
            .write_set
            .push(crate::txn::WriteEntry { part, key: 1 });
        assert!(eng.validate_at(sec, txn2), "row must not be poisoned");
    }

    #[test]
    fn scripted_crash_fails_over_and_keeps_committing() {
        let mut cfg = EngineConfig::from(tiny_cfg());
        cfg.faults = lion_faults::FaultPlan::new().crash_at(SECOND / 8, NodeId(1));
        let mut eng = Engine::new(cfg, uniform_workload(4));
        let report = eng.run(&mut TrivialProto, SECOND / 2);
        assert_eq!(report.crashes, 1);
        assert_eq!(
            report.failovers, 2,
            "both partitions primaried on N1 must promote their secondary"
        );
        assert_eq!(eng.cluster.placement.primaries_on(NodeId(1)), 0);
        assert!(!eng.cluster.is_up(NodeId(1)));
        assert!(report.commits > 100, "commits continue after the crash");
        for f in &eng.metrics.failover_log {
            assert_eq!(
                f.promoted_head, f.dead_head,
                "log continuity across failover"
            );
        }
        assert_eq!(report.unavailability_windows, 2);
        assert!(report.mean_recovery_latency_us >= eng.cfg.sim.failure_detect_us as f64);
        eng.cluster.check_invariants().unwrap();
    }

    #[test]
    fn crash_and_recover_restores_replica_coverage() {
        let mut cfg = EngineConfig::from(tiny_cfg());
        cfg.faults = lion_faults::FaultPlan::single_failure(SECOND / 8, NodeId(1), SECOND / 4);
        let mut eng = Engine::new(cfg, uniform_workload(4));
        let report = eng.run(&mut TrivialProto, SECOND);
        assert!(eng.cluster.is_up(NodeId(1)));
        assert_eq!(report.crashes, 1);
        assert!(
            report.replica_adds > 0,
            "recovered node re-joins via snapshot copies"
        );
        // After the rejoin copies land, every partition is fully replicated
        // again (replication factor 2).
        for p in 0..eng.cluster.n_partitions() {
            assert_eq!(
                eng.cluster.placement.replica_count(PartitionId(p as u32)),
                2,
                "P{p} must be back to full replication"
            );
        }
        eng.cluster.check_invariants().unwrap();
    }

    /// Regression: crashing the promotion target mid-promotion must not
    /// panic. With a third replica the failover re-plans onto it; with none
    /// left the partition stalls until the original primary recovers.
    #[test]
    fn crashing_the_promotion_target_replans_onto_survivor() {
        let mut sim = tiny_cfg();
        sim.nodes = 3;
        sim.replication_factor = 3; // primary + 2 secondaries
        let mut cfg = EngineConfig::from(sim);
        // N1 is P1's primary; its failover (to N2, the lowest-id secondary)
        // is still inside the ~53ms detect+handoff window when N2 dies too.
        cfg.faults = lion_faults::FaultPlan::new()
            .crash_at(SECOND / 8, NodeId(1))
            .crash_at(SECOND / 8 + 20_000, NodeId(2));
        let mut eng = Engine::new(cfg, uniform_workload(4));
        let report = eng.run(&mut TrivialProto, SECOND / 2);
        assert_eq!(report.crashes, 2);
        // Every partition ends up primaried on the only survivor, N0.
        for p in 0..eng.cluster.n_partitions() {
            assert_eq!(
                eng.cluster.placement.primary_of(PartitionId(p as u32)),
                NodeId(0)
            );
        }
        assert!(report.commits > 0, "the survivor keeps committing");
        for f in &eng.metrics.failover_log {
            assert_eq!(
                f.to,
                NodeId(0),
                "re-planned promotions land on the survivor"
            );
            assert_eq!(
                f.promoted_head, f.dead_head,
                "log continuity survives the re-plan"
            );
        }
        eng.cluster.check_invariants().unwrap();
    }

    #[test]
    fn crashing_the_only_promotion_target_stalls_until_recovery() {
        let mut sim = tiny_cfg();
        sim.nodes = 3;
        sim.partitions_per_node = 1; // P0@N0, P1@N1, P2@N2; rf 2
        let mut cfg = EngineConfig::from(sim);
        // P1 fails over toward N2; N2 dies mid-promotion leaving no replica
        // of P1 — it must stall, then resume when N1 restarts.
        cfg.faults = lion_faults::FaultPlan::new()
            .crash_at(SECOND / 8, NodeId(1))
            .crash_at(SECOND / 8 + 20_000, NodeId(2))
            .recover_at(SECOND / 4, NodeId(1));
        let mut eng = Engine::new(cfg, uniform_workload(3));
        let report = eng.run(&mut TrivialProto, SECOND);
        assert_eq!(report.crashes, 2);
        assert!(eng.cluster.is_up(NodeId(1)));
        assert_eq!(
            eng.cluster.placement.primary_of(PartitionId(1)),
            NodeId(1),
            "stalled partition restores in place on recovery"
        );
        assert!(!eng.cluster.parts[1].primary_down);
        assert!(report.commits > 0);
        eng.cluster.check_invariants().unwrap();
    }

    #[test]
    #[should_panic(expected = "invalid fault plan")]
    fn invalid_fault_plan_is_rejected_at_run_start() {
        let mut cfg = EngineConfig::from(tiny_cfg());
        cfg.faults = lion_faults::FaultPlan::new().crash_at(10, NodeId(9));
        let mut eng = Engine::new(cfg, uniform_workload(4));
        eng.run(&mut TrivialProto, SECOND / 10);
    }

    /// A plan that crashes every replica holder of some partition with no
    /// recovery in the script would stall the run forever; the validator
    /// must reject it before a single event fires.
    #[test]
    #[should_panic(expected = "invalid fault plan")]
    fn orphaning_fault_plan_is_rejected_at_run_start() {
        let mut sim = tiny_cfg();
        sim.nodes = 3;
        sim.replication_factor = 2; // P0 lives on {N0, N1} only
        let mut cfg = EngineConfig::from(sim);
        cfg.faults = lion_faults::FaultPlan::new()
            .crash_at(10, NodeId(0))
            .crash_at(20, NodeId(1));
        let mut eng = Engine::new(cfg, uniform_workload(6));
        eng.run(&mut TrivialProto, SECOND / 10);
    }

    /// Correlated loss: both nodes of a rack die on one virtual-clock tick.
    /// The 4-node/2-zone round-robin layout leaves some partitions wholly
    /// inside the dead rack (they stall until the heal) while others fail
    /// over to the surviving rack — both paths on the same event.
    #[test]
    fn zone_crash_takes_the_rack_down_atomically() {
        let mut sim = tiny_cfg();
        sim.nodes = 4;
        sim.zones = 2; // Z0 = {N0, N1}, Z1 = {N2, N3}
        let mut cfg = EngineConfig::from(sim);
        cfg.faults =
            lion_faults::FaultPlan::zone_failure(SECOND / 8, lion_common::ZoneId(1), SECOND / 2);
        let mut eng = Engine::new(cfg, uniform_workload(8));
        let report = eng.run(&mut TrivialProto, SECOND);
        assert_eq!(report.zone_crashes, 1);
        assert_eq!(report.crashes, 2, "both rack members died");
        assert!(eng.cluster.is_up(NodeId(2)) && eng.cluster.is_up(NodeId(3)));
        // Round-robin rf=2: P2 = {N2, N3} is rack-local and must stall;
        // P1 = {N1, N2} and P3 = {N3, N0} keep a live replica and fail over.
        assert!(report.stalled_partitions > 0, "rack-local partitions stall");
        assert!(report.failovers > 0, "cross-rack partitions promote");
        assert!(report.commits > 100, "survivors keep committing");
        eng.cluster.check_invariants().unwrap();
    }

    /// Under rack-safe placement the same rack loss leaves every partition
    /// a live replica: zero stalls, every orphaned partition fails over.
    #[test]
    fn rack_safe_placement_survives_zone_crash_without_stalls() {
        let mut sim = tiny_cfg();
        sim.nodes = 4;
        sim.zones = 2;
        sim.placement = lion_common::PlacementPolicy::RackSafe { min_zones: 2 };
        let mut cfg = EngineConfig::from(sim);
        cfg.faults =
            lion_faults::FaultPlan::zone_failure(SECOND / 8, lion_common::ZoneId(1), SECOND / 2);
        let mut eng = Engine::new(cfg, uniform_workload(8));
        let report = eng.run(&mut TrivialProto, SECOND);
        assert_eq!(report.zone_crashes, 1);
        assert_eq!(
            report.stalled_partitions, 0,
            "rack-safe placement must leave every partition promotable"
        );
        // Every partition primaried in the dead rack failed over to Z0.
        assert!(report.failovers > 0);
        for p in 0..eng.cluster.n_partitions() {
            let primary = eng.cluster.placement.primary_of(PartitionId(p as u32));
            assert!(eng.cluster.is_up(primary));
        }
        assert!(report.commits > 100);
        eng.cluster.check_invariants().unwrap();
    }

    #[test]
    fn ack_at_commit_mirrors_commit_latency() {
        let mut eng = Engine::new(tiny_cfg(), uniform_workload(4));
        let report = eng.run(&mut TrivialProto, SECOND / 2);
        assert_eq!(report.acked, report.commits, "every commit acks instantly");
        assert_eq!(report.mean_ack_latency_us, report.mean_latency_us);
        assert_eq!(report.epochs_sealed, 0, "no epochs without the subsystem");
        assert_eq!(report.acked_then_lost, 0, "no crash, no hole");
    }

    #[test]
    fn epoch_commit_defers_acks_to_epoch_boundaries() {
        let mut cfg = EngineConfig::from(tiny_cfg());
        cfg.durability = lion_durability::DurabilityConfig::epoch(5_000);
        let mut eng = Engine::new(cfg, uniform_workload(4));
        let report = eng.run(&mut TrivialProto, SECOND / 2);
        assert!(report.commits > 100, "commits {}", report.commits);
        assert!(report.epochs_sealed > 10, "sealed {}", report.epochs_sealed);
        assert!(report.acked > 0);
        assert!(
            report.acked <= report.commits,
            "acks can only trail commits (the last epochs are still open)"
        );
        // A client-visible ack pays the epoch residency + replication
        // transit on top of the commit latency.
        assert!(
            report.mean_ack_latency_us > report.mean_latency_us,
            "ack {:.0}us must exceed commit {:.0}us",
            report.mean_ack_latency_us,
            report.mean_latency_us
        );
        // Closed-loop clients stall on the ack, so the whole run's mean ack
        // latency sits near the epoch length.
        assert!(report.mean_ack_latency_us > 2_000.0);
        eng.cluster.check_invariants().unwrap();
    }

    #[test]
    fn epoch_zero_behaves_exactly_like_ack_at_commit() {
        let run = |durability| {
            let mut cfg = EngineConfig::from(tiny_cfg());
            cfg.durability = durability;
            let mut eng = Engine::new(cfg, uniform_workload(4));
            eng.run(&mut TrivialProto, SECOND / 4).digest()
        };
        assert_eq!(
            run(lion_durability::DurabilityConfig::default()),
            run(lion_durability::DurabilityConfig::epoch(0)),
            "epoch_commit_us = 0 must be byte-identical to the legacy mode"
        );
    }

    #[test]
    fn ack_at_commit_crash_loses_acked_commits() {
        // Crash between two 10 ms flushes: the commits acked since the last
        // flush live only in the dead primary's epoch buffer — the audit
        // must count them (a real deployment loses them after acking).
        let mut cfg = EngineConfig::from(tiny_cfg());
        cfg.faults = lion_faults::FaultPlan::new().crash_at(125_000, NodeId(1));
        let mut eng = Engine::new(cfg, uniform_workload(4));
        let report = eng.run(&mut TrivialProto, SECOND / 2);
        assert_eq!(report.crashes, 1);
        assert!(
            report.acked_then_lost > 0,
            "ack-at-commit must leak acked-but-unreplicated writes"
        );
        assert_eq!(report.epochs_aborted, 0);
    }

    #[test]
    fn epoch_commit_crash_retries_parked_acks_and_loses_nothing() {
        let mut cfg = EngineConfig::from(tiny_cfg());
        cfg.durability = lion_durability::DurabilityConfig::epoch(5_000);
        cfg.faults = lion_faults::FaultPlan::new().crash_at(126_000, NodeId(1));
        let mut eng = Engine::new(cfg, uniform_workload(4));
        let report = eng.run(&mut TrivialProto, SECOND / 2);
        assert_eq!(report.crashes, 1);
        assert_eq!(
            report.acked_then_lost, 0,
            "an ack never escapes ahead of its epoch's replication"
        );
        assert!(
            report.epochs_aborted > 0,
            "the open epoch dies with the node"
        );
        assert!(
            report.epoch_retried_acks > 0,
            "parked transactions retry instead of acking"
        );
        assert!(report.acked > 0, "acks resume after the failover");
        // The fence advanced past every pre-crash epoch.
        assert!(eng.epoch_manager().fence() > 0);
        eng.cluster.check_invariants().unwrap();
    }

    #[test]
    fn epoch_commit_acks_survive_in_batch_mode() {
        struct BatchCommit;
        impl Protocol for BatchCommit {
            fn name(&self) -> &'static str {
                "batch-commit"
            }
            fn batch_mode(&self) -> bool {
                true
            }
            fn on_submit(&mut self, _: &mut Engine, _: TxnId) {}
            fn on_wake(&mut self, eng: &mut Engine, txn: TxnId, _tag: u32) {
                eng.commit(txn);
            }
            fn on_batch(&mut self, eng: &mut Engine, batch: &[TxnId]) {
                for &t in batch {
                    let home = eng.cluster.placement.primary_of(eng.txn(t).parts[0]);
                    eng.txn_mut(t).home = home;
                    let _ = eng.exec_local_ops(home, t);
                    eng.cpu(home, Phase::Execution, 20, t, 0);
                }
            }
        }
        let mut sim = tiny_cfg();
        sim.batch_size = 32;
        let mut cfg = EngineConfig::from(sim);
        cfg.durability = lion_durability::DurabilityConfig::epoch(5_000);
        let mut eng = Engine::new(cfg, uniform_workload(4));
        let report = eng.run(&mut BatchCommit, SECOND / 5);
        assert!(report.commits >= 64, "batches keep flowing while acks park");
        assert!(report.acked > 0, "parked batch acks release at durability");
        assert!(report.mean_ack_latency_us >= report.mean_latency_us);
    }

    #[test]
    fn batch_mode_arms_batches() {
        struct BatchNoop;
        impl Protocol for BatchNoop {
            fn name(&self) -> &'static str {
                "batch-noop"
            }
            fn batch_mode(&self) -> bool {
                true
            }
            fn on_submit(&mut self, _: &mut Engine, _: TxnId) {}
            fn on_wake(&mut self, eng: &mut Engine, txn: TxnId, _tag: u32) {
                eng.commit(txn);
            }
            fn on_batch(&mut self, eng: &mut Engine, batch: &[TxnId]) {
                for &t in batch {
                    let home = eng.cluster.placement.primary_of(eng.txn(t).parts[0]);
                    eng.txn_mut(t).home = home;
                    let _ = eng.exec_local_ops(home, t);
                    eng.cpu(home, Phase::Execution, 20, t, 0);
                }
            }
        }
        let mut cfg = tiny_cfg();
        cfg.batch_size = 32;
        let mut eng = Engine::new(cfg, uniform_workload(4));
        let report = eng.run(&mut BatchNoop, SECOND / 5);
        assert!(
            report.commits >= 64,
            "at least two batches: {}",
            report.commits
        );
        assert_eq!(report.commits % 32, 0, "whole batches commit");
    }
}
