//! The discrete-event transaction engine.

use crate::metrics::Metrics;
use crate::protocol::{Protocol, TickKind};
use crate::report::RunReport;
use crate::txn::{ReadEntry, TxnClass, TxnCtx, WriteEntry};
use lion_cluster::{AdaptorError, Cluster};
use lion_common::{
    ClientId, NodeId, Op, OpKind, PartitionId, Phase, SimConfig, Time, TxnId, TxnRecord,
    TxnRequest, Workload,
};
use lion_sim::EventQueue;
use lion_storage::{OpOutcome, Table};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::HashMap;

/// Engine-level configuration on top of the cluster's [`SimConfig`].
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Cluster + protocol timing knobs.
    pub sim: SimConfig,
    /// Planner tick interval (workload analysis + rearrangement, §III).
    pub plan_interval_us: Time,
    /// Monitoring tick interval (load sampling).
    pub monitor_interval_us: Time,
    /// Retained routed-transaction records between planner drains.
    pub history_cap: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            sim: SimConfig::default(),
            plan_interval_us: 2_000_000,
            monitor_interval_us: 1_000_000,
            history_cap: 60_000,
        }
    }
}

impl From<SimConfig> for EngineConfig {
    fn from(sim: SimConfig) -> Self {
        EngineConfig { sim, ..Default::default() }
    }
}

/// Why a data operation could not run right now.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpFail {
    /// The partition is blocked by an in-flight remaster/migration; retry
    /// after the given time.
    Blocked {
        /// Earliest time the partition is available again.
        until: Time,
    },
    /// The node no longer hosts the primary (placement moved underneath).
    NotPrimary {
        /// Current primary holder.
        primary: NodeId,
    },
    /// The row is prepare-locked by a conflicting transaction.
    Locked,
}

/// Adaptor completions scheduled on the virtual clock.
#[derive(Debug, Clone, Copy)]
enum AdaptorFinish {
    Remaster(PartitionId),
    AddReplica { part: PartitionId, node: NodeId, then_remaster: bool },
    Migrate(PartitionId),
}

/// Engine events.
enum Ev {
    ClientNext(ClientId),
    Wake { txn: TxnId, tag: u32 },
    Retry(TxnId),
    Epoch,
    Plan,
    Monitor,
    Adaptor(AdaptorFinish),
    BatchArm,
}

/// The simulation engine: cluster + event queue + transaction contexts.
pub struct Engine {
    /// The simulated cluster (placement, stores, workers, adaptor state).
    pub cluster: Cluster,
    /// Metrics collected so far.
    pub metrics: Metrics,
    /// Deterministic RNG for protocol-side choices.
    pub rng: SmallRng,
    cfg: EngineConfig,
    queue: EventQueue<Ev>,
    txns: HashMap<u64, TxnCtx>,
    workload: Box<dyn Workload>,
    next_txn: u64,
    history: Vec<TxnRecord>,
    horizon: Time,
    batch_mode: bool,
    batch_outstanding: usize,
    deferred: Vec<TxnId>,
    window_busy: Vec<Time>,
    submitted: u64,
}

impl Engine {
    /// Builds an engine over a fresh cluster and the given workload.
    pub fn new(cfg: impl Into<EngineConfig>, workload: Box<dyn Workload>) -> Self {
        let cfg: EngineConfig = cfg.into();
        let cluster = Cluster::new(cfg.sim.clone());
        let nodes = cfg.sim.nodes;
        Engine {
            rng: SmallRng::seed_from_u64(cfg.sim.seed),
            cluster,
            metrics: Metrics::new(),
            cfg,
            queue: EventQueue::new(),
            txns: HashMap::new(),
            workload,
            next_txn: 0,
            history: Vec::new(),
            horizon: 0,
            batch_mode: false,
            batch_outstanding: 0,
            deferred: Vec::new(),
            window_busy: vec![0; nodes],
            submitted: 0,
        }
    }

    /// Current virtual time.
    #[inline]
    pub fn now(&self) -> Time {
        self.queue.now()
    }

    /// Engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// Immutable transaction context.
    pub fn txn(&self, id: TxnId) -> &TxnCtx {
        &self.txns[&id.0]
    }

    /// Mutable transaction context.
    pub fn txn_mut(&mut self, id: TxnId) -> &mut TxnCtx {
        self.txns.get_mut(&id.0).expect("live transaction")
    }

    /// True when the context is still live (not committed).
    pub fn is_live(&self, id: TxnId) -> bool {
        self.txns.contains_key(&id.0)
    }

    /// The executor node that "owns" a client (Leap executes transactions at
    /// the node they arrive on).
    pub fn origin_node(&self, client: ClientId) -> NodeId {
        NodeId((client.idx() % self.cfg.sim.nodes) as u16)
    }

    /// Total submitted transactions.
    pub fn submitted(&self) -> u64 {
        self.submitted
    }

    /// Busy µs per node accumulated during the last monitoring window.
    pub fn node_window_busy(&self) -> &[Time] {
        &self.window_busy
    }

    /// Drains the routed-transaction records accumulated since the last call
    /// (the planner's analysis batch B).
    pub fn drain_history(&mut self) -> Vec<TxnRecord> {
        std::mem::take(&mut self.history)
    }

    // ----------------------------------------------------------------
    // Main loop
    // ----------------------------------------------------------------

    /// Runs the protocol until the virtual clock reaches `horizon`, then
    /// summarizes the run.
    pub fn run(&mut self, proto: &mut dyn Protocol, horizon: Time) -> RunReport {
        self.horizon = horizon;
        self.batch_mode = proto.batch_mode();
        self.queue.schedule(self.cfg.sim.epoch_us, Ev::Epoch);
        self.queue.schedule(self.cfg.plan_interval_us, Ev::Plan);
        self.queue.schedule(self.cfg.monitor_interval_us, Ev::Monitor);
        if self.batch_mode {
            self.queue.schedule(0, Ev::BatchArm);
        } else {
            for c in 0..self.cfg.sim.total_clients() {
                // Slight stagger avoids a same-instant thundering herd.
                self.queue.schedule((c % 97) as Time, Ev::ClientNext(ClientId(c as u32)));
            }
        }

        while let Some(at) = self.queue.peek_time() {
            if at >= horizon {
                break;
            }
            let (_, ev) = self.queue.pop().expect("peeked");
            match ev {
                Ev::ClientNext(client) => {
                    let id = self.create_txn(client);
                    proto.on_submit(self, id);
                }
                Ev::Wake { txn, tag } => {
                    if self.is_live(txn) {
                        proto.on_wake(self, txn, tag);
                    }
                }
                Ev::Retry(txn) => {
                    if self.is_live(txn) {
                        proto.on_submit(self, txn);
                    }
                }
                Ev::Epoch => {
                    let now = self.now();
                    let bytes = self.cluster.epoch_flush_all();
                    self.metrics.replication_bytes += bytes;
                    self.metrics.bytes_series.add(now, bytes as f64);
                    self.queue.schedule(self.cfg.sim.epoch_us, Ev::Epoch);
                }
                Ev::Plan => {
                    proto.on_tick(self, TickKind::Planner);
                    self.cluster.freq.roll_window();
                    self.queue.schedule(self.cfg.plan_interval_us, Ev::Plan);
                }
                Ev::Monitor => {
                    for (n, w) in self.window_busy.iter_mut().enumerate() {
                        *w = self.cluster.workers[n].take_window_busy();
                    }
                    proto.on_tick(self, TickKind::Monitor);
                    self.queue.schedule(self.cfg.monitor_interval_us, Ev::Monitor);
                }
                Ev::Adaptor(fin) => self.finish_adaptor(fin),
                Ev::BatchArm => {
                    let batch = self.arm_batch();
                    if !batch.is_empty() {
                        self.batch_outstanding = batch.len();
                        proto.on_batch(self, &batch);
                    }
                }
            }
        }
        RunReport::build(proto.name(), self, horizon)
    }

    fn create_txn(&mut self, client: ClientId) -> TxnId {
        let now = self.now();
        let req = self.workload.next_txn(now);
        let id = TxnId(self.next_txn);
        self.next_txn += 1;
        self.submitted += 1;
        let ctx = TxnCtx::new(id, client, req, now);
        if self.history.len() < self.cfg.history_cap {
            self.history.push(TxnRecord { at: now, parts: ctx.parts.clone() });
        }
        self.txns.insert(id.0, ctx);
        id
    }

    fn arm_batch(&mut self) -> Vec<TxnId> {
        let now = self.now();
        if now >= self.horizon {
            return Vec::new();
        }
        let mut batch: Vec<TxnId> = Vec::with_capacity(self.cfg.sim.batch_size);
        batch.append(&mut self.deferred);
        while batch.len() < self.cfg.sim.batch_size {
            // Batch distributors pull from the open stream (§IV-D buffers
            // until the batch size or time window is reached).
            let client = ClientId((batch.len() % self.cfg.sim.total_clients()) as u32);
            batch.push(self.create_txn(client));
        }
        batch
    }

    fn finish_adaptor(&mut self, fin: AdaptorFinish) {
        let now = self.now();
        match fin {
            AdaptorFinish::Remaster(part) => {
                let to = self.cluster.parts[part.idx()].remastering;
                if std::env::var_os("LION_TRACE").is_some() {
                    eprintln!("[{now}] remaster {part} -> {to:?}");
                }
                let bytes = self.cluster.finish_remaster(part, now);
                self.metrics.remasters += 1;
                self.metrics.remaster_series.incr(now);
                self.metrics.replication_bytes += bytes;
                self.metrics.bytes_series.add(now, bytes as f64);
            }
            AdaptorFinish::AddReplica { part, node, then_remaster } => {
                let evicted = self.cluster.finish_add_replica(part, node, now);
                self.metrics.replica_adds += 1;
                if evicted.is_some() {
                    self.metrics.replica_evictions += 1;
                }
                if then_remaster {
                    match self.cluster.begin_remaster(part, node, now) {
                        Ok(d) => self.queue.schedule(d, Ev::Adaptor(AdaptorFinish::Remaster(part))),
                        Err(AdaptorError::AlreadyPrimary { .. }) => {}
                        Err(_) => self.metrics.remaster_conflicts += 1,
                    }
                }
            }
            AdaptorFinish::Migrate(part) => {
                self.cluster.finish_migration(part, now);
                self.metrics.migrations += 1;
                self.metrics.migration_series.incr(now);
            }
        }
    }

    // ----------------------------------------------------------------
    // Timing primitives
    // ----------------------------------------------------------------

    /// Occupies one of `node`'s workers for `dur` µs, waking `(txn, tag)` on
    /// completion. Queue wait is booked as `Scheduling`; service as `phase`.
    pub fn cpu(&mut self, node: NodeId, phase: Phase, dur: Time, txn: TxnId, tag: u32) {
        let now = self.now();
        let grant = self.cluster.workers[node.idx()].acquire(now, dur);
        let wait = grant.queue_wait(now);
        let ctx = self.txn_mut(txn);
        ctx.phase_us[Phase::Scheduling.idx()] += wait;
        ctx.phase_us[phase.idx()] += dur;
        self.queue.schedule_at(grant.end, Ev::Wake { txn, tag });
    }

    /// One-way message of `bytes` payload; wakes `(txn, tag)` on delivery.
    pub fn net(&mut self, bytes: u32, phase: Phase, txn: TxnId, tag: u32) {
        let now = self.now();
        let d = self.cluster.net_delay(bytes);
        self.metrics.add_bytes(now, (bytes + self.cfg.sim.net.msg_overhead_bytes) as u64);
        self.txn_mut(txn).phase_us[phase.idx()] += d;
        self.queue.schedule(d, Ev::Wake { txn, tag });
    }

    /// Accounting-only one-way message (no wake), e.g. 2PC commit decisions
    /// whose acks the coordinator does not wait for.
    pub fn net_fire_and_forget(&mut self, bytes: u32) {
        let now = self.now();
        self.metrics.add_bytes(now, (bytes + self.cfg.sim.net.msg_overhead_bytes) as u64);
    }

    /// Request/response round from `from` to a remote node including remote
    /// CPU: request latency + worker queueing + service + response latency,
    /// as a single scheduled wake (the worker slot is reserved at request
    /// arrival). The origin node is charged message-handling CPU for the
    /// send and the response — the coordination work that makes distributed
    /// transactions expensive on their coordinator.
    pub fn remote_round(
        &mut self,
        from: NodeId,
        to: NodeId,
        bytes_req: u32,
        bytes_resp: u32,
        remote_cpu: Time,
        phase: Phase,
        txn: TxnId,
        tag: u32,
    ) {
        let now = self.now();
        let overhead = self.cfg.sim.net.msg_overhead_bytes;
        let handling = 2 * self.cfg.sim.cpu.msg_handle_us;
        let _ = self.cluster.workers[from.idx()].acquire(now, handling);
        let d1 = self.cluster.net_delay(bytes_req);
        let grant = self.cluster.workers[to.idx()].acquire(now + d1, remote_cpu);
        let d2 = self.cluster.net_delay(bytes_resp);
        self.metrics.add_bytes(now, (bytes_req + overhead) as u64 + (bytes_resp + overhead) as u64);
        let ctx = self.txn_mut(txn);
        ctx.phase_us[Phase::Scheduling.idx()] += grant.queue_wait(now + d1);
        ctx.phase_us[phase.idx()] += d1 + remote_cpu + d2;
        self.queue.schedule_at(grant.end + d2, Ev::Wake { txn, tag });
    }

    /// Pure wait (remaster hand-off, migration blackout, barrier).
    pub fn sleep(&mut self, dur: Time, phase: Phase, txn: TxnId, tag: u32) {
        self.txn_mut(txn).phase_us[phase.idx()] += dur;
        self.queue.schedule(dur, Ev::Wake { txn, tag });
    }

    /// Wake `(txn, tag)` at an absolute virtual time (batch protocols that
    /// compute completion times arithmetically).
    pub fn wake_at(&mut self, at: Time, txn: TxnId, tag: u32) {
        self.queue.schedule_at(at, Ev::Wake { txn, tag });
    }

    /// Books `us` of `phase` time on `txn` without scheduling anything
    /// (batch protocols account phases while computing times arithmetically).
    pub fn charge_phase(&mut self, txn: TxnId, phase: Phase, us: Time) {
        self.txn_mut(txn).phase_us[phase.idx()] += us;
    }

    /// Acquires a worker at `node` without scheduling a wake; returns the
    /// service interval. Batch protocols compose these grants into
    /// per-transaction completion times.
    pub fn cpu_grant(&mut self, node: NodeId, at: Time, dur: Time) -> (Time, Time) {
        let grant = self.cluster.workers[node.idx()].acquire(at, dur);
        (grant.start, grant.end)
    }

    // ----------------------------------------------------------------
    // Fan-out joins
    // ----------------------------------------------------------------

    /// Starts a fan-out of `n` branches on `txn`.
    pub fn join_begin(&mut self, txn: TxnId, n: u32) {
        let ctx = self.txn_mut(txn);
        ctx.pending = n;
        ctx.failed = false;
    }

    /// Records one branch arrival. Returns `None` while branches remain,
    /// `Some(all_ok)` when the last branch lands.
    pub fn join_arrive(&mut self, txn: TxnId, ok: bool) -> Option<bool> {
        let ctx = self.txn_mut(txn);
        debug_assert!(ctx.pending > 0, "join_arrive without join_begin");
        ctx.pending -= 1;
        ctx.failed |= !ok;
        if ctx.pending == 0 {
            Some(!ctx.failed)
        } else {
            None
        }
    }

    // ----------------------------------------------------------------
    // Data operations (instantaneous state transitions; timing is the
    // protocol's job via the primitives above)
    // ----------------------------------------------------------------

    /// Executes one declared operation at `node` (which must currently hold
    /// the primary): reads record versions, writes are buffered.
    pub fn exec_op_at(&mut self, node: NodeId, txn: TxnId, op: Op) -> Result<(), OpFail> {
        let now = self.now();
        let part = op.partition;
        let until = self.cluster.available_at(part);
        if until > now {
            return Err(OpFail::Blocked { until });
        }
        if !self.cluster.placement.is_primary(part, node) {
            return Err(OpFail::NotPrimary { primary: self.cluster.placement.primary_of(part) });
        }
        self.cluster.freq.record_access(part, node, now);
        match op.kind {
            OpKind::Read => {
                let store = self.cluster.store_mut(node, part).expect("primary store");
                match store.table.occ_read(op.key, txn) {
                    OpOutcome::Ok { version } => {
                        self.txn_mut(txn).read_set.push(ReadEntry {
                            part,
                            key: op.key,
                            version,
                        });
                        Ok(())
                    }
                    _ => Err(OpFail::Locked),
                }
            }
            OpKind::Write => {
                self.txn_mut(txn).write_set.push(WriteEntry { part, key: op.key });
                Ok(())
            }
        }
    }

    /// Executes every operation of `txn` whose partition primary is at
    /// `node`. Stops at the first failure.
    pub fn exec_local_ops(&mut self, node: NodeId, txn: TxnId) -> Result<usize, OpFail> {
        let ops: Vec<Op> = self
            .txn(txn)
            .req
            .ops
            .iter()
            .copied()
            .filter(|o| self.cluster.placement.is_primary(o.partition, node))
            .collect();
        let n = ops.len();
        for op in ops {
            self.exec_op_at(node, txn, op)?;
        }
        Ok(n)
    }

    /// CPU demand for executing `n_reads` + `n_writes` operations.
    pub fn op_cpu(&self, n_reads: usize, n_writes: usize) -> Time {
        let c = &self.cfg.sim.cpu;
        c.read_us * n_reads as u64 + c.write_us * n_writes as u64
    }

    /// OCC validation at `node`: prepare-locks the write set and validates
    /// the read set for partitions whose primary is at `node`. On failure,
    /// locks taken here are released and `false` is returned.
    pub fn validate_at(&mut self, node: NodeId, txn: TxnId) -> bool {
        let id = txn;
        let writes: Vec<WriteEntry> = self
            .txn(txn)
            .write_set
            .iter()
            .copied()
            .filter(|w| self.cluster.placement.is_primary(w.part, node))
            .collect();
        let reads: Vec<ReadEntry> = self
            .txn(txn)
            .read_set
            .iter()
            .copied()
            .filter(|r| self.cluster.placement.is_primary(r.part, node))
            .collect();

        let mut locked: Vec<WriteEntry> = Vec::with_capacity(writes.len());
        let mut ok = true;
        for w in &writes {
            let store = self.cluster.store_mut(node, w.part).expect("primary store");
            if store.table.occ_lock(w.key, id).is_ok() {
                locked.push(*w);
            } else {
                ok = false;
                break;
            }
        }
        if ok {
            for r in &reads {
                let store = self.cluster.store(node, r.part).expect("primary store");
                if !store.table.occ_validate_read(r.key, r.version, id).is_ok() {
                    ok = false;
                    break;
                }
            }
        }
        if !ok {
            for w in locked {
                if let Some(store) = self.cluster.store_mut(node, w.part) {
                    store.table.occ_unlock(w.key, id);
                }
            }
        }
        ok
    }

    /// Installs `txn`'s writes at `node` (partitions whose primary is
    /// local): stores synthesized payloads, bumps versions, appends to the
    /// replication log. Must follow a successful [`Engine::validate_at`].
    ///
    /// A partition whose primary moved away between prepare-validation and
    /// the commit decision (a remaster raced the 2PC window) can no longer
    /// install here; its prepare-locks are released on every replica holder
    /// instead — leaving them would poison the rows forever once the
    /// partition remasters back.
    pub fn install_at(&mut self, node: NodeId, txn: TxnId) {
        let value_size = self.cfg.sim.value_size;
        let attempt = self.txn(txn).attempts as u64;
        let writes: Vec<WriteEntry> = self.txn(txn).write_set.clone();
        for w in writes {
            if !self.cluster.placement.is_primary(w.part, node) {
                if self.cluster.store(node, w.part).is_some() {
                    for holder in self.cluster.placement.replica_nodes(w.part) {
                        if let Some(store) = self.cluster.store_mut(holder, w.part) {
                            store.table.occ_unlock(w.key, txn);
                        }
                    }
                }
                continue;
            }
            let stamp = txn.0.wrapping_mul(31).wrapping_add(attempt);
            let value = Table::synth_value(w.key, stamp, value_size);
            let store = self.cluster.store_mut(node, w.part).expect("primary store");
            let version = store.table.occ_install(w.key, txn, value.clone());
            store.log.append(w.part, w.key, version, value);
        }
    }

    /// Installs `txn`'s writes directly at their current primaries without
    /// prepare-locks. Used by protocols whose write phase is conflict-free by
    /// construction (Star's serial single-master phase, deterministic
    /// protocols whose lock schedule already serialized the writers).
    pub fn install_unchecked(&mut self, txn: TxnId) {
        let value_size = self.cfg.sim.value_size;
        let attempt = self.txn(txn).attempts as u64;
        let writes: Vec<WriteEntry> = self.txn(txn).write_set.clone();
        for w in writes {
            let stamp = txn.0.wrapping_mul(31).wrapping_add(attempt);
            let value = Table::synth_value(w.key, stamp, value_size);
            let primary = self.cluster.placement.primary_of(w.part);
            let store = self.cluster.store_mut(primary, w.part).expect("primary store");
            let version = store.table.occ_install(w.key, txn, value.clone());
            store.log.append(w.part, w.key, version, value);
        }
    }

    /// Records the write set of `txn` from its declared ops without
    /// executing reads (deterministic protocols declare sets up front).
    pub fn load_declared_sets(&mut self, txn: TxnId) {
        let ops: Vec<Op> = self.txn(txn).req.ops.clone();
        for op in ops {
            match op.kind {
                OpKind::Read => {}
                OpKind::Write => {
                    self.txn_mut(txn).write_set.push(WriteEntry { part: op.partition, key: op.key })
                }
            }
        }
    }

    /// Releases any prepare-locks `txn` may hold anywhere (abort path). Scans
    /// every replica holder so racing placement changes cannot leak locks.
    pub fn release_all(&mut self, txn: TxnId) {
        let writes: Vec<WriteEntry> = self.txn(txn).write_set.clone();
        for w in writes {
            for node in self.cluster.placement.replica_nodes(w.part) {
                if let Some(store) = self.cluster.store_mut(node, w.part) {
                    store.table.occ_unlock(w.key, txn);
                }
            }
        }
    }

    /// Synchronous prepare-log replication at a participant (§II-A: "each
    /// participant ... replicates its prepare log to the corresponding
    /// secondary replicas"). Books the max secondary round trip as
    /// `Replication` time and wakes `(txn, tag)`.
    pub fn replicate_prepare(&mut self, node: NodeId, txn: TxnId, tag: u32) {
        let parts: Vec<PartitionId> = {
            let ctx = self.txn(txn);
            let mut ps: Vec<PartitionId> = ctx
                .write_set
                .iter()
                .map(|w| w.part)
                .filter(|&p| self.cluster.placement.is_primary(p, node))
                .collect();
            ps.sort_unstable();
            ps.dedup();
            ps
        };
        let now = self.now();
        let overhead = self.cfg.sim.net.msg_overhead_bytes as u64;
        let mut max_rtt = 0;
        for part in parts {
            let writes_here =
                self.txn(txn).write_set.iter().filter(|w| w.part == part).count() as u32;
            let bytes = writes_here * (self.cfg.sim.value_size + 32);
            let n_secs = self.cluster.placement.secondaries_of(part).len() as u64;
            if n_secs == 0 {
                continue;
            }
            let rtt = self.cluster.net_delay(bytes) + self.cluster.net_delay(0);
            max_rtt = max_rtt.max(rtt);
            self.metrics
                .add_bytes(now, n_secs * (bytes as u64 + 2 * overhead));
        }
        if max_rtt == 0 {
            // No secondaries / read-only at this participant: complete now.
            self.queue.schedule(0, Ev::Wake { txn, tag });
        } else {
            self.txn_mut(txn).phase_us[Phase::Replication.idx()] += max_rtt;
            self.queue.schedule(max_rtt, Ev::Wake { txn, tag });
        }
    }

    // ----------------------------------------------------------------
    // Completion
    // ----------------------------------------------------------------

    /// Commits `txn`: records metrics, frees the context, and (standard
    /// mode) immediately re-arms the issuing client.
    pub fn commit(&mut self, txn: TxnId) {
        let now = self.now();
        let ctx = self.txns.remove(&txn.0).expect("live transaction");
        self.metrics.commits += 1;
        self.metrics.commits_series.incr(now);
        self.metrics.latency.record(now.saturating_sub(ctx.start));
        match ctx.class {
            TxnClass::SingleNode => self.metrics.single_node += 1,
            TxnClass::Remastered => self.metrics.remastered += 1,
            TxnClass::Distributed => self.metrics.distributed += 1,
        }
        for (i, &us) in ctx.phase_us.iter().enumerate() {
            self.metrics.phase_us[i] += us as u128;
        }
        if self.batch_mode {
            self.batch_done_one();
        } else {
            self.queue.schedule(1, Ev::ClientNext(ctx.client));
        }
    }

    /// Aborts the current attempt and schedules a retry after the configured
    /// back-off (standard mode).
    pub fn abort_retry(&mut self, txn: TxnId) {
        let now = self.now();
        self.metrics.aborts += 1;
        self.release_all(txn);
        let backoff = self.cfg.sim.retry_backoff_us;
        self.txn_mut(txn).reset_for_retry(now + backoff);
        self.queue.schedule(backoff, Ev::Retry(txn));
    }

    /// Aborts the current attempt and defers the transaction to the next
    /// batch (Aria-style carry-over; batch mode only).
    pub fn abort_defer(&mut self, txn: TxnId) {
        debug_assert!(self.batch_mode, "defer is a batch-mode operation");
        let now = self.now();
        self.metrics.aborts += 1;
        self.release_all(txn);
        self.txn_mut(txn).reset_for_retry(now);
        self.deferred.push(txn);
        self.batch_done_one();
    }

    fn batch_done_one(&mut self) {
        debug_assert!(self.batch_outstanding > 0);
        self.batch_outstanding -= 1;
        if self.batch_outstanding == 0 {
            self.queue.schedule(1, Ev::BatchArm);
        }
    }

    // ----------------------------------------------------------------
    // Adaptor scheduling
    // ----------------------------------------------------------------

    /// Starts an asynchronous remaster; the placement flips after the
    /// returned duration. Conflicting requests surface as `Err` (the caller
    /// decides whether to fall back to 2PC, §III).
    pub fn remaster_async(&mut self, part: PartitionId, to: NodeId) -> Result<Time, AdaptorError> {
        let now = self.now();
        match self.cluster.begin_remaster(part, to, now) {
            Ok(d) => {
                self.queue.schedule(d, Ev::Adaptor(AdaptorFinish::Remaster(part)));
                Ok(d)
            }
            Err(e) => {
                if matches!(e, AdaptorError::Busy(_)) {
                    self.metrics.remaster_conflicts += 1;
                }
                Err(e)
            }
        }
    }

    /// Starts a background replica copy; optionally chains a remaster once
    /// the copy lands (the planner's AddReplica action).
    pub fn add_replica_async(
        &mut self,
        part: PartitionId,
        to: NodeId,
        then_remaster: bool,
    ) -> Result<Time, AdaptorError> {
        let now = self.now();
        let (d, bytes) = self.cluster.begin_add_replica(part, to, now)?;
        self.metrics.migration_bytes += bytes;
        self.metrics.bytes_series.add(now, bytes as f64);
        self.queue
            .schedule(d, Ev::Adaptor(AdaptorFinish::AddReplica { part, node: to, then_remaster }));
        Ok(d)
    }

    /// Starts a blocking migration of `part`'s primary to `to`.
    pub fn migrate_async(&mut self, part: PartitionId, to: NodeId) -> Result<Time, AdaptorError> {
        let now = self.now();
        let (d, bytes) = self.cluster.begin_migration(part, to, now)?;
        self.metrics.migration_bytes += bytes;
        self.metrics.bytes_series.add(now, bytes as f64);
        self.queue.schedule(d, Ev::Adaptor(AdaptorFinish::Migrate(part)));
        Ok(d)
    }

    /// Test/bench helper: submit one transaction directly with a caller-built
    /// request (bypasses the workload).
    pub fn inject_txn(&mut self, client: ClientId, req: TxnRequest) -> TxnId {
        let now = self.now();
        let id = TxnId(self.next_txn);
        self.next_txn += 1;
        self.submitted += 1;
        let ctx = TxnCtx::new(id, client, req, now);
        self.history.push(TxnRecord { at: now, parts: ctx.parts.clone() });
        self.txns.insert(id.0, ctx);
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lion_common::SECOND;

    fn tiny_cfg() -> SimConfig {
        SimConfig {
            nodes: 2,
            partitions_per_node: 2,
            keys_per_partition: 64,
            value_size: 16,
            clients_per_node: 2,
            ..Default::default()
        }
    }

    fn uniform_workload(parts: usize) -> Box<dyn Workload> {
        let mut i = 0u64;
        Box::new(move |_now: Time| {
            i += 1;
            let p = PartitionId((i % parts as u64) as u32);
            TxnRequest::new(vec![Op::read(p, i % 64), Op::write(p, (i + 1) % 64)])
        })
    }

    /// The simplest possible protocol: execute everything at the primary of
    /// the first partition, one CPU slice, then commit.
    struct TrivialProto;
    impl Protocol for TrivialProto {
        fn name(&self) -> &'static str {
            "trivial"
        }
        fn on_submit(&mut self, eng: &mut Engine, txn: TxnId) {
            let home = eng.cluster.placement.primary_of(eng.txn(txn).parts[0]);
            eng.txn_mut(txn).home = home;
            match eng.exec_local_ops(home, txn) {
                Ok(_) => {
                    let cpu = eng.op_cpu(1, 1) + eng.config().sim.cpu.txn_overhead_us;
                    eng.cpu(home, Phase::Execution, cpu, txn, 1);
                }
                Err(_) => eng.abort_retry(txn),
            }
        }
        fn on_wake(&mut self, eng: &mut Engine, txn: TxnId, tag: u32) {
            assert_eq!(tag, 1);
            let home = eng.txn(txn).home;
            if eng.validate_at(home, txn) {
                eng.install_at(home, txn);
                eng.commit(txn);
            } else {
                eng.abort_retry(txn);
            }
        }
    }

    #[test]
    fn closed_loop_commits_transactions() {
        let mut eng = Engine::new(tiny_cfg(), uniform_workload(4));
        let report = eng.run(&mut TrivialProto, SECOND / 2);
        assert!(report.commits > 100, "got {}", report.commits);
        assert_eq!(report.commits, eng.metrics.single_node);
        assert!(report.throughput_tps > 0.0);
        eng.cluster.check_invariants().unwrap();
    }

    #[test]
    fn epoch_flush_replicates_writes() {
        let mut eng = Engine::new(tiny_cfg(), uniform_workload(4));
        eng.run(&mut TrivialProto, SECOND / 4);
        assert!(eng.metrics.replication_bytes > 0, "epoch flushes shipped bytes");
        // After the final epoch flush, secondaries lag only by the last
        // unflushed epoch; force one more flush and check sync.
        let extra = eng.cluster.epoch_flush_all();
        let _ = extra;
        for p in 0..eng.cluster.n_partitions() {
            let part = PartitionId(p as u32);
            let primary = eng.cluster.placement.primary_of(part);
            let head = eng.cluster.store(primary, part).unwrap().log.head_lsn();
            for &s in eng.cluster.placement.secondaries_of(part) {
                assert_eq!(
                    eng.cluster.store(s, part).unwrap().lag_behind(head),
                    0,
                    "secondary {s} of {part} must be in sync after flush"
                );
            }
        }
    }

    #[test]
    fn conflicting_writes_abort_and_retry() {
        // Single key hammered by every client: version conflicts must abort
        // some attempts, and retries must eventually commit.
        let wl = Box::new(move |_now: Time| {
            TxnRequest::new(vec![Op::read(PartitionId(0), 0), Op::write(PartitionId(0), 0)])
        });
        let mut cfg = tiny_cfg();
        cfg.clients_per_node = 8;
        let mut eng = Engine::new(cfg, wl);
        let report = eng.run(&mut TrivialProto, SECOND / 4);
        assert!(report.commits > 0);
        // trivially validating/installing in one wake: no interleaving
        // between validate and install of a single txn, so no aborts here —
        // the version check itself is exercised in the 2PC protocol tests.
        let key_version = {
            let part = PartitionId(0);
            let primary = eng.cluster.placement.primary_of(part);
            eng.cluster.store(primary, part).unwrap().table.get(0).unwrap().version
        };
        assert_eq!(key_version, report.commits + 1, "every commit bumped the version once");
    }

    #[test]
    fn remaster_async_flips_placement_after_delay() {
        let mut eng = Engine::new(tiny_cfg(), uniform_workload(4));
        let part = PartitionId(0);
        let sec = eng.cluster.placement.secondaries_of(part)[0];
        // drive the engine with a protocol that triggers a remaster once
        struct Remasterer {
            target: NodeId,
            part: PartitionId,
            fired: bool,
        }
        impl Protocol for Remasterer {
            fn name(&self) -> &'static str {
                "remasterer"
            }
            fn on_submit(&mut self, eng: &mut Engine, txn: TxnId) {
                if !self.fired {
                    self.fired = true;
                    eng.remaster_async(self.part, self.target).unwrap();
                }
                eng.txn_mut(txn).class = TxnClass::SingleNode;
                eng.cpu(NodeId(0), Phase::Execution, 10, txn, 0);
            }
            fn on_wake(&mut self, eng: &mut Engine, txn: TxnId, _tag: u32) {
                eng.commit(txn);
            }
        }
        let mut proto = Remasterer { target: sec, part, fired: false };
        eng.run(&mut proto, SECOND / 10);
        assert_eq!(eng.cluster.placement.primary_of(part), sec);
        assert_eq!(eng.metrics.remasters, 1);
        eng.cluster.check_invariants().unwrap();
    }

    #[test]
    fn join_helper_counts_branches() {
        let mut eng = Engine::new(tiny_cfg(), uniform_workload(4));
        let id = eng.inject_txn(ClientId(0), TxnRequest::new(vec![Op::read(PartitionId(0), 1)]));
        eng.join_begin(id, 3);
        assert_eq!(eng.join_arrive(id, true), None);
        assert_eq!(eng.join_arrive(id, false), None);
        assert_eq!(eng.join_arrive(id, true), Some(false), "one branch failed");
        eng.join_begin(id, 1);
        assert_eq!(eng.join_arrive(id, true), Some(true));
    }

    #[test]
    fn blocked_partition_rejects_ops() {
        let mut eng = Engine::new(tiny_cfg(), uniform_workload(4));
        let part = PartitionId(0);
        let sec = eng.cluster.placement.secondaries_of(part)[0];
        eng.cluster.begin_remaster(part, sec, 0).unwrap();
        let id = eng.inject_txn(ClientId(0), TxnRequest::new(vec![Op::read(part, 1)]));
        let err = eng.exec_op_at(NodeId(0), id, Op::read(part, 1)).unwrap_err();
        assert!(matches!(err, OpFail::Blocked { .. }));
    }

    /// Regression: a remaster racing the 2PC commit window must not leak
    /// prepare-locks. Before the fix, `install_at` silently skipped
    /// partitions whose primary had moved, leaving the row locked on the
    /// demoted store forever — and permanently unavailable once the
    /// partition remastered back ("poisoned rows").
    #[test]
    fn remaster_during_commit_window_releases_locks() {
        let mut eng = Engine::new(tiny_cfg(), uniform_workload(4));
        let part = PartitionId(0);
        let home = NodeId(0);
        let sec = eng.cluster.placement.secondaries_of(part)[0];
        let txn = eng.inject_txn(
            ClientId(0),
            TxnRequest::new(vec![Op::read(part, 1), Op::write(part, 1)]),
        );
        eng.exec_op_at(home, txn, Op::read(part, 1)).unwrap();
        eng.exec_op_at(home, txn, Op::write(part, 1)).unwrap();
        assert!(eng.validate_at(home, txn), "prepare-lock taken at the old primary");

        // Remaster completes between prepare and commit.
        let d = eng.cluster.begin_remaster(part, sec, eng.now()).unwrap();
        eng.cluster.finish_remaster(part, d);
        assert_eq!(eng.cluster.placement.primary_of(part), sec);

        // Commit decision arrives at the old primary: no install possible,
        // but the lock must be released everywhere.
        eng.install_at(home, txn);
        for holder in eng.cluster.placement.replica_nodes(part) {
            let row = eng.cluster.store(holder, part).unwrap().table.get(1).unwrap();
            assert!(row.lock.is_none(), "lock leaked on {holder}");
        }
        // A later transaction can lock the row at the new primary.
        let txn2 = eng.inject_txn(
            ClientId(1),
            TxnRequest::new(vec![Op::write(part, 1)]),
        );
        eng.txn_mut(txn2).write_set.push(crate::txn::WriteEntry { part, key: 1 });
        assert!(eng.validate_at(sec, txn2), "row must not be poisoned");
    }

    #[test]
    fn batch_mode_arms_batches() {
        struct BatchNoop;
        impl Protocol for BatchNoop {
            fn name(&self) -> &'static str {
                "batch-noop"
            }
            fn batch_mode(&self) -> bool {
                true
            }
            fn on_submit(&mut self, _: &mut Engine, _: TxnId) {}
            fn on_wake(&mut self, eng: &mut Engine, txn: TxnId, _tag: u32) {
                eng.commit(txn);
            }
            fn on_batch(&mut self, eng: &mut Engine, batch: &[TxnId]) {
                for &t in batch {
                    let home = eng.cluster.placement.primary_of(eng.txn(t).parts[0]);
                    eng.txn_mut(t).home = home;
                    let _ = eng.exec_local_ops(home, t);
                    eng.cpu(home, Phase::Execution, 20, t, 0);
                }
            }
        }
        let mut cfg = tiny_cfg();
        cfg.batch_size = 32;
        let mut eng = Engine::new(cfg, uniform_workload(4));
        let report = eng.run(&mut BatchNoop, SECOND / 5);
        assert!(report.commits >= 64, "at least two batches: {}", report.commits);
        assert_eq!(report.commits % 32, 0, "whole batches commit");
    }
}
