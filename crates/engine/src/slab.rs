//! Generation-tagged slab arena for in-flight transaction contexts.
//!
//! Every protocol step resolves its [`TxnId`] to a [`TxnCtx`]; with a hash
//! map that is a hash + probe on the hottest path in the engine. The slab
//! replaces it with a plain vector index: the id's low 32 bits address a
//! slot, its high 32 bits carry the slot's *generation*. Completing a
//! transaction retires the generation and recycles the slot through a LIFO
//! free list, so the arena stays as small as the peak in-flight population
//! instead of growing with the total transaction count.
//!
//! Generations are what make recycling safe under fault injection: a crash
//! aborts transactions whose wake-ups and adaptor completions are still in
//! the future-event list. When such a stale event finally pops, its id's
//! generation no longer matches the slot and the lookup misses — exactly
//! like the old map's `contains_key` on a removed key — instead of touching
//! whatever newer transaction now occupies the slot.
//!
//! All bookkeeping is index arithmetic over `Vec`s: allocation order, and
//! therefore every minted id, is a pure function of the simulation history.

use crate::txn::TxnCtx;
use lion_common::TxnId;

/// Slab arena mapping [`TxnId`]s to live [`TxnCtx`]s. See the module docs.
#[derive(Debug, Default)]
pub struct TxnSlab {
    slots: Vec<Option<TxnCtx>>,
    /// Current generation per slot; an id is live iff its generation
    /// matches and the slot is occupied.
    gens: Vec<u32>,
    /// Recycled slots, reused LIFO (deterministic and cache-friendly).
    free: Vec<u32>,
    live: usize,
}

impl TxnSlab {
    /// Creates an empty arena.
    pub fn new() -> Self {
        TxnSlab::default()
    }

    /// Number of live transactions.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when no transaction is in flight.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Allocates a slot, mints its id, and stores the context `make` builds
    /// from that id.
    pub fn insert_with(&mut self, make: impl FnOnce(TxnId) -> TxnCtx) -> TxnId {
        let slot = match self.free.pop() {
            Some(s) => s as usize,
            None => {
                self.slots.push(None);
                self.gens.push(0);
                self.slots.len() - 1
            }
        };
        let id = TxnId::compose(slot as u32, self.gens[slot]);
        debug_assert!(self.slots[slot].is_none(), "allocated an occupied slot");
        self.slots[slot] = Some(make(id));
        self.live += 1;
        id
    }

    /// The context for `id`, if that exact generation is still live.
    #[inline]
    pub fn get(&self, id: TxnId) -> Option<&TxnCtx> {
        let slot = id.slot();
        if *self.gens.get(slot)? != id.generation() {
            return None;
        }
        self.slots[slot].as_ref()
    }

    /// Mutable context for `id`, if that exact generation is still live.
    #[inline]
    pub fn get_mut(&mut self, id: TxnId) -> Option<&mut TxnCtx> {
        let slot = id.slot();
        if *self.gens.get(slot)? != id.generation() {
            return None;
        }
        self.slots[slot].as_mut()
    }

    /// True when `id` is live.
    #[inline]
    pub fn contains(&self, id: TxnId) -> bool {
        self.get(id).is_some()
    }

    /// Removes `id`, retiring its generation and recycling the slot.
    /// Returns `None` for ids that are already dead (stale generation or
    /// double completion) — the caller decides whether that is a bug.
    pub fn remove(&mut self, id: TxnId) -> Option<TxnCtx> {
        let slot = id.slot();
        if *self.gens.get(slot)? != id.generation() {
            return None;
        }
        let ctx = self.slots[slot].take()?;
        // Bump eagerly so every outstanding copy of this id is dead from
        // this instant on; the next occupant mints under the new generation.
        self.gens[slot] = self.gens[slot].wrapping_add(1);
        self.free.push(slot as u32);
        self.live -= 1;
        Some(ctx)
    }

    /// Iterates the live contexts in slot order.
    pub fn iter(&self) -> impl Iterator<Item = &TxnCtx> {
        self.slots.iter().filter_map(|s| s.as_ref())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lion_common::{ClientId, Op, PartitionId, TxnRequest};

    fn ctx(id: TxnId) -> TxnCtx {
        TxnCtx::new(
            id,
            ClientId(0),
            TxnRequest::new(vec![Op::read(PartitionId(0), 1)]),
            0,
        )
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut slab = TxnSlab::new();
        let a = slab.insert_with(ctx);
        let b = slab.insert_with(ctx);
        assert_eq!(slab.len(), 2);
        assert_eq!(slab.get(a).unwrap().id, a);
        assert_eq!(slab.get_mut(b).unwrap().id, b);
        assert_eq!(slab.remove(a).unwrap().id, a);
        assert!(slab.get(a).is_none());
        assert_eq!(slab.len(), 1);
    }

    #[test]
    fn slot_reuse_never_resurrects_a_completed_transaction() {
        let mut slab = TxnSlab::new();
        let first = slab.insert_with(ctx);
        slab.remove(first).expect("live");
        // The recycled slot is handed out under a new generation...
        let second = slab.insert_with(ctx);
        assert_eq!(second.slot(), first.slot(), "LIFO slot recycling");
        assert_ne!(second, first, "...so the stale id never aliases it");
        // ...and every operation through the stale id misses.
        assert!(!slab.contains(first));
        assert!(slab.get(first).is_none());
        assert!(slab.get_mut(first).is_none());
        assert!(slab.remove(first).is_none(), "stale remove is a no-op");
        assert!(slab.contains(second), "the new occupant is untouched");
    }

    #[test]
    fn allocation_is_deterministic() {
        // Same insert/remove script ⇒ same ids, independent of any global
        // state — the property the same-seed digest test leans on.
        let script = |slab: &mut TxnSlab| -> Vec<TxnId> {
            let a = slab.insert_with(ctx);
            let b = slab.insert_with(ctx);
            slab.remove(a);
            let c = slab.insert_with(ctx);
            let d = slab.insert_with(ctx);
            slab.remove(b);
            vec![a, b, c, d, slab.insert_with(ctx)]
        };
        let mut s1 = TxnSlab::new();
        let mut s2 = TxnSlab::new();
        assert_eq!(script(&mut s1), script(&mut s2));
    }

    #[test]
    fn iter_walks_live_contexts_in_slot_order() {
        let mut slab = TxnSlab::new();
        let ids: Vec<TxnId> = (0..4).map(|_| slab.insert_with(ctx)).collect();
        slab.remove(ids[1]);
        let seen: Vec<TxnId> = slab.iter().map(|c| c.id).collect();
        assert_eq!(seen, vec![ids[0], ids[2], ids[3]]);
    }
}
