//! The protocol trait: the state-machine interface every transaction
//! processing scheme implements on top of the engine.

use crate::engine::Engine;
use lion_common::TxnId;
use lion_faults::FaultNotice;

/// Periodic engine ticks delivered to the protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TickKind {
    /// Planner interval: workload analysis + replica rearrangement (§III).
    Planner,
    /// Monitoring interval (1 s): load sampling (Clay's detector, Fig. 8
    /// timelines).
    Monitor,
}

/// A transaction-processing protocol driven by engine events.
///
/// Protocols are *state machines*: [`Protocol::on_submit`] starts a
/// transaction, and every asynchronous primitive the protocol invokes on the
/// engine (CPU slice, network round, remaster wait, …) later calls
/// [`Protocol::on_wake`] with the protocol-chosen `tag` to continue it.
pub trait Protocol {
    /// Protocol name for reports (matches the paper's legend names).
    fn name(&self) -> &'static str;

    /// True for batch-execution protocols (Star, Calvin, Hermes, Aria,
    /// Lotus, Lion-batch): the engine arms whole batches instead of running
    /// closed-loop clients.
    fn batch_mode(&self) -> bool {
        false
    }

    /// A new transaction was submitted (standard mode) or resubmitted after
    /// an abort.
    fn on_submit(&mut self, eng: &mut Engine, txn: TxnId);

    /// An asynchronous step completed; `tag` is whatever the protocol passed
    /// when scheduling it.
    fn on_wake(&mut self, eng: &mut Engine, txn: TxnId, tag: u32);

    /// A periodic tick fired.
    fn on_tick(&mut self, _eng: &mut Engine, _kind: TickKind) {}

    /// A batch was armed (batch mode only): all transactions are live in the
    /// engine; the protocol must drive each to `commit` or `defer`.
    fn on_batch(&mut self, _eng: &mut Engine, _batch: &[TxnId]) {}

    /// A fault event changed the topology (node crash/recovery, failover
    /// completion). The engine has already handled the mechanics — aborting
    /// in-flight transactions, scheduling promotions — before this fires;
    /// protocols use the hook to adapt routing or re-plan placement. The
    /// default ignores it, which is the honest behaviour for the baselines:
    /// they keep routing by the (updated) placement map and simply eat the
    /// disruption.
    fn on_fault(&mut self, _eng: &mut Engine, _notice: &FaultNotice) {}
}
