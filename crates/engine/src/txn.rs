//! Per-transaction runtime context.

use lion_common::{ClientId, Key, NodeId, PartitionId, Time, TxnId, TxnRequest};

/// How a transaction ultimately executed, for the single-node-conversion
/// statistics the paper reports (§III cases 1–3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnClass {
    /// All primaries local at the executor: direct single-node execution.
    SingleNode,
    /// Converted to single-node via one or more remasters.
    Remastered,
    /// Executed as a distributed transaction with 2PC.
    Distributed,
}

/// One read-set entry: the version observed at execution time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadEntry {
    /// Partition of the row.
    pub part: PartitionId,
    /// Row key.
    pub key: Key,
    /// Version observed by the read.
    pub version: u64,
}

/// One write-set entry (value synthesised at install).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteEntry {
    /// Partition of the row.
    pub part: PartitionId,
    /// Row key.
    pub key: Key,
}

/// One partition group of a transaction's declared ops: a range into
/// [`TxnCtx`]'s flattened, regrouped op array.
#[derive(Debug, Clone, Copy)]
struct GroupRange {
    part: PartitionId,
    start: u32,
    end: u32,
    reads: u32,
}

/// Engine-owned state of one in-flight transaction. Protocols use `step`,
/// `pending`, and `scratch` as state-machine scratch space; everything else
/// is shared bookkeeping.
#[derive(Debug, Clone)]
pub struct TxnCtx {
    /// Transaction id (stable across retries). Slab-allocated: encodes an
    /// arena slot + generation, *not* submission order — use [`TxnCtx::seq`]
    /// when ordering transactions by arrival.
    pub id: TxnId,
    /// Global submission sequence number (0 for the first transaction ever
    /// submitted, monotonic thereafter). Deterministic tie-breaker wherever
    /// the engine must order in-flight transactions by arrival.
    pub seq: u64,
    /// Closed-loop client that issued it (standard mode).
    pub client: ClientId,
    /// Declared operations.
    pub req: TxnRequest,
    /// Sorted distinct partitions accessed.
    pub parts: Vec<PartitionId>,
    /// First submission time (latency is measured from here).
    pub start: Time,
    /// Current attempt's start time.
    pub attempt_start: Time,
    /// Attempt number (1 = first execution).
    pub attempts: u32,
    /// OCC read set.
    pub read_set: Vec<ReadEntry>,
    /// OCC write set.
    pub write_set: Vec<WriteEntry>,
    /// Outstanding fan-out count (join helper).
    pub pending: u32,
    /// Whether any branch of the current fan-out failed.
    pub failed: bool,
    /// Executor / coordinator node chosen by the router.
    pub home: NodeId,
    /// Remote 2PC participants (primaries of non-local partitions).
    pub participants: Vec<NodeId>,
    /// Execution classification for statistics.
    pub class: TxnClass,
    /// Protocol scratch: current phase / partition-group index.
    pub step: u32,
    /// Protocol scratch: free-form.
    pub scratch: u64,
    /// Accumulated per-phase time for the latency breakdown (µs).
    pub phase_us: [u64; 5],
    /// Parked between attempts (retry back-off / deferred to the next
    /// batch): not in flight, so fault aborts must not touch it again.
    pub parked: bool,
    /// Declared ops regrouped by partition in first-touch order, flattened.
    /// Built once at creation (`req` never changes), so the per-wake group
    /// walks of the protocol state machines are allocation-free.
    grouped_ops: Vec<lion_common::Op>,
    /// Per-group ranges into `grouped_ops`.
    group_index: Vec<GroupRange>,
}

impl TxnCtx {
    /// Creates a fresh context.
    pub fn new(id: TxnId, client: ClientId, req: TxnRequest, now: Time) -> Self {
        let parts = req.partitions();
        // Group the ops by partition once, preserving first-touch order:
        // stable scratch for every later group walk.
        let mut group_index: Vec<GroupRange> = Vec::new();
        for op in &req.ops {
            if !group_index.iter().any(|g| g.part == op.partition) {
                group_index.push(GroupRange {
                    part: op.partition,
                    start: 0,
                    end: 0,
                    reads: 0,
                });
            }
        }
        let mut grouped_ops = Vec::with_capacity(req.ops.len());
        for g in &mut group_index {
            g.start = grouped_ops.len() as u32;
            for op in req.ops.iter().filter(|o| o.partition == g.part) {
                if op.kind == lion_common::OpKind::Read {
                    g.reads += 1;
                }
                grouped_ops.push(*op);
            }
            g.end = grouped_ops.len() as u32;
        }
        TxnCtx {
            id,
            seq: 0,
            client,
            req,
            parts,
            start: now,
            attempt_start: now,
            attempts: 1,
            read_set: Vec::new(),
            write_set: Vec::new(),
            pending: 0,
            failed: false,
            home: NodeId(0),
            participants: Vec::new(),
            class: TxnClass::SingleNode,
            step: 0,
            scratch: 0,
            phase_us: [0; 5],
            parked: false,
            grouped_ops,
            group_index,
        }
    }

    /// Number of partition groups (distinct partitions touched, in
    /// first-touch order).
    #[inline]
    pub fn n_groups(&self) -> usize {
        self.group_index.len()
    }

    /// Partition of group `gi`.
    #[inline]
    pub fn group_part(&self, gi: usize) -> PartitionId {
        self.group_index[gi].part
    }

    /// The ops of group `gi`, in declaration order.
    #[inline]
    pub fn group_ops(&self, gi: usize) -> &[lion_common::Op] {
        let g = self.group_index[gi];
        &self.grouped_ops[g.start as usize..g.end as usize]
    }

    /// `(reads, writes)` op counts of group `gi` (precomputed).
    #[inline]
    pub fn group_reads_writes(&self, gi: usize) -> (usize, usize) {
        let g = self.group_index[gi];
        let len = (g.end - g.start) as usize;
        (g.reads as usize, len - g.reads as usize)
    }

    /// Resets per-attempt state for a retry, keeping `id`/`start`/`attempts`.
    pub fn reset_for_retry(&mut self, now: Time) {
        self.read_set.clear();
        self.write_set.clear();
        self.pending = 0;
        self.failed = false;
        self.participants.clear();
        self.class = TxnClass::SingleNode;
        self.step = 0;
        self.scratch = 0;
        self.attempt_start = now;
        self.attempts += 1;
    }

    /// Groups the transaction's ops by partition, preserving first-touch
    /// order: the executor processes one group at a time (and 2PC sends one
    /// message per participant group, as in Fig. 1).
    ///
    /// Allocates owned `Vec`s from the precomputed grouping; hot paths use
    /// [`TxnCtx::group_ops`] / [`TxnCtx::group_part`] instead.
    pub fn partition_groups(&self) -> Vec<(PartitionId, Vec<lion_common::Op>)> {
        (0..self.n_groups())
            .map(|gi| (self.group_part(gi), self.group_ops(gi).to_vec()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lion_common::Op;

    fn p(i: u32) -> PartitionId {
        PartitionId(i)
    }

    #[test]
    fn partition_groups_preserve_first_touch_order() {
        let req = TxnRequest::new(vec![
            Op::read(p(2), 1),
            Op::write(p(0), 2),
            Op::read(p(2), 3),
            Op::write(p(1), 4),
        ]);
        let ctx = TxnCtx::new(TxnId(1), ClientId(0), req, 0);
        let groups = ctx.partition_groups();
        assert_eq!(groups.len(), 3);
        assert_eq!(groups[0].0, p(2));
        assert_eq!(groups[0].1.len(), 2);
        assert_eq!(groups[1].0, p(0));
        assert_eq!(groups[2].0, p(1));
    }

    #[test]
    fn retry_resets_attempt_state() {
        let req = TxnRequest::new(vec![Op::read(p(0), 1)]);
        let mut ctx = TxnCtx::new(TxnId(1), ClientId(0), req, 100);
        ctx.read_set.push(ReadEntry {
            part: p(0),
            key: 1,
            version: 3,
        });
        ctx.pending = 2;
        ctx.failed = true;
        ctx.class = TxnClass::Distributed;
        ctx.reset_for_retry(500);
        assert!(ctx.read_set.is_empty());
        assert_eq!(ctx.pending, 0);
        assert!(!ctx.failed);
        assert_eq!(ctx.class, TxnClass::SingleNode);
        assert_eq!(ctx.attempts, 2);
        assert_eq!(ctx.start, 100, "latency still measured from first submit");
        assert_eq!(ctx.attempt_start, 500);
    }
}
