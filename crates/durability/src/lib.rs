//! # lion-durability
//!
//! Epoch-consistent group commit (COCO/STAR-style): the *client-visible ack*
//! of a transaction is decoupled from its protocol commit and held until the
//! commit epoch it belongs to is **durable** — its prepare-log entries
//! flushed and replicated to every live secondary.
//!
//! The engine keeps committing exactly as before (locks release, writes
//! install, the context is freed); what this crate manages is the *ack*:
//!
//! * every committing transaction is parked in the open epoch;
//! * the epoch seals on the DES clock every `epoch_commit_us` (independent
//!   of the 10 ms replication-flush interval) — sealing triggers a log
//!   flush, and the epoch becomes durable once the slowest secondary
//!   round-trip lands;
//! * at durability, every parked transaction is acked: its client learns
//!   the outcome, the ack-latency histogram records `now - start`, and
//!   closed-loop clients are re-armed;
//! * a node crash **aborts every non-durable epoch**: their parked (never
//!   acked!) transactions are retried by their clients instead of being
//!   reported successful-then-lost, and the epoch fence advances so a
//!   promoted primary can never ack an epoch the dead primary's timeline
//!   already decided differently.
//!
//! With `epoch_commit_us = 0` the manager is disabled and the engine acks at
//! commit time, byte-for-byte reproducing the pre-subsystem behavior (the
//! determinism-digest goldens pin this).

use lion_common::{ClientId, PartitionId, Time, TxnId};

/// Durability configuration carried inside the engine config.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DurabilityConfig {
    /// Epoch-commit interval in µs: client-visible acks are released only at
    /// epoch boundaries, once the epoch's log entries are replicated.
    /// `0` (the default) disables epoch group commit — acks escape at
    /// protocol-commit time, exactly the pre-subsystem behavior.
    pub epoch_commit_us: Time,
    /// Record every ack in [`EpochManager::ack_log`] (tests: per-client ack
    /// monotonicity). Off by default — long runs would grow the log
    /// unboundedly.
    pub record_acks: bool,
    /// Charge an idempotent-resubmit round trip when a client retries a
    /// transaction swept up by an epoch abort (crash or heal-time divergence
    /// reconciliation): the retry re-enters after `backoff + client↔home RTT`
    /// and its resubmission message is priced on the wire. Off by default —
    /// the pre-existing free-instant-retry behavior is what the pinned
    /// digest goldens capture.
    pub retry_round_trip: bool,
}

impl DurabilityConfig {
    /// Ack-at-commit mode (the legacy behavior).
    pub fn ack_at_commit() -> Self {
        Self::default()
    }

    /// Epoch group commit with the given epoch length.
    pub fn epoch(epoch_commit_us: Time) -> Self {
        DurabilityConfig {
            epoch_commit_us,
            ..Self::default()
        }
    }

    /// Enables the priced resubmission round trip on epoch-abort retries.
    pub fn with_retry_round_trip(mut self) -> Self {
        self.retry_round_trip = true;
        self
    }
}

/// A committed transaction whose client-visible ack is parked until its
/// epoch turns durable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PendingAck {
    /// The transaction (context already freed by the engine).
    pub txn: TxnId,
    /// Issuing closed-loop client (re-armed at ack time in standard mode).
    pub client: ClientId,
    /// Global submission sequence — the deterministic ack order within an
    /// epoch and the monotonicity witness per client.
    pub seq: u64,
    /// First submission time (ack latency is measured from here).
    pub start: Time,
    /// Protocol-commit time (commit latency already recorded there).
    pub committed_at: Time,
}

/// One recorded ack (only with [`DurabilityConfig::record_acks`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AckRecord {
    /// Client the ack went to.
    pub client: ClientId,
    /// Submission sequence of the acked transaction.
    pub seq: u64,
    /// Virtual time the ack escaped.
    pub at: Time,
    /// Epoch that carried it.
    pub epoch: u64,
}

/// A sealed epoch in flight between its log flush and its durability point.
#[derive(Debug)]
struct SealedEpoch {
    id: u64,
    acks: Vec<PendingAck>,
    /// Per-partition log head at seal time: the durable frontier this epoch
    /// certifies once its replication round-trip lands.
    frontiers: Vec<(PartitionId, u64)>,
}

/// A sealed epoch whose replication landed: everything the engine needs to
/// release it (returned by [`EpochManager::take_durable`]).
#[derive(Debug)]
pub struct DurableEpoch {
    /// Parked acks to release, in park (commit) order.
    pub acks: Vec<PendingAck>,
    /// Per-partition log frontiers the epoch's flush certified durable.
    pub frontiers: Vec<(PartitionId, u64)>,
}

/// What an epoch abort (node crash) swept up.
#[derive(Debug, Default)]
pub struct EpochAbort {
    /// Parked, never-acked transactions, in submission order. Their clients
    /// retry: the committed result is re-observed on resubmission, so no
    /// acked work is lost — the ack was simply never released.
    pub retried: Vec<PendingAck>,
    /// Number of epochs (open + sealed-in-flight) the crash aborted.
    pub epochs_aborted: u64,
}

/// The epoch group-commit manager the engine drives from its event loop.
#[derive(Debug)]
pub struct EpochManager {
    cfg: DurabilityConfig,
    /// Id the *open* epoch will seal as. Monotonic across the run.
    next_id: u64,
    /// Acks parked in the open epoch, in commit (≙ submission-deterministic)
    /// order.
    open: Vec<PendingAck>,
    /// Sealed epochs whose replication round-trip is still in flight.
    inflight: Vec<SealedEpoch>,
    /// Epoch fence: ids below this can never turn durable. Advanced by
    /// crashes so a promoted primary cannot ack an epoch the dead primary's
    /// timeline already aborted.
    fence: u64,
    /// Quorum-fenced acks: commits whose writes touch a partition served
    /// from the non-quorum side of an active split-brain window. They can
    /// never reach a majority of the replica set, so they bypass the open
    /// epoch and park here until heal-time reconciliation
    /// ([`EpochManager::abort_fenced`]) retries their clients.
    fenced: Vec<PendingAck>,
    /// True when a fenced ack parked since the last epoch-seal boundary —
    /// drives [`EpochManager::fenced_epochs`] accounting.
    fenced_since_seal: bool,
    /// Epoch-seal boundaries the divergent (fenced) timeline has spanned so
    /// far: the `n` reported by a heal's `DivergentEpochAborted` event.
    fenced_epochs: u64,
    /// Every released ack, when [`DurabilityConfig::record_acks`] is set.
    pub ack_log: Vec<AckRecord>,
}

impl EpochManager {
    /// Builds the manager.
    pub fn new(cfg: DurabilityConfig) -> Self {
        EpochManager {
            cfg,
            next_id: 1,
            open: Vec::new(),
            inflight: Vec::new(),
            fence: 0,
            fenced: Vec::new(),
            fenced_since_seal: false,
            fenced_epochs: 0,
            ack_log: Vec::new(),
        }
    }

    /// True when epoch group commit is active (`epoch_commit_us > 0`).
    #[inline]
    pub fn enabled(&self) -> bool {
        self.cfg.epoch_commit_us > 0
    }

    /// The configured epoch length.
    #[inline]
    pub fn epoch_commit_us(&self) -> Time {
        self.cfg.epoch_commit_us
    }

    /// Current epoch fence (see [`EpochManager`] field docs).
    #[inline]
    pub fn fence(&self) -> u64 {
        self.fence
    }

    /// Parked acks not yet released (open epoch + sealed in flight).
    pub fn parked(&self) -> usize {
        self.open.len() + self.inflight.iter().map(|e| e.acks.len()).sum::<usize>()
    }

    /// Parks a committed transaction's ack in the open epoch. Only called
    /// when [`EpochManager::enabled`].
    pub fn park(&mut self, ack: PendingAck) {
        debug_assert!(self.enabled(), "parking with epoch commit disabled");
        self.open.push(ack);
    }

    /// Whether epoch-abort retries pay a resubmission round trip
    /// (see [`DurabilityConfig::retry_round_trip`]).
    #[inline]
    pub fn retry_round_trip(&self) -> bool {
        self.cfg.retry_round_trip
    }

    /// Parks a commit whose ack is **quorum-fenced**: some written partition
    /// is served from the non-quorum side of an active split-brain window,
    /// so the seal can never replicate to a majority of its replica set.
    /// The ack bypasses epochs entirely and waits for
    /// [`EpochManager::abort_fenced`] at heal.
    pub fn park_fenced(&mut self, ack: PendingAck) {
        debug_assert!(self.enabled(), "fencing with epoch commit disabled");
        self.fenced.push(ack);
        self.fenced_since_seal = true;
    }

    /// Number of acks currently quorum-fenced (0 outside split-brain
    /// windows and after a completed heal).
    #[inline]
    pub fn fenced_count(&self) -> usize {
        self.fenced.len()
    }

    /// Heal-time divergence reconciliation: every quorum-fenced ack aborts,
    /// its client retries, and the count of epoch boundaries the divergent
    /// timeline spanned is reported as `epochs_aborted` (the `n` of a
    /// `DivergentEpochAborted` event). A partially-filled divergent epoch at
    /// heal counts as one.
    pub fn abort_fenced(&mut self) -> EpochAbort {
        let mut abort = EpochAbort {
            epochs_aborted: self.fenced_epochs + u64::from(self.fenced_since_seal),
            ..EpochAbort::default()
        };
        abort.retried.append(&mut self.fenced);
        abort.retried.sort_unstable_by_key(|a| a.seq);
        self.fenced_epochs = 0;
        self.fenced_since_seal = false;
        abort
    }

    /// Seals the open epoch: the engine has just flushed the replication
    /// logs and hands over the per-partition frontiers that flush certifies.
    /// Returns the sealed epoch id, or `None` when there was nothing to
    /// seal (no parked acks and no flushed entries — the tick rotates
    /// silently).
    pub fn seal(&mut self, frontiers: Vec<(PartitionId, u64)>) -> Option<u64> {
        if self.fenced_since_seal {
            self.fenced_epochs += 1;
            self.fenced_since_seal = false;
        }
        if self.open.is_empty() && frontiers.is_empty() {
            return None;
        }
        let id = self.next_id;
        self.next_id += 1;
        self.inflight.push(SealedEpoch {
            id,
            acks: std::mem::take(&mut self.open),
            frontiers,
        });
        Some(id)
    }

    /// An epoch's replication round-trip landed: release its acks. Returns
    /// `None` for epochs swept away by a crash (stale durability events) or
    /// behind the fence.
    pub fn take_durable(&mut self, id: u64, now: Time) -> Option<DurableEpoch> {
        if id < self.fence {
            return None;
        }
        let pos = self.inflight.iter().position(|e| e.id == id)?;
        let ep = self.inflight.remove(pos);
        if self.cfg.record_acks {
            for a in &ep.acks {
                self.ack_log.push(AckRecord {
                    client: a.client,
                    seq: a.seq,
                    at: now,
                    epoch: ep.id,
                });
            }
        }
        Some(DurableEpoch {
            acks: ep.acks,
            frontiers: ep.frontiers,
        })
    }

    /// A node crashed: every non-durable epoch aborts. The open epoch's and
    /// the in-flight epochs' parked transactions are returned for retry (in
    /// submission order), and the fence advances past every id issued so
    /// far — in-flight durability events that fire later find nothing.
    /// Quorum-fenced acks are left parked: they resolve at heal via
    /// [`EpochManager::abort_fenced`], never on the crash path.
    pub fn on_crash(&mut self) -> EpochAbort {
        let mut abort = EpochAbort::default();
        if !self.open.is_empty() {
            abort.epochs_aborted += 1;
            abort.retried.append(&mut self.open);
        }
        for mut ep in self.inflight.drain(..) {
            abort.epochs_aborted += 1;
            abort.retried.append(&mut ep.acks);
        }
        self.fence = self.next_id;
        abort.retried.sort_unstable_by_key(|a| a.seq);
        abort
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ack(seq: u64) -> PendingAck {
        PendingAck {
            txn: TxnId(seq),
            client: ClientId(seq as u32 % 3),
            seq,
            start: seq * 10,
            committed_at: seq * 10 + 5,
        }
    }

    #[test]
    fn disabled_by_default() {
        let m = EpochManager::new(DurabilityConfig::default());
        assert!(!m.enabled());
        let m = EpochManager::new(DurabilityConfig::epoch(5_000));
        assert!(m.enabled());
        assert_eq!(m.epoch_commit_us(), 5_000);
    }

    #[test]
    fn seal_and_durable_release_acks_in_park_order() {
        let mut m = EpochManager::new(DurabilityConfig::epoch(1_000));
        m.park(ack(1));
        m.park(ack(2));
        let id = m.seal(vec![(PartitionId(0), 7)]).expect("non-empty epoch");
        assert_eq!(m.parked(), 2);
        // a later epoch seals independently
        m.park(ack(3));
        let id2 = m.seal(Vec::new()).expect("second epoch");
        assert!(id2 > id, "epoch ids are monotonic");
        let ep = m.take_durable(id, 2_000).expect("in flight");
        assert_eq!(
            ep.acks.iter().map(|a| a.seq).collect::<Vec<_>>(),
            vec![1, 2]
        );
        assert_eq!(ep.frontiers, vec![(PartitionId(0), 7)]);
        assert_eq!(m.parked(), 1);
        // double delivery is stale
        assert!(m.take_durable(id, 2_100).is_none());
    }

    #[test]
    fn empty_tick_rotates_silently() {
        let mut m = EpochManager::new(DurabilityConfig::epoch(1_000));
        assert_eq!(m.seal(Vec::new()), None);
        m.park(ack(9));
        assert!(m.seal(Vec::new()).is_some());
    }

    #[test]
    fn crash_aborts_open_and_inflight_epochs_and_fences() {
        let mut m = EpochManager::new(DurabilityConfig::epoch(1_000));
        m.park(ack(4));
        let sealed = m.seal(Vec::new()).expect("sealed");
        m.park(ack(2)); // open epoch
        let abort = m.on_crash();
        assert_eq!(abort.epochs_aborted, 2);
        assert_eq!(
            abort.retried.iter().map(|a| a.seq).collect::<Vec<_>>(),
            vec![2, 4],
            "retries come back in submission order"
        );
        assert_eq!(m.parked(), 0);
        // The sealed epoch's durability event arriving late finds a fence.
        assert!(m.take_durable(sealed, 9_999).is_none());
        assert!(m.fence() > sealed);
        // New epochs seal beyond the fence.
        m.park(ack(8));
        let next = m.seal(Vec::new()).expect("post-crash epoch");
        assert!(next >= m.fence());
        assert!(m.take_durable(next, 10_000).is_some());
    }

    #[test]
    fn fenced_acks_park_outside_epochs_and_abort_at_heal() {
        let mut m = EpochManager::new(DurabilityConfig::epoch(1_000));
        m.park_fenced(ack(5));
        m.park_fenced(ack(3));
        assert_eq!(m.fenced_count(), 2);
        assert_eq!(m.parked(), 0, "fenced acks never enter epochs");
        // Fenced acks alone don't make a seal boundary non-empty...
        assert_eq!(m.seal(Vec::new()), None);
        m.park_fenced(ack(7));
        assert_eq!(m.seal(Vec::new()), None);
        // ...but a crash sweeps only epochs, never the fenced set.
        let crash = m.on_crash();
        assert_eq!(crash.epochs_aborted, 0);
        assert!(crash.retried.is_empty());
        assert_eq!(m.fenced_count(), 3);
        // Heal: retries in submission order; both seal boundaries closed an
        // interval holding fresh fenced acks, and nothing parked after the
        // second, so the divergent timeline spanned exactly two epochs.
        let heal = m.abort_fenced();
        assert_eq!(
            heal.retried.iter().map(|a| a.seq).collect::<Vec<_>>(),
            vec![3, 5, 7]
        );
        assert_eq!(heal.epochs_aborted, 2);
        assert_eq!(m.fenced_count(), 0);
        // Idempotent after drain.
        let again = m.abort_fenced();
        assert_eq!(again.epochs_aborted, 0);
        assert!(again.retried.is_empty());
    }

    #[test]
    fn partial_divergent_epoch_at_heal_counts_as_one() {
        let mut m = EpochManager::new(DurabilityConfig::epoch(1_000));
        m.park_fenced(ack(1));
        // No seal boundary passed — heal still reports one divergent epoch.
        let heal = m.abort_fenced();
        assert_eq!(heal.epochs_aborted, 1);
        assert_eq!(heal.retried.len(), 1);
    }

    #[test]
    fn retry_round_trip_builder() {
        let cfg = DurabilityConfig::epoch(5_000).with_retry_round_trip();
        assert!(cfg.retry_round_trip);
        assert!(EpochManager::new(cfg).retry_round_trip());
        assert!(!EpochManager::new(DurabilityConfig::epoch(5_000)).retry_round_trip());
    }

    #[test]
    fn ack_log_records_when_enabled() {
        let mut m = EpochManager::new(DurabilityConfig {
            epoch_commit_us: 1_000,
            record_acks: true,
            ..DurabilityConfig::default()
        });
        m.park(ack(1));
        let id = m.seal(Vec::new()).unwrap();
        m.take_durable(id, 1_500).unwrap();
        assert_eq!(m.ack_log.len(), 1);
        assert_eq!(m.ack_log[0].at, 1_500);
        assert_eq!(m.ack_log[0].epoch, id);
    }
}
