//! # lion-core
//!
//! The paper's primary contribution: the **Lion** transaction processing
//! protocol (§III–§IV).
//!
//! * [`config`] — protocol configuration and the Table II ablation variants
//!   (`Lion(S)`, `Lion(R)`, `Lion(SW)`, `Lion(RW)`, `Lion(RB)`, `Lion`);
//! * [`router`] — the cost-model transaction router: "dispatch T to a node
//!   with maximum requisite replicas, where the execution cost is the
//!   lowest" (§III);
//! * [`protocol`] — the Lion executor: single-node fast path, inline
//!   remastering of local secondaries, 2PC fallback, and the batch variant
//!   with asynchronous remastering (§IV-D);
//! * [`provision`] — the adaptive replica provision loop: workload analysis
//!   → clump generation → Algorithm 1 → adaptor actions, with LSTM-driven
//!   pre-replication (§IV-A/B/C).

pub mod config;
pub mod protocol;
pub mod provision;
pub mod router;

pub use config::{LionConfig, Partitioning};
pub use protocol::Lion;
pub use router::route_txn;
