//! The adaptive replica provision loop (§III "planner" + §IV).
//!
//! Every planner tick:
//! 1. drain the routed-transaction history (the batch `B`);
//! 2. feed the predictor; when the workload-variation metric `wv(t, h)`
//!    exceeds γ, sample `K` predicted transactions (§IV-C);
//! 3. build the heat graph from `B + K` transactions (§IV-A);
//! 4. cluster into clumps and run Algorithm 1 (§IV-B) — or the Schism
//!    partitioner for the ablation variants;
//! 5. hand the plan's actions to the adaptors: remasters and background
//!    replica additions (Lion) or blocking migrations (Schism mode), all
//!    asynchronous with transaction processing.

use crate::config::Partitioning;
use crate::protocol::Lion;
use lion_engine::Engine;
use lion_planner::{generate_clumps, rearrange_with_topology, schism_plan, HeatGraph, PlanAction};

impl Lion {
    /// One planner round. Called from the engine's planner tick.
    pub(crate) fn plan_tick(&mut self, eng: &mut Engine) {
        let records = eng.drain_history();
        let now = eng.now();

        // --- Prediction (§IV-C) -----------------------------------------
        let mut predicted: Vec<(Vec<lion_common::PartitionId>, f64)> = Vec::new();
        if self.cfg.prediction {
            self.predictor.observe(&records);
            let out = self.predictor.predict(now);
            self.last_wv = out.wv;
            if out.triggered {
                self.pre_replications += 1;
                self.predicted_injected += out.predicted.len() as u64;
                predicted = out.predicted;
            }
        }
        if records.is_empty() && predicted.is_empty() {
            return;
        }

        // --- Workload analysis (§IV-A) -----------------------------------
        let pcfg = self.cfg.planner;
        let n_parts = eng.cluster.n_partitions();
        let mut graph = HeatGraph::new(n_parts);
        {
            let pl = &eng.cluster.placement;
            let skip = records.len().saturating_sub(pcfg.history_cap);
            for rec in records.iter().skip(skip) {
                graph.add_txn(&rec.parts, 1.0, pl, pcfg.cross_edge_boost);
            }
            for (parts, w) in &predicted {
                graph.add_txn(parts, w * pcfg.predicted_weight, pl, pcfg.cross_edge_boost);
            }
        }

        // --- Plan generation (§IV-B) --------------------------------------
        // Dead nodes (fault injection) are masked out of the rearrangement;
        // the Schism path plans obliviously, so its output is filtered below.
        // The failure-domain topology and placement policy ride in from the
        // cluster config: under RackSafe the plan appends AddSecondary
        // repairs restoring every planned partition's zone coverage.
        let live = eng.cluster.node_up.clone();
        let mut plan = match self.cfg.partitioning {
            Partitioning::Rearrange => {
                let clumps = generate_clumps(&graph, pcfg.alpha, pcfg.max_clump_size);
                let freq = graph.normalized_weights();
                rearrange_with_topology(
                    clumps,
                    &eng.cluster.placement,
                    &freq,
                    &pcfg,
                    true,
                    &live,
                    &eng.cluster.zone_of,
                    eng.cluster.cfg.placement,
                )
            }
            Partitioning::Schism => schism_plan(&graph, &eng.cluster.placement, pcfg.epsilon),
        };
        plan.entries.retain(|e| live[e.dest.idx()]);
        plan.assignments.retain(|(_, dest)| live[dest.idx()]);
        // Refresh the router affinity table (deliberate routing, §III) for
        // every partition the plan assigned this round.
        for (parts, dest) in &plan.assignments {
            for p in parts {
                self.affinity.insert(p.0, *dest);
            }
        }
        if plan.entries.is_empty() {
            return;
        }
        self.plans_applied += 1;

        // --- Asynchronous adjustment (§III) -------------------------------
        for e in &plan.entries {
            match e.action {
                PlanAction::Remaster => {
                    let _ = eng.remaster_async(e.part, e.dest);
                }
                PlanAction::AddReplica => {
                    let _ = eng.add_replica_async(e.part, e.dest, true);
                }
                PlanAction::Migrate => {
                    let _ = eng.migrate_async(e.part, e.dest);
                }
                PlanAction::AddSecondary => {
                    // Anti-affinity repair: a background copy only — the
                    // primary stays put, the new replica restores coverage.
                    let _ = eng.add_replica_async(e.part, e.dest, false);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::config::LionConfig;
    use crate::protocol::Lion;
    use lion_common::{PartitionId, SimConfig, SECOND};
    use lion_engine::{Engine, Protocol, TickKind};
    use lion_workloads::{Schedule, YcsbConfig, YcsbWorkload};

    fn cfg() -> SimConfig {
        SimConfig {
            nodes: 4,
            partitions_per_node: 4,
            keys_per_partition: 1024,
            value_size: 32,
            clients_per_node: 4,
            ..Default::default()
        }
    }

    #[test]
    fn plan_tick_without_history_is_a_no_op() {
        let wl = Box::new(YcsbWorkload::new(YcsbConfig::for_cluster(4, 4, 1024)));
        let mut eng = Engine::new(cfg(), wl);
        let mut lion = Lion::standard();
        lion.on_tick(&mut eng, TickKind::Planner);
        assert_eq!(lion.plans_applied, 0);
    }

    #[test]
    fn plans_co_locate_stable_pairs() {
        // Run long enough for a couple of plan rounds; the co-access pairs
        // (p, p^1) must end up with both primaries on one node.
        let wl = Box::new(YcsbWorkload::new(
            YcsbConfig::for_cluster(4, 4, 1024)
                .with_mix(1.0, 0.0)
                .with_seed(71),
        ));
        let mut eng = Engine::new(cfg(), wl);
        let mut lion = Lion::standard();
        eng.run(&mut lion, 7 * SECOND);
        assert!(lion.plans_applied >= 1);
        let pl = &eng.cluster.placement;
        let colocated = (0..8)
            .map(|k| {
                let a = PartitionId(2 * k);
                let b = PartitionId(2 * k + 1);
                (pl.primary_of(a) == pl.primary_of(b)) as usize
            })
            .sum::<usize>();
        assert!(colocated >= 6, "only {colocated}/8 pairs co-located");
        // balance: each node keeps at least one pair
        let mut per_node = vec![0usize; 4];
        for p in 0..16 {
            per_node[pl.primary_of(PartitionId(p)).idx()] += 1;
        }
        assert!(
            per_node.iter().all(|&c| c >= 1),
            "placement collapsed: {per_node:?}"
        );
    }

    /// Under RackSafe the provision loop must keep every partition's
    /// replica set spanning both racks even while Algorithm 1 chases
    /// locality — the repair copies ride along with the plan.
    #[test]
    fn rack_safe_provision_preserves_zone_coverage() {
        let mut c = cfg();
        c.zones = 2;
        c.placement = lion_common::PlacementPolicy::RackSafe { min_zones: 2 };
        let wl = Box::new(YcsbWorkload::new(
            YcsbConfig::for_cluster(4, 4, 1024)
                .with_mix(1.0, 0.0)
                .with_seed(73),
        ));
        let mut eng = Engine::new(c, wl);
        let mut lion = Lion::standard();
        eng.run(&mut lion, 7 * SECOND);
        assert!(lion.plans_applied >= 1, "planning rounds happened");
        for p in 0..eng.cluster.n_partitions() {
            assert!(
                eng.cluster.zone_coverage(PartitionId(p as u32)) >= 2,
                "P{p} collapsed into one rack after planning"
            );
        }
        eng.cluster.check_invariants().unwrap();
    }

    #[test]
    fn prediction_triggers_on_shift() {
        // Hotspot pairing shifts every 4 s; with prediction on, the
        // predictor must eventually fire pre-replication.
        let sched = Schedule::interval_shift(4 * SECOND, 3, 5, 1.0);
        let wl = Box::new(YcsbWorkload::new(
            YcsbConfig::for_cluster(4, 4, 1024)
                .with_schedule(sched)
                .with_seed(72),
        ));
        let mut c = cfg();
        c.seed = 99;
        let mut eng = Engine::new(c, wl);
        let mut lion = Lion::new(LionConfig {
            predictor: lion_predictor::PredictorConfig {
                sample_interval_us: SECOND,
                window: 8,
                horizon: 2,
                gamma: 0.1,
                train_epochs: 10,
                hidden: 8,
                ..lion_predictor::PredictorConfig::default()
            },
            ..LionConfig::lion_standard()
        });
        eng.run(&mut lion, 20 * SECOND);
        assert!(lion.last_wv > 0.0, "wv was computed");
        assert!(
            lion.pre_replications > 0,
            "periodic shifts should trigger pre-replication (wv={})",
            lion.last_wv
        );
    }
}
