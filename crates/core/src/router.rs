//! The Lion transaction router (§III).
//!
//! "We introduce a set of transaction routers, each of which is equipped
//! with a cost model identical to the planner's. The router will dispatch T
//! to a node with maximum requisite replicas, where the execution cost is
//! the lowest." Ties (several zero-cost candidates) break toward the node
//! with the least busy worker pool, which is how deliberate routing also
//! spreads load.

use lion_common::{NodeId, TxnId};
use lion_engine::Engine;
use lion_planner::{execution_cost_zoned, CostWeights, TxnPlacementClass};

/// Scores every node with the planner's cost model and returns the chosen
/// executor plus its placement class. The score is zone-aware: with
/// `weights.w_z > 0` a candidate coordinator pays extra for every remote
/// partition whose primary sits across a rack boundary, so deliberate
/// routing prefers rack-local coordinators under rack-safe placement
/// (`w_z = 0`, the default, reproduces the zone-oblivious router exactly).
pub fn route_txn(eng: &Engine, txn: TxnId, weights: CostWeights) -> (NodeId, TxnPlacementClass) {
    let parts = &eng.txn(txn).parts;
    let placement = &eng.cluster.placement;
    // f(v, Np(v, p)): normalized partition heat from the freq tracker.
    let freq: Vec<f64> = (0..placement.n_partitions())
        .map(|p| {
            eng.cluster
                .freq
                .normalized(lion_common::PartitionId(p as u32))
        })
        .collect();

    let mut best: Option<(NodeId, TxnPlacementClass, f64, u64)> = None;
    for n in 0..placement.n_nodes() as u16 {
        let node = NodeId(n);
        if !eng.cluster.is_up(node) {
            continue; // dead executors take no transactions
        }
        let (class, cost) =
            execution_cost_zoned(placement, &freq, parts, node, weights, &eng.cluster.zone_of);
        let backlog = eng.cluster.workers[node.idx()].earliest_free();
        let better = match &best {
            None => true,
            Some((_, _, bc, bb)) => cost < bc - 1e-12 || (cost < bc + 1e-12 && backlog < *bb),
        };
        if better {
            best = Some((node, class, cost, backlog));
        }
    }
    let (node, class, _, _) = best.expect("at least one node");
    (node, class)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lion_common::{ClientId, Op, PartitionId, SimConfig, TxnRequest, Workload};

    fn engine() -> Engine {
        let cfg = SimConfig {
            nodes: 3,
            partitions_per_node: 2,
            keys_per_partition: 16,
            ..Default::default()
        };
        let wl: Box<dyn Workload> =
            Box::new(|_now| TxnRequest::new(vec![Op::read(PartitionId(0), 0)]));
        Engine::new(cfg, wl)
    }

    #[test]
    fn routes_to_all_primary_node() {
        let mut eng = engine();
        // p0 and p3 both have primaries on... p0->N0, p3->N0 (round robin
        // over 3 nodes: 0,1,2,0,1,2).
        let t = eng.inject_txn(
            ClientId(0),
            TxnRequest::new(vec![
                Op::read(PartitionId(0), 1),
                Op::write(PartitionId(3), 2),
            ]),
        );
        let (node, class) = route_txn(&eng, t, CostWeights::default());
        assert_eq!(node, NodeId(0));
        assert_eq!(class, TxnPlacementClass::AllPrimary);
    }

    #[test]
    fn prefers_remaster_node_over_distributed() {
        let mut eng = engine();
        // p0 primary N0 (secondary N1); p1 primary N1: at N1 everything is
        // present (p0 as secondary) -> NeedsRemaster beats any 2PC node.
        let t = eng.inject_txn(
            ClientId(0),
            TxnRequest::new(vec![
                Op::read(PartitionId(0), 1),
                Op::write(PartitionId(1), 2),
            ]),
        );
        let (node, class) = route_txn(&eng, t, CostWeights::default());
        assert_eq!(node, NodeId(1));
        assert!(matches!(
            class,
            TxnPlacementClass::NeedsRemaster { count: 1 }
        ));
    }

    #[test]
    fn zone_weight_moves_the_coordinator_into_the_majority_rack() {
        // 4 nodes, 2 racks (Z0 = {N0,N1}, Z1 = {N2,N3}), one partition per
        // node, no secondaries: every candidate coordinates remotely.
        let cfg = SimConfig {
            nodes: 4,
            partitions_per_node: 1,
            keys_per_partition: 16,
            replication_factor: 1,
            zones: 2,
            ..Default::default()
        };
        let wl: Box<dyn Workload> =
            Box::new(|_now| TxnRequest::new(vec![Op::read(PartitionId(0), 0)]));
        let mut eng = Engine::new(cfg, wl);
        // Txn over {p0@N0, p2@N2, p3@N3}: zone-obliviously N0, N2, N3 all
        // score 2·w_m and the tie falls to N0 — a coordinator that pays two
        // cross-rack 2PC rounds. The zone term breaks the tie toward the
        // rack holding the majority of the primaries.
        let t = eng.inject_txn(
            ClientId(0),
            TxnRequest::new(vec![
                Op::read(PartitionId(0), 1),
                Op::write(PartitionId(2), 2),
                Op::write(PartitionId(3), 3),
            ]),
        );
        let (flat, _) = route_txn(&eng, t, CostWeights::default());
        assert_eq!(flat, NodeId(0), "zone-oblivious tie falls to N0");
        let (zoned, class) = route_txn(&eng, t, CostWeights::default().with_zone_weight(2.0));
        assert_eq!(zoned, NodeId(2), "zone term prefers the Z1 coordinator");
        assert!(matches!(class, TxnPlacementClass::Distributed { .. }));
    }

    #[test]
    fn load_breaks_zero_cost_ties() {
        let mut eng = engine();
        // single-partition txn on p0 (primary N0): only N0 is zero-cost,
        // but if we saturate... instead use a txn over nothing shared:
        // make N0 busy and check a p0-primary txn still goes to N0 (cost
        // dominates), while an empty-parts txn would tie — craft tie via
        // two candidate nodes both holding all primaries: impossible here,
        // so assert busy N0 still wins on cost.
        let _ = eng.cluster.workers[0].acquire(0, 10_000);
        let t = eng.inject_txn(
            ClientId(0),
            TxnRequest::new(vec![Op::read(PartitionId(0), 1)]),
        );
        let (node, _) = route_txn(&eng, t, CostWeights::default());
        assert_eq!(node, NodeId(0), "cost outranks load");
    }
}
