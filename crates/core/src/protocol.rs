//! The Lion protocol (§III): cost-model routing, single-node fast path,
//! inline remastering, 2PC fallback, and the §IV-D batch optimization.
//!
//! Execution of one transaction follows the three cases of §III exactly:
//!
//! 1. the router found a node with **all primaries** → execute there and
//!    commit locally, skipping the prepare phase;
//! 2. the node lacks some primaries but holds **secondaries** → remaster
//!    them to the node (inline in standard mode; asynchronously before the
//!    batch's execution phase in batch mode), then run as case 1;
//! 3. otherwise → regular distributed transaction with 2PC. Remastering
//!    conflicts (another transfer in flight toward a different node) also
//!    fall back to 2PC, as §III prescribes.

use crate::config::LionConfig;
use crate::router::route_txn;
use lion_cluster::AdaptorError;
use lion_common::{FastMap, NodeId, Phase, Time, TxnId};
use lion_engine::{Engine, FaultNotice, OpFail, Protocol, TickKind, TxnClass};
use lion_planner::TxnPlacementClass;
use lion_predictor::WorkloadPredictor;

// Continuation kinds (attempt-stamped, see lion-baselines::tags for the
// packing scheme, re-implemented here to keep lion-core standalone).
const K_ROUTED: u8 = 1;
const K_GROUP: u8 = 2;
const K_BLOCKED: u8 = 3;
const K_PREP: u8 = 4;
const K_PREP_REPL: u8 = 5;
const K_LOC_COMMIT: u8 = 6;
const K_COMMIT: u8 = 7;

const COORD_IDX: u16 = 0xFFFF;

#[inline]
fn tag(kind: u8, attempt: u32, idx: u16) -> u32 {
    ((kind as u32) << 24) | ((attempt & 0xFF) << 16) | idx as u32
}

#[inline]
fn untag(t: u32) -> (u8, u32, u16) {
    ((t >> 24) as u8, (t >> 16) & 0xFF, (t & 0xFFFF) as u16)
}

/// The Lion protocol.
pub struct Lion {
    pub(crate) cfg: LionConfig,
    pub(crate) predictor: WorkloadPredictor,
    /// Router affinity: the planner's clump destination per partition.
    /// "Transactions accessing the same partitions are deliberately routed
    /// to the same node, which reduces ping-pong remastering" (§III) — the
    /// affinity keeps routing stable while replica copies are in flight, so
    /// the greedy cost model cannot undo the plan mid-transition.
    pub(crate) affinity: FastMap<u32, NodeId>,
    /// Diagnostics: plan rounds that produced adaptor actions.
    pub plans_applied: u64,
    /// Diagnostics: last workload-variation metric (Eq. 6).
    pub last_wv: f64,
    /// Diagnostics: pre-replication triggers.
    pub pre_replications: u64,
    /// Diagnostics: predicted transactions injected into the heat graph.
    pub predicted_injected: u64,
    /// Diagnostics: provision rounds forced by failovers.
    pub failover_replans: u64,
    /// A failover happened and the provision loop should re-run Algorithm 1
    /// once the topology settles (set by `on_fault`).
    replan_pending: bool,
}

impl Lion {
    /// Builds Lion from a configuration (see [`LionConfig`] constructors).
    pub fn new(cfg: LionConfig) -> Self {
        Lion {
            predictor: WorkloadPredictor::new(cfg.predictor),
            cfg,
            affinity: FastMap::default(),
            plans_applied: 0,
            last_wv: 0.0,
            pre_replications: 0,
            predicted_injected: 0,
            failover_replans: 0,
            replan_pending: false,
        }
    }

    /// Full Lion (batch + prediction), the paper's headline configuration.
    pub fn full() -> Self {
        Self::new(LionConfig::lion())
    }

    /// Standard-execution Lion for the non-batch comparisons.
    pub fn standard() -> Self {
        Self::new(LionConfig::lion_standard())
    }

    /// Configuration accessor.
    pub fn config(&self) -> &LionConfig {
        &self.cfg
    }

    fn t(&self, eng: &Engine, txn: TxnId, kind: u8, idx: u16) -> u32 {
        tag(kind, eng.txn(txn).attempts, idx)
    }

    /// Consensus affinity of a transaction's partitions: the planned
    /// destination when every accessed partition agrees on one.
    fn affinity_of(&self, eng: &Engine, txn: TxnId) -> Option<NodeId> {
        let parts = &eng.txn(txn).parts;
        let mut dest: Option<NodeId> = None;
        for p in parts {
            match (self.affinity.get(&p.0), dest) {
                (None, _) => return None,
                (Some(&n), None) => dest = Some(n),
                (Some(&n), Some(d)) if n != d => return None,
                _ => {}
            }
        }
        dest
    }

    /// Routes and dispatches one transaction (both modes).
    fn submit_one(&mut self, eng: &mut Engine, txn: TxnId) {
        let (home, class) = match self.affinity_of(eng, txn) {
            Some(node) => {
                // Deliberate routing to the planned clump destination.
                let freq: Vec<f64> = (0..eng.cluster.placement.n_partitions())
                    .map(|p| {
                        eng.cluster
                            .freq
                            .normalized(lion_common::PartitionId(p as u32))
                    })
                    .collect();
                let (class, _) = lion_planner::execution_cost_zoned(
                    &eng.cluster.placement,
                    &freq,
                    &eng.txn(txn).parts,
                    node,
                    self.cfg.planner.weights,
                    &eng.cluster.zone_of,
                );
                (node, class)
            }
            None => route_txn(eng, txn, self.cfg.planner.weights),
        };
        eng.txn_mut(txn).home = home;
        eng.txn_mut(txn).step = 0;

        // Batch optimization (§IV-D): issue every needed remaster for this
        // transaction asynchronously, up front. The executor does not stall
        // here — the partition-group walk below sleeps through any window
        // that is still open when the group is reached.
        if self.cfg.batch {
            if let TxnPlacementClass::NeedsRemaster { .. } = class {
                let parts = eng.txn(txn).parts.clone();
                for part in parts {
                    if eng.cluster.placement.is_primary(part, home)
                        || !eng.cluster.placement.has_secondary(part, home)
                        || self.affinity.get(&part.0).is_some_and(|&a| a != home)
                    {
                        continue;
                    }
                    match eng.remaster_async(part, home) {
                        Ok(_) => {
                            eng.txn_mut(txn).class = TxnClass::Remastered;
                        }
                        Err(AdaptorError::Busy(_))
                            if eng.cluster.parts[part.idx()].remastering == Some(home) =>
                        {
                            // Another batch transaction already requested
                            // the same transfer: ride along.
                            eng.txn_mut(txn).class = TxnClass::Remastered;
                        }
                        Err(_) => {} // conflict: 2PC fallback at the group
                    }
                }
            }
        }

        let bytes = 32 + 8 * eng.txn(txn).req.ops.len() as u32;
        let t = self.t(eng, txn, K_ROUTED, 0);
        eng.net(bytes, Phase::Scheduling, txn, t);
    }

    /// Advances to the current partition group or to the commit phase.
    fn process_group(&mut self, eng: &mut Engine, txn: TxnId) {
        // Honest split-brain: park coordinators cut off from a partition
        // they need until reachability returns (promotion or heal).
        if !eng.txn_reachable(txn) {
            return eng.park_until_heal(txn);
        }
        let gi = eng.txn(txn).step as usize;
        if gi >= eng.txn(txn).n_groups() {
            return self.begin_commit(eng, txn);
        }
        let part = eng.txn(txn).group_part(gi);
        let now = eng.now();

        let avail = eng.cluster.available_at(part);
        if avail > now {
            // Blocked by an in-flight remaster/migration: new operations
            // wait for the hand-off window (§III).
            let t = self.t(eng, txn, K_BLOCKED, 0);
            eng.sleep(avail - now + 1, Phase::Other, txn, t);
            return;
        }

        let home = eng.txn(txn).home;
        let primary = eng.cluster.placement.primary_of(part);
        if primary == home {
            // Index walk over the precomputed group — no per-wake clone.
            for i in 0..eng.txn(txn).group_ops(gi).len() {
                let op = eng.txn(txn).group_ops(gi)[i];
                match eng.exec_op_at(home, txn, op) {
                    Ok(()) => {}
                    Err(OpFail::Locked) => return eng.abort_retry(txn),
                    Err(_) => {
                        let t = self.t(eng, txn, K_BLOCKED, 0);
                        return eng.sleep(10, Phase::Other, txn, t);
                    }
                }
            }
            let (reads, writes) = eng.txn(txn).group_reads_writes(gi);
            let mut cost = eng.op_cpu(reads, writes);
            if gi == 0 {
                cost += eng.config().sim.cpu.txn_overhead_us;
            }
            let t = self.t(eng, txn, K_GROUP, 0);
            eng.cpu(home, Phase::Execution, cost, txn, t);
        } else if !self.cfg.batch
            && eng.cluster.placement.has_secondary(part, home)
            && self.affinity.get(&part.0).is_none_or(|&a| a == home)
            && route_txn(eng, txn, self.cfg.planner.weights).0 == home
        {
            // §III case 2 (standard mode): remaster the local secondary
            // inline, then execute the group locally. Two guards prevent
            // ping-pong remastering: a partition whose planned destination
            // is elsewhere is left alone (deliberate routing), and a
            // transaction whose home stopped being the router's best choice
            // while it waited (the placement moved underneath it) executes
            // the group via 2PC instead of dragging the primary back —
            // "otherwise, they will execute through 2PC" (§III).
            match eng.remaster_async(part, home) {
                Ok(d) => {
                    if eng.txn(txn).class == TxnClass::SingleNode {
                        eng.txn_mut(txn).class = TxnClass::Remastered;
                    }
                    let t = self.t(eng, txn, K_BLOCKED, 0);
                    eng.sleep(d + 1, Phase::Other, txn, t);
                }
                Err(AdaptorError::Busy(_))
                    if eng.cluster.parts[part.idx()].remastering == Some(home) =>
                {
                    if eng.txn(txn).class == TxnClass::SingleNode {
                        eng.txn_mut(txn).class = TxnClass::Remastered;
                    }
                    let wait = eng.cluster.available_at(part).saturating_sub(now) + 1;
                    let t = self.t(eng, txn, K_BLOCKED, 0);
                    eng.sleep(wait, Phase::Other, txn, t);
                }
                Err(_) => {
                    // Remastering conflict toward another node: "others
                    // resort to committing as distributed transactions".
                    self.remote_group(eng, txn, gi);
                }
            }
        } else {
            self.remote_group(eng, txn, gi);
        }
    }

    /// §III case 3: remote execution at the partition's primary.
    fn remote_group(&mut self, eng: &mut Engine, txn: TxnId, gi: usize) {
        let part = eng.txn(txn).group_part(gi);
        let primary = eng.cluster.placement.primary_of(part);
        eng.txn_mut(txn).class = TxnClass::Distributed;
        if !eng.txn(txn).participants.contains(&primary) {
            eng.txn_mut(txn).participants.push(primary);
        }
        let (reads, writes) = eng.txn(txn).group_reads_writes(gi);
        let req = 24 * (reads + writes) as u32;
        let resp = 16 + (reads as u32) * eng.config().sim.value_size;
        let cpu = eng.op_cpu(reads, writes) + eng.config().sim.cpu.msg_handle_us;
        let t = self.t(eng, txn, K_GROUP, 1);
        let home = eng.txn(txn).home;
        eng.remote_round(home, primary, req, resp, cpu, Phase::Execution, txn, t);
    }

    fn finish_group(&mut self, eng: &mut Engine, txn: TxnId, remote: bool) {
        if remote {
            let gi = eng.txn(txn).step as usize;
            let part = eng.txn(txn).group_part(gi);
            let primary = eng.cluster.placement.primary_of(part);
            for i in 0..eng.txn(txn).group_ops(gi).len() {
                let op = eng.txn(txn).group_ops(gi)[i];
                match eng.exec_op_at(primary, txn, op) {
                    Ok(()) => {}
                    Err(OpFail::Locked) => return eng.abort_retry(txn),
                    Err(_) => {
                        let t = self.t(eng, txn, K_BLOCKED, 0);
                        return eng.sleep(10, Phase::Other, txn, t);
                    }
                }
            }
        }
        eng.txn_mut(txn).step += 1;
        self.process_group(eng, txn);
    }

    fn begin_commit(&mut self, eng: &mut Engine, txn: TxnId) {
        let home = eng.txn(txn).home;
        let c = eng.config().sim.cpu;
        if eng.txn(txn).participants.is_empty() {
            // Single-node: "the transaction can be directly committed,
            // omitting the prepare phase" (§III).
            let t = self.t(eng, txn, K_LOC_COMMIT, 0);
            eng.cpu(home, Phase::Commit, c.validate_us + c.install_us, txn, t);
        } else {
            let n = eng.txn(txn).participants.len() as u32 + 1;
            eng.join_begin(txn, n);
            let t = self.t(eng, txn, K_PREP, COORD_IDX);
            eng.cpu(home, Phase::Commit, c.validate_us, txn, t);
            let participants = eng.txn(txn).participants.clone();
            for (i, p) in participants.into_iter().enumerate() {
                let t = self.t(eng, txn, K_PREP, i as u16);
                eng.remote_round(home, p, 48, 16, c.validate_us, Phase::Commit, txn, t);
            }
        }
    }

    fn prepare_branch(&mut self, eng: &mut Engine, txn: TxnId, idx: u16) {
        let node = if idx == COORD_IDX {
            eng.txn(txn).home
        } else {
            eng.txn(txn).participants[idx as usize]
        };
        if eng.validate_at(node, txn) {
            let t = self.t(eng, txn, K_PREP_REPL, idx);
            eng.replicate_prepare(node, txn, t);
        } else {
            self.branch_done(eng, txn, false);
        }
    }

    fn branch_done(&mut self, eng: &mut Engine, txn: TxnId, ok: bool) {
        match eng.join_arrive(txn, ok) {
            None => {}
            Some(true) => self.commit_distributed(eng, txn),
            Some(false) => {
                let n = eng.txn(txn).participants.len() as u32;
                for _ in 0..n {
                    eng.net_fire_and_forget(16);
                }
                if self.cfg.batch {
                    eng.abort_defer(txn);
                } else {
                    eng.abort_retry(txn);
                }
            }
        }
    }

    fn commit_distributed(&mut self, eng: &mut Engine, txn: TxnId) {
        let home = eng.txn(txn).home;
        let participants = eng.txn(txn).participants.clone();
        for p in participants {
            eng.net_fire_and_forget(32);
            eng.install_at(p, txn);
        }
        eng.install_at(home, txn);
        let c = eng.config().sim.cpu;
        let t = self.t(eng, txn, K_COMMIT, 0);
        eng.cpu(home, Phase::Commit, c.install_us, txn, t);
    }
}

impl Protocol for Lion {
    fn name(&self) -> &'static str {
        self.cfg.name
    }

    fn batch_mode(&self) -> bool {
        self.cfg.batch
    }

    fn on_submit(&mut self, eng: &mut Engine, txn: TxnId) {
        self.submit_one(eng, txn);
    }

    fn on_batch(&mut self, eng: &mut Engine, batch: &[TxnId]) {
        for &t in batch {
            self.submit_one(eng, t);
        }
    }

    fn on_wake(&mut self, eng: &mut Engine, txn: TxnId, tagv: u32) {
        let (kind, attempt, idx) = untag(tagv);
        if attempt != (eng.txn(txn).attempts & 0xFF) {
            return; // stale wake from an aborted attempt
        }
        match kind {
            K_ROUTED => self.process_group(eng, txn),
            K_GROUP => self.finish_group(eng, txn, idx == 1),
            K_BLOCKED => self.process_group(eng, txn),
            K_PREP => self.prepare_branch(eng, txn, idx),
            K_PREP_REPL => self.branch_done(eng, txn, true),
            K_LOC_COMMIT => {
                let home = eng.txn(txn).home;
                if eng.validate_at(home, txn) {
                    eng.install_at(home, txn);
                    eng.commit(txn);
                } else if self.cfg.batch {
                    eng.abort_defer(txn);
                } else {
                    eng.abort_retry(txn);
                }
            }
            K_COMMIT => eng.commit(txn),
            _ => unreachable!("unknown continuation kind {kind}"),
        }
    }

    fn on_tick(&mut self, eng: &mut Engine, kind: TickKind) {
        if kind == TickKind::Planner {
            self.plan_tick(eng);
        }
    }

    fn on_fault(&mut self, eng: &mut Engine, notice: &FaultNotice) {
        match notice {
            FaultNotice::NodeDown(node) => {
                // Stale affinity toward a dead node would keep the router
                // pinning transactions to it; drop those entries immediately
                // and let the next provision round re-assign the clumps.
                self.affinity.retain(|_, dest| dest != node);
                if self.cfg.replan_on_failover {
                    self.replan_pending = true;
                }
            }
            FaultNotice::FailoverComplete { .. } => {
                // Re-run Algorithm 1 once promotions land: the surviving
                // topology is now authoritative, and the plan should rebuild
                // co-location (and replica headroom) around it.
                if self.replan_pending
                    && !eng.cluster.parts.iter().any(|rt| rt.failing_over.is_some())
                {
                    self.replan_pending = false;
                    self.failover_replans += 1;
                    self.plan_tick(eng);
                }
            }
            FaultNotice::NodeUp(_) => {
                // Fresh capacity: the next planner tick folds it in (the
                // rejoin copies are still in flight right now). A pending
                // replan owed to a *different* node's crash stays pending —
                // its FailoverComplete will consume it.
            }
        }
    }
}

/// Helper shared with tests: virtual time of one second.
#[allow(dead_code)]
pub(crate) const SECOND: Time = 1_000_000;

#[cfg(test)]
mod tests {
    use super::*;
    use lion_baselines::two_pc;
    use lion_common::{SimConfig, SECOND};
    use lion_engine::Engine;
    use lion_workloads::{YcsbConfig, YcsbWorkload};

    fn cfg(nodes: usize) -> SimConfig {
        SimConfig {
            nodes,
            partitions_per_node: 4,
            keys_per_partition: 2048,
            value_size: 32,
            clients_per_node: 6,
            batch_size: 64,
            ..Default::default()
        }
    }

    fn ycsb(nodes: u32, cross: f64, skew: f64, seed: u64) -> Box<YcsbWorkload> {
        Box::new(YcsbWorkload::new(
            YcsbConfig::for_cluster(nodes, 4, 2048)
                .with_mix(cross, skew)
                .with_seed(seed),
        ))
    }

    /// The headline behaviour: on a 100% cross-partition workload with
    /// stable co-access pairs, Lion converts almost everything to
    /// single-node execution and beats 2PC.
    #[test]
    fn lion_localizes_cross_partition_workload() {
        let horizon = 8 * SECOND;
        let mut eng_lion = Engine::new(cfg(4), ycsb(4, 1.0, 0.0, 61));
        let mut lion = Lion::standard();
        let r_lion = eng_lion.run(&mut lion, horizon);

        let mut eng_2pc = Engine::new(cfg(4), ycsb(4, 1.0, 0.0, 61));
        let r_2pc = eng_2pc.run(&mut two_pc(), horizon);

        assert!(r_lion.commits > 1000);
        assert!(
            r_lion.throughput_tps > r_2pc.throughput_tps * 1.3,
            "Lion {:.0} tps must beat 2PC {:.0} tps",
            r_lion.throughput_tps,
            r_2pc.throughput_tps
        );
        // adaptation actually happened
        assert!(lion.plans_applied > 0);
        assert!(r_lion.remasters > 0, "co-location via remastering");
        // by the end most txns are single-node; over the whole run the
        // distributed share must be well below 2PC's ~100%
        assert!(
            r_lion.class_fractions[2] < 0.5,
            "distributed fraction {:?}",
            r_lion.class_fractions
        );
        eng_lion.cluster.check_invariants().unwrap();
    }

    #[test]
    fn lion_single_partition_workload_stays_single_node() {
        let mut eng = Engine::new(cfg(2), ycsb(2, 0.0, 0.0, 62));
        let r = eng.run(&mut Lion::standard(), 2 * SECOND);
        assert!(r.commits > 500);
        assert!(r.class_fractions[0] > 0.95, "{:?}", r.class_fractions);
        assert_eq!(r.migrations, 0, "Lion never migrates");
    }

    #[test]
    fn lion_batch_mode_converts_with_async_remastering() {
        let mut eng = Engine::new(cfg(4), ycsb(4, 1.0, 0.0, 63));
        let mut lion = Lion::full();
        let r = eng.run(&mut lion, 8 * SECOND);
        assert!(r.commits > 1000, "commits {}", r.commits);
        assert!(r.remasters > 0);
        assert!(
            r.class_fractions[2] < 0.5,
            "batch Lion localizes too: {:?}",
            r.class_fractions
        );
        eng.cluster.check_invariants().unwrap();
    }

    #[test]
    fn lion_spreads_skewed_load() {
        let mut eng = Engine::new(cfg(4), ycsb(4, 0.5, 0.8, 64));
        let r = eng.run(&mut Lion::standard(), 8 * SECOND);
        assert!(r.commits > 1000);
        // primaries must have moved off the hot node
        let on_hot = eng.cluster.placement.primaries_on(lion_common::NodeId(0));
        assert!(
            on_hot < 4 + 4, // started with 4; should not have grown
            "hot node still holds {on_hot} primaries"
        );
        // busy time should not be concentrated on one node
        let busy: Vec<u64> = (0..4)
            .map(|n| eng.cluster.workers[n].busy_total())
            .collect();
        let max = *busy.iter().max().unwrap() as f64;
        let avg = busy.iter().sum::<u64>() as f64 / 4.0;
        assert!(max / avg < 2.5, "load still skewed: {busy:?}");
        eng.cluster.check_invariants().unwrap();
    }

    #[test]
    fn lion_s_variant_migrates_instead_of_replicating() {
        let mut eng = Engine::new(cfg(4), ycsb(4, 1.0, 0.0, 65));
        let mut lion_s = Lion::new(crate::config::LionConfig::lion_s());
        let r = eng.run(&mut lion_s, 6 * SECOND);
        assert!(r.commits > 500);
        assert!(r.migrations > 0, "Schism strategy migrates");
        assert_eq!(r.replica_adds, 0, "Schism never adds replicas");
        eng.cluster.check_invariants().unwrap();
    }

    /// Under a node crash, Lion's provision loop reacts to the topology
    /// loss: affinity to the dead node is dropped, Algorithm 1 re-runs once
    /// failover lands, and throughput keeps flowing on the survivors.
    #[test]
    fn lion_replans_after_failover() {
        let mut engine_cfg = lion_engine::EngineConfig::from(cfg(4));
        engine_cfg.plan_interval_us = 500_000;
        engine_cfg.faults =
            lion_engine::FaultPlan::new().crash_at(3 * SECOND, lion_common::NodeId(1));
        let mut eng = Engine::new(engine_cfg, ycsb(4, 1.0, 0.0, 67));
        let mut lion = Lion::standard();
        let r = eng.run(&mut lion, 6 * SECOND);
        assert_eq!(r.crashes, 1);
        assert!(r.failovers > 0, "dead node's primaries must fail over");
        assert_eq!(
            lion.failover_replans, 1,
            "Algorithm 1 must re-run once the failovers land"
        );
        assert!(
            lion.affinity.values().all(|&n| n != lion_common::NodeId(1)),
            "no routing affinity may point at the dead node"
        );
        assert!(r.commits > 500, "commits {}", r.commits);
        eng.cluster.check_invariants().unwrap();
    }

    #[test]
    fn remastering_machinery_is_exercised_under_churn() {
        // Long remaster windows + heavy skewed cross traffic: conversions
        // must happen, and anything that hit an in-flight transfer must
        // have completed correctly (invariants hold, commits flow).
        let mut c = cfg(4);
        c.remaster_delay_us = 8000;
        let mut eng = Engine::new(c, ycsb(4, 1.0, 0.5, 66));
        let r = eng.run(&mut Lion::standard(), 4 * SECOND);
        assert!(r.commits > 300);
        assert!(r.remasters > 0, "remastering must fire under this workload");
        eng.cluster.check_invariants().unwrap();
    }
}
