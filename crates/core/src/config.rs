//! Lion configuration and the ablation variants of Table II.

use lion_planner::PlannerConfig;
use lion_predictor::PredictorConfig;

/// Which partitioning strategy the planner runs (Table II column
/// "Partitioning Strategy").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Partitioning {
    /// Lion's replica rearrangement (Algorithm 1): remaster when a secondary
    /// exists, background-copy otherwise.
    Rearrange,
    /// Schism-style replica-oblivious min-cut partitioning realized purely
    /// by blocking migrations (the `Lion(S)`/`Lion(SW)` ablations).
    Schism,
}

/// Full Lion protocol configuration.
#[derive(Debug, Clone)]
pub struct LionConfig {
    /// Report / legend name.
    pub name: &'static str,
    /// Planner knobs (α, cost weights, ε, A, wp).
    pub planner: PlannerConfig,
    /// Predictor knobs (sampling, β, γ, LSTM shape).
    pub predictor: PredictorConfig,
    /// Partitioning strategy.
    pub partitioning: Partitioning,
    /// Workload prediction enabled (Table II column "Workload Prediction").
    pub prediction: bool,
    /// Batch execution with asynchronous remastering (Table II column
    /// "Batch Optimization", §IV-D).
    pub batch: bool,
    /// Re-run the provision loop (Algorithm 1) as soon as a failover lands,
    /// so the placement plan reflects the post-failure topology instead of
    /// waiting for the next planner tick.
    pub replan_on_failover: bool,
}

impl LionConfig {
    fn base(name: &'static str) -> Self {
        LionConfig {
            name,
            planner: PlannerConfig::default(),
            predictor: PredictorConfig {
                // Sampling at 5 s with a ×4 training window covers the 60 s
                // hotspot periods of §VI-C.2.
                sample_interval_us: 5_000_000,
                window: 10,
                horizon: 2,
                train_epochs: 20,
                ..PredictorConfig::default()
            },
            partitioning: Partitioning::Rearrange,
            prediction: false,
            batch: false,
            replan_on_failover: true,
        }
    }

    /// Full Lion: rearrangement + prediction + batch (Table II row "Lion").
    pub fn lion() -> Self {
        LionConfig {
            prediction: true,
            batch: true,
            ..Self::base("Lion")
        }
    }

    /// Lion running in standard (non-batch) mode with every other
    /// optimization on — the configuration of the Fig. 7/8 standard-
    /// execution comparisons.
    pub fn lion_standard() -> Self {
        LionConfig {
            prediction: true,
            ..Self::base("Lion")
        }
    }

    /// `Lion(S)`: Schism partitioning only.
    pub fn lion_s() -> Self {
        LionConfig {
            partitioning: Partitioning::Schism,
            ..Self::base("Lion(S)")
        }
    }

    /// `Lion(R)`: replica rearrangement only.
    pub fn lion_r() -> Self {
        Self::base("Lion(R)")
    }

    /// `Lion(SW)`: Schism + workload prediction.
    pub fn lion_sw() -> Self {
        LionConfig {
            partitioning: Partitioning::Schism,
            prediction: true,
            ..Self::base("Lion(SW)")
        }
    }

    /// `Lion(RW)`: rearrangement + workload prediction.
    pub fn lion_rw() -> Self {
        LionConfig {
            prediction: true,
            ..Self::base("Lion(RW)")
        }
    }

    /// `Lion(RB)`: rearrangement + batch optimization.
    pub fn lion_rb() -> Self {
        LionConfig {
            batch: true,
            ..Self::base("Lion(RB)")
        }
    }

    /// Every Table II variant, in the paper's order (2PC lives in
    /// `lion-baselines`).
    pub fn all_variants() -> Vec<LionConfig> {
        vec![
            Self::lion_s(),
            Self::lion_r(),
            Self::lion_sw(),
            Self::lion_rw(),
            Self::lion_rb(),
            Self::lion(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_matrix() {
        // (partitioning, prediction, batch) must match Table II exactly.
        let expect = [
            ("Lion(S)", Partitioning::Schism, false, false),
            ("Lion(R)", Partitioning::Rearrange, false, false),
            ("Lion(SW)", Partitioning::Schism, true, false),
            ("Lion(RW)", Partitioning::Rearrange, true, false),
            ("Lion(RB)", Partitioning::Rearrange, false, true),
            ("Lion", Partitioning::Rearrange, true, true),
        ];
        for (cfg, (name, part, pred, batch)) in LionConfig::all_variants().iter().zip(expect) {
            assert_eq!(cfg.name, name);
            assert_eq!(cfg.partitioning, part, "{name}");
            assert_eq!(cfg.prediction, pred, "{name}");
            assert_eq!(cfg.batch, batch, "{name}");
        }
    }

    #[test]
    fn standard_lion_is_non_batch() {
        let cfg = LionConfig::lion_standard();
        assert!(!cfg.batch);
        assert!(cfg.prediction);
        assert_eq!(cfg.partitioning, Partitioning::Rearrange);
    }
}
