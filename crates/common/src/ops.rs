//! Transaction operations and requests.
//!
//! A transaction is a list of key-level read/write [`Op`]s. The set of
//! partitions it touches (the paper's `TxnParts`, §IV-A) is derived once at
//! submission and reused by the router, planner, and predictor.

use crate::ids::{Key, PartitionId};
use crate::Time;

/// Whether an operation reads or writes its row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// Record the row version into the read set.
    Read,
    /// Buffer a new value; installed at commit.
    Write,
}

/// One key-level operation of a transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Op {
    /// Partition the row lives in.
    pub partition: PartitionId,
    /// Row key within the partition.
    pub key: Key,
    /// Read or write.
    pub kind: OpKind,
}

impl Op {
    /// Convenience constructor for a read.
    pub fn read(partition: PartitionId, key: Key) -> Self {
        Op {
            partition,
            key,
            kind: OpKind::Read,
        }
    }

    /// Convenience constructor for a write.
    pub fn write(partition: PartitionId, key: Key) -> Self {
        Op {
            partition,
            key,
            kind: OpKind::Write,
        }
    }
}

/// A transaction request: the declared read/write set.
///
/// Access sets are known up front, mirroring the paper's `TxnParts` extracted
/// after SQL parsing (§IV-A); the deterministic baselines (Calvin, Aria,
/// Hermes) additionally *require* declared sets.
#[derive(Debug, Clone, Default)]
pub struct TxnRequest {
    /// Key-level operations, in program order.
    pub ops: Vec<Op>,
}

impl TxnRequest {
    /// Builds a request from operations.
    pub fn new(ops: Vec<Op>) -> Self {
        TxnRequest { ops }
    }

    /// Sorted, deduplicated partitions accessed by this transaction.
    pub fn partitions(&self) -> Vec<PartitionId> {
        let mut parts: Vec<PartitionId> = self.ops.iter().map(|o| o.partition).collect();
        parts.sort_unstable();
        parts.dedup();
        parts
    }

    /// True when every operation targets a single partition.
    pub fn is_single_partition(&self) -> bool {
        match self.ops.first() {
            None => true,
            Some(first) => self.ops.iter().all(|o| o.partition == first.partition),
        }
    }

    /// Number of write operations.
    pub fn write_count(&self) -> usize {
        self.ops.iter().filter(|o| o.kind == OpKind::Write).count()
    }

    /// Number of read operations.
    pub fn read_count(&self) -> usize {
        self.ops.len() - self.write_count()
    }
}

/// A routed-transaction record retained for workload analysis (§III, step
/// "Workload analysis"): the planner drains batches of these to build the
/// heat graph, and the predictor buckets them into arrival-rate series.
#[derive(Debug, Clone)]
pub struct TxnRecord {
    /// Submission time.
    pub at: Time,
    /// Sorted, deduplicated accessed partitions.
    pub parts: Vec<PartitionId>,
}

/// Lifecycle phase labels used for the latency breakdown of Fig. 14b.
///
/// Every engine primitive (CPU slice, network hop) is tagged with the phase
/// it belongs to; the metrics collector accumulates per-phase totals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Waiting for a worker, router, sequencer or lock manager.
    Scheduling,
    /// Running read/write logic (local or remote).
    Execution,
    /// Validation, prepare/commit rounds, group-commit waits.
    Commit,
    /// Shipping state to secondary replicas (sync or async).
    Replication,
    /// Everything else (migration waits, remastering, retries).
    Other,
}

impl Phase {
    /// All phases in the order the paper's Fig. 14b stacks them.
    pub const ALL: [Phase; 5] = [
        Phase::Scheduling,
        Phase::Execution,
        Phase::Commit,
        Phase::Replication,
        Phase::Other,
    ];

    /// Dense index for accumulator arrays.
    #[inline]
    pub fn idx(self) -> usize {
        match self {
            Phase::Scheduling => 0,
            Phase::Execution => 1,
            Phase::Commit => 2,
            Phase::Replication => 3,
            Phase::Other => 4,
        }
    }

    /// Short human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            Phase::Scheduling => "scheduling",
            Phase::Execution => "execution",
            Phase::Commit => "commit",
            Phase::Replication => "replication",
            Phase::Other => "other",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u32) -> PartitionId {
        PartitionId(i)
    }

    #[test]
    fn partitions_sorted_and_deduped() {
        let t = TxnRequest::new(vec![
            Op::read(p(3), 1),
            Op::write(p(1), 2),
            Op::read(p(3), 9),
        ]);
        assert_eq!(t.partitions(), vec![p(1), p(3)]);
    }

    #[test]
    fn single_partition_detection() {
        let t = TxnRequest::new(vec![Op::read(p(2), 1), Op::write(p(2), 5)]);
        assert!(t.is_single_partition());
        let t = TxnRequest::new(vec![Op::read(p(2), 1), Op::write(p(4), 5)]);
        assert!(!t.is_single_partition());
        assert!(TxnRequest::default().is_single_partition());
    }

    #[test]
    fn read_write_counts() {
        let t = TxnRequest::new(vec![
            Op::read(p(0), 1),
            Op::write(p(0), 2),
            Op::write(p(1), 3),
        ]);
        assert_eq!(t.read_count(), 1);
        assert_eq!(t.write_count(), 2);
    }

    #[test]
    fn phase_indices_are_dense_and_unique() {
        let mut seen = [false; 5];
        for ph in Phase::ALL {
            assert!(!seen[ph.idx()], "duplicate index for {:?}", ph);
            seen[ph.idx()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
