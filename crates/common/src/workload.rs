//! The workload abstraction the engine's closed-loop clients draw from.

use crate::ops::TxnRequest;
use crate::Time;

/// A transaction generator.
///
/// Implementations own their RNG state so that runs are reproducible from the
/// seed alone. `now` lets dynamic workloads (Fig. 8/10 hotspot schedules)
/// shift their access patterns over virtual time.
pub trait Workload: Send {
    /// Generates the next transaction request submitted at virtual time `now`.
    fn next_txn(&mut self, now: Time) -> TxnRequest;

    /// Short name for reports.
    fn name(&self) -> &str {
        "workload"
    }
}

/// Blanket implementation so closures can serve as ad-hoc workloads in tests.
impl<F> Workload for F
where
    F: FnMut(Time) -> TxnRequest + Send,
{
    fn next_txn(&mut self, now: Time) -> TxnRequest {
        self(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::PartitionId;
    use crate::ops::Op;

    #[test]
    fn closure_workload() {
        let mut w = |_now: Time| TxnRequest::new(vec![Op::read(PartitionId(0), 1)]);
        let t = Workload::next_txn(&mut w, 0);
        assert_eq!(t.ops.len(), 1);
        assert_eq!(Workload::name(&w), "workload");
    }
}
