//! Strongly-typed identifiers.
//!
//! Small integer newtypes instead of raw `usize`s so that a partition id can
//! never be confused with a node id. All ids are dense (allocated from 0) and
//! index directly into `Vec`s throughout the workspace.

use std::fmt;

/// Identifies one executor node in the cluster (paper: `N1..Nn`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u16);

/// Identifies one logical data partition (paper: `P1..Pm`). A partition has
/// one primary replica and one or more secondary replicas, each hosted by a
/// distinct node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PartitionId(pub u32);

/// Identifies one failure domain (rack / availability zone). Nodes in the
/// same zone share a blast radius: a rack power or switch loss takes all of
/// them down at once, which is exactly what `FaultKind::ZoneCrash` models.
/// Zone ids are dense (allocated from 0), like every other id here.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ZoneId(pub u16);

/// Identifies one transaction instance. A retried transaction keeps its id;
/// retries are tracked separately by the engine.
///
/// # Invariant: `slot | generation` packing
///
/// The engine allocates ids from a slab arena: the low 32 bits are the
/// arena slot, the high 32 bits a per-slot generation bumped on every
/// reuse. A stale id (a wake-up or fault-path completion outliving its
/// transaction) therefore never matches the slot's current occupant, while
/// lookups stay a plain vector index — no hashing on the protocol hot path.
/// Two consequences worth knowing:
///
/// * ids of *different* transactions occupying the same slot over time
///   share their low 32 bits — never compare or bucket transactions by
///   `id.0 & 0xFFFF_FFFF` alone;
/// * a plain small-integer `TxnId(n)` (as tests construct) is simply slot
///   `n` at generation 0, so the packing is invisible until a slot is
///   reused.
///
/// ```
/// use lion_common::TxnId;
///
/// let first = TxnId::compose(7, 0);
/// let reused = TxnId::compose(7, 1); // same slot, next occupant
/// assert_eq!(first.slot(), reused.slot());
/// assert_ne!(first, reused, "a retired generation never matches");
/// assert_eq!(TxnId(7), first, "generation 0 is the plain integer id");
/// assert_eq!(reused.generation(), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TxnId(pub u64);

/// Identifies one closed-loop client context driving the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClientId(pub u32);

/// A record key inside a partition. Keys are only unique *within* their
/// partition; the pair (partition, key) addresses a row.
pub type Key = u64;

impl NodeId {
    /// Returns the dense index of this node for `Vec` addressing.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl PartitionId {
    /// Returns the dense index of this partition for `Vec` addressing.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl ClientId {
    /// Returns the dense index of this client for `Vec` addressing.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl ZoneId {
    /// Returns the dense index of this zone for `Vec` addressing.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl TxnId {
    /// Packs an arena `(slot, generation)` pair into an id.
    #[inline]
    pub fn compose(slot: u32, generation: u32) -> Self {
        TxnId(((generation as u64) << 32) | slot as u64)
    }

    /// The arena slot this id addresses.
    #[inline]
    pub fn slot(self) -> usize {
        (self.0 & 0xFFFF_FFFF) as usize
    }

    /// The slot generation this id was minted under.
    #[inline]
    pub fn generation(self) -> u32 {
        (self.0 >> 32) as u32
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "N{}", self.0)
    }
}

impl fmt::Display for PartitionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

impl fmt::Display for ZoneId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Z{}", self.0)
    }
}

impl fmt::Display for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.generation() == 0 {
            write!(f, "T{}", self.slot())
        } else {
            write!(f, "T{}.g{}", self.slot(), self.generation())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(NodeId(3).to_string(), "N3");
        assert_eq!(PartitionId(7).to_string(), "P7");
        assert_eq!(TxnId(42).to_string(), "T42");
        assert_eq!(ZoneId(2).to_string(), "Z2");
        assert_eq!(ZoneId(2).idx(), 2);
    }

    #[test]
    fn txn_id_packs_slot_and_generation() {
        let id = TxnId::compose(7, 3);
        assert_eq!(id.slot(), 7);
        assert_eq!(id.generation(), 3);
        assert_eq!(id.to_string(), "T7.g3");
        assert_ne!(id, TxnId::compose(7, 4), "reused slot mints a fresh id");
        // Generation-0 ids are plain small integers, as tests construct them.
        assert_eq!(TxnId(9).slot(), 9);
        assert_eq!(TxnId(9).generation(), 0);
    }

    #[test]
    fn idx_roundtrip() {
        assert_eq!(NodeId(9).idx(), 9);
        assert_eq!(PartitionId(1234).idx(), 1234);
        assert_eq!(ClientId(5).idx(), 5);
    }

    #[test]
    fn ordering_follows_raw_value() {
        assert!(NodeId(1) < NodeId(2));
        assert!(PartitionId(0) < PartitionId(1));
    }
}
