//! # lion-common
//!
//! Shared vocabulary types for the Lion reproduction: identifiers, operations,
//! transaction requests, the replica [`Placement`] map that every component
//! (router, planner, adaptor) reasons about, and the configuration knobs that
//! mirror the parameters of the paper's evaluation (§VI-A).
//!
//! This crate is dependency-light on purpose: the planner and predictor are
//! pure algorithms over these types, which keeps them testable without the
//! simulation engine.

pub mod config;
pub mod ids;
pub mod ops;
pub mod placement;
pub mod workload;

pub use config::{CpuConfig, NetConfig, SimConfig};
pub use ids::{ClientId, Key, NodeId, PartitionId, TxnId};
pub use ops::{Op, OpKind, Phase, TxnRecord, TxnRequest};
pub use placement::{Placement, PlacementError};
pub use workload::Workload;

/// Virtual time in microseconds. The whole simulation runs on this clock.
pub type Time = u64;

/// One simulated second, in [`Time`] units.
pub const SECOND: Time = 1_000_000;

/// One simulated millisecond, in [`Time`] units.
pub const MILLIS: Time = 1_000;
