//! # lion-common
//!
//! Shared vocabulary types for the Lion reproduction: identifiers, operations,
//! transaction requests, the replica [`Placement`] map that every component
//! (router, planner, adaptor) reasons about, and the configuration knobs that
//! mirror the parameters of the paper's evaluation (§VI-A).
//!
//! This crate is dependency-light on purpose: the planner and predictor are
//! pure algorithms over these types, which keeps them testable without the
//! simulation engine.

pub mod config;
pub mod ids;
pub mod ops;
pub mod placement;
pub mod workload;

pub use config::{CpuConfig, NetConfig, SimConfig};
pub use ids::{ClientId, Key, NodeId, PartitionId, TxnId, ZoneId};
pub use ops::{Op, OpKind, Phase, TxnRecord, TxnRequest};
pub use placement::{Placement, PlacementError, PlacementPolicy};
pub use workload::Workload;

/// Deterministic fast hash map for hot-path state (row tables, transaction
/// maps, planner graphs). Backed by the vendored Fx hasher: no per-process
/// SipHash seed, so the same keys hash — and the same capacity resizes
/// happen — identically in every run, and small-integer keys hash in a few
/// cycles instead of a full SipHash permutation.
pub type FastMap<K, V> = fxhash::FxHashMap<K, V>;

/// Deterministic fast hash set; see [`FastMap`].
pub type FastSet<T> = fxhash::FxHashSet<T>;

/// Builds a [`FastMap`] pre-sized for `cap` entries (the `HashMap::new`-style
/// constructors are not available for custom hashers).
pub fn fast_map_with_capacity<K, V>(cap: usize) -> FastMap<K, V> {
    FastMap::with_capacity_and_hasher(cap, Default::default())
}

/// Virtual time in microseconds. The whole simulation runs on this clock.
pub type Time = u64;

/// One simulated second, in [`Time`] units.
pub const SECOND: Time = 1_000_000;

/// One simulated millisecond, in [`Time`] units.
pub const MILLIS: Time = 1_000;
