//! Simulation configuration.
//!
//! All knobs carry defaults calibrated to the paper's testbed (§VI-A): 8
//! worker threads per executor node, ~937 Mbit/s links, 2 initial replicas
//! per partition with a cap of 4, a 3000 µs remastering delay, 10 ms commit
//! epochs and 10 k-transaction batches. DESIGN.md §5 documents the CPU cost
//! calibration.

use crate::ids::{NodeId, ZoneId};
use crate::placement::PlacementPolicy;
use crate::Time;

/// Network model: every message pays a fixed one-way latency plus a
/// bandwidth-proportional serialization delay. Messages crossing a zone
/// (rack) boundary pay an extra fixed hop on top — traffic leaves the
/// top-of-rack switch and traverses the aggregation layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetConfig {
    /// One-way message latency in µs (LAN RTT ≈ 80 µs).
    pub one_way_us: Time,
    /// Link bandwidth in bytes per µs. 937 Mbit/s ≈ 117 B/µs, matching the
    /// iperf3 measurement in §VI-A.
    pub bytes_per_us: f64,
    /// Fixed per-message framing overhead in bytes.
    pub msg_overhead_bytes: u32,
    /// Extra one-way latency in µs for messages that cross a zone boundary.
    /// Zero by default: single-zone clusters and the paper's figures see no
    /// change; the figf2 failure-domain experiment turns it on.
    pub cross_zone_extra_us: Time,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            one_way_us: 40,
            bytes_per_us: 117.0,
            msg_overhead_bytes: 64,
            cross_zone_extra_us: 0,
        }
    }
}

impl NetConfig {
    /// Delay for a message carrying `payload` bytes (zone-local path).
    pub fn delay(&self, payload: u32) -> Time {
        let bytes = (payload + self.msg_overhead_bytes) as f64;
        self.one_way_us + (bytes / self.bytes_per_us).ceil() as Time
    }

    /// Delay for a message carrying `payload` bytes between two zones: the
    /// zone-local delay plus the aggregation-hop surcharge when they differ.
    pub fn delay_between(&self, from: ZoneId, to: ZoneId, payload: u32) -> Time {
        let base = self.delay(payload);
        if from == to {
            base
        } else {
            base + self.cross_zone_extra_us
        }
    }
}

/// CPU service demands, in µs, for the node worker model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CpuConfig {
    /// Executing one read operation.
    pub read_us: Time,
    /// Executing one write operation (buffering + logging).
    pub write_us: Time,
    /// OCC validation of one transaction at one participant.
    pub validate_us: Time,
    /// Installing the write set of one transaction at one participant.
    pub install_us: Time,
    /// Fixed per-transaction overhead (parsing, context setup).
    pub txn_overhead_us: Time,
    /// Handling one network message (messenger thread work).
    pub msg_handle_us: Time,
    /// Lock-manager service time per transaction (deterministic protocols).
    pub lock_mgr_us: Time,
}

impl Default for CpuConfig {
    fn default() -> Self {
        CpuConfig {
            read_us: 3,
            write_us: 4,
            validate_us: 6,
            install_us: 8,
            txn_overhead_us: 18,
            msg_handle_us: 2,
            lock_mgr_us: 2,
        }
    }
}

/// Top-level simulated-cluster configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Executor node count (paper default: 4; scalability sweep 4..10).
    pub nodes: usize,
    /// Partitions hosted per node at start (primaries, round-robin).
    pub partitions_per_node: usize,
    /// Rows per partition. Scaled down from the paper's 24 M/node; the access
    /// distribution, not the raw size, drives behaviour.
    pub keys_per_partition: u64,
    /// Payload bytes per row.
    pub value_size: u32,
    /// Initial replicas per partition (k, paper default 2).
    pub replication_factor: usize,
    /// Maximum replicas per partition before eviction (paper default 4).
    pub max_replicas: usize,
    /// Worker threads per node (paper: 8).
    pub workers_per_node: usize,
    /// Closed-loop client contexts per node driving load.
    pub clients_per_node: usize,
    /// Network model.
    pub net: NetConfig,
    /// CPU service demands.
    pub cpu: CpuConfig,
    /// Remastering duration: log sync + leader hand-off (default 3000 µs,
    /// swept 500–3500 in Fig. 13b).
    pub remaster_delay_us: Time,
    /// Fixed component of a partition migration, on top of data transfer.
    /// Sized so the remaster-vs-migration cost gap stays realistic at the
    /// scaled-down table sizes (paper-scale partitions are tens of MB: a
    /// migration blackout is orders of magnitude longer than a remaster).
    pub migration_fixed_us: Time,
    /// Epoch-based group-commit interval (paper: 10 ms).
    pub epoch_us: Time,
    /// Failure-detection delay: virtual time between a node halting and the
    /// recovery coordinator acting on it (heartbeat timeout).
    pub failure_detect_us: Time,
    /// Poll interval for operations stalled on a partition whose primary is
    /// down with no live replica to promote.
    pub stall_poll_us: Time,
    /// Transactions per batch for batch-execution protocols (paper: 10 k).
    pub batch_size: usize,
    /// Back-off before retrying an aborted transaction.
    pub retry_backoff_us: Time,
    /// RNG seed for deterministic runs.
    pub seed: u64,
    /// Number of failure domains (racks / availability zones). Nodes map to
    /// zones in contiguous blocks unless [`SimConfig::zone_map`] overrides
    /// it. 1 (the default) disables failure-domain modeling entirely.
    pub zones: usize,
    /// Explicit node→zone assignment; empty means the contiguous-block
    /// default derived from [`SimConfig::zones`] (nodes 0..n/z in zone 0,
    /// the next block in zone 1, …) — the layout of racked hardware.
    pub zone_map: Vec<u16>,
    /// Replica placement policy: pure locality (the paper's Algorithm 1) or
    /// rack-safe anti-affinity that spreads every partition's replicas
    /// across at least `min_zones` failure domains.
    pub placement: PlacementPolicy,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            nodes: 4,
            partitions_per_node: 12,
            keys_per_partition: 10_000,
            value_size: 100,
            replication_factor: 2,
            max_replicas: 4,
            workers_per_node: 8,
            clients_per_node: 32,
            net: NetConfig::default(),
            cpu: CpuConfig::default(),
            remaster_delay_us: 3_000,
            migration_fixed_us: 10_000,
            epoch_us: 10_000,
            failure_detect_us: 50_000,
            stall_poll_us: 10_000,
            batch_size: 512,
            retry_backoff_us: 50,
            seed: 0xD1CE_5EED,
            zones: 1,
            zone_map: Vec::new(),
            placement: PlacementPolicy::LocalityFirst,
        }
    }
}

impl SimConfig {
    /// Total partition count.
    pub fn n_partitions(&self) -> usize {
        self.nodes * self.partitions_per_node
    }

    /// Bytes of one full partition copy (for migration/replica-add costs).
    pub fn partition_bytes(&self) -> u64 {
        self.keys_per_partition * (self.value_size as u64 + 16)
    }

    /// Total closed-loop clients.
    pub fn total_clients(&self) -> usize {
        self.nodes * self.clients_per_node
    }

    /// Builder-style override helpers, used heavily by the bench harness.
    pub fn with_nodes(mut self, nodes: usize) -> Self {
        self.nodes = nodes;
        self
    }

    /// Override the per-node partition count.
    pub fn with_partitions_per_node(mut self, p: usize) -> Self {
        self.partitions_per_node = p;
        self
    }

    /// Override the remastering delay (Fig. 13b sweep).
    pub fn with_remaster_delay(mut self, us: Time) -> Self {
        self.remaster_delay_us = us;
        self
    }

    /// Override the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Override the failure-domain count (contiguous-block node assignment).
    pub fn with_zones(mut self, zones: usize) -> Self {
        assert!(zones >= 1, "need at least one zone");
        assert!(
            zones <= self.nodes,
            "{zones} zones over {} nodes would leave some zones empty \
             (set nodes first, or use an explicit zone_map)",
            self.nodes
        );
        self.zones = zones;
        self
    }

    /// Override the replica placement policy.
    pub fn with_placement(mut self, placement: PlacementPolicy) -> Self {
        self.placement = placement;
        self
    }

    /// Zone of `node`: the explicit [`SimConfig::zone_map`] entry when one
    /// is set, otherwise the contiguous-block default (`idx·zones/nodes`).
    pub fn zone_of(&self, node: NodeId) -> ZoneId {
        if let Some(&z) = self.zone_map.get(node.idx()) {
            return ZoneId(z);
        }
        debug_assert!(self.zones >= 1 && node.idx() < self.nodes);
        ZoneId((node.idx() * self.zones / self.nodes) as u16)
    }

    /// The full node→zone map, one entry per node.
    pub fn node_zones(&self) -> Vec<ZoneId> {
        (0..self.nodes as u16)
            .map(|n| self.zone_of(NodeId(n)))
            .collect()
    }

    /// Nodes assigned to `zone`, in id order.
    pub fn nodes_in_zone(&self, zone: ZoneId) -> Vec<NodeId> {
        (0..self.nodes as u16)
            .map(NodeId)
            .filter(|&n| self.zone_of(n) == zone)
            .collect()
    }

    /// Number of distinct zones actually referenced by the per-node
    /// resolution (equals [`SimConfig::zones`] for the derived layout).
    /// Computed from [`SimConfig::node_zones`] so a partial `zone_map` —
    /// explicit entries for some nodes, the derived formula for the rest —
    /// still counts every zone a node can land in.
    pub fn n_zones(&self) -> usize {
        self.node_zones()
            .into_iter()
            .map(|z| z.idx() + 1)
            .max()
            .unwrap_or(1)
    }

    /// The theoretical minimum commit round-trip this topology allows: the
    /// cheapest empty-payload request/response between two *distinct* nodes
    /// (framing overhead included, zone surcharge where the pair crosses
    /// one). No protocol that coordinates at all can commit a distributed
    /// transaction faster, so reports quote p50 latency as a multiple of
    /// this floor — a scheduling-quality number that survives hardware and
    /// topology changes. Zero for single-node clusters (nothing to cross).
    pub fn commit_floor_us(&self) -> Time {
        if self.nodes < 2 {
            return 0;
        }
        let zones = self.node_zones();
        let mut floor = Time::MAX;
        for a in 0..self.nodes {
            for b in (a + 1)..self.nodes {
                let rtt = self.net.delay_between(zones[a], zones[b], 0)
                    + self.net.delay_between(zones[b], zones[a], 0);
                floor = floor.min(rtt);
            }
        }
        floor
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_setup() {
        let c = SimConfig::default();
        assert_eq!(c.nodes, 4);
        assert_eq!(c.replication_factor, 2);
        assert_eq!(c.max_replicas, 4);
        assert_eq!(c.workers_per_node, 8);
        assert_eq!(c.remaster_delay_us, 3_000);
        assert_eq!(c.epoch_us, 10_000);
    }

    #[test]
    fn net_delay_scales_with_bytes() {
        let net = NetConfig::default();
        let small = net.delay(0);
        let big = net.delay(117_000);
        assert!(small >= net.one_way_us);
        assert!(big >= small + 1_000, "1000 µs of serialization for ~117 kB");
    }

    #[test]
    fn partition_bytes_counts_overhead() {
        let c = SimConfig {
            keys_per_partition: 10,
            value_size: 100,
            ..Default::default()
        };
        assert_eq!(c.partition_bytes(), 10 * 116);
    }

    #[test]
    fn builder_overrides() {
        let c = SimConfig::default()
            .with_nodes(10)
            .with_remaster_delay(500)
            .with_seed(7);
        assert_eq!(c.nodes, 10);
        assert_eq!(c.remaster_delay_us, 500);
        assert_eq!(c.seed, 7);
        assert_eq!(c.n_partitions(), 10 * c.partitions_per_node);
    }

    #[test]
    fn commit_floor_is_cheapest_cross_node_round_trip() {
        let c = SimConfig::default();
        // Single zone: the floor is one empty-payload RTT.
        assert_eq!(c.commit_floor_us(), 2 * c.net.delay(0));
        // Two zones with a surcharge: some pair is still intra-zone, so the
        // floor does not pay the surcharge.
        let mut zoned = SimConfig::default().with_nodes(4).with_zones(2);
        zoned.net.cross_zone_extra_us = 60;
        assert_eq!(zoned.commit_floor_us(), 2 * zoned.net.delay(0));
        // Every node in its own zone: now the surcharge is unavoidable.
        let mut all_zoned = SimConfig::default().with_nodes(2).with_zones(2);
        all_zoned.net.cross_zone_extra_us = 60;
        assert_eq!(
            all_zoned.commit_floor_us(),
            2 * (all_zoned.net.delay(0) + 60)
        );
        // One node: no coordination, no floor.
        assert_eq!(SimConfig::default().with_nodes(1).commit_floor_us(), 0);
    }

    #[test]
    fn zone_map_defaults_to_contiguous_blocks() {
        let c = SimConfig::default().with_nodes(4).with_zones(2);
        // Racked layout: nodes 0-1 in Z0, nodes 2-3 in Z1.
        assert_eq!(
            c.node_zones(),
            vec![ZoneId(0), ZoneId(0), ZoneId(1), ZoneId(1)]
        );
        assert_eq!(c.nodes_in_zone(ZoneId(1)), vec![NodeId(2), NodeId(3)]);
        assert_eq!(c.n_zones(), 2);
        // single-zone default: everyone in Z0
        let c1 = SimConfig::default().with_nodes(3);
        assert!(c1.node_zones().iter().all(|&z| z == ZoneId(0)));
    }

    #[test]
    fn explicit_zone_map_overrides_blocks() {
        let mut c = SimConfig::default().with_nodes(4).with_zones(2);
        c.zone_map = vec![0, 1, 0, 1]; // interleaved racks
        assert_eq!(c.zone_of(NodeId(1)), ZoneId(1));
        assert_eq!(c.zone_of(NodeId(2)), ZoneId(0));
        assert_eq!(c.n_zones(), 2);
    }

    #[test]
    fn partial_zone_map_counts_derived_zones() {
        // N0 pinned explicitly; N1-N3 fall back to the contiguous-block
        // formula (Z0, Z1, Z1) — n_zones must count those too.
        let mut c = SimConfig::default().with_nodes(4).with_zones(2);
        c.zone_map = vec![0];
        assert_eq!(c.zone_of(NodeId(3)), ZoneId(1));
        assert_eq!(c.n_zones(), 2);
    }

    #[test]
    #[should_panic(expected = "zones over")]
    fn more_zones_than_nodes_is_rejected() {
        let _ = SimConfig::default().with_nodes(2).with_zones(4);
    }

    #[test]
    fn cross_zone_delay_adds_fixed_hop() {
        let net = NetConfig {
            cross_zone_extra_us: 150,
            ..NetConfig::default()
        };
        let local = net.delay_between(ZoneId(0), ZoneId(0), 100);
        let cross = net.delay_between(ZoneId(0), ZoneId(1), 100);
        assert_eq!(local, net.delay(100));
        assert_eq!(cross, local + 150);
        // zero surcharge (the default) leaves every path identical
        let flat = NetConfig::default();
        assert_eq!(flat.delay_between(ZoneId(0), ZoneId(1), 64), flat.delay(64));
    }
}
