//! Replica placement map.
//!
//! [`Placement`] records, for every partition, which node hosts the primary
//! replica and which nodes host secondaries (paper §II-A: `Np(v, p)` and
//! `Ns(v, p)`). It is the single structure the router scores against, the
//! planner rewrites, and the adaptor mutates — so its invariants are enforced
//! here and property-tested.
//!
//! Invariants:
//! * every partition has exactly one primary;
//! * a node holds at most one replica of a given partition;
//! * all referenced nodes exist.

use crate::ids::{NodeId, PartitionId, ZoneId};
use std::fmt;

/// How the planner and adaptor trade access locality against blast radius
/// when choosing replica holders.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum PlacementPolicy {
    /// Pure Algorithm 1: replicas go wherever `f(v, n)` is cheapest, with no
    /// regard for failure domains. A single rack loss can take out every
    /// replica of a partition.
    #[default]
    LocalityFirst,
    /// Anti-affinity: every partition's replica set must span at least
    /// `min_zones` failure domains. Placement still optimizes `f(v, n)`
    /// within that constraint, paying a measurable locality cost (figf2).
    RackSafe {
        /// Minimum number of distinct zones each partition's replicas cover.
        min_zones: usize,
    },
}

impl PlacementPolicy {
    /// The zone-coverage floor this policy demands (1 = unconstrained).
    pub fn min_zones(&self) -> usize {
        match self {
            PlacementPolicy::LocalityFirst => 1,
            PlacementPolicy::RackSafe { min_zones } => (*min_zones).max(1),
        }
    }

    /// True when the policy actually constrains placement.
    pub fn is_rack_safe(&self) -> bool {
        self.min_zones() > 1
    }
}

/// Errors returned by placement mutations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementError {
    /// The target node already holds a replica of the partition.
    AlreadyHosted { part: PartitionId, node: NodeId },
    /// The target node holds no replica of the partition.
    NoReplica { part: PartitionId, node: NodeId },
    /// Attempted to remove the primary replica via `remove_secondary`.
    IsPrimary { part: PartitionId, node: NodeId },
    /// Node id out of range.
    UnknownNode(NodeId),
    /// Partition id out of range.
    UnknownPartition(PartitionId),
}

impl fmt::Display for PlacementError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlacementError::AlreadyHosted { part, node } => {
                write!(f, "{node} already hosts a replica of {part}")
            }
            PlacementError::NoReplica { part, node } => {
                write!(f, "{node} holds no replica of {part}")
            }
            PlacementError::IsPrimary { part, node } => {
                write!(f, "{node} holds the primary of {part}; remaster first")
            }
            PlacementError::UnknownNode(n) => write!(f, "unknown node {n}"),
            PlacementError::UnknownPartition(p) => write!(f, "unknown partition {p}"),
        }
    }
}

impl std::error::Error for PlacementError {}

/// Which nodes host each partition's replicas.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Placement {
    n_nodes: usize,
    primary: Vec<NodeId>,
    secondaries: Vec<Vec<NodeId>>,
}

impl Placement {
    /// Builds the paper's default layout: primaries round-robin across nodes,
    /// and `replication_factor - 1` secondaries on the following nodes
    /// (§II-C: "a minimum of k replicas, distributed in a default round-robin
    /// fashion").
    pub fn round_robin(n_partitions: usize, n_nodes: usize, replication_factor: usize) -> Self {
        assert!(n_nodes > 0, "cluster needs at least one node");
        assert!(replication_factor >= 1, "need at least the primary replica");
        assert!(
            replication_factor <= n_nodes,
            "replication factor {replication_factor} exceeds node count {n_nodes}"
        );
        let mut primary = Vec::with_capacity(n_partitions);
        let mut secondaries = Vec::with_capacity(n_partitions);
        for p in 0..n_partitions {
            let home = p % n_nodes;
            primary.push(NodeId(home as u16));
            let secs = (1..replication_factor)
                .map(|j| NodeId(((home + j) % n_nodes) as u16))
                .collect();
            secondaries.push(secs);
        }
        Placement {
            n_nodes,
            primary,
            secondaries,
        }
    }

    /// Builds the zone-safe variant of the default layout: primaries still
    /// round-robin across nodes (locality and balance are untouched), but
    /// each partition's secondaries are chosen so the replica set spans at
    /// least `min_zones` failure domains — walking the nodes after the
    /// primary in ring order, taking nodes in not-yet-covered zones first,
    /// then filling the remaining replica slots in plain ring order.
    pub fn zone_spread(
        n_partitions: usize,
        n_nodes: usize,
        replication_factor: usize,
        zone_of: &[ZoneId],
        min_zones: usize,
    ) -> Self {
        assert_eq!(zone_of.len(), n_nodes, "one zone per node");
        assert!(replication_factor >= 1 && replication_factor <= n_nodes);
        let n_zones = zone_of.iter().map(|z| z.idx() + 1).max().unwrap_or(1);
        assert!(
            min_zones <= n_zones.min(replication_factor),
            "cannot spread {replication_factor} replicas across {min_zones} of {n_zones} zones"
        );
        let mut primary = Vec::with_capacity(n_partitions);
        let mut secondaries = Vec::with_capacity(n_partitions);
        for p in 0..n_partitions {
            let home = p % n_nodes;
            primary.push(NodeId(home as u16));
            let mut covered = vec![false; n_zones];
            covered[zone_of[home].idx()] = true;
            let mut n_covered = 1usize;
            let mut secs: Vec<NodeId> = Vec::with_capacity(replication_factor - 1);
            // First pass: cross-zone picks until the coverage floor holds.
            for j in 1..n_nodes {
                if secs.len() + 1 >= replication_factor || n_covered >= min_zones {
                    break;
                }
                let cand = (home + j) % n_nodes;
                if !covered[zone_of[cand].idx()] {
                    covered[zone_of[cand].idx()] = true;
                    n_covered += 1;
                    secs.push(NodeId(cand as u16));
                }
            }
            // Second pass: fill the remaining slots in ring order.
            for j in 1..n_nodes {
                if secs.len() + 1 >= replication_factor {
                    break;
                }
                let cand = NodeId(((home + j) % n_nodes) as u16);
                if !secs.contains(&cand) {
                    secs.push(cand);
                }
            }
            secondaries.push(secs);
        }
        Placement {
            n_nodes,
            primary,
            secondaries,
        }
    }

    /// Number of partitions tracked.
    pub fn n_partitions(&self) -> usize {
        self.primary.len()
    }

    /// Number of nodes in the cluster.
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// Node hosting the primary replica of `part` (paper: `Np(v, p)`).
    #[inline]
    pub fn primary_of(&self, part: PartitionId) -> NodeId {
        self.primary[part.idx()]
    }

    /// Nodes hosting secondary replicas of `part` (paper: `Ns(v, p)`).
    #[inline]
    pub fn secondaries_of(&self, part: PartitionId) -> &[NodeId] {
        &self.secondaries[part.idx()]
    }

    /// True when `node` hosts the primary replica of `part`.
    #[inline]
    pub fn is_primary(&self, part: PartitionId, node: NodeId) -> bool {
        self.primary_of(part) == node
    }

    /// True when `node` hosts a secondary replica of `part`.
    #[inline]
    pub fn has_secondary(&self, part: PartitionId, node: NodeId) -> bool {
        self.secondaries[part.idx()].contains(&node)
    }

    /// True when `node` hosts any replica of `part`.
    #[inline]
    pub fn has_replica(&self, part: PartitionId, node: NodeId) -> bool {
        self.is_primary(part, node) || self.has_secondary(part, node)
    }

    /// Total replicas (primary + secondaries) of `part`.
    pub fn replica_count(&self, part: PartitionId) -> usize {
        1 + self.secondaries[part.idx()].len()
    }

    /// All nodes holding a replica of `part`, primary first.
    pub fn replica_nodes(&self, part: PartitionId) -> Vec<NodeId> {
        let mut v = Vec::with_capacity(self.replica_count(part));
        v.push(self.primary_of(part));
        v.extend_from_slice(self.secondaries_of(part));
        v
    }

    /// Number of distinct failure domains covered by `part`'s replica set
    /// under the given node→zone map (the anti-affinity metric).
    pub fn zone_coverage(&self, part: PartitionId, zone_of: &[ZoneId]) -> usize {
        self.coverage_excluding(part, None, zone_of)
    }

    /// Distinct failure domains covered by `part`'s replicas *excluding*
    /// `without` — used to check whether evicting a replica would collapse
    /// the partition's zone spread.
    pub fn zone_coverage_without(
        &self,
        part: PartitionId,
        without: NodeId,
        zone_of: &[ZoneId],
    ) -> usize {
        self.coverage_excluding(part, Some(without), zone_of)
    }

    fn coverage_excluding(
        &self,
        part: PartitionId,
        without: Option<NodeId>,
        zone_of: &[ZoneId],
    ) -> usize {
        let mut zones: Vec<ZoneId> = self
            .replica_nodes(part)
            .into_iter()
            .filter(|&n| Some(n) != without)
            .map(|n| zone_of[n.idx()])
            .collect();
        zones.sort_unstable();
        zones.dedup();
        zones.len()
    }

    /// Number of primary replicas hosted on `node`.
    pub fn primaries_on(&self, node: NodeId) -> usize {
        self.primary.iter().filter(|&&n| n == node).count()
    }

    /// Partitions whose primary is hosted on `node`.
    pub fn primary_partitions_on(&self, node: NodeId) -> Vec<PartitionId> {
        self.primary
            .iter()
            .enumerate()
            .filter(|(_, &n)| n == node)
            .map(|(i, _)| PartitionId(i as u32))
            .collect()
    }

    /// Promotes the secondary replica on `node` to primary; the previous
    /// primary is demoted to a secondary (the paper's lightweight
    /// *remastering*, §III). No data moves: both nodes already hold replicas.
    pub fn remaster(&mut self, part: PartitionId, node: NodeId) -> Result<(), PlacementError> {
        self.check(part, node)?;
        if self.is_primary(part, node) {
            return Ok(()); // idempotent: already primary
        }
        let secs = &mut self.secondaries[part.idx()];
        let pos = secs
            .iter()
            .position(|&n| n == node)
            .ok_or(PlacementError::NoReplica { part, node })?;
        let old_primary = self.primary[part.idx()];
        secs[pos] = old_primary;
        self.primary[part.idx()] = node;
        Ok(())
    }

    /// Registers a new secondary replica of `part` on `node` (the adaptor's
    /// `AddRepReqHandler`, §V). The caller is responsible for data copy
    /// timing; this only mutates the map.
    pub fn add_secondary(&mut self, part: PartitionId, node: NodeId) -> Result<(), PlacementError> {
        self.check(part, node)?;
        if self.has_replica(part, node) {
            return Err(PlacementError::AlreadyHosted { part, node });
        }
        self.secondaries[part.idx()].push(node);
        Ok(())
    }

    /// Drops the secondary replica of `part` on `node` (replica-limit
    /// eviction, §IV-B.2). Refuses to drop the primary.
    pub fn remove_secondary(
        &mut self,
        part: PartitionId,
        node: NodeId,
    ) -> Result<(), PlacementError> {
        self.check(part, node)?;
        if self.is_primary(part, node) {
            return Err(PlacementError::IsPrimary { part, node });
        }
        let secs = &mut self.secondaries[part.idx()];
        let pos = secs
            .iter()
            .position(|&n| n == node)
            .ok_or(PlacementError::NoReplica { part, node })?;
        secs.swap_remove(pos);
        Ok(())
    }

    /// Moves the primary of `part` to `node` even when `node` holds no
    /// replica (full data *migration*, the expensive path of §IV-B.1 Case 3).
    /// The old primary's replica is dropped, matching a move rather than a
    /// copy.
    pub fn migrate_primary(
        &mut self,
        part: PartitionId,
        node: NodeId,
    ) -> Result<(), PlacementError> {
        self.check(part, node)?;
        if self.is_primary(part, node) {
            return Ok(());
        }
        if self.has_secondary(part, node) {
            // Equivalent to a remaster followed by dropping the old primary's
            // copy; keep the copy (cheaper and strictly more available).
            return self.remaster(part, node);
        }
        self.primary[part.idx()] = node;
        Ok(())
    }

    /// Checks all structural invariants; used by tests and debug assertions.
    pub fn validate(&self) -> Result<(), PlacementError> {
        for (i, &p) in self.primary.iter().enumerate() {
            let part = PartitionId(i as u32);
            if p.idx() >= self.n_nodes {
                return Err(PlacementError::UnknownNode(p));
            }
            let secs = &self.secondaries[i];
            for &s in secs {
                if s.idx() >= self.n_nodes {
                    return Err(PlacementError::UnknownNode(s));
                }
                if s == p {
                    return Err(PlacementError::AlreadyHosted { part, node: s });
                }
            }
            let mut sorted: Vec<NodeId> = secs.clone();
            sorted.sort_unstable();
            sorted.dedup();
            if sorted.len() != secs.len() {
                return Err(PlacementError::AlreadyHosted { part, node: p });
            }
        }
        Ok(())
    }

    fn check(&self, part: PartitionId, node: NodeId) -> Result<(), PlacementError> {
        if part.idx() >= self.primary.len() {
            return Err(PlacementError::UnknownPartition(part));
        }
        if node.idx() >= self.n_nodes {
            return Err(PlacementError::UnknownNode(node));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u32) -> PartitionId {
        PartitionId(i)
    }
    fn n(i: u16) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn round_robin_spreads_primaries() {
        let pl = Placement::round_robin(8, 4, 2);
        assert_eq!(pl.primary_of(p(0)), n(0));
        assert_eq!(pl.primary_of(p(5)), n(1));
        assert_eq!(pl.secondaries_of(p(0)), &[n(1)]);
        assert_eq!(pl.secondaries_of(p(3)), &[n(0)]);
        for node in 0..4 {
            assert_eq!(pl.primaries_on(n(node)), 2);
        }
        pl.validate().unwrap();
    }

    #[test]
    fn remaster_swaps_roles_without_changing_replica_set() {
        let mut pl = Placement::round_robin(4, 4, 2);
        let before: Vec<NodeId> = {
            let mut v = pl.replica_nodes(p(0));
            v.sort_unstable();
            v
        };
        pl.remaster(p(0), n(1)).unwrap();
        assert_eq!(pl.primary_of(p(0)), n(1));
        assert!(pl.has_secondary(p(0), n(0)));
        let after: Vec<NodeId> = {
            let mut v = pl.replica_nodes(p(0));
            v.sort_unstable();
            v
        };
        assert_eq!(before, after, "remastering must not move data");
        pl.validate().unwrap();
    }

    #[test]
    fn remaster_requires_replica() {
        let mut pl = Placement::round_robin(4, 4, 2);
        assert_eq!(
            pl.remaster(p(0), n(3)),
            Err(PlacementError::NoReplica {
                part: p(0),
                node: n(3)
            })
        );
    }

    #[test]
    fn remaster_is_idempotent_on_primary() {
        let mut pl = Placement::round_robin(4, 4, 2);
        pl.remaster(p(0), n(0)).unwrap();
        assert_eq!(pl.primary_of(p(0)), n(0));
    }

    #[test]
    fn add_and_remove_secondary() {
        let mut pl = Placement::round_robin(4, 4, 2);
        pl.add_secondary(p(0), n(2)).unwrap();
        assert_eq!(pl.replica_count(p(0)), 3);
        assert!(pl.has_secondary(p(0), n(2)));
        assert_eq!(
            pl.add_secondary(p(0), n(2)),
            Err(PlacementError::AlreadyHosted {
                part: p(0),
                node: n(2)
            })
        );
        pl.remove_secondary(p(0), n(2)).unwrap();
        assert_eq!(pl.replica_count(p(0)), 2);
        assert_eq!(
            pl.remove_secondary(p(0), n(0)),
            Err(PlacementError::IsPrimary {
                part: p(0),
                node: n(0)
            })
        );
        pl.validate().unwrap();
    }

    #[test]
    fn migrate_to_fresh_node_moves_primary() {
        let mut pl = Placement::round_robin(4, 4, 2);
        pl.migrate_primary(p(0), n(3)).unwrap();
        assert_eq!(pl.primary_of(p(0)), n(3));
        // secondary on n(1) untouched
        assert!(pl.has_secondary(p(0), n(1)));
        pl.validate().unwrap();
    }

    #[test]
    fn migrate_prefers_remaster_when_replica_exists() {
        let mut pl = Placement::round_robin(4, 4, 2);
        pl.migrate_primary(p(0), n(1)).unwrap();
        assert_eq!(pl.primary_of(p(0)), n(1));
        assert!(
            pl.has_secondary(p(0), n(0)),
            "old primary kept as secondary"
        );
    }

    #[test]
    fn bounds_are_checked() {
        let mut pl = Placement::round_robin(2, 2, 1);
        assert_eq!(
            pl.add_secondary(p(9), n(0)),
            Err(PlacementError::UnknownPartition(p(9)))
        );
        assert_eq!(
            pl.add_secondary(p(0), n(9)),
            Err(PlacementError::UnknownNode(n(9)))
        );
    }

    #[test]
    #[should_panic(expected = "replication factor")]
    fn replication_factor_cannot_exceed_nodes() {
        let _ = Placement::round_robin(2, 2, 3);
    }

    fn z(i: u16) -> ZoneId {
        ZoneId(i)
    }

    #[test]
    fn zone_spread_covers_min_zones() {
        // 4 nodes in 2 contiguous racks: N0,N1 in Z0; N2,N3 in Z1. Plain
        // round-robin with rf=2 puts P0 on {N0,N1} — both in Z0; the
        // zone-safe layout must never do that.
        let zones = [z(0), z(0), z(1), z(1)];
        let rr = Placement::round_robin(8, 4, 2);
        assert_eq!(
            rr.zone_coverage(p(0), &zones),
            1,
            "locality-first co-locates P0's replicas in one rack"
        );
        let safe = Placement::zone_spread(8, 4, 2, &zones, 2);
        safe.validate().unwrap();
        for i in 0..8 {
            assert!(
                safe.zone_coverage(p(i), &zones) >= 2,
                "P{i} replicas collapse into one zone"
            );
            // primaries stay on the round-robin home: locality preserved
            assert_eq!(safe.primary_of(p(i)), rr.primary_of(p(i)));
        }
    }

    #[test]
    fn zone_spread_single_zone_matches_round_robin() {
        let zones = [z(0); 3];
        let a = Placement::zone_spread(6, 3, 2, &zones, 1);
        let b = Placement::round_robin(6, 3, 2);
        assert_eq!(a, b, "one zone: no constraint, identical layout");
    }

    #[test]
    fn zone_coverage_without_detects_collapse() {
        let zones = [z(0), z(0), z(1)];
        let mut pl = Placement::round_robin(1, 3, 1);
        pl.add_secondary(p(0), n(1)).unwrap();
        pl.add_secondary(p(0), n(2)).unwrap();
        assert_eq!(pl.zone_coverage(p(0), &zones), 2);
        // dropping N2 (the only Z1 holder) collapses coverage to 1
        assert_eq!(pl.zone_coverage_without(p(0), n(2), &zones), 1);
        assert_eq!(pl.zone_coverage_without(p(0), n(1), &zones), 2);
    }

    #[test]
    #[should_panic(expected = "cannot spread")]
    fn zone_spread_rejects_impossible_floor() {
        let zones = [z(0), z(0)];
        let _ = Placement::zone_spread(2, 2, 2, &zones, 2);
    }

    #[test]
    fn placement_policy_floors() {
        assert_eq!(PlacementPolicy::LocalityFirst.min_zones(), 1);
        assert!(!PlacementPolicy::LocalityFirst.is_rack_safe());
        let rs = PlacementPolicy::RackSafe { min_zones: 2 };
        assert_eq!(rs.min_zones(), 2);
        assert!(rs.is_rack_safe());
        assert_eq!(PlacementPolicy::default(), PlacementPolicy::LocalityFirst);
    }
}
