//! Offline stand-in for the crates.io `rand` crate.
//!
//! The build environment has no network registry, so this vendored crate
//! provides exactly the API surface the workspace uses: [`rngs::SmallRng`]
//! (xoshiro256++ seeded via SplitMix64), [`SeedableRng::seed_from_u64`],
//! and the [`Rng`] extension methods `gen` / `gen_range` / `gen_bool` over
//! integer and float ranges. Everything is deterministic from the seed, which
//! is all the simulation requires — no OS entropy, no thread-local state.

/// Low-level uniform bit source.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Builds a generator whose entire stream is a function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled from uniform bits ("standard" distribution).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 explicit mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    #[inline]
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    #[inline]
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one value inside the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Integer types uniformly sampleable over a span without modulo bias
/// (widening-multiply method).
macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                let draw = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start.wrapping_add(draw as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width range: every bit pattern is valid.
                    return rng.next_u64() as $t;
                }
                let draw = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                lo.wrapping_add(draw as $t)
            }
        }
    )*};
}

impl_int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty gen_range");
        let u = f64::from_rng(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty gen_range");
        let u = f64::from_rng(rng);
        lo + u * (hi - lo)
    }
}

/// Convenience extension methods, blanket-implemented for every bit source.
pub trait Rng: RngCore {
    /// Draws a value of `T` from the standard distribution.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    /// Draws a value uniformly from `range`.
    #[inline]
    fn gen_range<T, B: SampleRange<T>>(&mut self, range: B) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::from_rng(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            SmallRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn int_ranges_respect_bounds() {
        let mut r = SmallRng::seed_from_u64(2);
        let mut seen0 = false;
        let mut seen9 = false;
        for _ in 0..2000 {
            let v = r.gen_range(0..10u64);
            assert!(v < 10);
            seen0 |= v == 0;
            seen9 |= v == 9;
            let w = r.gen_range(5..=15u64);
            assert!((5..=15).contains(&w));
            let x = r.gen_range(-3..3i64);
            assert!((-3..3).contains(&x));
        }
        assert!(seen0 && seen9, "both endpoints reachable");
    }

    #[test]
    fn float_ranges_respect_bounds() {
        let mut r = SmallRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = r.gen_range(-0.5..0.5f64);
            assert!((-0.5..0.5).contains(&v));
        }
    }

    #[test]
    fn works_through_unsized_rng() {
        fn draw(rng: &mut (impl Rng + ?Sized)) -> u64 {
            rng.gen_range(0..100u64)
        }
        let mut r = SmallRng::seed_from_u64(4);
        let dynr: &mut dyn super::RngCore = &mut r;
        assert!(draw(dynr) < 100);
    }
}
