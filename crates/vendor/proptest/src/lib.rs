//! Offline stand-in for the crates.io `proptest` crate.
//!
//! Implements the subset this workspace's property tests use: the
//! [`Strategy`] trait with `prop_map`, range / tuple / [`collection::vec`]
//! strategies, [`ProptestConfig::with_cases`], and the `proptest!`,
//! `prop_assert!`, `prop_assert_eq!` macros. Cases are generated from a
//! seed derived deterministically from the test function's name, so every
//! run explores the same inputs (reproducible CI). There is no shrinking:
//! a failing case reports its case index and the generated inputs' debug
//! representation when available.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Runner configuration. Only `cases` is honoured by this stand-in.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Deterministic per-test RNG handed to strategies.
#[derive(Debug)]
pub struct TestRng(pub SmallRng);

impl TestRng {
    /// Seeds the generator; the `proptest!` macro derives the seed from the
    /// test name so each property sees a stable, distinct stream.
    pub fn from_seed(seed: u64) -> Self {
        TestRng(SmallRng::seed_from_u64(seed))
    }
}

/// FNV-1a over a test name: a stable seed across runs and platforms.
pub fn seed_from_name(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// A failed property case (raised by `prop_assert!` and friends).
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(msg: String) -> Self {
        TestCaseError(msg)
    }
}

/// A generator of test inputs.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rand::Rng::gen_range(&mut rng.0, self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rand::Rng::gen_range(&mut rng.0, self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Strategy producing `Vec`s with lengths drawn from `len`.
    pub struct VecStrategy<S> {
        elem: S,
        len: core::ops::Range<usize>,
    }

    /// Vectors of `elem` values with a length in `len`.
    pub fn vec<S: Strategy>(elem: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rand::Rng::gen_range(&mut rng.0, self.len.clone());
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// The glob-import surface matching real proptest usage.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a property, failing the case (not panicking
/// the whole process) on violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)*);
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: {:?} == {:?}", a, b);
    }};
}

/// Declares property tests: each `fn name(args in strategies) { body }`
/// becomes a `#[test]` running `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { (<$crate::ProptestConfig as ::core::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let seed = $crate::seed_from_name(concat!(module_path!(), "::", stringify!($name)));
            let mut rng = $crate::TestRng::from_seed(seed);
            for case in 0..config.cases {
                let ($($arg,)+) =
                    ($($crate::Strategy::generate(&($strat), &mut rng),)+);
                let outcome: ::core::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::core::result::Result::Ok(()) })();
                if let ::core::result::Result::Err(e) = outcome {
                    panic!(
                        "property {} failed at case {}/{} (seed {:#x}): {}",
                        stringify!($name), case, config.cases, seed, e
                    );
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::{Strategy, TestRng};

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = TestRng::from_seed(1);
        let strat = (0u32..8, 0u16..4, 0.0f64..1.0);
        for _ in 0..500 {
            let (a, b, c) = strat.generate(&mut rng);
            assert!(a < 8 && b < 4 && (0.0..1.0).contains(&c));
        }
    }

    #[test]
    fn vec_strategy_respects_len() {
        let mut rng = TestRng::from_seed(2);
        let strat = crate::collection::vec(0u64..10, 3..7);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((3..7).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn prop_map_transforms() {
        let mut rng = TestRng::from_seed(3);
        let strat = (0u32..5).prop_map(|x| x * 10);
        for _ in 0..50 {
            let v = strat.generate(&mut rng);
            assert_eq!(v % 10, 0);
            assert!(v < 50);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_compiles_and_runs(x in 0u32..100, v in crate::collection::vec(0u8..3, 0..5)) {
            prop_assert!(x < 100);
            prop_assert_eq!(v.iter().filter(|&&b| b > 2).count(), 0);
        }
    }
}
