//! Offline stand-in for the crates.io `fxhash` / `rustc-hash` crates.
//!
//! The build environment has no network registry, so this vendored crate
//! provides the tiny API surface the workspace needs: [`FxHasher`] (the
//! Firefox/rustc multiply-rotate hash), the zero-state [`FxBuildHasher`],
//! and the [`FxHashMap`] / [`FxHashSet`] aliases.
//!
//! Two properties matter here, in this order:
//!
//! 1. **Determinism.** `std`'s default `RandomState` seeds SipHash per
//!    process, so anything leaked from iteration order varies run to run.
//!    `FxBuildHasher` has no state at all: the same keys hash identically
//!    in every process, which tightens the simulator's bit-for-bit
//!    reproducibility guarantee.
//! 2. **Speed.** The hot maps are keyed by small integers (row keys, txn
//!    ids, partition ids); Fx hashes a `u64` in a handful of cycles where
//!    SipHash-1-3 pays its full permutation, which is most of the lookup
//!    cost at these key sizes.
//!
//! Not DoS-resistant — irrelevant for a simulator hashing its own ids.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Hash map keyed by the deterministic Fx hash.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// Hash set keyed by the deterministic Fx hash.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// Zero-state builder: every hasher starts identically.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// The multiply-rotate hasher used by rustc and Firefox: each word is
/// folded in as `hash = (hash.rotl(5) ^ word) * K` with a golden-ratio
/// derived odd constant.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

/// `2^64 / φ`, forced odd — the classic Fx multiplier.
const K: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut rest = bytes;
        while rest.len() >= 8 {
            let (chunk, tail) = rest.split_at(8);
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
            rest = tail;
        }
        if rest.len() >= 4 {
            let (chunk, tail) = rest.split_at(4);
            self.add_to_hash(u32::from_le_bytes(chunk.try_into().expect("4-byte chunk")) as u64);
            rest = tail;
        }
        if rest.len() >= 2 {
            let (chunk, tail) = rest.split_at(2);
            self.add_to_hash(u16::from_le_bytes(chunk.try_into().expect("2-byte chunk")) as u64);
            rest = tail;
        }
        if let [b] = rest {
            self.add_to_hash(*b as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        // Finalizer: hashbrown indexes buckets with the *low* bits of the
        // hash, but a single multiply pushes its entropy toward the *high*
        // bits — bit-packed keys that differ only above bit `b` (e.g.
        // TPC-C's `rel<<56 | w<<40 | x<<16 | y` row keys sharing the low
        // component) would collide into one bucket and degenerate the map
        // into a chain. Rotating the well-mixed high bits down fixes that
        // for one cycle, the same finalization rustc-hash 2.x adopted.
        self.hash.rotate_left(26)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_across_builders() {
        // No per-process or per-instance seeding: the whole point.
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
        assert_eq!(hash_of(&"partition"), hash_of(&"partition"));
        let a = FxBuildHasher::default().hash_one(17u64);
        let b = FxBuildHasher::default().hash_one(17u64);
        assert_eq!(a, b);
    }

    #[test]
    fn distinguishes_nearby_keys() {
        // Dense integer keys (row ids) must not collide trivially.
        let hashes: std::collections::BTreeSet<u64> = (0u64..10_000).map(|k| hash_of(&k)).collect();
        assert_eq!(hashes.len(), 10_000, "dense u64 keys hash injectively");
    }

    #[test]
    fn bit_packed_keys_spread_over_low_hash_bits() {
        // TPC-C-style keys differ only in bits ≥16; the bucket index (low
        // hash bits) must still spread. Without the rotate finalizer every
        // one of these landed in `hash % 4096 == const`.
        let mut low_bits = std::collections::BTreeSet::new();
        for b in 0u64..4_096 {
            let key = (3u64 << 56) | (2 << 40) | (b << 16);
            low_bits.insert(hash_of(&key) & 0xFFF);
        }
        assert!(
            low_bits.len() > 3_000,
            "only {} distinct 12-bit buckets for 4096 packed keys",
            low_bits.len()
        );
    }

    #[test]
    fn byte_stream_matches_chunked_writes() {
        // write() folds 8/4/2/1-byte chunks; a 15-byte slice exercises all.
        let mut h = FxHasher::default();
        h.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15]);
        let full = h.finish();
        let mut h2 = FxHasher::default();
        h2.write_u64(u64::from_le_bytes([1, 2, 3, 4, 5, 6, 7, 8]));
        h2.write_u32(u32::from_le_bytes([9, 10, 11, 12]));
        h2.write_u16(u16::from_le_bytes([13, 14]));
        h2.write_u8(15);
        assert_eq!(full, h2.finish());
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut m: FxHashMap<u64, &str> = FxHashMap::default();
        m.insert(1, "one");
        m.insert(2, "two");
        assert_eq!(m.get(&1), Some(&"one"));
        let mut s: FxHashSet<(u32, u64)> = FxHashSet::default();
        assert!(s.insert((3, 4)));
        assert!(!s.insert((3, 4)));
    }
}
